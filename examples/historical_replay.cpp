// Historical replay example: the tiered-storage story (§4.3, §5.7).
//
// A producer writes a day's worth of market ticks; tiering moves the data
// to long-term storage and truncates the WAL. A new reader group then
// replays the WHOLE stream from the head — transparently served from LTS —
// while fresh ticks keep arriving.
//
//   $ ./example_historical_replay
#include <cstdio>

#include "client/event_reader.h"
#include "cluster/pravega_cluster.h"
#include "sim/random.h"

using namespace pravega;

int main() {
    cluster::ClusterConfig cc;
    cc.store.container.storage.flushSizeBytes = 64 * 1024;
    cc.store.container.storage.flushTimeout = sim::msec(200);
    cc.store.container.checkpointEveryOps = 500;
    cluster::PravegaCluster cluster(cc);

    controller::StreamConfig config;
    config.initialSegments = 2;
    cluster.createStream("markets", "ticks", config);

    auto writer = cluster.makeWriter("markets/ticks");
    const int historical = 2000;
    for (int i = 0; i < historical; ++i) {
        std::string symbol = "SYM" + std::to_string(i % 20);
        writer->writeEvent(symbol, toBytes(symbol + ":" + std::to_string(100.0 + i % 50)));
        if (i % 200 == 0) {
            writer->flush();
            cluster.runFor(sim::msec(300));  // let tiering work
        }
    }
    writer->flush();
    cluster.runUntilIdle();
    cluster.runFor(sim::sec(2));

    // Show the tiering state: data in LTS, WAL truncated.
    uint64_t ltsBytes = cluster.lts().totalBytes();
    uint64_t walTruncations = 0;
    for (auto* store : cluster.stores()) {
        for (uint32_t c : store->containerIds()) {
            walTruncations += store->container(c)->walTruncations();
        }
    }
    std::printf("wrote %d events; LTS holds %llu bytes; WAL truncated %llu times\n",
                historical, static_cast<unsigned long long>(ltsBytes),
                static_cast<unsigned long long>(walTruncations));

    // Replay everything from the head with a fresh reader group while new
    // ticks keep arriving: same API for historical and tail data.
    auto group = cluster.makeReaderGroup("replay", {"markets/ticks"});
    auto reader = group.value()->createReader("replayer", cluster.newClientHost());

    int replayed = 0;
    while (replayed < historical) {
        auto fut = reader->readNextEvent();
        if (!cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(5))) break;
        if (!fut.result().isOk()) break;
        ++replayed;
        if (replayed % 500 == 0) {
            // Live writes continue during the replay.
            writer->writeEvent("SYM0", toBytes("SYM0:live"));
            writer->flush();
        }
    }
    std::printf("replayed %d/%d historical events (plus live tail)\n", replayed, historical);
    return replayed >= historical ? 0 : 1;
}
