// Quickstart: stand up a Pravega cluster, create a stream, write events
// with routing keys, and read them back with a reader group.
//
//   $ ./example_quickstart
//
// Everything runs in simulated (virtual) time inside this process: the
// cluster models 3 segment stores, 3 bookies with journal drives, and an
// object-store LTS, per the paper's Table 1 deployment.
#include <cstdio>

#include "client/event_reader.h"
#include "cluster/pravega_cluster.h"

using namespace pravega;

int main() {
    // 1. Deploy a cluster (3 segment stores + 3 bookies + simulated LTS).
    cluster::PravegaCluster cluster;

    // 2. Create a scope and a stream with 4 parallel segments.
    controller::StreamConfig config;
    config.initialSegments = 4;
    Status created = cluster.createStream("examples", "quickstart", config);
    if (!created.isOk()) {
        std::fprintf(stderr, "create stream: %s\n", created.toString().c_str());
        return 1;
    }
    std::printf("created stream examples/quickstart with %d segments\n",
                config.initialSegments);

    // 3. Write events. Events with the same routing key stay ordered.
    auto writer = cluster.makeWriter("examples/quickstart");
    int acked = 0;
    for (int i = 0; i < 100; ++i) {
        std::string key = "device-" + std::to_string(i % 5);
        std::string event = key + " reading #" + std::to_string(i / 5);
        writer->writeEvent(key, toBytes(event), [&](Status s) { acked += s.isOk(); });
    }
    writer->flush();
    cluster.runUntilIdle();
    std::printf("wrote 100 events, %d acknowledged durable\n", acked);

    // 4. Read them back through a reader group (two coordinated readers).
    auto group = cluster.makeReaderGroup("quickstart-group", {"examples/quickstart"});
    auto reader1 = group.value()->createReader("reader-1", cluster.newClientHost());
    auto reader2 = group.value()->createReader("reader-2", cluster.newClientHost());

    int total = 0;
    auto readSome = [&](client::EventReader& reader) {
        auto fut = reader.readNextEvent();
        if (!cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(2))) return false;
        if (!fut.result().isOk()) return false;
        if (total < 5 || total >= 95) {
            std::printf("  [%s] %s\n", reader.name().c_str(),
                        toString(BytesView(fut.result().value().payload)).c_str());
        } else if (total == 5) {
            std::printf("  ...\n");
        }
        ++total;
        return true;
    };
    while (total < 100) {
        if (!readSome(*reader1) && !readSome(*reader2)) break;
    }
    std::printf("read back %d events across %zu+%zu segments\n", total,
                reader1->assignedSegments(), reader2->assignedSegments());
    return total == 100 ? 0 : 1;
}
