// Exactly-once pipeline example (§3.2): a writer with flaky connectivity
// retransmits aggressively, a segment store deduplicates by
// ⟨writer id, event number⟩, and a failover (segment-store crash, §4.4)
// hits mid-stream — yet the reader sees every event exactly once, in
// per-key order.
//
//   $ ./example_exactly_once_pipeline
#include <cstdio>
#include <map>

#include "client/event_reader.h"
#include "cluster/pravega_cluster.h"

using namespace pravega;

int main() {
    cluster::PravegaCluster cluster;
    controller::StreamConfig config;
    config.initialSegments = 2;
    cluster.createStream("bank", "transfers", config);

    auto writer = cluster.makeWriter("bank/transfers");
    std::map<std::string, int> written;
    int acked = 0;

    auto transfer = [&](const std::string& account) {
        int seq = written[account]++;
        writer->writeEvent(account, toBytes(account + "#" + std::to_string(seq)),
                           [&](Status s) { acked += s.isOk(); });
    };

    // Phase 1: normal traffic with periodic connection drops (every drop
    // forces retransmission of unacknowledged blocks).
    for (int i = 0; i < 300; ++i) {
        transfer("acct-" + std::to_string(i % 6));
        if (i % 60 == 30) writer->simulateReconnect();
    }
    writer->flush();
    cluster.runUntilIdle();

    // Phase 2: crash a segment store; containers fail over and recover
    // from the WAL; writers keep going against the new owners.
    std::printf("crashing segment store 1 (containers fail over)...\n");
    cluster.crashStore(1);
    cluster.runUntilIdle();
    auto writer2 = cluster.makeWriter("bank/transfers");
    for (int i = 0; i < 100; ++i) {
        std::string account = "acct-" + std::to_string(i % 6);
        int seq = written[account]++;
        writer2->writeEvent(account, toBytes(account + "#" + std::to_string(seq)),
                            [&](Status s) { acked += s.isOk(); });
    }
    writer2->flush();
    cluster.runUntilIdle();
    std::printf("sent 400 transfers (with reconnects + failover), %d acked\n", acked);

    // Verify: every transfer exactly once, in per-account order.
    auto group = cluster.makeReaderGroup("audit", {"bank/transfers"});
    auto reader = group.value()->createReader("auditor", cluster.newClientHost());
    std::map<std::string, int> seen;
    int total = 0;
    bool ordered = true;
    while (total < 400) {
        auto fut = reader->readNextEvent();
        if (!cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(5))) break;
        if (!fut.result().isOk()) break;
        std::string s = toString(BytesView(fut.result().value().payload));
        auto hash = s.find('#');
        std::string account = s.substr(0, hash);
        int seq = std::stoi(s.substr(hash + 1));
        if (seq != seen[account]) {
            std::printf("ORDER/DUPLICATION VIOLATION: %s got %d want %d\n", account.c_str(),
                        seq, seen[account]);
            ordered = false;
        }
        seen[account] = seq + 1;
        ++total;
    }
    std::printf("audited %d transfers: %s\n", total,
                ordered && total == 400 ? "exactly-once, in order" : "FAILED");
    return (ordered && total == 400) ? 0 : 1;
}
