// IoT auto-scaling example: a fleet of sensors whose ingest rate ramps up
// 10x during the day. The stream's auto-scaling policy (§3.1) splits hot
// segments so per-segment load returns to the target — with zero operator
// intervention — and merges them back when the load drops.
//
//   $ ./example_iot_autoscaling
#include <cstdio>

#include "cluster/pravega_cluster.h"
#include "controller/auto_scaler.h"
#include "sim/random.h"

using namespace pravega;

int main() {
    cluster::PravegaCluster cluster;

    controller::StreamConfig config;
    config.initialSegments = 1;
    config.scaling.type = controller::ScaleType::ByRateEvents;
    config.scaling.targetRate = 1000;  // 1k events/s per segment
    config.scaling.scaleFactor = 2;
    config.scaling.minSegments = 1;
    cluster.createStream("iot", "telemetry", config);

    controller::AutoScaler::Config scalerCfg;
    scalerCfg.pollInterval = sim::msec(500);
    scalerCfg.cooldown = sim::sec(2);
    controller::AutoScaler scaler(cluster.executor(), cluster.ctrl(), cluster.stores(),
                                  scalerCfg);
    scaler.start();

    auto writer = cluster.makeWriter("iot/telemetry");
    sim::Rng rng(11);

    auto segmentsNow = [&]() {
        auto segments = cluster.ctrl().getCurrentSegments("iot/telemetry");
        return segments ? segments.value().size() : 0;
    };

    std::printf("%8s %12s %10s\n", "t(s)", "rate(e/s)", "segments");
    // Daily pattern: quiet -> burst -> quiet.
    const double phases[] = {500, 2000, 8000, 8000, 8000, 2000, 500, 500, 500, 500};
    int t = 0;
    for (double rate : phases) {
        for (int second = 0; second < 4; ++second, ++t) {
            double carry = 0;
            for (int ms = 0; ms < 1000; ++ms) {
                carry += rate / 1000.0;
                while (carry >= 1.0) {
                    carry -= 1.0;
                    writer->writeEvent(rng.nextKey(10000), toBytes("{\"temp\": 21.5}"));
                }
                cluster.runFor(sim::msec(1));
            }
            std::printf("%8d %12.0f %10zu\n", t, rate, segmentsNow());
        }
    }
    scaler.stop();
    std::printf("splits=%llu merges=%llu (all automatic)\n",
                static_cast<unsigned long long>(scaler.splitsIssued()),
                static_cast<unsigned long long>(scaler.mergesIssued()));
    return scaler.splitsIssued() > 0 ? 0 : 1;
}
