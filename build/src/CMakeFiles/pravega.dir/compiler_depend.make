# Empty compiler generated dependencies file for pravega.
# This may be replaced when dependencies are built.
