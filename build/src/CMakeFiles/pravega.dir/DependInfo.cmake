
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/kafka_like.cpp" "src/CMakeFiles/pravega.dir/baselines/kafka_like.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/baselines/kafka_like.cpp.o.d"
  "/root/repo/src/baselines/pulsar_like.cpp" "src/CMakeFiles/pravega.dir/baselines/pulsar_like.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/baselines/pulsar_like.cpp.o.d"
  "/root/repo/src/client/event_reader.cpp" "src/CMakeFiles/pravega.dir/client/event_reader.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/event_reader.cpp.o.d"
  "/root/repo/src/client/event_writer.cpp" "src/CMakeFiles/pravega.dir/client/event_writer.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/event_writer.cpp.o.d"
  "/root/repo/src/client/kv_table.cpp" "src/CMakeFiles/pravega.dir/client/kv_table.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/kv_table.cpp.o.d"
  "/root/repo/src/client/reader_group.cpp" "src/CMakeFiles/pravega.dir/client/reader_group.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/reader_group.cpp.o.d"
  "/root/repo/src/client/segment_input_stream.cpp" "src/CMakeFiles/pravega.dir/client/segment_input_stream.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/segment_input_stream.cpp.o.d"
  "/root/repo/src/client/segment_output_stream.cpp" "src/CMakeFiles/pravega.dir/client/segment_output_stream.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/client/segment_output_stream.cpp.o.d"
  "/root/repo/src/cluster/coordination.cpp" "src/CMakeFiles/pravega.dir/cluster/coordination.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/cluster/coordination.cpp.o.d"
  "/root/repo/src/cluster/pravega_cluster.cpp" "src/CMakeFiles/pravega.dir/cluster/pravega_cluster.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/cluster/pravega_cluster.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/pravega.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/pravega.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/pravega.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/serde.cpp" "src/CMakeFiles/pravega.dir/common/serde.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/common/serde.cpp.o.d"
  "/root/repo/src/controller/auto_scaler.cpp" "src/CMakeFiles/pravega.dir/controller/auto_scaler.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/controller/auto_scaler.cpp.o.d"
  "/root/repo/src/controller/controller.cpp" "src/CMakeFiles/pravega.dir/controller/controller.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/controller/controller.cpp.o.d"
  "/root/repo/src/controller/stream_metadata.cpp" "src/CMakeFiles/pravega.dir/controller/stream_metadata.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/controller/stream_metadata.cpp.o.d"
  "/root/repo/src/lts/chunk_storage.cpp" "src/CMakeFiles/pravega.dir/lts/chunk_storage.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/lts/chunk_storage.cpp.o.d"
  "/root/repo/src/segmentstore/attribute_index.cpp" "src/CMakeFiles/pravega.dir/segmentstore/attribute_index.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/attribute_index.cpp.o.d"
  "/root/repo/src/segmentstore/cache.cpp" "src/CMakeFiles/pravega.dir/segmentstore/cache.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/cache.cpp.o.d"
  "/root/repo/src/segmentstore/container.cpp" "src/CMakeFiles/pravega.dir/segmentstore/container.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/container.cpp.o.d"
  "/root/repo/src/segmentstore/operations.cpp" "src/CMakeFiles/pravega.dir/segmentstore/operations.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/operations.cpp.o.d"
  "/root/repo/src/segmentstore/read_index.cpp" "src/CMakeFiles/pravega.dir/segmentstore/read_index.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/read_index.cpp.o.d"
  "/root/repo/src/segmentstore/segment_store.cpp" "src/CMakeFiles/pravega.dir/segmentstore/segment_store.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/segment_store.cpp.o.d"
  "/root/repo/src/segmentstore/storage_writer.cpp" "src/CMakeFiles/pravega.dir/segmentstore/storage_writer.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/storage_writer.cpp.o.d"
  "/root/repo/src/segmentstore/table_segment.cpp" "src/CMakeFiles/pravega.dir/segmentstore/table_segment.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/segmentstore/table_segment.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/pravega.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/sim/executor.cpp.o.d"
  "/root/repo/src/sim/models.cpp" "src/CMakeFiles/pravega.dir/sim/models.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/sim/models.cpp.o.d"
  "/root/repo/src/wal/bookie.cpp" "src/CMakeFiles/pravega.dir/wal/bookie.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/wal/bookie.cpp.o.d"
  "/root/repo/src/wal/ledger_handle.cpp" "src/CMakeFiles/pravega.dir/wal/ledger_handle.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/wal/ledger_handle.cpp.o.d"
  "/root/repo/src/wal/log_client.cpp" "src/CMakeFiles/pravega.dir/wal/log_client.cpp.o" "gcc" "src/CMakeFiles/pravega.dir/wal/log_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
