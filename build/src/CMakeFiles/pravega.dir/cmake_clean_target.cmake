file(REMOVE_RECURSE
  "libpravega.a"
)
