# Empty dependencies file for example_historical_replay.
# This may be replaced when dependencies are built.
