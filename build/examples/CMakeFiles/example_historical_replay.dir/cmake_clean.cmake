file(REMOVE_RECURSE
  "CMakeFiles/example_historical_replay.dir/historical_replay.cpp.o"
  "CMakeFiles/example_historical_replay.dir/historical_replay.cpp.o.d"
  "example_historical_replay"
  "example_historical_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_historical_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
