file(REMOVE_RECURSE
  "CMakeFiles/example_iot_autoscaling.dir/iot_autoscaling.cpp.o"
  "CMakeFiles/example_iot_autoscaling.dir/iot_autoscaling.cpp.o.d"
  "example_iot_autoscaling"
  "example_iot_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_iot_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
