# Empty compiler generated dependencies file for example_iot_autoscaling.
# This may be replaced when dependencies are built.
