# Empty dependencies file for example_exactly_once_pipeline.
# This may be replaced when dependencies are built.
