file(REMOVE_RECURSE
  "CMakeFiles/example_exactly_once_pipeline.dir/exactly_once_pipeline.cpp.o"
  "CMakeFiles/example_exactly_once_pipeline.dir/exactly_once_pipeline.cpp.o.d"
  "example_exactly_once_pipeline"
  "example_exactly_once_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_exactly_once_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
