# Empty compiler generated dependencies file for table_segment_test.
# This may be replaced when dependencies are built.
