file(REMOVE_RECURSE
  "CMakeFiles/table_segment_test.dir/table_segment_test.cpp.o"
  "CMakeFiles/table_segment_test.dir/table_segment_test.cpp.o.d"
  "table_segment_test"
  "table_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
