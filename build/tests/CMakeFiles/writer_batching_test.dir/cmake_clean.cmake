file(REMOVE_RECURSE
  "CMakeFiles/writer_batching_test.dir/writer_batching_test.cpp.o"
  "CMakeFiles/writer_batching_test.dir/writer_batching_test.cpp.o.d"
  "writer_batching_test"
  "writer_batching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writer_batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
