# Empty dependencies file for writer_batching_test.
# This may be replaced when dependencies are built.
