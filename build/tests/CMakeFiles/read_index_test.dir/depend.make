# Empty dependencies file for read_index_test.
# This may be replaced when dependencies are built.
