file(REMOVE_RECURSE
  "CMakeFiles/read_index_test.dir/read_index_test.cpp.o"
  "CMakeFiles/read_index_test.dir/read_index_test.cpp.o.d"
  "read_index_test"
  "read_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
