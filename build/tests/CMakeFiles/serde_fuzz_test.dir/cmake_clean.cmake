file(REMOVE_RECURSE
  "CMakeFiles/serde_fuzz_test.dir/serde_fuzz_test.cpp.o"
  "CMakeFiles/serde_fuzz_test.dir/serde_fuzz_test.cpp.o.d"
  "serde_fuzz_test"
  "serde_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serde_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
