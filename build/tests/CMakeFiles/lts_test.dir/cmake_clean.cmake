file(REMOVE_RECURSE
  "CMakeFiles/lts_test.dir/lts_test.cpp.o"
  "CMakeFiles/lts_test.dir/lts_test.cpp.o.d"
  "lts_test"
  "lts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
