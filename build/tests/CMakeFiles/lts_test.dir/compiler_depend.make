# Empty compiler generated dependencies file for lts_test.
# This may be replaced when dependencies are built.
