file(REMOVE_RECURSE
  "CMakeFiles/recovery_matrix_test.dir/recovery_matrix_test.cpp.o"
  "CMakeFiles/recovery_matrix_test.dir/recovery_matrix_test.cpp.o.d"
  "recovery_matrix_test"
  "recovery_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
