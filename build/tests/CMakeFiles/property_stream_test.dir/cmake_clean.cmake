file(REMOVE_RECURSE
  "CMakeFiles/property_stream_test.dir/property_stream_test.cpp.o"
  "CMakeFiles/property_stream_test.dir/property_stream_test.cpp.o.d"
  "property_stream_test"
  "property_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
