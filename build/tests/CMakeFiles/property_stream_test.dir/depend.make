# Empty dependencies file for property_stream_test.
# This may be replaced when dependencies are built.
