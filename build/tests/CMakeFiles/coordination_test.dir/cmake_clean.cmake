file(REMOVE_RECURSE
  "CMakeFiles/coordination_test.dir/coordination_test.cpp.o"
  "CMakeFiles/coordination_test.dir/coordination_test.cpp.o.d"
  "coordination_test"
  "coordination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
