# Empty compiler generated dependencies file for coordination_test.
# This may be replaced when dependencies are built.
