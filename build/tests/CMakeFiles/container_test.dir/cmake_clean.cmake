file(REMOVE_RECURSE
  "CMakeFiles/container_test.dir/container_test.cpp.o"
  "CMakeFiles/container_test.dir/container_test.cpp.o.d"
  "container_test"
  "container_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
