# Empty compiler generated dependencies file for avl_test.
# This may be replaced when dependencies are built.
