file(REMOVE_RECURSE
  "CMakeFiles/avl_test.dir/avl_test.cpp.o"
  "CMakeFiles/avl_test.dir/avl_test.cpp.o.d"
  "avl_test"
  "avl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
