# Empty dependencies file for bench_fig12_historical_reads.
# This may be replaced when dependencies are built.
