file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_historical_reads.dir/bench_fig12_historical_reads.cpp.o"
  "CMakeFiles/bench_fig12_historical_reads.dir/bench_fig12_historical_reads.cpp.o.d"
  "bench_fig12_historical_reads"
  "bench_fig12_historical_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_historical_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
