file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiplexing.dir/bench_ablation_multiplexing.cpp.o"
  "CMakeFiles/bench_ablation_multiplexing.dir/bench_ablation_multiplexing.cpp.o.d"
  "bench_ablation_multiplexing"
  "bench_ablation_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
