# Empty compiler generated dependencies file for bench_fig05_durability.
# This may be replaced when dependencies are built.
