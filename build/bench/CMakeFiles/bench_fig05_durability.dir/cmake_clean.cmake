file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_durability.dir/bench_fig05_durability.cpp.o"
  "CMakeFiles/bench_fig05_durability.dir/bench_fig05_durability.cpp.o.d"
  "bench_fig05_durability"
  "bench_fig05_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
