file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_large_events.dir/bench_fig07_large_events.cpp.o"
  "CMakeFiles/bench_fig07_large_events.dir/bench_fig07_large_events.cpp.o.d"
  "bench_fig07_large_events"
  "bench_fig07_large_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_large_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
