# Empty dependencies file for bench_fig07_large_events.
# This may be replaced when dependencies are built.
