# Empty dependencies file for bench_fig09_routing_keys.
# This may be replaced when dependencies are built.
