file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_routing_keys.dir/bench_fig09_routing_keys.cpp.o"
  "CMakeFiles/bench_fig09_routing_keys.dir/bench_fig09_routing_keys.cpp.o.d"
  "bench_fig09_routing_keys"
  "bench_fig09_routing_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_routing_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
