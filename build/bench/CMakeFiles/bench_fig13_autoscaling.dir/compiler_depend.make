# Empty compiler generated dependencies file for bench_fig13_autoscaling.
# This may be replaced when dependencies are built.
