file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_autoscaling.dir/bench_fig13_autoscaling.cpp.o"
  "CMakeFiles/bench_fig13_autoscaling.dir/bench_fig13_autoscaling.cpp.o.d"
  "bench_fig13_autoscaling"
  "bench_fig13_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
