file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tail_reads.dir/bench_fig08_tail_reads.cpp.o"
  "CMakeFiles/bench_fig08_tail_reads.dir/bench_fig08_tail_reads.cpp.o.d"
  "bench_fig08_tail_reads"
  "bench_fig08_tail_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tail_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
