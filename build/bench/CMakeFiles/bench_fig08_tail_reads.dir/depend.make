# Empty dependencies file for bench_fig08_tail_reads.
# This may be replaced when dependencies are built.
