file(REMOVE_RECURSE
  "../lib/libbench_harness.a"
)
