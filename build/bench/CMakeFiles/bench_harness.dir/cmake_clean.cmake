file(REMOVE_RECURSE
  "../lib/libbench_harness.a"
  "../lib/libbench_harness.pdb"
  "CMakeFiles/bench_harness.dir/harness/adapters.cpp.o"
  "CMakeFiles/bench_harness.dir/harness/adapters.cpp.o.d"
  "CMakeFiles/bench_harness.dir/harness/workload.cpp.o"
  "CMakeFiles/bench_harness.dir/harness/workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
