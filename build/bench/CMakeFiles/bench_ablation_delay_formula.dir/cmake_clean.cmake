file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_delay_formula.dir/bench_ablation_delay_formula.cpp.o"
  "CMakeFiles/bench_ablation_delay_formula.dir/bench_ablation_delay_formula.cpp.o.d"
  "bench_ablation_delay_formula"
  "bench_ablation_delay_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_delay_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
