# Empty dependencies file for bench_ablation_delay_formula.
# This may be replaced when dependencies are built.
