file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_batching.dir/bench_fig06_batching.cpp.o"
  "CMakeFiles/bench_fig06_batching.dir/bench_fig06_batching.cpp.o.d"
  "bench_fig06_batching"
  "bench_fig06_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
