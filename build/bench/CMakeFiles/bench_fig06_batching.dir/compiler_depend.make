# Empty compiler generated dependencies file for bench_fig06_batching.
# This may be replaced when dependencies are built.
