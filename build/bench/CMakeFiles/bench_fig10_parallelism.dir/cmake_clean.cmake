file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_parallelism.dir/bench_fig10_parallelism.cpp.o"
  "CMakeFiles/bench_fig10_parallelism.dir/bench_fig10_parallelism.cpp.o.d"
  "bench_fig10_parallelism"
  "bench_fig10_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
