// Figure 8: tail-read (end-to-end) latency and throughput (§5.5).
//
// 100B events with one writer and one reader/consumer per segment.
// Paper shapes: (a) 1 segment — Pravega and Kafka deliver low e2e latency
// up to saturation; Pulsar never gets under ~12ms (p95) due to its
// dispatcher pipeline; (b) 16 segments — Pulsar's read throughput drops
// sharply; Kafka/Pravega latency grows at medium-high rates.
#include "bench/harness/adapters.h"
#include "bench/harness/detection.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {5e3, 10e3, 50e3, 100e3, 250e3, 500e3, 800e3};

size_t rateCount() { return smoke() ? 1 : std::size(kRates); }

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'200'000;
    return shrinkForSmoke(cfg);
}

void sweepPravega(Report& report, const char* name, int segments) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        PravegaOptions opt;
        opt.segments = segments;
        opt.numReaders = segments;  // one reader per segment, as in §5.1
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));  // drain deliveries
        report.addE2e(name, stats, world->consumed.eventsPerSec(), 100, world->e2e,
                      &world->exec().mergedMetrics());
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

void sweepKafka(Report& report, const char* name, int partitions) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.numConsumers = partitions;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));
        report.addE2e(name, stats, world->consumed.eventsPerSec(), 100, world->e2e,
                      &world->exec().mergedMetrics());
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

void sweepPulsar(Report& report, const char* name, int partitions) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        PulsarOptions opt;
        opt.partitions = partitions;
        opt.numConsumers = partitions;
        auto world = makePulsar(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));
        report.addE2e(name, stats, world->consumed.eventsPerSec(), 100, world->e2e,
                      &world->exec().mergedMetrics());
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

}  // namespace

int main() {
    Report report("fig08_tail_reads", "Figure 8: tail-read end-to-end latency/throughput");

    report.note("pravega rows capture the full metrics registry, including the "
                "storage read pipeline (store.read.coalesced, store.prefetch.*): "
                "for pure tail reads these should stay ~0 — readers never fall "
                "behind the cache, so no LTS fetches or readahead fire");

    report.section("Figure 8a: tail reads, 1 segment/partition, 100B events",
                   "achieved/MB/s/latency columns describe the CONSUMER side");
    sweepPravega(report, "pravega/1seg", 1);
    sweepKafka(report, "kafka/1part", 1);
    sweepPulsar(report, "pulsar/1part", 1);

    report.section("Figure 8b: tail reads, 16 segments/partitions, 100B events");
    sweepPravega(report, "pravega/16seg", 16);
    sweepKafka(report, "kafka/16part", 16);
    sweepPulsar(report, "pulsar/16part", 16);

    if (chaosMode()) {
        report.section("Figure 8c: tail reads under partition chaos (BENCH_CHAOS=1)",
                       "store<->bookie partitions mid-window; the write-path "
                       "detectors flag the stalls feeding the tail readers");
        DetectionScenario sc;
        sc.series = "pravega/partition-chaos";
        sc.options = detectionClusterOptions(/*segments=*/4);
        sc.options.numReaders = 4;
        sc.workload = workload(smoke() ? 15e3 : 50e3);
        sc.workload.warmup = sim::msec(200);
        sc.workload.window = smoke() ? sim::msec(1600) : sim::msec(2200);
        sc.chaos = cluster::ChaosSchedule::Config{};
        sc.chaos->seed = 0xF08C;
        sc.chaos->bookieFaults = false;
        sc.chaos->degradeFaults = false;  // partitions only
        sc.chaos->start = sim::msec(700);
        sc.chaos->horizon = smoke() ? sim::msec(900) : sim::msec(1400);
        sc.chaos->faults = smoke() ? 2 : 4;
        runDetectionScenario(report, sc);
    }
    return 0;
}
