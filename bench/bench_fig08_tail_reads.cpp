// Figure 8: tail-read (end-to-end) latency and throughput (§5.5).
//
// 100B events with one writer and one reader/consumer per segment.
// Paper shapes: (a) 1 segment — Pravega and Kafka deliver low e2e latency
// up to saturation; Pulsar never gets under ~12ms (p95) due to its
// dispatcher pipeline; (b) 16 segments — Pulsar's read throughput drops
// sharply; Kafka/Pravega latency grows at medium-high rates.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {5e3, 10e3, 50e3, 100e3, 250e3, 500e3, 800e3};

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'200'000;
    return cfg;
}

void rowE2e(const std::string& series, const RunStats& s, const LatencyHistogram& e2e,
            const ConsumeStats& consumed) {
    double rate = consumed.eventsPerSec();
    std::printf("%-34s %12.0f %12.0f %9.2f %9.2f %9.2f %9.2f  (consumer side)\n",
                series.c_str(), s.offeredEventsPerSec, rate, rate * 100.0 / (1024 * 1024),
                e2e.percentileMs(50), e2e.percentileMs(95), e2e.percentileMs(99));
    std::fflush(stdout);
}

void sweepPravega(const char* name, int segments) {
    for (double rate : kRates) {
        PravegaOptions opt;
        opt.segments = segments;
        opt.numReaders = segments;  // one reader per segment, as in §5.1
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));  // drain deliveries
        rowE2e(name, stats, world->e2e, world->consumed);
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

void sweepKafka(const char* name, int partitions) {
    for (double rate : kRates) {
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.numConsumers = partitions;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));
        rowE2e(name, stats, world->e2e, world->consumed);
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

void sweepPulsar(const char* name, int partitions) {
    for (double rate : kRates) {
        PulsarOptions opt;
        opt.partitions = partitions;
        opt.numConsumers = partitions;
        auto world = makePulsar(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        world->exec().runFor(sim::msec(200));
        rowE2e(name, stats, world->e2e, world->consumed);
        if (world->consumed.eventsPerSec() < 0.70 * rate) break;
    }
}

}  // namespace

int main() {
    printHeader("Figure 8a: tail reads, 1 segment/partition, 100B events",
                "achieved/MB/s/latency columns describe the CONSUMER side");
    sweepPravega("pravega/1seg", 1);
    sweepKafka("kafka/1part", 1);
    sweepPulsar("pulsar/1part", 1);

    std::printf("\n");
    printHeader("Figure 8b: tail reads, 16 segments/partitions, 100B events", "");
    sweepPravega("pravega/16seg", 16);
    sweepKafka("kafka/16part", 16);
    sweepPulsar("pulsar/16part", 16);
    return 0;
}
