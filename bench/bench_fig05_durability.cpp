// Figure 5: impact of data durability on write performance (§5.2).
//
// Latency vs throughput for 100B events, one writer/producer, comparing
// Pravega (flush = default, and the no-flush ablation) against the
// Kafka-like baseline (no flush = default, and flush.messages=1).
// Paper shapes to reproduce: (a) 1 segment/partition — Pravega(flush)
// reaches a max throughput well above Kafka(no flush) while Kafka(flush)
// pays a large latency penalty at moderate rates; (b) 16 segments —
// Pravega and Kafka(no flush) both reach ~1M events/s.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {10e3, 50e3, 100e3, 250e3, 500e3, 800e3, 1.2e6, 1.6e6};

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.warmup = sim::msec(500);
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'500'000;
    return cfg;
}

void sweepPravega(const char* name, int segments, bool journalSync) {
    for (double rate : kRates) {
        PravegaOptions opt;
        opt.segments = segments;
        opt.numWriters = 1;
        opt.journalSync = journalSync;
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        printRow(name, stats);
        if (stats.achievedEventsPerSec < 0.85 * rate) break;  // saturated
    }
}

void sweepKafka(const char* name, int partitions, bool flush) {
    for (double rate : kRates) {
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.numProducers = 1;
        opt.flushEveryMessage = flush;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        printRow(name, stats);
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

}  // namespace

int main() {
    printHeader("Figure 5a: durability, 1 segment/partition, 1 writer, 100B events", "");
    sweepPravega("pravega-flush/1seg", 1, true);
    sweepPravega("pravega-noflush/1seg", 1, false);
    sweepKafka("kafka-noflush/1part", 1, false);
    sweepKafka("kafka-flush/1part", 1, true);

    std::printf("\n");
    printHeader("Figure 5b: durability, 16 segments/partitions, 1 writer, 100B events", "");
    sweepPravega("pravega-flush/16seg", 16, true);
    sweepKafka("kafka-noflush/16part", 16, false);
    sweepKafka("kafka-flush/16part", 16, true);
    return 0;
}
