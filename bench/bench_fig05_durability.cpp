// Figure 5: impact of data durability on write performance (§5.2).
//
// Latency vs throughput for 100B events, one writer/producer, comparing
// Pravega (flush = default, and the no-flush ablation) against the
// Kafka-like baseline (no flush = default, and flush.messages=1).
// Paper shapes to reproduce: (a) 1 segment/partition — Pravega(flush)
// reaches a max throughput well above Kafka(no flush) while Kafka(flush)
// pays a large latency penalty at moderate rates; (b) 16 segments —
// Pravega and Kafka(no flush) both reach ~1M events/s.
#include "bench/harness/adapters.h"
#include "bench/harness/detection.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {10e3, 50e3, 100e3, 250e3, 500e3, 800e3, 1.2e6, 1.6e6};

size_t rateCount() { return smoke() ? 1 : std::size(kRates); }

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.warmup = sim::msec(500);
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'500'000;
    return shrinkForSmoke(cfg);
}

void sweepPravega(Report& report, const char* name, int segments, bool journalSync) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        PravegaOptions opt;
        opt.segments = segments;
        opt.numWriters = 1;
        opt.journalSync = journalSync;
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedEventsPerSec < 0.85 * rate) break;  // saturated
    }
}

void sweepKafka(Report& report, const char* name, int partitions, bool flush) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.numProducers = 1;
        opt.flushEveryMessage = flush;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

}  // namespace

int main() {
    Report report("fig05_durability", "Figure 5: durability vs write performance");

    report.section("Figure 5a: durability, 1 segment/partition, 1 writer, 100B events");
    sweepPravega(report, "pravega-flush/1seg", 1, true);
    sweepPravega(report, "pravega-noflush/1seg", 1, false);
    sweepKafka(report, "kafka-noflush/1part", 1, false);
    sweepKafka(report, "kafka-flush/1part", 1, true);

    report.section("Figure 5b: durability, 16 segments/partitions, 1 writer, 100B events");
    sweepPravega(report, "pravega-flush/16seg", 16, true);
    sweepKafka(report, "kafka-noflush/16part", 16, false);
    sweepKafka(report, "kafka-flush/16part", 16, true);

    if (chaosMode()) {
        report.section("Figure 5c: write path under bookie chaos (BENCH_CHAOS=1)",
                       "durable writes with bookie crash/restart faults mid-window, "
                       "detection scored against the chaos timeline");
        DetectionScenario sc;
        sc.series = "pravega-flush/bookie-chaos";
        sc.options = detectionClusterOptions(/*segments=*/8);
        sc.workload = workload(smoke() ? 20e3 : 50e3);
        sc.workload.warmup = sim::msec(200);
        sc.workload.window = smoke() ? sim::msec(1600) : sim::msec(2200);
        sc.chaos = cluster::ChaosSchedule::Config{};
        sc.chaos->seed = 0xF05C;
        sc.chaos->networkFaults = false;  // bookie crash/restart only
        sc.chaos->start = sim::msec(700);
        sc.chaos->horizon = smoke() ? sim::msec(900) : sim::msec(1400);
        sc.chaos->faults = smoke() ? 2 : 4;
        runDetectionScenario(report, sc);
    }
    return 0;
}
