// Figure 13: stream auto-scaling and its effect on performance (§5.8).
//
// One stream starting with ONE segment; scaling policy targets 20 MB/s per
// segment (2k events/s of 10KB events); the benchmark writes 100 MB/s.
// Paper shapes: the stream splits repeatedly, the load spreads over the
// segment stores, and p50 write latency drops as splits land.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"
#include "controller/auto_scaler.h"

using namespace pravega;
using namespace pravega::bench;

int main() {
    PravegaOptions opt;
    opt.segments = 1;
    opt.numWriters = 4;
    opt.tweak = [](cluster::ClusterConfig& cfg) {
        cfg.store.container.storage.flushTimeout = sim::msec(500);
        // A modest per-stream LTS cap: one segment carrying the full 100
        // MB/s outruns its LTS stream and gets throttled (§4.3); splitting
        // spreads the load below the cap, so write latency drops — the
        // Fig 13 bottom plot's dynamic.
        cfg.lts.perStreamBytesPerSec = 80.0 * 1024 * 1024;
        cfg.store.container.throttleStartSegmentBytes = 24ULL * 1024 * 1024;
        cfg.store.container.throttleFullSegmentBytes = 96ULL * 1024 * 1024;
    };
    // Auto-scaling policy: 20 MB/s per segment (paper: 2k e/s of 10KB).
    auto world = makePravega(opt);
    // Recreate the stream with the scaling policy (makePravega uses fixed).
    // Simpler: create a second stream with the policy and use it.
    controller::StreamConfig scfg;
    scfg.initialSegments = 1;
    scfg.scaling.type = controller::ScaleType::ByRateBytes;
    scfg.scaling.targetRate = 20.0 * 1024 * 1024;
    scfg.scaling.scaleFactor = 2;
    world->cluster->ctrl().createScope("scale");
    auto created = world->cluster->ctrl().createStream("scale", "stream", scfg);
    world->cluster->runUntil([&]() { return created.isReady(); }, sim::sec(5));

    std::vector<std::unique_ptr<client::EventWriter>> writers;
    for (int i = 0; i < 4; ++i) writers.push_back(world->cluster->makeWriter("scale/stream"));

    controller::AutoScaler::Config acfg;
    acfg.pollInterval = sim::sec(1);
    acfg.sustainWindows = 2;
    acfg.cooldown = sim::sec(3);
    controller::AutoScaler scaler(world->exec(), world->cluster->ctrl(),
                                  world->cluster->stores(), acfg);
    scaler.start();

    Report report("fig13_autoscaling",
                  "Figure 13: auto-scaling, 100 MB/s into 1 initial segment, "
                  "target 20 MB/s/segment");
    report.section("time series (1s buckets); per-store MB/s from the scaler's rates");

    constexpr double kWriteMBps = 100.0;
    constexpr uint32_t kEventBytes = 10 * 1024;
    const int seconds = smoke() ? 5 : 60;
    sim::Rng rng(3);
    LatencyHistogram hist;
    double carry = 0;
    size_t rr = 0;

    for (int t = 0; t < seconds; ++t) {
        hist.reset();
        sim::TimePoint second = world->exec().now() + sim::sec(1);
        while (world->exec().now() < second) {
            carry += kWriteMBps * 1024 * 1024 / kEventBytes / 1000.0;
            while (carry >= 1.0) {
                carry -= 1.0;
                sim::TimePoint sentAt = world->exec().now();
                Bytes payload(kEventBytes, 0);
                writers[rr]->writeEvent(rng.nextKey(100000), BytesView(payload),
                                        [&hist, sentAt, &world](Status s) {
                                            if (s.isOk()) {
                                                hist.record(world->exec().now() - sentAt);
                                            }
                                        });
                rr = (rr + 1) % writers.size();
            }
            world->exec().runFor(sim::msec(1));
        }
        auto segments = world->cluster->ctrl().getCurrentSegments("scale/stream");
        size_t segCount = segments ? segments.value().size() : 0;
        // Per-store ingest in this second (Fig 13's top plot). The scaler
        // drains the raw counters; its per-segment rates map back to the
        // owning stores.
        std::map<sim::HostId, double> perStore;
        for (auto* store : world->cluster->stores()) perStore[store->host()] = 0;
        for (const auto& [seg, rate] : scaler.lastRates()) {
            auto uri = world->cluster->ctrl().uriOf(seg);
            if (uri) perStore[uri.value().store->host()] += rate;
        }
        std::vector<std::pair<std::string, double>> row = {
            {"t_sec", static_cast<double>(t)},
            {"segments", static_cast<double>(segCount)},
            {"p50_ms", hist.percentileMs(50)},
            {"p95_ms", hist.percentileMs(95)}};
        int storeIdx = 0;
        for (auto& [host, rate] : perStore) {
            row.emplace_back("store" + std::to_string(storeIdx++) + "_mbps",
                             rate / (1024 * 1024));
        }
        report.addCustom("autoscale", row);
    }
    scaler.stop();
    report.addCustom("summary",
                     {{"splits_issued", static_cast<double>(scaler.splitsIssued())},
                      {"final_segments", static_cast<double>(world->cluster->ctrl()
                                                                 .scaleEventCount(
                                                                     "scale/stream") +
                                                             1)}},
                     &world->exec().mergedMetrics());
    return 0;
}
