// Figure 13: stream auto-scaling and its effect on performance (§5.8).
//
// One stream starting with ONE segment; scaling policy targets 20 MB/s per
// segment (2k events/s of 10KB events); the benchmark writes 100 MB/s.
// Paper shapes: the stream splits repeatedly, the load spreads over the
// segment stores, and p50 write latency drops as splits land.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"
#include "controller/auto_scaler.h"
#include "workload/fleet.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

// Max/min per-store ingest over one trailing window: snapshot every
// container's monotonic byte counter, advance the sim, attribute the deltas
// to each container's (current) owner. Works identically whether or not the
// rebalancer is running, so the static and rebalanced rows are comparable.
double finalWindowRatio(cluster::PravegaCluster& c, sim::Duration window) {
    std::map<uint32_t, uint64_t> snap;
    for (uint32_t cid = 0; cid < c.registry().containerCount(); ++cid) {
        auto* container = c.registry().containerFor(cid);
        if (container) snap[cid] = container->totalBytesIn();
    }
    c.runFor(window);
    std::map<segmentstore::SegmentStore*, uint64_t> perStore;
    for (auto* s : c.stores()) perStore[s] = 0;
    for (uint32_t cid = 0; cid < c.registry().containerCount(); ++cid) {
        auto* owner = c.registry().ownerOf(cid);
        auto* container = owner ? owner->container(cid) : nullptr;
        if (container == nullptr) continue;
        uint64_t cum = container->totalBytesIn();
        uint64_t prev = snap.count(cid) ? snap[cid] : 0;
        perStore[owner] += cum >= prev ? cum - prev : cum;  // moved → fresh
    }
    uint64_t maxLoad = 0, minLoad = UINT64_MAX;
    for (const auto& [s, load] : perStore) {
        maxLoad = std::max(maxLoad, load);
        minLoad = std::min(minLoad, load);
    }
    return static_cast<double>(maxLoad) /
           static_cast<double>(std::max<uint64_t>(minLoad, 1));
}

}  // namespace

int main() {
    PravegaOptions opt;
    opt.segments = 1;
    opt.numWriters = 4;
    opt.tweak = [](cluster::ClusterConfig& cfg) {
        cfg.store.container.storage.flushTimeout = sim::msec(500);
        // A modest per-stream LTS cap: one segment carrying the full 100
        // MB/s outruns its LTS stream and gets throttled (§4.3); splitting
        // spreads the load below the cap, so write latency drops — the
        // Fig 13 bottom plot's dynamic.
        cfg.lts.perStreamBytesPerSec = 80.0 * 1024 * 1024;
        cfg.store.container.throttleStartSegmentBytes = 24ULL * 1024 * 1024;
        cfg.store.container.throttleFullSegmentBytes = 96ULL * 1024 * 1024;
    };
    // Auto-scaling policy: 20 MB/s per segment (paper: 2k e/s of 10KB).
    auto world = makePravega(opt);
    // Recreate the stream with the scaling policy (makePravega uses fixed).
    // Simpler: create a second stream with the policy and use it.
    controller::StreamConfig scfg;
    scfg.initialSegments = 1;
    scfg.scaling.type = controller::ScaleType::ByRateBytes;
    scfg.scaling.targetRate = 20.0 * 1024 * 1024;
    scfg.scaling.scaleFactor = 2;
    world->cluster->ctrl().createScope("scale");
    auto created = world->cluster->ctrl().createStream("scale", "stream", scfg);
    world->cluster->runUntil([&]() { return created.isReady(); }, sim::sec(5));

    std::vector<std::unique_ptr<client::EventWriter>> writers;
    for (int i = 0; i < 4; ++i) writers.push_back(world->cluster->makeWriter("scale/stream"));

    controller::AutoScaler::Config acfg;
    acfg.pollInterval = sim::sec(1);
    acfg.sustainWindows = 2;
    acfg.cooldown = sim::sec(3);
    controller::AutoScaler scaler(world->exec(), world->cluster->ctrl(),
                                  world->cluster->stores(), acfg);
    scaler.start();

    Report report("fig13_autoscaling",
                  "Figure 13: auto-scaling, 100 MB/s into 1 initial segment, "
                  "target 20 MB/s/segment");
    report.section("time series (1s buckets); per-store MB/s from the scaler's rates");

    constexpr double kWriteMBps = 100.0;
    constexpr uint32_t kEventBytes = 10 * 1024;
    const int seconds = smoke() ? 5 : 60;
    sim::Rng rng(3);
    LatencyHistogram hist;
    double carry = 0;
    size_t rr = 0;

    for (int t = 0; t < seconds; ++t) {
        hist.reset();
        sim::TimePoint second = world->exec().now() + sim::sec(1);
        while (world->exec().now() < second) {
            carry += kWriteMBps * 1024 * 1024 / kEventBytes / 1000.0;
            while (carry >= 1.0) {
                carry -= 1.0;
                sim::TimePoint sentAt = world->exec().now();
                Bytes payload(kEventBytes, 0);
                writers[rr]->writeEvent(rng.nextKey(100000), BytesView(payload),
                                        [&hist, sentAt, &world](Status s) {
                                            if (s.isOk()) {
                                                hist.record(world->exec().now() - sentAt);
                                            }
                                        });
                rr = (rr + 1) % writers.size();
            }
            world->exec().runFor(sim::msec(1));
        }
        auto segments = world->cluster->ctrl().getCurrentSegments("scale/stream");
        size_t segCount = segments ? segments.value().size() : 0;
        // Per-store ingest in this second (Fig 13's top plot). The scaler
        // drains the raw counters; its per-segment rates map back to the
        // owning stores.
        std::map<sim::HostId, double> perStore;
        for (auto* store : world->cluster->stores()) perStore[store->host()] = 0;
        for (const auto& [seg, rate] : scaler.lastRates()) {
            auto uri = world->cluster->ctrl().uriOf(seg);
            if (uri) perStore[uri.value().store->host()] += rate;
        }
        std::vector<std::pair<std::string, double>> row = {
            {"t_sec", static_cast<double>(t)},
            {"segments", static_cast<double>(segCount)},
            {"p50_ms", hist.percentileMs(50)},
            {"p95_ms", hist.percentileMs(95)}};
        int storeIdx = 0;
        for (auto& [host, rate] : perStore) {
            row.emplace_back("store" + std::to_string(storeIdx++) + "_mbps",
                             rate / (1024 * 1024));
        }
        report.addCustom("autoscale", row);
    }
    scaler.stop();
    report.addCustom("summary",
                     {{"splits_issued", static_cast<double>(scaler.splitsIssued())},
                      {"final_segments", static_cast<double>(world->cluster->ctrl()
                                                                 .scaleEventCount(
                                                                     "scale/stream") +
                                                             1)}},
                     &world->exec().mergedMetrics());

    // ------------------------------------------------------------------
    // Fleet sweep (§3.1 at fleet scale): a 10k-stream / 100k-producer
    // aggregate-client workload, used to compare static cid % N container
    // placement against the load-aware rebalancer, and to show per-tenant
    // quotas isolating a noisy neighbor while auto-scaling absorbs its
    // (throttled) load.
    report.section("fleet: 10k streams, 100k modeled producers; rebalance + quotas");
    const sim::Duration fleetRun = smoke() ? sim::sec(3) : sim::sec(10);
    const sim::Duration measureWindow = sim::msec(500);

    auto bigFleetCfg = []() {
        workload::FleetConfig fc;
        fc.seed = 1234;
        fc.tick = sim::msec(250);
        workload::TenantSpec t;
        t.scope = "fleet";
        t.streams = 10000;
        t.producersPerStream = 10;       // 100k modeled producers
        t.producerEventsPerSec = 0.2;    // 20k events/s fleet-wide
        t.eventBytes = 256;
        t.streamSkewTheta = 1.4;         // hottest stream ~1/3 of fleet load
        t.keySkewTheta = 1.0;
        t.keysPerStream = 100;
        fc.tenants.push_back(t);
        return fc;
    };

    auto runPlacementRow = [&](const std::string& series, bool rebalance) {
        cluster::ClusterConfig cfg;
        cfg.ltsKind = cluster::LtsKind::InMemory;
        cfg.segmentStores = 6;
        cfg.containerCount = 12;
        cfg.rebalanceContainers = rebalance;
        cfg.rebalancer.pollInterval = sim::msec(500);
        cfg.rebalancer.moveBudgetPerPoll = 3;
        cfg.rebalancer.minStoreBytesPerSec = 16.0 * 1024;
        cluster::PravegaCluster c(cfg);

        workload::FleetWorkload fleet(c, bigFleetCfg());
        Status st = fleet.setup();
        if (!st) {
            report.note(series + " setup failed: " + st.toString());
            return;
        }
        fleet.start();
        c.runFor(fleetRun - measureWindow);
        double ratio = finalWindowRatio(c, measureWindow);
        fleet.stop();
        c.runUntilIdle();

        double moves =
            rebalance ? static_cast<double>(c.rebalancer()->movesIssued()) : 0.0;
        report.addCustom(
            series,
            {{"streams", static_cast<double>(fleet.streamCount())},
             {"modeled_producers", static_cast<double>(fleet.modeledProducers())},
             {"offered_events", static_cast<double>(fleet.offeredEvents())},
             {"acked_events", static_cast<double>(fleet.ackedEvents())},
             {"errored_events", static_cast<double>(fleet.erroredEvents())},
             {"max_min_ratio", ratio},
             {"moves", moves},
             {"key_checksum_hi", static_cast<double>(fleet.keyChecksum() >> 32)},
             {"key_checksum_lo",
              static_cast<double>(fleet.keyChecksum() & 0xFFFFFFFFull)}});
    };
    runPlacementRow("fleet-static", false);
    runPlacementRow("fleet-rebalance", true);

    // Noisy-neighbor scenario: two tenants on one cluster; "noisy" carries a
    // 256 KB/s quota and offers 1 MB/s (control: 100 KB/s); "steady" has no
    // quota and must ride through untouched. Auto-scaling (64 KB/s/segment)
    // splits the noisy streams' hot segments instead of starving anyone.
    auto runQuotaRow = [&](const std::string& series, double noisyEventsPerSec) {
        cluster::ClusterConfig cfg;
        cfg.ltsKind = cluster::LtsKind::InMemory;
        cfg.tenantQuotas = true;
        cfg.quota.pollInterval = sim::msec(250);
        cluster::PravegaCluster c(cfg);
        c.quotas()->setQuota("noisy", 256.0 * 1024);

        workload::FleetConfig fc;
        fc.seed = 77;
        fc.tick = sim::msec(125);
        workload::TenantSpec noisy;
        noisy.scope = "noisy";
        noisy.streams = 2;
        noisy.producersPerStream = 100;
        noisy.producerEventsPerSec = noisyEventsPerSec;
        noisy.eventBytes = 512;
        noisy.streamConfig.scaling.type = controller::ScaleType::ByRateBytes;
        noisy.streamConfig.scaling.targetRate = 64.0 * 1024;
        fc.tenants.push_back(noisy);
        workload::TenantSpec steady;
        steady.scope = "steady";
        steady.streams = 20;
        steady.producersPerStream = 10;
        steady.producerEventsPerSec = 2.0;
        steady.eventBytes = 256;
        fc.tenants.push_back(steady);

        workload::FleetWorkload fleet(c, fc);
        fleet.attachQuotas(c.quotas());
        Status st = fleet.setup();
        if (!st) {
            report.note(series + " setup failed: " + st.toString());
            return;
        }
        controller::AutoScaler::Config acfg;
        acfg.pollInterval = sim::msec(500);
        acfg.sustainWindows = 2;
        acfg.cooldown = sim::sec(1);
        controller::AutoScaler fleetScaler(c.machine(), c.ctrl(), c.stores(), acfg);
        fleetScaler.start();
        fleet.start();
        c.runFor(sim::sec(4));
        fleet.stop();
        fleetScaler.stop();
        c.runUntilIdle();

        double steadyFrac =
            fleet.offeredFor("steady") == 0
                ? 0.0
                : static_cast<double>(fleet.ackedFor("steady")) /
                      static_cast<double>(fleet.offeredFor("steady"));
        report.addCustom(
            series,
            {{"streams", static_cast<double>(fleet.streamCount())},
             {"modeled_producers", static_cast<double>(fleet.modeledProducers())},
             {"offered_events", static_cast<double>(fleet.offeredEvents())},
             {"acked_events", static_cast<double>(fleet.ackedEvents())},
             {"quota_throttled_events", static_cast<double>(fleet.throttledEvents())},
             {"noisy_rate_bps", c.quotas()->measuredRate("noisy")},
             {"steady_acked_frac", steadyFrac},
             {"noisy_splits", static_cast<double>(fleetScaler.splitsIssued())}});
    };
    runQuotaRow("fleet-noisy", 10.0);   // 1 MB/s offered vs 256 KB/s quota
    runQuotaRow("fleet-control", 1.0);  // 100 KB/s offered — under quota
    return 0;
}
