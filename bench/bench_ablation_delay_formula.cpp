// Ablation: the data-frame delay formula (§4.1).
//
//   Delay = RecentLatency * (1 - AvgWriteSize / MaxFrameSize)
//
// The container waits up to Delay before closing an underfilled frame so
// more operations can batch. This ablation compares the adaptive delay
// against maxBatchDelay=0 (close frames immediately) at a moderate rate
// with many small appends, reporting frame efficiency (ops per WAL entry).
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

int main() {
    Report report("ablation_delay_formula",
                  "Ablation: data-frame delay formula, 16 segments, 100B events");
    const std::vector<double> rates =
        smoke() ? std::vector<double>{50e3} : std::vector<double>{50e3, 250e3, 800e3};
    for (double rate : rates) {
        for (bool adaptive : {true, false}) {
            PravegaOptions opt;
            opt.segments = 16;
            opt.tweak = [adaptive](cluster::ClusterConfig& cfg) {
                if (!adaptive) cfg.store.container.maxBatchDelay = 0;
            };
            auto world = makePravega(opt);
            WorkloadConfig w;
            w.eventsPerSec = rate;
            w.eventBytes = 100;
            w.window = sim::sec(2);
            w = shrinkForSmoke(w);
            auto stats = runOpenLoop(world->exec(), world->producers, w);

            uint64_t walEntries = 0, ops = 0;
            for (auto* store : world->cluster->stores()) {
                for (uint32_t c : store->containerIds()) {
                    walEntries += static_cast<uint64_t>(
                        store->container(c)->walLog().nextSequence());
                    ops += store->container(c)->appliedOps();
                }
            }
            report.addCustom(
                adaptive ? "adaptive-delay" : "no-delay",
                {{"offered_events_per_sec", rate},
                 {"achieved_events_per_sec", stats.achievedEventsPerSec},
                 {"p50_ms", stats.p50Ms},
                 {"p95_ms", stats.p95Ms},
                 {"ops_per_wal_entry",
                  walEntries ? static_cast<double>(ops) / walEntries : 0.0}},
                &world->exec().mergedMetrics());
        }
    }
    return 0;
}
