// Ablation: the data-frame delay formula (§4.1).
//
//   Delay = RecentLatency * (1 - AvgWriteSize / MaxFrameSize)
//
// The container waits up to Delay before closing an underfilled frame so
// more operations can batch. This ablation compares the adaptive delay
// against maxBatchDelay=0 (close frames immediately) at a moderate rate
// with many small appends, reporting frame efficiency (ops per WAL entry).
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

int main() {
    std::printf("# Ablation: data-frame delay formula, 16 segments, 100B events\n");
    std::printf("%18s %12s %12s %9s %9s %14s\n", "mode", "offered(e/s)", "achieved",
                "p50(ms)", "p95(ms)", "ops/WAL-entry");
    for (double rate : {50e3, 250e3, 800e3}) {
        for (bool adaptive : {true, false}) {
            PravegaOptions opt;
            opt.segments = 16;
            opt.tweak = [adaptive](cluster::ClusterConfig& cfg) {
                if (!adaptive) cfg.store.container.maxBatchDelay = 0;
            };
            auto world = makePravega(opt);
            WorkloadConfig w;
            w.eventsPerSec = rate;
            w.eventBytes = 100;
            w.window = sim::sec(2);
            auto stats = runOpenLoop(world->exec(), world->producers, w);

            uint64_t walEntries = 0, ops = 0;
            for (auto* store : world->cluster->stores()) {
                for (uint32_t c : store->containerIds()) {
                    walEntries += static_cast<uint64_t>(
                        store->container(c)->walLog().nextSequence());
                    ops += store->container(c)->appliedOps();
                }
            }
            std::printf("%18s %12.0f %12.0f %9.2f %9.2f %14.1f\n",
                        adaptive ? "adaptive-delay" : "no-delay", rate,
                        stats.achievedEventsPerSec, stats.p50Ms, stats.p95Ms,
                        walEntries ? static_cast<double>(ops) / walEntries : 0.0);
            std::fflush(stdout);
        }
    }
    return 0;
}
