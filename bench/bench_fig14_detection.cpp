// Figure 14: online failure detection over the observability layer.
//
// For each fault class a fresh cluster runs an open-loop write workload
// while a seeded ChaosSchedule injects ONLY that class; a detect::Monitor
// samples the obs:: registry on a virtual-time cadence and its alarms are
// scored against the schedule's ground-truth fault timeline. Reported per
// run: detection recall/precision, false positives, and detection latency
// (first matched alarm minus fault onset). A fault-free control run checks
// the detectors stay silent on healthy traffic.
//
// Three detector profiles sweep the sampling cadence: `default` (10ms
// period, 40-sample warmup — what the acceptance thresholds are stated
// against), `sensitive` (5ms, 30 samples — faster onset, more risk of
// noise), `conservative` (20ms, 50 samples — slower, stingier).
#include "bench/harness/detection.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

struct Profile {
    const char* name;
    detect::Monitor::Config monitor;
};

struct FaultClass {
    const char* name;
    bool chaos;  // false = control
    cluster::ChaosSchedule::Config flags;  // class-selection flags only
};

cluster::ChaosSchedule::Config onlyClass(bool bookie, bool partition, bool degrade,
                                         bool outage, bool slowdown) {
    cluster::ChaosSchedule::Config c;
    c.bookieFaults = bookie;
    c.networkFaults = partition || degrade;
    c.partitionFaults = partition;
    c.degradeFaults = degrade;
    c.ltsFaults = outage || slowdown;
    c.ltsOutageFaults = outage;
    c.ltsSlowdownFaults = slowdown;
    return c;
}

const FaultClass kClasses[] = {
    {"control", false, {}},
    {"bookie-crash", true, onlyClass(true, false, false, false, false)},
    {"partition", true, onlyClass(false, true, false, false, false)},
    {"link-degrade", true, onlyClass(false, false, true, false, false)},
    {"lts-outage", true, onlyClass(false, false, false, true, false)},
    {"lts-slowdown", true, onlyClass(false, false, false, false, true)},
};

void sweepProfile(Report& report, const Profile& profile) {
    const size_t classCount = smoke() ? 3 : std::size(kClasses);
    report.section(std::string("Figure 14 (") + profile.name +
                       " profile): detection vs fault class",
                   "recall/precision scored against the seeded chaos timeline");

    for (size_t ci = 0; ci < classCount; ++ci) {
        const FaultClass& fc = kClasses[ci];

        DetectionScenario sc;
        sc.series = std::string(fc.name) + "/" + profile.name;
        sc.options = detectionClusterOptions(/*segments=*/8);
        sc.monitor = profile.monitor;
        // WAL commit p99 under 50ms for 100ms: holds on healthy traffic,
        // breaches (soft alert) under partitions and crash timeouts.
        sc.guardrails = {"p99(trace.write.2_wal_commit_ns) < 50ms for 100ms"};

        // Chaos starts only after the slowest probe has finished its
        // baseline warmup (first HistP99 sample lands on tick 2).
        const sim::Duration warmupTime =
            (profile.monitor.warmupSamples + 2) * profile.monitor.period;
        const sim::TimePoint chaosStart = warmupTime + sim::msec(200);
        const sim::Duration horizon = smoke() ? sim::msec(600) : sim::msec(1200);

        sc.workload.eventsPerSec = smoke() ? 20'000 : 50'000;
        sc.workload.eventBytes = 100;
        sc.workload.warmup = sim::msec(200);
        sc.workload.window = chaosStart + horizon + sim::msec(300) - sc.workload.warmup;
        sc.workload.seed = 42;

        if (fc.chaos) {
            sc.chaos = fc.flags;
            sc.chaos->seed = 0xF14D + ci;
            sc.chaos->start = chaosStart;
            sc.chaos->horizon = horizon;
            sc.chaos->faults = smoke() ? 2 : 4;
        }
        runDetectionScenario(report, sc);
    }
}

}  // namespace

int main() {
    Report report("fig14_detection",
                  "Figure 14: online failure detection — latency, precision, recall");
    report.note("each row is one fresh cluster: open-loop writes + a single-class "
                "chaos schedule, scored against its ground-truth fault windows");
    report.note("acceptance (default profile): recall >= 0.9 on bookie-crash and "
                "partition; zero alarms on the control run");

    Profile profiles[] = {
        {"default", {sim::msec(10), 40}},
        {"sensitive", {sim::msec(5), 30}},
        {"conservative", {sim::msec(20), 50}},
    };
    const size_t profileCount = smoke() ? 1 : std::size(profiles);
    for (size_t i = 0; i < profileCount; ++i) sweepProfile(report, profiles[i]);
    return 0;
}
