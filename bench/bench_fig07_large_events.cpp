// Figure 7: write performance for larger (10KB) events (§5.4).
//
// Byte throughput is the key metric. Paper shapes: (a) 1 segment —
// Pravega is capped at ~160 MB/s by LTS (EFS) because tiering is an
// integral, throttled part of its write path; with the NoOp-LTS test
// feature it goes much higher; Pulsar reaches ~300 MB/s (its offloader is
// not in the write path) and Kafka ~70 MB/s (single-partition pipeline).
// (b) 16 segments — Pravega highest (~350 MB/s paper), Kafka close,
// Pulsar lower.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRatesMBps[] = {20, 50, 100, 150, 200, 280, 360, 440};

size_t rateCount() { return smoke() ? 1 : std::size(kRatesMBps); }

WorkloadConfig workload(double mbps) {
    WorkloadConfig cfg;
    cfg.eventBytes = 10 * 1024;
    cfg.eventsPerSec = mbps * 1024 * 1024 / cfg.eventBytes;
    cfg.useKeys = true;
    cfg.window = sim::sec(3);
    cfg.maxEvents = 200'000;
    return shrinkForSmoke(cfg);
}

template <typename MakeWorld>
void sweep(Report& report, const char* name, MakeWorld make) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double mbps = kRatesMBps[i];
        auto world = make();
        auto stats = runOpenLoop(world->exec(), world->producers, workload(mbps));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedMBps < 0.85 * mbps) break;
    }
}

}  // namespace

int main() {
    Report report("fig07_large_events", "Figure 7: 10KB events, byte throughput");

    report.section("Figure 7a: 10KB events, 1 segment/partition");
    sweep(report, "pravega-efs/1seg", []() {
        PravegaOptions opt;
        opt.segments = 1;
        return makePravega(opt);
    });
    sweep(report, "pravega-noop-lts/1seg", []() {
        PravegaOptions opt;
        opt.segments = 1;
        opt.ltsKind = cluster::LtsKind::NoOp;
        return makePravega(opt);
    });
    sweep(report, "pulsar/1part", []() {
        PulsarOptions opt;
        opt.partitions = 1;
        return makePulsar(opt);
    });
    sweep(report, "kafka/1part", []() {
        KafkaOptions opt;
        opt.partitions = 1;
        return makeKafka(opt);
    });

    report.section("Figure 7b: 10KB events, 16 segments/partitions");
    sweep(report, "pravega-efs/16seg", []() {
        PravegaOptions opt;
        opt.segments = 16;
        return makePravega(opt);
    });
    sweep(report, "pulsar/16part", []() {
        PulsarOptions opt;
        opt.partitions = 16;
        return makePulsar(opt);
    });
    sweep(report, "kafka/16part", []() {
        KafkaOptions opt;
        opt.partitions = 16;
        return makeKafka(opt);
    });
    return 0;
}
