// Micro-benchmarks for the core data structures (the Fig 4 block cache, the
// AVL read index, serialization, the obs:: latency histogram) plus a
// deterministic virtual-time core scenario.
//
// The scenario runs first and emits BENCH_micro_core.json through
// bench::Report: every value in it derives from virtual time and seeded
// randomness, so two same-seed runs write byte-identical JSON (and, with
// BENCH_DUMP_METRICS=1, print byte-identical obs:: registry dumps) — the
// acceptance check for the metrics determinism contract. The wall-clock
// google-benchmark suites run afterwards (skipped under BENCH_SMOKE=1).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/harness/adapters.h"
#include "bench/harness/report.h"
#include "common/buf_stats.h"
#include "common/serde.h"
#include "segmentstore/avl_map.h"
#include "segmentstore/cache.h"
#include "sim/random.h"

using namespace pravega;
using namespace pravega::segmentstore;

namespace {

BlockCache::Config cacheCfg() {
    BlockCache::Config cfg;
    cfg.blockSize = 4096;
    cfg.blocksPerBuffer = 512;
    cfg.maxBuffers = 512;  // 1 GB cap
    return cfg;
}

void BM_CacheInsertSmall(benchmark::State& state) {
    BlockCache cache(cacheCfg());
    Bytes data(static_cast<size_t>(state.range(0)), 0xAB);
    std::vector<CacheAddress> addrs;
    for (auto _ : state) {
        auto a = cache.insert(BytesView(data));
        if (!a.isOk()) {
            for (CacheAddress x : addrs) cache.remove(x);
            addrs.clear();
            a = cache.insert(BytesView(data));
        }
        addrs.push_back(a.value());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CacheInsertSmall)->Arg(100)->Arg(1024)->Arg(65536);

void BM_CacheAppendChain(benchmark::State& state) {
    // The Fig 4 design point: O(1) appends via the last-block address.
    BlockCache cache(cacheCfg());
    Bytes data(static_cast<size_t>(state.range(0)), 0xCD);
    auto addr = cache.insert(BytesView(data)).value();
    uint64_t appended = 0;
    for (auto _ : state) {
        auto r = cache.append(addr, BytesView(data));
        if (r.isOk()) {
            addr = r.value();
        } else {
            cache.remove(addr);
            addr = cache.insert(BytesView(data)).value();
        }
        appended += data.size();
    }
    state.SetBytesProcessed(static_cast<int64_t>(appended));
}
BENCHMARK(BM_CacheAppendChain)->Arg(100)->Arg(4096);

void BM_CacheGet(benchmark::State& state) {
    BlockCache cache(cacheCfg());
    Bytes data(static_cast<size_t>(state.range(0)), 0xEF);
    auto addr = cache.insert(BytesView(data)).value();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(addr));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CacheGet)->Arg(1024)->Arg(65536);

void BM_AvlInsert(benchmark::State& state) {
    AvlMap<int64_t, int64_t> tree;
    int64_t k = 0;
    for (auto _ : state) {
        tree.insert(k, k);
        k += 4096;  // read-index pattern: monotonically increasing offsets
        if (tree.size() > 100000) tree.clear();
    }
}
BENCHMARK(BM_AvlInsert);

void BM_AvlFloorLookup(benchmark::State& state) {
    AvlMap<int64_t, int64_t> tree;
    for (int64_t i = 0; i < state.range(0); ++i) tree.insert(i * 4096, i);
    sim::Rng rng(1);
    for (auto _ : state) {
        int64_t key = static_cast<int64_t>(rng.nextBounded(
            static_cast<uint64_t>(state.range(0)) * 4096));
        benchmark::DoNotOptimize(tree.floorEntry(key));
    }
}
BENCHMARK(BM_AvlFloorLookup)->Arg(1024)->Arg(65536);

void BM_StdMapFloorLookup(benchmark::State& state) {
    // Comparison point for the custom AVL tree.
    std::map<int64_t, int64_t> tree;
    for (int64_t i = 0; i < state.range(0); ++i) tree[i * 4096] = i;
    sim::Rng rng(1);
    for (auto _ : state) {
        int64_t key = static_cast<int64_t>(rng.nextBounded(
            static_cast<uint64_t>(state.range(0)) * 4096));
        auto it = tree.upper_bound(key);
        if (it != tree.begin()) --it;
        benchmark::DoNotOptimize(it);
    }
}
BENCHMARK(BM_StdMapFloorLookup)->Arg(1024)->Arg(65536);

void BM_SerdeWriteOps(benchmark::State& state) {
    Bytes payload(100, 0x11);
    for (auto _ : state) {
        Bytes out;
        BinaryWriter w(out);
        w.u8(1);
        w.u64(42);
        w.i64(12345678);
        w.bytes(BytesView(payload));
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SerdeWriteOps);

void BM_HistogramRecord(benchmark::State& state) {
    bench::LatencyHistogram hist;
    sim::Rng rng(1);
    for (auto _ : state) {
        hist.record(static_cast<sim::Duration>(rng.nextBounded(100000000)));
    }
    benchmark::DoNotOptimize(hist.percentileMs(95));
}
BENCHMARK(BM_HistogramRecord);

/// Deterministic virtual-time scenario: a small Pravega deployment with
/// writers and tail readers, reported with the full obs:: registry.
void runDeterministicScenario() {
    using namespace pravega::bench;
    Report report("micro_core", "micro: deterministic core write/read scenario");
    report.section("core scenario: 4 segments, 2 writers, 4 tail readers, 1KB events");

    PravegaOptions opt;
    opt.segments = 4;
    opt.numWriters = 2;
    opt.numReaders = 4;
    auto world = makePravega(opt);

    WorkloadConfig w;
    w.eventsPerSec = 20'000;
    w.eventBytes = 1024;
    w.warmup = sim::msec(200);
    w.window = sim::sec(1);
    w.seed = 42;
    w = shrinkForSmoke(w);
    bufstats::reset();
    const uint64_t eventsBefore = world->exec().executedEvents();
    const auto wallStart = std::chrono::steady_clock::now();
    auto stats = runOpenLoop(world->exec(), world->producers, w);
    world->exec().runFor(sim::msec(200));  // drain tail deliveries
    const double wallSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart).count();
    const uint64_t desEvents = world->exec().executedEvents() - eventsBefore;
    report.add("core-scenario", stats, &world->exec().mergedMetrics());

    // Engine row: DES scheduler throughput (wall-clock, volatile — the
    // smoke determinism check scrubs events_per_sec) and the copy budget
    // (virtual-time deterministic). bytes_copied_per_event is the
    // buffer-abstraction bytes copied per CLIENT event: 1x the payload on
    // the append path (the framing copy) plus the read-side fetch+hand-out
    // copies of the tail readers.
    report.section("engine: DES event loop + copy budget");
    const double clientEvents = static_cast<double>(stats.sent > 0 ? stats.sent : 1);
    report.addCustom(
        "engine",
        {{"events", static_cast<double>(desEvents)},
         {"events_per_sec", wallSec > 0 ? static_cast<double>(desEvents) / wallSec : 0.0},
         {"bytes_copied_per_event",
          static_cast<double>(bufstats::bytesCopied) / clientEvents},
         {"copy_ops_per_event", static_cast<double>(bufstats::copyOps) / clientEvents}},
        nullptr, "events/sec is wall-clock; copy columns are deterministic");
    report.finish();

    const char* dump = std::getenv("BENCH_DUMP_METRICS");
    if (dump != nullptr && dump[0] == '1') {
        std::printf("=== obs registry dump ===\n%s",
                    world->exec().mergedMetrics().dump().c_str());
        std::fflush(stdout);
    }
}

}  // namespace

int main(int argc, char** argv) {
    runDeterministicScenario();
    if (pravega::bench::smoke()) return 0;  // skip wall-clock microbenches in CI smoke
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
