#include "bench/harness/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pravega::bench {

namespace {

/// Deterministic JSON number: integers render exactly, everything else with
/// enough digits to round-trip the table values.
std::string jsonNumber(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    }
    return buf;
}

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void appendKvObject(std::string& out,
                    const std::vector<std::pair<std::string, double>>& kv) {
    out += "{";
    bool first = true;
    for (const auto& [k, v] : kv) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += jsonEscape(k);
        out += "\":";
        out += jsonNumber(v);
    }
    out += "}";
}

}  // namespace

bool smoke() {
    const char* v = std::getenv("BENCH_SMOKE");
    return v != nullptr && v[0] == '1';
}

bool chaosMode() {
    const char* v = std::getenv("BENCH_CHAOS");
    return v != nullptr && v[0] == '1';
}

WorkloadConfig shrinkForSmoke(WorkloadConfig cfg) {
    if (!smoke()) return cfg;
    cfg.warmup = sim::msec(100);
    cfg.window = sim::msec(400);
    cfg.maxEvents = std::min<uint64_t>(cfg.maxEvents, 25'000);
    cfg.eventsPerSec = std::min(cfg.eventsPerSec, 25'000.0);
    return cfg;
}

Report::Report(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title)) {
    std::printf("# %s\n", title_.c_str());
}

Report::~Report() { finish(); }

void Report::section(const std::string& title, const std::string& note) {
    currentSection_ = title;
    headerPrinted_ = false;
    std::printf("\n# %s\n", title.c_str());
    if (!note.empty()) std::printf("# %s\n", note.c_str());
    std::fflush(stdout);
}

void Report::printStandardHeader() {
    if (headerPrinted_) return;
    headerPrinted_ = true;
    std::printf("%-34s %12s %12s %9s %9s %9s %9s\n", "series", "offered(e/s)",
                "achieved(e/s)", "MB/s", "p50(ms)", "p95(ms)", "p99(ms)");
}

void Report::captureMetrics(const obs::MetricsRegistry* reg, Row& row) {
    if (reg == nullptr) return;
    reg->visitCounters([&row](const std::string& name, const obs::Counter& c) {
        row.metrics.emplace_back(name, static_cast<double>(c.value()));
    });
    // Trace-stage summaries (where one event's latency was spent) plus the
    // tape-library access distributions — the archive tier's first-byte
    // latency is the whole point of its ablation row.
    reg->visitHistograms([&row](const std::string& name, const obs::LatencyHistogram& h) {
        bool traced = name.rfind("trace.", 0) == 0 || name.rfind("sim.tape.", 0) == 0;
        if (!traced || h.count() == 0) return;
        row.metrics.emplace_back(name + ".count", static_cast<double>(h.count()));
        row.metrics.emplace_back(name + ".p50_ns", h.percentileNs(50));
        row.metrics.emplace_back(name + ".p99_ns", h.percentileNs(99));
    });
}

void Report::add(const std::string& series, const RunStats& s,
                 const obs::MetricsRegistry* metrics) {
    printStandardHeader();
    std::printf("%-34s %12.0f %12.0f %9.2f %9.2f %9.2f %9.2f\n", series.c_str(),
                s.offeredEventsPerSec, s.achievedEventsPerSec, s.achievedMBps, s.p50Ms,
                s.p95Ms, s.p99Ms);
    std::fflush(stdout);

    Row row;
    row.section = currentSection_;
    row.series = series;
    row.values = {{"offered_events_per_sec", s.offeredEventsPerSec},
                  {"achieved_events_per_sec", s.achievedEventsPerSec},
                  {"achieved_mbps", s.achievedMBps},
                  {"p50_ms", s.p50Ms},
                  {"p95_ms", s.p95Ms},
                  {"p99_ms", s.p99Ms},
                  {"mean_ms", s.meanMs},
                  {"sent", static_cast<double>(s.sent)},
                  {"acked_samples", static_cast<double>(s.ackedSamples)},
                  {"errors", static_cast<double>(s.errors)},
                  {"window_sec", s.windowSec}};
    captureMetrics(metrics, row);
    rows_.push_back(std::move(row));
}

void Report::addE2e(const std::string& series, const RunStats& s,
                    double consumedEventsPerSec, uint32_t eventBytes,
                    const LatencyHistogram& e2e, const obs::MetricsRegistry* metrics) {
    printStandardHeader();
    double mbps = consumedEventsPerSec * eventBytes / (1024.0 * 1024.0);
    std::printf("%-34s %12.0f %12.0f %9.2f %9.2f %9.2f %9.2f  (consumer side)\n",
                series.c_str(), s.offeredEventsPerSec, consumedEventsPerSec, mbps,
                e2e.percentileMs(50), e2e.percentileMs(95), e2e.percentileMs(99));
    std::fflush(stdout);

    Row row;
    row.section = currentSection_;
    row.series = series;
    row.note = "consumer side";
    row.values = {{"offered_events_per_sec", s.offeredEventsPerSec},
                  {"achieved_events_per_sec", consumedEventsPerSec},
                  {"achieved_mbps", mbps},
                  {"p50_ms", e2e.percentileMs(50)},
                  {"p95_ms", e2e.percentileMs(95)},
                  {"p99_ms", e2e.percentileMs(99)},
                  {"mean_ms", e2e.meanMs()},
                  {"sent", static_cast<double>(s.sent)},
                  {"acked_samples", static_cast<double>(e2e.count())},
                  {"errors", static_cast<double>(s.errors)},
                  {"window_sec", s.windowSec}};
    captureMetrics(metrics, row);
    rows_.push_back(std::move(row));
}

void Report::addCustom(const std::string& series,
                       const std::vector<std::pair<std::string, double>>& values,
                       const obs::MetricsRegistry* metrics, const std::string& note) {
    std::printf("%-34s", series.c_str());
    for (const auto& [k, v] : values) {
        std::printf(" %s=%s", k.c_str(), jsonNumber(v).c_str());
    }
    if (!note.empty()) std::printf("  %s", note.c_str());
    std::printf("\n");
    std::fflush(stdout);

    Row row;
    row.section = currentSection_;
    row.series = series;
    row.note = note;
    row.values = values;
    captureMetrics(metrics, row);
    rows_.push_back(std::move(row));
}

void Report::note(const std::string& text) {
    std::printf("# %s\n", text.c_str());
    std::fflush(stdout);
    notes_.push_back(text);
}

void Report::addDetectionRun(const std::string& runJson) {
    detectionRuns_.push_back(runJson);
}

std::string Report::finish() {
    std::string dir;
    if (const char* env = std::getenv("BENCH_OUT_DIR"); env != nullptr && env[0] != '\0') {
        dir = env;
        if (dir.back() != '/') dir += '/';
    }
    std::string path = dir + "BENCH_" + name_ + ".json";
    if (finished_) return path;
    finished_ = true;

    std::string out;
    out.reserve(4096 + rows_.size() * 512);
    out += "{\"schema\":\"pravega-bench/v1\",\"name\":\"";
    out += jsonEscape(name_);
    out += "\",\"title\":\"";
    out += jsonEscape(title_);
    out += "\",\"smoke\":";
    out += smoke() ? "true" : "false";
    out += ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
        const Row& r = rows_[i];
        if (i > 0) out += ",";
        out += "{\"section\":\"";
        out += jsonEscape(r.section);
        out += "\",\"series\":\"";
        out += jsonEscape(r.series);
        out += "\"";
        if (!r.note.empty()) {
            out += ",\"note\":\"";
            out += jsonEscape(r.note);
            out += "\"";
        }
        out += ",\"values\":";
        appendKvObject(out, r.values);
        out += ",\"metrics\":";
        appendKvObject(out, r.metrics);
        out += "}";
    }
    out += "],\"notes\":[";
    for (size_t i = 0; i < notes_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        out += jsonEscape(notes_[i]);
        out += "\"";
    }
    out += "]";
    if (!detectionRuns_.empty()) {
        out += ",\"detection\":{\"runs\":[";
        for (size_t i = 0; i < detectionRuns_.size(); ++i) {
            if (i > 0) out += ",";
            out += detectionRuns_[i];
        }
        out += "]}";
    }
    out += "}\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "report: cannot write %s\n", path.c_str());
        return path;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    std::fflush(stdout);
    return path;
}

}  // namespace pravega::bench
