#include "bench/harness/adapters.h"

#include <cstring>

#include "client/framing.h"

namespace pravega::bench {

namespace {

/// Serializes a producer's per-event client work: when the offered rate
/// exceeds 1/perEvent the client queue grows and latency explodes, which is
/// how single-producer ceilings appear in every OMB-style benchmark.
struct ClientStack {
    ClientStack(sim::Core& exec, sim::Duration perEvent, double perByteNs)
        : cpu(exec, 1), perEvent(perEvent), perByteNs(perByteNs) {}
    sim::QueuedResource cpu;
    sim::Duration perEvent;
    double perByteNs;
};

/// Wraps `inner` so each event first passes through the client stack.
SendFn throttleClient(std::shared_ptr<ClientStack> stack,
                      std::function<void(std::string key, uint32_t size,
                                         std::function<void(bool)> ack)> inner) {
    return [stack, inner = std::move(inner)](std::string_view key, uint32_t size,
                                             std::function<void(bool)> ack) {
        sim::Duration cost =
            stack->perEvent + static_cast<sim::Duration>(stack->perByteNs * size);
        stack->cpu.acquire(cost).onComplete(
            [inner, key = std::string(key), size,
             ack = std::move(ack)](const Result<sim::Unit>&) mutable {
                inner(std::move(key), size, std::move(ack));
            });
    };
}

/// Builds an event payload of `size` bytes carrying the send timestamp in
/// its first 8 bytes (how Pravega readers compute end-to-end latency; the
/// baselines track produce timestamps internally).
Bytes stampedPayload(sim::TimePoint now, uint32_t size) {
    Bytes out(std::max<uint32_t>(size, 8), 0);
    std::memcpy(out.data(), &now, sizeof(now));
    return out;
}

void pumpReader(PravegaWorld* world, client::EventReader* reader,
                std::shared_ptr<ClientStack> stack) {
    auto alive = world->alive;
    reader->readNextEvent().onComplete(
        [world, reader, alive, stack](const Result<client::EventRead>& r) {
            if (!*alive || !r.isOk()) return;
            sim::TimePoint sentAt = 0;
            if (r.value().payload.size() >= 8) {
                std::memcpy(&sentAt, r.value().payload.data(), sizeof(sentAt));
            }
            // The reader's per-event client work gates consumption.
            stack->cpu.acquire(stack->perEvent)
                .onComplete([world, reader, alive, stack,
                             sentAt](const Result<sim::Unit>&) {
                    if (!*alive) return;
                    if (sentAt > 0) world->e2e.record(world->exec().now() - sentAt);
                    ++world->drainedEvents;
                    world->consumed.add(1, world->exec().now());
                    pumpReader(world, reader, stack);
                });
        });
}

/// Wraps a baseline consumer delivery through a consumer-side client stack:
/// events are counted (and e2e recorded) only after the client has had CPU
/// time to process them, which is what caps read throughput per consumer.
template <typename Hist>
std::function<void(uint32_t, uint64_t, sim::Duration)> consumerStack(
    sim::Core& exec, Hist* hist, ConsumeStats* stats, sim::Duration perEvent) {
    auto stack = std::make_shared<ClientStack>(exec, perEvent, 0.0);
    sim::Core* e = &exec;
    return [stack, hist, stats, e](uint32_t events, uint64_t, sim::Duration e2e) {
        sim::TimePoint deliveredAt = e->now();
        stack->cpu
            .acquire(static_cast<sim::Duration>(events) * stack->perEvent)
            .onComplete([stack, hist, stats, e, events, e2e,
                         deliveredAt](const Result<sim::Unit>&) {
                sim::Duration total = e2e + (e->now() - deliveredAt);
                for (uint32_t i = 0; i < events; ++i) hist->record(total);
                if (stats) stats->add(events, e->now());
            });
    };
}

}  // namespace

std::unique_ptr<PravegaWorld> makePravega(const PravegaOptions& opt) {
    auto world = std::make_unique<PravegaWorld>();

    cluster::ClusterConfig cfg;
    cfg.ltsKind = opt.ltsKind;
    cfg.bookie.journalSync = opt.journalSync;
    if (opt.tweak) opt.tweak(cfg);
    world->cluster = std::make_unique<cluster::PravegaCluster>(cfg);

    controller::StreamConfig streamCfg;
    streamCfg.initialSegments = opt.segments;
    Status created = world->cluster->createStream("bench", "stream", streamCfg);
    if (!created.isOk()) {
        std::fprintf(stderr, "stream creation failed: %s\n", created.toString().c_str());
        std::abort();
    }

    if (opt.numReaders > 0) {
        auto group = world->cluster->makeReaderGroup("bench-readers", {"bench/stream"});
        world->group = group.value();
        for (int i = 0; i < opt.numReaders; ++i) {
            world->readers.push_back(world->group->createReader(
                "reader-" + std::to_string(i), world->cluster->newClientHost()));
        }
        world->cluster->runFor(sim::sec(3));  // let readers acquire all segments
        for (auto& reader : world->readers) {
            pumpReader(world.get(), reader.get(),
                       std::make_shared<ClientStack>(world->exec(),
                                                     ClientCosts::kPravegaReadPerEvent, 0.0));
        }
    }

    for (int i = 0; i < opt.numWriters; ++i) {
        world->writers.push_back(world->cluster->makeWriter("bench/stream", opt.writer));
        client::EventWriter* writer = world->writers.back().get();
        sim::Machine* exec = &world->exec();
        auto stack = std::make_shared<ClientStack>(*exec, ClientCosts::kPravegaPerEvent, ClientCosts::kPravegaPerByteNs);
        Producer p;
        p.send = throttleClient(stack, [writer, exec](std::string key, uint32_t size,
                                                      std::function<void(bool)> ack) {
            Bytes payload = stampedPayload(exec->now(), size);
            if (ack) {
                writer->writeEvent(key, BytesView(payload),
                                   [ack = std::move(ack)](Status s) { ack(s.isOk()); });
            } else {
                writer->writeEvent(key, BytesView(payload));
            }
        });
        p.flush = [writer]() { writer->flush(); };
        world->producers.push_back(std::move(p));
    }
    return world;
}

std::unique_ptr<KafkaWorld> makeKafka(const KafkaOptions& opt) {
    auto world = std::make_unique<KafkaWorld>();
    world->net = std::make_unique<sim::Network>(world->exec(), sim::Link::Config{});

    baselines::KafkaConfig cfg;
    cfg.flushEveryMessage = opt.flushEveryMessage;
    cfg.batchBytes = opt.batchBytes;
    cfg.lingerTime = opt.lingerTime;
    world->cluster = std::make_unique<baselines::KafkaCluster>(world->exec(), *world->net,
                                                               /*firstBrokerHost=*/500, cfg);
    world->cluster->createTopic("bench", opt.partitions);

    if (opt.numConsumers > 0) {
        KafkaWorld* w = world.get();
        for (int p = 0; p < opt.partitions; ++p) {
            world->kconsumers.push_back(world->cluster->makeConsumer(
                900 + p, "bench", p,
                consumerStack(w->exec(), &w->e2e, &w->consumed,
                              ClientCosts::kKafkaReadPerEvent)));
        }
    }
    for (int i = 0; i < opt.numProducers; ++i) {
        world->kproducers.push_back(world->cluster->makeProducer(1000 + i, "bench"));
        baselines::KafkaProducer* producer = world->kproducers.back().get();
        auto stack = std::make_shared<ClientStack>(world->exec(), ClientCosts::kKafkaPerEvent, ClientCosts::kKafkaPerByteNs);
        Producer p;
        p.send = throttleClient(stack, [producer](std::string key, uint32_t size,
                                                  std::function<void(bool)> ack) {
            if (ack) {
                producer->send(key, size, [ack = std::move(ack)](Status s) { ack(s.isOk()); });
            } else {
                producer->send(key, size, {});
            }
        });
        p.flush = [producer]() { producer->flush(); };
        world->producers.push_back(std::move(p));
    }
    return world;
}

std::unique_ptr<PulsarWorld> makePulsar(const PulsarOptions& opt) {
    auto world = std::make_unique<PulsarWorld>();
    world->net = std::make_unique<sim::Network>(world->exec(), sim::Link::Config{});

    for (int i = 0; i < 3; ++i) {
        sim::DiskModel::Config dcfg;
        if (i == 2) dcfg.bytesPerSec *= opt.bookieSkew;
        world->disks.push_back(std::make_unique<sim::DiskModel>(world->exec(), dcfg));
        world->bookies.push_back(std::make_unique<wal::Bookie>(
            world->exec(), 100 + i, *world->disks.back(), wal::Bookie::Config{}));
    }
    std::vector<wal::Bookie*> bookiePtrs;
    for (auto& b : world->bookies) bookiePtrs.push_back(b.get());

    if (opt.offloadEnabled) {
        world->lts = std::make_unique<sim::ObjectStoreModel>(world->exec(),
                                                             sim::ObjectStoreModel::Config{});
    }
    baselines::PulsarConfig cfg;
    cfg.batchingEnabled = opt.batchingEnabled;
    cfg.repl.ackQuorum = opt.ackQuorum;
    cfg.offloadEnabled = opt.offloadEnabled;
    cfg.brokerMemoryLimitBytes = opt.brokerMemoryLimitBytes;
    world->cluster = std::make_unique<baselines::PulsarCluster>(
        world->exec(), *world->net, /*firstBrokerHost=*/600,
        wal::WalEnv{world->exec(), *world->net, world->registry, world->logMeta, bookiePtrs},
        world->lts.get(), cfg);
    world->cluster->createTopic("bench", opt.partitions);

    if (opt.numConsumers > 0) {
        PulsarWorld* w = world.get();
        for (int p = 0; p < opt.partitions; ++p) {
            world->pconsumers.push_back(world->cluster->makeConsumer(
                900 + p, "bench", p, /*fromEarliest=*/false,
                consumerStack(w->exec(), &w->e2e, &w->consumed,
                              ClientCosts::kPulsarReadPerEvent)));
        }
    }
    for (int i = 0; i < opt.numProducers; ++i) {
        world->pproducers.push_back(world->cluster->makeProducer(1000 + i, "bench"));
        baselines::PulsarProducer* producer = world->pproducers.back().get();
        auto stack = std::make_shared<ClientStack>(world->exec(), ClientCosts::kPulsarPerEvent, ClientCosts::kPulsarPerByteNs);
        Producer p;
        p.send = throttleClient(stack, [producer](std::string key, uint32_t size,
                                                  std::function<void(bool)> ack) {
            if (ack) {
                producer->send(key, size, [ack = std::move(ack)](Status s) { ack(s.isOk()); });
            } else {
                producer->send(key, size, {});
            }
        });
        p.flush = [producer]() { producer->flush(); };
        world->producers.push_back(std::move(p));
    }
    return world;
}

}  // namespace pravega::bench
