// Unified bench reporting: every figure bench declares its rows through a
// Report, which renders the aligned text table on stdout AND writes a
// schema-stable machine-readable BENCH_<name>.json (schema "pravega-bench/v1")
// with achieved throughput, latency percentiles, and the key obs:: counters
// of the world that produced each row.
//
// JSON layout:
//   { "schema": "pravega-bench/v1", "name": "...", "title": "...",
//     "smoke": false,
//     "rows": [ { "section": "...", "series": "...", "note": "...",
//                 "values": { "<column>": <number>, ... },
//                 "metrics": { "<obs counter>": <number>,
//                              "trace.*.count|p50_ns|p99_ns": <number> } } ],
//     "notes": [ "..." ] }
//
// The file goes to $BENCH_OUT_DIR (if set) or the working directory. All
// values derive from virtual time, so same-seed runs write byte-identical
// JSON.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bench/harness/workload.h"
#include "obs/metrics.h"

namespace pravega::bench {

/// True when BENCH_SMOKE=1 in the environment: benches shrink to one tiny
/// sweep point each so CI can validate every binary end-to-end in seconds.
bool smoke();

/// True when BENCH_CHAOS=1 in the environment: figure benches that support
/// it add a chaos+detection sweep (faults injected mid-window, a
/// detect::Monitor scoring alarms against the chaos ground truth).
bool chaosMode();

/// Shrinks an open-loop workload for smoke runs: sub-second window, short
/// warmup, capped events and rate. Identity when smoke() is false.
WorkloadConfig shrinkForSmoke(WorkloadConfig cfg);

class Report {
public:
    /// `name` keys the output file (BENCH_<name>.json); `title` heads the
    /// stdout table.
    Report(std::string name, std::string title);
    ~Report();  // writes the JSON if finish() was not called explicitly

    Report(const Report&) = delete;
    Report& operator=(const Report&) = delete;

    /// Starts a new section (one figure sub-plot). The standard column
    /// header is reprinted before the section's first standard row.
    void section(const std::string& title, const std::string& note = "");

    /// Standard producer-side sweep row (the Fig 5/6/7 table shape).
    void add(const std::string& series, const RunStats& s,
             const obs::MetricsRegistry* metrics = nullptr);

    /// Consumer-side row for the tail-read figures: achieved throughput and
    /// percentiles come from the consumers' e2e histogram; offered rate and
    /// event size from the producer-side stats.
    void addE2e(const std::string& series, const RunStats& s, double consumedEventsPerSec,
                uint32_t eventBytes, const LatencyHistogram& e2e,
                const obs::MetricsRegistry* metrics = nullptr);

    /// Free-form row: ordered (column, value) pairs, printed as key=value.
    /// Used by the parallelism/ablation benches whose natural columns are
    /// not the standard sweep ones.
    void addCustom(const std::string& series,
                   const std::vector<std::pair<std::string, double>>& values,
                   const obs::MetricsRegistry* metrics = nullptr,
                   const std::string& note = "");

    /// Prints "# text" and records it in the JSON notes array.
    void note(const std::string& text);

    /// Appends one detection run (a pre-rendered JSON object from
    /// detect::detectionRunJson) to the report's "detection" section:
    ///   "detection": {"runs": [ {...}, ... ]}
    /// The section is only emitted when at least one run was added.
    void addDetectionRun(const std::string& runJson);

    /// Writes BENCH_<name>.json; idempotent. Returns the path written.
    std::string finish();

private:
    struct Row {
        std::string section;
        std::string series;
        std::string note;
        std::vector<std::pair<std::string, double>> values;   // column order
        std::vector<std::pair<std::string, double>> metrics;  // name-sorted
    };

    void captureMetrics(const obs::MetricsRegistry* reg, Row& row);
    void printStandardHeader();

    std::string name_;
    std::string title_;
    std::string currentSection_;
    bool headerPrinted_ = false;  // per-section standard header
    bool finished_ = false;
    std::vector<Row> rows_;
    std::vector<std::string> notes_;
    std::vector<std::string> detectionRuns_;  // pre-rendered JSON objects
};

}  // namespace pravega::bench
