// System adapters: build a fresh simulated deployment of Pravega, the
// Kafka-like baseline, or the Pulsar-like baseline — mirroring the paper's
// Table 1 — and expose uniform producer handles plus an end-to-end latency
// histogram fed by consumers. Every sweep point uses a fresh world so
// measurements are independent and memory is bounded.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/kafka_like.h"
#include "baselines/pulsar_like.h"
#include "bench/harness/workload.h"
#include "client/event_reader.h"
#include "cluster/pravega_cluster.h"

namespace pravega::bench {

/// Per-event client-stack CPU costs. OpenMessaging Benchmark drives one
/// client instance per producer thread; the client library's per-event work
/// is what caps a single producer's event rate (§5.2 reports ~1M e/s for
/// the Pravega writer and Kafka producer at 16 partitions, and lower
/// single-partition ceilings). These constants calibrate those ceilings.
struct ClientCosts {
    static constexpr sim::Duration kPravegaPerEvent = sim::Duration(800);   // ~1.25M e/s
    static constexpr sim::Duration kKafkaPerEvent = sim::Duration(950);     // ~1.05M e/s
    static constexpr sim::Duration kPulsarPerEvent = sim::Duration(1200);   // ~0.83M e/s
    /// Per-byte serialization/copy costs cap a single producer's BYTE rate
    /// (what dominates with 10KB events, §5.4: ~350/330/250 MB/s).
    static constexpr double kPravegaPerByteNs = 2.6;  // ~385 MB/s
    static constexpr double kKafkaPerByteNs = 2.9;    // ~345 MB/s
    static constexpr double kPulsarPerByteNs = 3.8;   // ~263 MB/s
    /// Consumer-side per-event costs (deserialize, callback): the read
    /// ceilings of Fig 8a — Pravega's ~72% and Pulsar's ~56% advantage
    /// over the Kafka consumer at one partition.
    static constexpr sim::Duration kPravegaReadPerEvent = sim::Duration(1300);  // ~770k e/s
    static constexpr sim::Duration kKafkaReadPerEvent = sim::Duration(2200);    // ~450k e/s
    static constexpr sim::Duration kPulsarReadPerEvent = sim::Duration(1400);   // ~710k e/s
};

// ------------------------------------------------------------- Pravega

struct PravegaOptions {
    int segments = 1;
    int numWriters = 1;
    int numReaders = 0;  // tail readers feeding the e2e histogram
    bool journalSync = true;                     // Fig 5 "no flush" ablation off
    cluster::LtsKind ltsKind = cluster::LtsKind::SimulatedObject;
    client::WriterConfig writer;
    /// Override for store/container knobs when needed.
    std::function<void(cluster::ClusterConfig&)> tweak;
};

/// Consumption counters: rate is measured over the interval the consumers
/// were actually busy (first..last delivery), so a saturated consumer's
/// ceiling is visible even when generation stopped earlier.
struct ConsumeStats {
    uint64_t events = 0;
    sim::TimePoint first = -1;
    sim::TimePoint last = 0;

    void add(uint64_t n, sim::TimePoint now) {
        if (first < 0) first = now;
        last = now;
        events += n;
    }
    double eventsPerSec() const {
        if (first < 0 || last <= first) return 0;
        return static_cast<double>(events) / sim::toSeconds(last - first);
    }
};

struct PravegaWorld {
    std::unique_ptr<cluster::PravegaCluster> cluster;
    std::vector<std::unique_ptr<client::EventWriter>> writers;
    std::shared_ptr<client::ReaderGroup> group;
    std::vector<std::unique_ptr<client::EventReader>> readers;
    std::vector<Producer> producers;
    LatencyHistogram e2e;
    ConsumeStats consumed;
    std::shared_ptr<bool> alive = std::make_shared<bool>(true);

    sim::Machine& exec() { return cluster->machine(); }
    uint64_t drainedEvents = 0;

    ~PravegaWorld() { *alive = false; }
};

std::unique_ptr<PravegaWorld> makePravega(const PravegaOptions& opt);

// --------------------------------------------------------------- Kafka

struct KafkaOptions {
    int partitions = 1;
    int numProducers = 1;
    int numConsumers = 0;  // one per partition when > 0
    bool flushEveryMessage = false;  // durability ablation (§5.2)
    uint64_t batchBytes = 128 * 1024;
    sim::Duration lingerTime = sim::msec(1);
};

struct KafkaWorld {
    std::unique_ptr<sim::Machine> execHolder = std::make_unique<sim::Machine>();
    std::unique_ptr<sim::Network> net;
    std::unique_ptr<baselines::KafkaCluster> cluster;
    std::vector<std::unique_ptr<baselines::KafkaProducer>> kproducers;
    std::vector<std::unique_ptr<baselines::KafkaConsumer>> kconsumers;
    std::vector<Producer> producers;
    LatencyHistogram e2e;
    ConsumeStats consumed;

    sim::Machine& exec() { return *execHolder; }
};

std::unique_ptr<KafkaWorld> makeKafka(const KafkaOptions& opt);

// -------------------------------------------------------------- Pulsar

struct PulsarOptions {
    int partitions = 1;
    int numProducers = 1;
    int numConsumers = 0;
    bool batchingEnabled = true;
    int ackQuorum = 2;        // 3 = the paper's "favorable" config (§5.6)
    bool offloadEnabled = false;
    double bookieSkew = 1.0;  // <1: last bookie's drive is slower
    /// Broker OOM threshold (scaled to the bench window; see EXPERIMENTS.md).
    uint64_t brokerMemoryLimitBytes = 512ULL * 1024 * 1024;
};

struct PulsarWorld {
    std::unique_ptr<sim::Machine> execHolder = std::make_unique<sim::Machine>();
    std::unique_ptr<sim::Network> net;
    std::vector<std::unique_ptr<sim::DiskModel>> disks;
    std::vector<std::unique_ptr<wal::Bookie>> bookies;
    wal::LedgerRegistry registry;
    wal::LogMetadataStore logMeta;
    std::unique_ptr<sim::ObjectStoreModel> lts;
    std::unique_ptr<baselines::PulsarCluster> cluster;
    std::vector<std::unique_ptr<baselines::PulsarProducer>> pproducers;
    std::vector<std::unique_ptr<baselines::PulsarConsumer>> pconsumers;
    std::vector<Producer> producers;
    LatencyHistogram e2e;
    ConsumeStats consumed;

    sim::Machine& exec() { return *execHolder; }
};

std::unique_ptr<PulsarWorld> makePulsar(const PulsarOptions& opt);

}  // namespace pravega::bench
