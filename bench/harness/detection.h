// Chaos+detection scenario runner shared by the figure benches: builds a
// fresh Pravega world, attaches a detect::Monitor with the default
// write-path probe battery (plus optional guardrails), optionally arms a
// ChaosSchedule, drives the open-loop workload, and scores the alarm log
// against the chaos ground truth. One call produces one addCustom row and
// one "detection" run object in the report's BENCH_*.json.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bench/harness/adapters.h"
#include "bench/harness/report.h"
#include "cluster/chaos.h"
#include "detect/monitor.h"
#include "detect/scoring.h"

namespace pravega::bench {

struct DetectionScenario {
    std::string series;
    PravegaOptions options;  // world shape (tweak already applied by caller)
    WorkloadConfig workload;
    /// Fault timeline; nullopt = fault-free control run (scored against an
    /// empty ground truth, so every alarm is a false positive).
    std::optional<cluster::ChaosSchedule::Config> chaos;
    detect::Monitor::Config monitor;
    std::vector<std::string> guardrails;  // SLO rules (soft alerts)
    detect::ScoreConfig scoring;
};

struct DetectionResult {
    RunStats stats;
    detect::ScoreReport scores;
    uint64_t ticks = 0;
    bool guardrailsPassed = true;
};

/// The standard fig14 cluster shape: 5 bookies (ensemble changes always
/// find a donor), 100ms write timeout (partitions are silent; the timeout
/// is the failure signal), fault-injectable LTS.
PravegaOptions detectionClusterOptions(int segments = 8);

DetectionResult runDetectionScenario(Report& report, const DetectionScenario& sc);

}  // namespace pravega::bench
