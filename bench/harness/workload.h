// Open-loop workload driver (the OpenMessaging-Benchmark stand-in, §5.1):
// producers emit events at a target rate regardless of acknowledgements;
// latency is sampled from acks and throughput measured from acknowledged
// events, exactly like the paper's latency-vs-throughput sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/machine.h"
#include "sim/random.h"

namespace pravega::bench {

/// The harness records latency with the observability layer's log-bucketed
/// histogram (one histogram implementation in the tree; see src/obs/).
using LatencyHistogram = obs::LatencyHistogram;

/// One producer's send entry point. `ack(ok)` may be null (unsampled).
using SendFn = std::function<void(std::string_view key, uint32_t size,
                                  std::function<void(bool ok)> ack)>;

struct Producer {
    SendFn send;
    std::function<void()> flush;  // optional
};

struct WorkloadConfig {
    double eventsPerSec = 10000;  // aggregate across all producers
    uint32_t eventBytes = 100;
    bool useKeys = true;          // random routing keys (§5.1 default)
    uint64_t keySpace = 50000;
    sim::Duration warmup = sim::msec(500);
    sim::Duration window = sim::sec(3);
    /// Caps total generated events (bounds bench wall time at high rates).
    uint64_t maxEvents = 2'000'000;
    /// 0 = auto (target ~4000 samples per run).
    uint32_t sampleEvery = 0;
    uint64_t seed = 42;
};

struct RunStats {
    double offeredEventsPerSec = 0;
    double achievedEventsPerSec = 0;
    double achievedMBps = 0;
    double p50Ms = 0, p95Ms = 0, p99Ms = 0, meanMs = 0;
    uint64_t sent = 0, ackedSamples = 0, errors = 0;
    double windowSec = 0;
};

/// Drives `producers` at the aggregate target rate for warmup+window and
/// reports acked-sample latency percentiles plus achieved throughput
/// (acknowledged events per second of measurement window).
RunStats runOpenLoop(sim::Machine& exec, std::vector<Producer>& producers,
                     const WorkloadConfig& cfg);

}  // namespace pravega::bench
