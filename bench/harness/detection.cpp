#include "bench/harness/detection.h"

namespace pravega::bench {

PravegaOptions detectionClusterOptions(int segments) {
    PravegaOptions opt;
    opt.segments = segments;
    opt.tweak = [](cluster::ClusterConfig& cfg) {
        cfg.bookies = 5;
        cfg.store.container.log.repl.ensembleSize = 3;
        cfg.store.container.log.repl.writeTimeout = sim::msec(100);
        cfg.faultInjectLts = true;
        // Flush the tiering loop aggressively so short LTS fault windows
        // (tens of ms) see several flush attempts — with the stock 500ms
        // flush timeout an outage can open and close between flushes.
        cfg.store.container.storage.flushTimeout = sim::msec(50);
        cfg.store.container.storage.scanInterval = sim::msec(10);
    };
    return opt;
}

DetectionResult runDetectionScenario(Report& report, const DetectionScenario& sc) {
    auto world = makePravega(sc.options);
    sim::Machine& exec = world->exec();

    detect::Monitor monitor(exec, sc.monitor);
    monitor.addDefaultWritePathProbes();
    for (const std::string& rule : sc.guardrails) monitor.addGuardrail(rule);

    std::optional<cluster::ChaosSchedule> schedule;
    if (sc.chaos) {
        schedule.emplace(*world->cluster, *sc.chaos);
        schedule->arm();
    }

    // Stop sampling when generation ends, BEFORE the drain: the traffic
    // ramp-down after windowEnd would otherwise read as a rate collapse.
    const sim::TimePoint windowEnd = exec.now() + sc.workload.warmup + sc.workload.window;
    monitor.start();
    exec.schedule(windowEnd - exec.now(), [&monitor]() { monitor.stop(); });

    std::vector<Producer>& producers = world->producers;
    DetectionResult out;
    out.stats = runOpenLoop(exec, producers, sc.workload);

    std::vector<detect::FaultWindow> truth;
    std::string truthJson = "null";
    if (schedule) {
        truth = schedule->faultWindows();
        truthJson = schedule->groundTruthJson();
    }
    out.scores = detect::score(truth, monitor.alarms(), sc.scoring);
    out.ticks = monitor.ticks();
    out.guardrailsPassed = monitor.guardrailsPassed();

    report.addCustom(sc.series,
                     {{"faults", static_cast<double>(out.scores.faults)},
                      {"detected", static_cast<double>(out.scores.detected)},
                      {"recall", out.scores.recall},
                      {"precision", out.scores.precision},
                      {"alarms", static_cast<double>(out.scores.totalAlarms)},
                      {"false_positives", static_cast<double>(out.scores.falsePositives)},
                      {"mean_detect_ms", out.scores.meanDetectMs},
                      {"max_detect_ms", out.scores.maxDetectMs},
                      {"achieved_events_per_sec", out.stats.achievedEventsPerSec},
                      {"p99_ms", out.stats.p99Ms}},
                     &exec.metrics());
    report.addDetectionRun(
        detect::detectionRunJson(sc.series, monitor, truthJson, out.scores));
    return out;
}

}  // namespace pravega::bench
