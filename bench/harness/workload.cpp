#include "bench/harness/workload.h"

#include <cstdio>
#include <memory>

namespace pravega::bench {

namespace {
struct RunCtx {
    LatencyHistogram hist;
    uint64_t ackedInWindow = 0;
    uint64_t errors = 0;
    sim::TimePoint windowStart = 0;
    sim::TimePoint windowEnd = 0;
};
}  // namespace

RunStats runOpenLoop(sim::Machine& exec, std::vector<Producer>& producers,
                     const WorkloadConfig& cfg) {
    auto ctx = std::make_shared<RunCtx>();
    sim::Rng rng(cfg.seed);

    const sim::TimePoint genStart = exec.now();
    ctx->windowStart = genStart + cfg.warmup;
    ctx->windowEnd = ctx->windowStart + cfg.window;

    uint32_t sampleEvery = cfg.sampleEvery;
    if (sampleEvery == 0) {
        double expected = cfg.eventsPerSec * sim::toSeconds(cfg.window);
        sampleEvery = static_cast<uint32_t>(std::max(1.0, expected / 4000.0));
    }

    uint64_t sent = 0;
    double carry = 0;
    size_t rr = 0;
    const sim::Duration tick = sim::msec(1);

    // Self-rescheduling generator: emits the per-tick share of the target
    // rate, rotating producers round-robin.
    auto gen = std::make_shared<std::function<void()>>();
    *gen = [&, ctx, gen]() {
        if (exec.now() >= ctx->windowEnd || sent >= cfg.maxEvents) {
            // Break the self-reference once the current invocation unwinds.
            exec.post([gen]() { *gen = nullptr; });
            return;
        }
        carry += cfg.eventsPerSec * sim::toSeconds(tick);
        uint64_t emit = static_cast<uint64_t>(carry);
        carry -= static_cast<double>(emit);
        for (uint64_t i = 0; i < emit && sent < cfg.maxEvents; ++i) {
            Producer& producer = producers[rr];
            rr = (rr + 1) % producers.size();
            std::string key = cfg.useKeys ? rng.nextKey(cfg.keySpace) : std::string();
            ++sent;
            std::function<void(bool)> ack;
            bool sampled = (sent % sampleEvery) == 0;
            sim::TimePoint now = exec.now();
            if (now >= ctx->windowStart) {
                // Window accounting (and latency when sampled).
                ack = [ctx, sampled, now, &exec](bool ok) {
                    if (!ok) {
                        ++ctx->errors;
                        return;
                    }
                    if (exec.now() <= ctx->windowEnd + sim::msec(50)) ++ctx->ackedInWindow;
                    if (sampled) ctx->hist.record(exec.now() - now);
                };
            }
            producer.send(key, cfg.eventBytes, std::move(ack));
        }
        exec.schedule(tick, *gen);
    };
    exec.schedule(0, *gen);

    // Run generation + a grace period for trailing acks.
    exec.runUntil(ctx->windowEnd);
    for (auto& p : producers) {
        if (p.flush) p.flush();
    }
    exec.runFor(sim::msec(60));

    RunStats out;
    out.offeredEventsPerSec = cfg.eventsPerSec;
    out.windowSec = sim::toSeconds(cfg.window);
    // If the event cap ended generation early, scale the window down.
    double genSec =
        std::min(out.windowSec, static_cast<double>(sent) / std::max(cfg.eventsPerSec, 1.0) -
                                    sim::toSeconds(cfg.warmup));
    if (genSec > 0.05) out.windowSec = genSec;
    out.sent = sent;
    out.ackedSamples = ctx->hist.count();
    out.errors = ctx->errors;
    out.achievedEventsPerSec = static_cast<double>(ctx->ackedInWindow) / out.windowSec;
    out.achievedMBps =
        out.achievedEventsPerSec * static_cast<double>(cfg.eventBytes) / (1024.0 * 1024.0);
    out.p50Ms = ctx->hist.percentileMs(50);
    out.p95Ms = ctx->hist.percentileMs(95);
    out.p99Ms = ctx->hist.percentileMs(99);
    out.meanMs = ctx->hist.meanMs();
    return out;
}

}  // namespace pravega::bench
