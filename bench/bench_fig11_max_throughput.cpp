// Figure 11: maximum throughput achieved by the systems under test (§5.6).
// 10 producers, 1KB events, 10 and 500 segments/partitions. Following the
// OpenMessaging methodology, each system is probed with increasing target
// rates; the maximum SUSTAINED rate (achieved >= 90% of offered) is its max
// throughput. Paper shapes: Pravega ~720 MB/s at BOTH partition counts
// (multiplexing uses the drive efficiently regardless of parallelism);
// Kafka is high at 10 partitions but collapses at 500 (far worse with
// flush); Pulsar sits below the drive limit and degrades with partitions.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kProbesMBps[] = {10, 25, 50, 100, 200, 300, 450, 650, 800, 1000};

size_t probeCount() { return smoke() ? 1 : std::size(kProbesMBps); }

WorkloadConfig workload(double mbps) {
    WorkloadConfig cfg;
    cfg.eventBytes = 1024;
    cfg.eventsPerSec = mbps * 1024;
    cfg.useKeys = true;
    cfg.window = sim::sec(2);
    cfg.warmup = sim::msec(500);
    cfg.maxEvents = 2'500'000;
    return shrinkForSmoke(cfg);
}

template <typename MakeWorld>
void probeMax(Report& report, const char* system, int segments, MakeWorld make) {
    double best = 0;
    for (size_t i = 0; i < probeCount(); ++i) {
        double mbps = kProbesMBps[i];
        auto world = make();
        auto stats = runOpenLoop(world->exec(), world->producers, workload(mbps));
        best = std::max(best, stats.achievedMBps);
        if (stats.achievedMBps < 0.90 * mbps) break;  // saturated
    }
    report.addCustom(system, {{"segments", static_cast<double>(segments)},
                              {"max_throughput_mbps", best}});
}

}  // namespace

int main() {
    Report report("fig11_max_throughput",
                  "Figure 11: max sustained throughput, 10 producers, 1KB events");
    const std::vector<int> segmentCounts = smoke() ? std::vector<int>{10}
                                                   : std::vector<int>{10, 500};
    for (int segments : segmentCounts) {
        probeMax(report, "pravega", segments, [segments]() {
            PravegaOptions opt;
            opt.segments = segments;
            opt.numWriters = 10;
            opt.tweak = [](cluster::ClusterConfig& cfg) {
                cfg.store.container.storage.flushTimeout = sim::sec(5);
                // The paper's EFS was provisioned well above the journal
                // drives; the drive (3 replicas over 3 journals) is the
                // intended bottleneck here.
                cfg.lts.aggregateBytesPerSec = 1.6e9;
                cfg.lts.maxConcurrent = 128;
            };
            return makePravega(opt);
        });
        probeMax(report, "kafka-noflush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makeKafka(opt);
        });
        probeMax(report, "kafka-flush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            opt.flushEveryMessage = true;
            return makeKafka(opt);
        });
        probeMax(report, "pulsar", segments, [segments]() {
            PulsarOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makePulsar(opt);
        });
    }
    return 0;
}
