// Figure 11: maximum throughput achieved by the systems under test (§5.6).
// 10 producers, 1KB events, 10 and 500 segments/partitions. Following the
// OpenMessaging methodology, each system is probed with increasing target
// rates; the maximum SUSTAINED rate (achieved >= 90% of offered) is its max
// throughput. Paper shapes: Pravega ~720 MB/s at BOTH partition counts
// (multiplexing uses the drive efficiently regardless of parallelism);
// Kafka is high at 10 partitions but collapses at 500 (far worse with
// flush); Pulsar sits below the drive limit and degrades with partitions.
#include <cstdlib>
#include <string>

#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kProbesMBps[] = {10, 25, 50, 100, 200, 300, 450, 650, 800, 1000};

size_t probeCount() { return smoke() ? 1 : std::size(kProbesMBps); }

WorkloadConfig workload(double mbps) {
    WorkloadConfig cfg;
    cfg.eventBytes = 1024;
    cfg.eventsPerSec = mbps * 1024;
    cfg.useKeys = true;
    cfg.window = sim::sec(2);
    cfg.warmup = sim::msec(500);
    cfg.maxEvents = 2'500'000;
    return shrinkForSmoke(cfg);
}

template <typename MakeWorld>
void probeMax(Report& report, const char* system, int segments, MakeWorld make) {
    double best = 0;
    for (size_t i = 0; i < probeCount(); ++i) {
        double mbps = kProbesMBps[i];
        auto world = make();
        auto stats = runOpenLoop(world->exec(), world->producers, workload(mbps));
        best = std::max(best, stats.achievedMBps);
        if (stats.achievedMBps < 0.90 * mbps) break;  // saturated
    }
    report.addCustom(system, {{"segments", static_cast<double>(segments)},
                              {"max_throughput_mbps", best}});
}

// ----------------------------------------------------- cores sweep (shard)

/// World for the throughput-vs-cores axis: the sharded substrate runs the
/// segment stores on `cores` cores (containers placed containerId % cores)
/// and the store CPU is reconfigured to ONE request-handling lane per core
/// at a deliberately low per-lane byte rate, so request CPU — not the
/// journal drives — is the binding resource. Capacity then grows with the
/// number of lanes actually occupied by containers, i.e. with core count.
std::unique_ptr<PravegaWorld> makeCoresWorld(int cores) {
    PravegaOptions opt;
    opt.segments = 32;
    opt.numWriters = 8;
    opt.tweak = [cores](cluster::ClusterConfig& cfg) {
        cfg.machine.cores = cores;
        cfg.containerCount = 16;
        cfg.store.cpu.cores = cores;               // 1 lane per core after the
                                                   // per-core split
        cfg.store.cpu.bytesPerSec = 40.0 * 1024 * 1024;  // CPU-bound regime
        cfg.store.container.storage.flushTimeout = sim::sec(5);
        cfg.lts.aggregateBytesPerSec = 1.6e9;
        cfg.lts.maxConcurrent = 128;
    };
    return makePravega(opt);
}

void sweepCores(Report& report, const std::vector<int>& coreCounts) {
    report.section("cores",
                   "max sustained throughput vs segment-store core count "
                   "(shard-per-core substrate, CPU-bound: 1 lane/core @ 40 MB/s)");
    for (int cores : coreCounts) {
        double best = 0;
        uint64_t xcore = 0;
        if (smoke()) {
            // One fixed probe far above any core count's capacity: achieved
            // throughput IS the capacity, so the 4-core >= 2x 1-core smoke
            // gate measures real scaling (the standard smoke rate cap of
            // 25k e/s would flatten every core count to the same number).
            WorkloadConfig cfg;
            cfg.eventBytes = 1024;
            cfg.eventsPerSec = 600.0 * 1024;
            cfg.useKeys = true;
            cfg.warmup = sim::msec(100);
            cfg.window = sim::msec(400);
            cfg.maxEvents = 400'000;
            auto world = makeCoresWorld(cores);
            auto stats = runOpenLoop(world->exec(), world->producers, cfg);
            best = stats.achievedMBps;
            xcore = world->exec().crossCoreMessages();
            report.addCustom("pravega-cores",
                             {{"cores", static_cast<double>(cores)},
                              {"max_throughput_mbps", best},
                              {"xcore_messages", static_cast<double>(xcore)}},
                             &world->exec().mergedMetrics());
            continue;
        }
        for (size_t i = 0; i < std::size(kProbesMBps); ++i) {
            double mbps = kProbesMBps[i];
            WorkloadConfig cfg = workload(mbps);
            cfg.maxEvents = 1'500'000;
            auto world = makeCoresWorld(cores);
            auto stats = runOpenLoop(world->exec(), world->producers, cfg);
            best = std::max(best, stats.achievedMBps);
            xcore = world->exec().crossCoreMessages();
            if (stats.achievedMBps < 0.90 * mbps) break;  // saturated
        }
        report.addCustom("pravega-cores",
                         {{"cores", static_cast<double>(cores)},
                          {"max_throughput_mbps", best},
                          {"xcore_messages", static_cast<double>(xcore)}});
    }
}

/// Parses "--cores=1,2,4,8"; empty when the flag is absent.
std::vector<int> parseCoresFlag(int argc, char** argv) {
    std::vector<int> out;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--cores=", 0) != 0) continue;
        std::string list = a.substr(8);
        size_t pos = 0;
        while (pos < list.size()) {
            size_t comma = list.find(',', pos);
            if (comma == std::string::npos) comma = list.size();
            out.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
            pos = comma + 1;
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    Report report("fig11_max_throughput",
                  "Figure 11: max sustained throughput, 10 producers, 1KB events");
    const std::vector<int> segmentCounts = smoke() ? std::vector<int>{10}
                                                   : std::vector<int>{10, 500};
    for (int segments : segmentCounts) {
        probeMax(report, "pravega", segments, [segments]() {
            PravegaOptions opt;
            opt.segments = segments;
            opt.numWriters = 10;
            opt.tweak = [](cluster::ClusterConfig& cfg) {
                cfg.store.container.storage.flushTimeout = sim::sec(5);
                // The paper's EFS was provisioned well above the journal
                // drives; the drive (3 replicas over 3 journals) is the
                // intended bottleneck here.
                cfg.lts.aggregateBytesPerSec = 1.6e9;
                cfg.lts.maxConcurrent = 128;
            };
            return makePravega(opt);
        });
        probeMax(report, "kafka-noflush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makeKafka(opt);
        });
        probeMax(report, "kafka-flush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            opt.flushEveryMessage = true;
            return makeKafka(opt);
        });
        probeMax(report, "pulsar", segments, [segments]() {
            PulsarOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makePulsar(opt);
        });
    }

    std::vector<int> coreCounts = parseCoresFlag(argc, argv);
    if (coreCounts.empty()) coreCounts = smoke() ? std::vector<int>{1, 4}
                                                 : std::vector<int>{1, 2, 4, 8};
    sweepCores(report, coreCounts);
    return 0;
}
