// Figure 11: maximum throughput achieved by the systems under test (§5.6).
// 10 producers, 1KB events, 10 and 500 segments/partitions. Following the
// OpenMessaging methodology, each system is probed with increasing target
// rates; the maximum SUSTAINED rate (achieved >= 90% of offered) is its max
// throughput. Paper shapes: Pravega ~720 MB/s at BOTH partition counts
// (multiplexing uses the drive efficiently regardless of parallelism);
// Kafka is high at 10 partitions but collapses at 500 (far worse with
// flush); Pulsar sits below the drive limit and degrades with partitions.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kProbesMBps[] = {10, 25, 50, 100, 200, 300, 450, 650, 800, 1000};

WorkloadConfig workload(double mbps) {
    WorkloadConfig cfg;
    cfg.eventBytes = 1024;
    cfg.eventsPerSec = mbps * 1024;
    cfg.useKeys = true;
    cfg.window = sim::sec(2);
    cfg.warmup = sim::msec(500);
    cfg.maxEvents = 2'500'000;
    return cfg;
}

template <typename MakeWorld>
void probeMax(const char* system, int segments, MakeWorld make) {
    double best = 0;
    for (double mbps : kProbesMBps) {
        auto world = make();
        auto stats = runOpenLoop(world->exec(), world->producers, workload(mbps));
        best = std::max(best, stats.achievedMBps);
        if (stats.achievedMBps < 0.90 * mbps) break;  // saturated
    }
    std::printf("%-24s segments=%-5d max-throughput=%7.1f MB/s\n", system, segments, best);
    std::fflush(stdout);
}

}  // namespace

int main() {
    std::printf("# Figure 11: max sustained throughput, 10 producers, 1KB events\n");
    for (int segments : {10, 500}) {
        probeMax("pravega", segments, [segments]() {
            PravegaOptions opt;
            opt.segments = segments;
            opt.numWriters = 10;
            opt.tweak = [](cluster::ClusterConfig& cfg) {
                cfg.store.container.storage.flushTimeout = sim::sec(5);
                // The paper's EFS was provisioned well above the journal
                // drives; the drive (3 replicas over 3 journals) is the
                // intended bottleneck here.
                cfg.lts.aggregateBytesPerSec = 1.6e9;
                cfg.lts.maxConcurrent = 128;
            };
            return makePravega(opt);
        });
        probeMax("kafka-noflush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makeKafka(opt);
        });
        probeMax("kafka-flush", segments, [segments]() {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            opt.flushEveryMessage = true;
            return makeKafka(opt);
        });
        probeMax("pulsar", segments, [segments]() {
            PulsarOptions opt;
            opt.partitions = segments;
            opt.numProducers = 10;
            return makePulsar(opt);
        });
    }
    return 0;
}
