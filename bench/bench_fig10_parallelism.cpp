// Figure 10: impact of segment/partition and writer parallelism on write
// throughput (§5.6). Target rate 250 MB/s of 1KB events; vary segments and
// producers. Paper shapes: Pravega sustains the target up to 5000 segments
// and 100 writers; Kafka degrades with partition count (dramatically with
// flush); Pulsar degrades and eventually crashes (OOM) unless run in the
// favorable configuration (ackQ=3, no routing keys).
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

constexpr double kTargetMBps = 250.0;

WorkloadConfig workload(bool keys) {
    WorkloadConfig cfg;
    cfg.eventBytes = 1024;
    cfg.eventsPerSec = kTargetMBps * 1024;  // 1KB events
    cfg.useKeys = keys;
    cfg.window = sim::sec(2);
    cfg.warmup = sim::msec(500);
    cfg.maxEvents = 900'000;
    return shrinkForSmoke(cfg);
}

void addTputRow(Report& report, const char* system, int segments, int producers,
                const RunStats& stats, const obs::MetricsRegistry* metrics,
                const char* note = "") {
    report.addCustom(system,
                     {{"segments", static_cast<double>(segments)},
                      {"producers", static_cast<double>(producers)},
                      {"achieved_mbps", stats.achievedMBps},
                      {"p95_ms", stats.p95Ms}},
                     metrics, note);
}

}  // namespace

int main() {
    Report report("fig10_parallelism", "Figure 10: segment/writer parallelism at 250 MB/s");

    const std::vector<int> segmentCounts =
        smoke() ? std::vector<int>{10} : std::vector<int>{10, 100, 500, 2000, 5000};
    const std::vector<int> producerCounts =
        smoke() ? std::vector<int>{10} : std::vector<int>{10, 50, 100};

    report.section("Figure 10a: Pravega & Kafka at 250 MB/s target, 1KB events");
    for (int producers : producerCounts) {
        for (int segments : segmentCounts) {
            PravegaOptions opt;
            opt.segments = segments;
            opt.numWriters = producers;
            opt.tweak = [](cluster::ClusterConfig& cfg) {
                // Production-style flush cadence: large segment counts must
                // aggregate into fewer, larger LTS writes (real default 30s).
                cfg.store.container.storage.flushTimeout = sim::sec(10);
                cfg.store.container.storage.flushSizeBytes = 4 * 1024 * 1024;
            };
            auto world = makePravega(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(true));
            addTputRow(report, "pravega", segments, producers, stats,
                       &world->exec().mergedMetrics());
        }
    }
    for (int producers : producerCounts) {
        for (int segments : segmentCounts) {
            KafkaOptions opt;
            opt.partitions = segments;
            opt.numProducers = producers;
            auto world = makeKafka(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(true));
            addTputRow(report, "kafka-noflush", segments, producers, stats,
                       &world->exec().mergedMetrics());
        }
    }
    for (int segments : segmentCounts) {
        KafkaOptions opt;
        opt.partitions = segments;
        opt.numProducers = 100;
        opt.flushEveryMessage = true;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(true));
        addTputRow(report, "kafka-flush", segments, 100, stats, &world->exec().mergedMetrics());
    }

    report.section("Figure 10b: Pulsar at 250 MB/s target, 1KB events",
                   "base config uses keys + ackQ=2; favorable uses no keys + ackQ=3");
    const std::vector<int> pulsarProducers = smoke() ? std::vector<int>{10}
                                                     : std::vector<int>{10, 100};
    for (int producers : pulsarProducers) {
        for (int segments : segmentCounts) {
            {
                PulsarOptions opt;
                opt.partitions = segments;
                opt.numProducers = producers;
                // One persistently slow bookie (GC pauses, a failing drive):
                // with ackQ=2 < writeQ=3 the broker's re-replication buffer
                // grows without bound (§5.6). The memory limit is scaled to
                // the 2.5s measurement window.
                opt.bookieSkew = 0.25;
                opt.brokerMemoryLimitBytes = 64ULL * 1024 * 1024;
                auto world = makePulsar(opt);
                auto stats = runOpenLoop(world->exec(), world->producers, workload(true));
                addTputRow(report, "pulsar-base", segments, producers, stats,
                           &world->exec().mergedMetrics(),
                           world->cluster->crashed() ? "CRASHED (OOM)" : "");
            }
            {
                PulsarOptions opt;
                opt.partitions = segments;
                opt.numProducers = producers;
                opt.ackQuorum = 3;  // flow-controls producers at the slow bookie
                opt.bookieSkew = 0.25;
                // No scaled-down limit here: with ackQ == writeQ the broker
                // buffer is BOUNDED by producer flow-control windows rather
                // than growing with time, so the default limit applies.
                auto world = makePulsar(opt);
                auto stats = runOpenLoop(world->exec(), world->producers, workload(false));
                addTputRow(report, "pulsar-favorable", segments, producers, stats,
                           &world->exec().mergedMetrics(),
                           world->cluster->crashed() ? "CRASHED (OOM)" : "");
            }
        }
    }

    // Cores axis (shard-per-core substrate): fixed segment count, fixed
    // offered rate chosen above the 1-core capacity of the CPU-bound
    // configuration (1 request lane per core at 40 MB/s per-byte rate), so
    // achieved throughput and p95 recover as cores are added.
    report.section("cores",
                   "250 MB/s offered at 32 segments vs segment-store core count");
    const std::vector<int> coreCounts = smoke() ? std::vector<int>{1, 4}
                                                : std::vector<int>{1, 2, 4, 8};
    for (int cores : coreCounts) {
        PravegaOptions opt;
        opt.segments = 32;
        opt.numWriters = 8;
        opt.tweak = [cores](cluster::ClusterConfig& cfg) {
            cfg.machine.cores = cores;
            cfg.containerCount = 16;
            cfg.store.cpu.cores = cores;
            cfg.store.cpu.bytesPerSec = 40.0 * 1024 * 1024;
            cfg.store.container.storage.flushTimeout = sim::sec(10);
            cfg.store.container.storage.flushSizeBytes = 4 * 1024 * 1024;
        };
        auto world = makePravega(opt);
        WorkloadConfig cfg;
        cfg.eventBytes = 1024;
        cfg.eventsPerSec = kTargetMBps * 1024;
        cfg.useKeys = true;
        if (smoke()) {
            // Keep the offered rate (the whole point of the axis is a fixed
            // target the low core counts cannot sustain) but shorten the
            // windows; shrinkForSmoke would clamp the rate itself.
            cfg.warmup = sim::msec(100);
            cfg.window = sim::msec(400);
            cfg.maxEvents = 200'000;
        } else {
            cfg.window = sim::sec(2);
            cfg.warmup = sim::msec(500);
            cfg.maxEvents = 900'000;
        }
        auto stats = runOpenLoop(world->exec(), world->producers, cfg);
        report.addCustom("pravega-cores",
                         {{"cores", static_cast<double>(cores)},
                          {"achieved_mbps", stats.achievedMBps},
                          {"p95_ms", stats.p95Ms},
                          {"xcore_messages",
                           static_cast<double>(world->exec().crossCoreMessages())}},
                         &world->exec().mergedMetrics());
    }
    return 0;
}
