// Figure 6: evaluation of client batching strategies (§5.3).
//
// (a) 1 segment/partition: Pravega's dynamic batching vs the Pulsar-like
//     baseline with batching enabled (128KB/1ms) and disabled. Paper shape:
//     Pulsar(no batch) has low latency but a low maximum throughput;
//     Pulsar(batch) reaches high throughput at higher latency; Pravega gets
//     both ends without configuration.
// (b) 16 segments/partitions: Pravega vs Kafka with the default client
//     batching (1ms/128KB) and with a throughput-oriented configuration
//     (10ms linger, 1MB batches). The paper finds the bigger batches do NOT
//     help under random routing keys.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {5e3, 10e3, 50e3, 100e3, 250e3, 500e3, 800e3, 1.2e6};

size_t rateCount() { return smoke() ? 1 : std::size(kRates); }

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'500'000;
    return shrinkForSmoke(cfg);
}

void sweepPravega(Report& report, const char* name, int segments) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        PravegaOptions opt;
        opt.segments = segments;
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

void sweepPulsar(Report& report, const char* name, int partitions, bool batching) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        PulsarOptions opt;
        opt.partitions = partitions;
        opt.batchingEnabled = batching;
        auto world = makePulsar(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

void sweepKafka(Report& report, const char* name, int partitions, uint64_t batchBytes,
                sim::Duration linger) {
    for (size_t i = 0; i < rateCount(); ++i) {
        double rate = kRates[i];
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.batchBytes = batchBytes;
        opt.lingerTime = linger;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        report.add(name, stats, &world->exec().mergedMetrics());
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

}  // namespace

int main() {
    Report report("fig06_batching", "Figure 6: client batching strategies");

    report.section("Figure 6a: batching strategies, 1 segment/partition, 100B events");
    sweepPravega(report, "pravega-dynamic/1seg", 1);
    sweepPulsar(report, "pulsar-batch/1part", 1, true);
    sweepPulsar(report, "pulsar-nobatch/1part", 1, false);

    report.section("Figure 6b: batching strategies, 16 segments/partitions, 100B events");
    sweepPravega(report, "pravega-dynamic/16seg", 16);
    sweepKafka(report, "kafka-1ms-128KB/16part", 16, 128 * 1024, sim::msec(1));
    sweepKafka(report, "kafka-10ms-1MB/16part", 16, 1024 * 1024, sim::msec(10));
    return 0;
}
