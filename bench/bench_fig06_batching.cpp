// Figure 6: evaluation of client batching strategies (§5.3).
//
// (a) 1 segment/partition: Pravega's dynamic batching vs the Pulsar-like
//     baseline with batching enabled (128KB/1ms) and disabled. Paper shape:
//     Pulsar(no batch) has low latency but a low maximum throughput;
//     Pulsar(batch) reaches high throughput at higher latency; Pravega gets
//     both ends without configuration.
// (b) 16 segments/partitions: Pravega vs Kafka with the default client
//     batching (1ms/128KB) and with a throughput-oriented configuration
//     (10ms linger, 1MB batches). The paper finds the bigger batches do NOT
//     help under random routing keys.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {5e3, 10e3, 50e3, 100e3, 250e3, 500e3, 800e3, 1.2e6};

WorkloadConfig workload(double rate) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = true;
    cfg.window = sim::sec(3);
    cfg.maxEvents = 1'500'000;
    return cfg;
}

void sweepPravega(const char* name, int segments) {
    for (double rate : kRates) {
        PravegaOptions opt;
        opt.segments = segments;
        auto world = makePravega(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        printRow(name, stats);
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

void sweepPulsar(const char* name, int partitions, bool batching) {
    for (double rate : kRates) {
        PulsarOptions opt;
        opt.partitions = partitions;
        opt.batchingEnabled = batching;
        auto world = makePulsar(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        printRow(name, stats);
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

void sweepKafka(const char* name, int partitions, uint64_t batchBytes, sim::Duration linger) {
    for (double rate : kRates) {
        KafkaOptions opt;
        opt.partitions = partitions;
        opt.batchBytes = batchBytes;
        opt.lingerTime = linger;
        auto world = makeKafka(opt);
        auto stats = runOpenLoop(world->exec(), world->producers, workload(rate));
        printRow(name, stats);
        if (stats.achievedEventsPerSec < 0.85 * rate) break;
    }
}

}  // namespace

int main() {
    printHeader("Figure 6a: batching strategies, 1 segment/partition, 100B events", "");
    sweepPravega("pravega-dynamic/1seg", 1);
    sweepPulsar("pulsar-batch/1part", 1, true);
    sweepPulsar("pulsar-nobatch/1part", 1, false);

    std::printf("\n");
    printHeader("Figure 6b: batching strategies, 16 segments/partitions, 100B events", "");
    sweepPravega("pravega-dynamic/16seg", 16);
    sweepKafka("kafka-1ms-128KB/16part", 16, 128 * 1024, sim::msec(1));
    sweepKafka("kafka-10ms-1MB/16part", 16, 1024 * 1024, sim::msec(10));
    return 0;
}
