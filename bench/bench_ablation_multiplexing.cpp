// Ablation: segment-container multiplexing (DESIGN.md decision #6 / §4.1).
//
// Pravega maps many segments to few containers, each with ONE WAL log, so
// small appends from many segments coalesce into large frames. This
// ablation runs 500 segments at 100 MB/s with 8 containers (multiplexed),
// 64, and 512 (approaching one log per segment) and reports throughput,
// latency, and WAL write amplification.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

int main() {
    std::printf("# Ablation: container multiplexing, 500 segments, 100 MB/s of 1KB events\n");
    std::printf("%12s %12s %9s %9s %14s %12s\n", "containers", "achieved", "p50(ms)",
                "p95(ms)", "wal-entries/s", "journal MB/s");
    for (uint32_t containers : {8u, 64u, 512u}) {
        PravegaOptions opt;
        opt.segments = 500;
        opt.numWriters = 10;
        opt.tweak = [containers](cluster::ClusterConfig& cfg) {
            cfg.containerCount = containers;
            cfg.store.container.storage.flushTimeout = sim::sec(10);
        };
        auto world = makePravega(opt);
        WorkloadConfig w;
        w.eventBytes = 1024;
        w.eventsPerSec = 100.0 * 1024;
        w.window = sim::sec(2);
        auto stats = runOpenLoop(world->exec(), world->producers, w);

        // WAL entry rate and journal bytes across all containers/bookies.
        uint64_t walEntries = 0;
        for (auto* store : world->cluster->stores()) {
            for (uint32_t c : store->containerIds()) {
                walEntries += static_cast<uint64_t>(
                    store->container(c)->walLog().nextSequence());
            }
        }
        uint64_t journalBytes = 0;
        for (auto* b : world->cluster->bookies()) journalBytes += b->storedBytes();
        std::printf("%12u %12.1f %9.2f %9.2f %14.0f %12.1f\n", containers, stats.achievedMBps,
                    stats.p50Ms, stats.p95Ms,
                    static_cast<double>(walEntries) / (stats.windowSec + 0.5),
                    static_cast<double>(journalBytes) / (stats.windowSec + 0.5) /
                        (1024 * 1024));
        std::fflush(stdout);
    }
    std::printf("# Expectation: more containers -> more, smaller WAL entries; latency and\n"
                "# efficiency degrade as multiplexing is lost (DESIGN.md, EXPERIMENTS.md).\n");
    return 0;
}
