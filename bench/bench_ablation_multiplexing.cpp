// Ablation: segment-container multiplexing (DESIGN.md decision #6 / §4.1).
//
// Pravega maps many segments to few containers, each with ONE WAL log, so
// small appends from many segments coalesce into large frames. This
// ablation runs 500 segments at 100 MB/s with 8 containers (multiplexed),
// 64, and 512 (approaching one log per segment) and reports throughput,
// latency, and WAL write amplification.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

int main() {
    Report report("ablation_multiplexing",
                  "Ablation: container multiplexing, 500 segments, 100 MB/s of 1KB events");
    const std::vector<uint32_t> containerCounts =
        smoke() ? std::vector<uint32_t>{8u} : std::vector<uint32_t>{8u, 64u, 512u};
    for (uint32_t containers : containerCounts) {
        PravegaOptions opt;
        opt.segments = smoke() ? 50 : 500;
        opt.numWriters = 10;
        opt.tweak = [containers](cluster::ClusterConfig& cfg) {
            cfg.containerCount = containers;
            cfg.store.container.storage.flushTimeout = sim::sec(10);
        };
        auto world = makePravega(opt);
        WorkloadConfig w;
        w.eventBytes = 1024;
        w.eventsPerSec = 100.0 * 1024;
        w.window = sim::sec(2);
        w = shrinkForSmoke(w);
        auto stats = runOpenLoop(world->exec(), world->producers, w);

        // WAL entry rate and journal bytes across all containers/bookies.
        uint64_t walEntries = 0;
        for (auto* store : world->cluster->stores()) {
            for (uint32_t c : store->containerIds()) {
                walEntries += static_cast<uint64_t>(
                    store->container(c)->walLog().nextSequence());
            }
        }
        uint64_t journalBytes = 0;
        for (auto* b : world->cluster->bookies()) journalBytes += b->storedBytes();
        report.addCustom(
            "containers=" + std::to_string(containers),
            {{"containers", static_cast<double>(containers)},
             {"achieved_mbps", stats.achievedMBps},
             {"p50_ms", stats.p50Ms},
             {"p95_ms", stats.p95Ms},
             {"wal_entries_per_sec", static_cast<double>(walEntries) / (stats.windowSec + 0.5)},
             {"journal_mbps", static_cast<double>(journalBytes) / (stats.windowSec + 0.5) /
                                  (1024 * 1024)}},
            &world->exec().mergedMetrics());
    }
    report.note("Expectation: more containers -> more, smaller WAL entries; latency and "
                "efficiency degrade as multiplexing is lost (DESIGN.md, EXPERIMENTS.md).");
    return 0;
}
