// Figure 12: historical (catch-up) read performance (§5.7).
//
// Writers push 100 MB/s of 10KB events into a 16-segment stream until a
// backlog accumulates; readers are then released at the stream head and
// must catch up while writers continue. Paper shapes: Pravega reads
// historical data from LTS with PARALLEL chunk reads, peaking well above
// the write rate (731 MB/s in the paper) and catches up; Pulsar's tiered
// reads never exceed the write rate, so it cannot drain the backlog.
// (Backlog scaled from the paper's 100 GB to 3 GB: in-memory substrate.)
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"
#include "common/hash.h"

using namespace pravega;
using namespace pravega::bench;

namespace {
constexpr double kWriteMBps = 100.0;
constexpr uint32_t kEventBytes = 10 * 1024;
constexpr int kSegments = 16;

uint64_t backlogBytes() {
    return smoke() ? 96ULL * 1024 * 1024 : 3ULL * 1024 * 1024 * 1024;
}
int maxSeconds() { return smoke() ? 8 : 60; }

/// Single-reader catch-up backlog (smaller: one reader drains it alone).
uint64_t singleBacklogBytes() {
    return smoke() ? 32ULL * 1024 * 1024 : 256ULL * 1024 * 1024;
}

/// Drives writers at the fixed rate until `until` (virtual time).
template <typename World>
void driveWriters(World& world, sim::Rng& rng, sim::TimePoint until) {
    double perTick = kWriteMBps * 1024 * 1024 / kEventBytes / 1000.0;  // per ms
    double carry = 0;
    size_t rr = 0;
    while (world.exec().now() < until) {
        carry += perTick;
        while (carry >= 1.0) {
            carry -= 1.0;
            world.producers[rr].send(rng.nextKey(50000), kEventBytes, {});
            rr = (rr + 1) % world.producers.size();
        }
        world.exec().runFor(sim::msec(1));
    }
}
/// Full Pravega catch-up run (16 readers against a live write load), with
/// the storage read pipeline's readahead switched on or off — the Fig 12
/// ablation: one flag, same seed, same offered load.
void runPravega(Report& report, bool readahead) {
    std::string label = std::string("pravega[readahead=") + (readahead ? "on" : "off") + "]";
    PravegaOptions opt;
    opt.segments = kSegments;
    opt.numWriters = 4;
    opt.tweak = [readahead](cluster::ClusterConfig& cfg) {
        cfg.store.container.storage.flushSizeBytes = 4 * 1024 * 1024;
        cfg.store.container.storage.flushTimeout = sim::msec(500);
        // Paper: the 100 GB backlog dwarfs the cache, so catch-up reads
        // come from LTS. Scale the cache below our 3 GB backlog too.
        cfg.store.cache.maxBuffers = 96;  // 192 MB per store
        cfg.store.container.readPipeline.readahead = readahead;
    };
    auto world = makePravega(opt);
    sim::Rng rng(7);

    // Build the backlog (no readers yet).
    sim::Duration buildTime =
        sim::sec(static_cast<double>(backlogBytes()) / (kWriteMBps * 1024 * 1024));
    driveWriters(*world, rng, world->exec().now() + buildTime);
    world->exec().runFor(sim::sec(2));  // let tiering drain

    // Release readers at the head; writers continue.
    client::ReaderConfig rcfg;
    rcfg.fetchBytes = 4 * 1024 * 1024;  // catch-up readers fetch big
    auto group = world->cluster->makeReaderGroup("catchup", {"bench/stream"}, rcfg);
    std::vector<std::unique_ptr<client::EventReader>> readers;
    for (int i = 0; i < kSegments; ++i) {
        readers.push_back(group.value()->createReader("r" + std::to_string(i),
                                                      world->cluster->newClientHost()));
    }
    struct Drain {
        uint64_t bytes = 0;
    };
    auto drain = std::make_shared<Drain>();
    auto alive = world->alive;
    std::function<void(client::EventReader*)> pump = [&, drain, alive](client::EventReader* r) {
        r->readNextEvent().onComplete([&, drain, alive, r](const Result<client::EventRead>& res) {
            if (!*alive || !res.isOk()) return;
            drain->bytes += res.value().payload.size();
            pump(r);
        });
    };
    world->exec().runFor(sim::sec(1));
    for (auto& r : readers) pump(r.get());

    report.section(label + ": time series (1s buckets)");
    uint64_t lastDrain = 0;
    uint64_t written = backlogBytes();
    double peakRead = 0;
    for (int t = 0; t < maxSeconds(); ++t) {
        driveWriters(*world, rng, world->exec().now() + sim::sec(1));
        written += static_cast<uint64_t>(kWriteMBps * 1024 * 1024);
        double readMBps = static_cast<double>(drain->bytes - lastDrain) / (1024 * 1024);
        peakRead = std::max(peakRead, readMBps);
        lastDrain = drain->bytes;
        double backlogMB = (static_cast<double>(written) - static_cast<double>(drain->bytes)) /
                           (1024 * 1024);
        report.addCustom(label, {{"t_sec", static_cast<double>(t)},
                                 {"readahead", readahead ? 1.0 : 0.0},
                                 {"write_mbps", kWriteMBps},
                                 {"read_mbps", readMBps},
                                 {"backlog_mb", backlogMB}});
        if (backlogMB < 50) {
            report.note(label + ": CAUGHT UP at t=" + std::to_string(t) + " s");
            break;
        }
    }
    // The summary row captures the whole metrics registry, including
    // store.read.coalesced and store.prefetch.* from the read pipeline.
    report.addCustom(label + "-summary",
                     {{"peak_read_mbps", peakRead}, {"readahead", readahead ? 1.0 : 0.0}},
                     &world->exec().mergedMetrics());
}

/// A single reader draining a cold backlog with no concurrent writers: the
/// cleanest view of what readahead buys one catch-up reader (the §5.7
/// pipelining claim, isolated from reader-group parallelism).
void runSingleReaderCatchup(Report& report, bool readahead) {
    std::string label =
        std::string("pravega-single[readahead=") + (readahead ? "on" : "off") + "]";
    PravegaOptions opt;
    opt.segments = 1;
    opt.numWriters = 1;
    opt.tweak = [readahead](cluster::ClusterConfig& cfg) {
        cfg.store.container.storage.flushSizeBytes = 4 * 1024 * 1024;
        cfg.store.container.storage.flushTimeout = sim::msec(500);
        cfg.store.cache.maxBuffers = 8;  // 16 MB: backlog reads must hit LTS
        cfg.store.container.readPipeline.readahead = readahead;
    };
    auto world = makePravega(opt);
    sim::Rng rng(11);

    sim::Duration buildTime =
        sim::sec(static_cast<double>(singleBacklogBytes()) / (kWriteMBps * 1024 * 1024));
    driveWriters(*world, rng, world->exec().now() + buildTime);
    world->exec().runFor(sim::sec(5));  // tiering fully drains, cache cools

    client::ReaderConfig rcfg;
    rcfg.fetchBytes = 4 * 1024 * 1024;
    auto group = world->cluster->makeReaderGroup("single", {"bench/stream"}, rcfg);
    auto reader = group.value()->createReader("r0", world->cluster->newClientHost());

    auto drained = std::make_shared<uint64_t>(0);
    auto alive = world->alive;
    std::function<void()> pump = [&, drained, alive]() {
        reader->readNextEvent().onComplete([&, drained,
                                            alive](const Result<client::EventRead>& res) {
            if (!*alive || !res.isOk()) return;
            *drained += res.value().payload.size();
            pump();
        });
    };
    sim::TimePoint start = world->exec().now();
    pump();
    // Fine-grained ticks so elapsed time resolves the ablation difference.
    uint64_t target = singleBacklogBytes() * 95 / 100;
    int guard = maxSeconds() * 4 * 100;
    while (*drained < target && guard-- > 0) world->exec().runFor(sim::msec(10));
    double elapsed = static_cast<double>(world->exec().now() - start) / 1e9;
    double mbps = elapsed > 0 ? static_cast<double>(*drained) / (1024 * 1024) / elapsed : 0;
    report.addCustom(label,
                     {{"readahead", readahead ? 1.0 : 0.0},
                      {"drained_mb", static_cast<double>(*drained) / (1024 * 1024)},
                      {"elapsed_sec", elapsed},
                      {"catchup_mbps", mbps}},
                     &world->exec().mergedMetrics());
}
/// Archive-tier ablation: the same single-reader catch-up, with the LTS
/// codec on in both rows and the cold archive tier toggled. Same seed, same
/// write schedule — payloads must be byte-identical either way (checked via
/// a CRC over a fixed event prefix); only the latency profile may differ
/// (tape mount + seek deep-read first byte vs object-store op latency).
/// This is the hot-cache → S3 → archive read sweep: the cache holds the
/// tail, the object store the recent chunks, and (in the "on" row) the
/// archive everything that went idle.
void runArchiveSweep(Report& report, bool archive) {
    std::string label =
        std::string("pravega-archive[archive=") + (archive ? "on" : "off") + "]";
    PravegaOptions opt;
    opt.segments = 1;
    opt.numWriters = 1;
    opt.tweak = [archive](cluster::ClusterConfig& cfg) {
        cfg.store.container.storage.flushSizeBytes = 4 * 1024 * 1024;
        cfg.store.container.storage.flushTimeout = sim::msec(500);
        cfg.store.cache.maxBuffers = 8;  // 16 MB: backlog reads must hit LTS
        cfg.compressLts = true;          // both rows: ratio must not change data
        if (archive) {
            cfg.archiveLts = true;
            // Short idle threshold so the whole backlog migrates during the
            // cool-down below; the catch-up then reads from tape.
            cfg.ltsArchive.minIdle = sim::sec(2);
        }
    };
    auto world = makePravega(opt);
    sim::Rng rng(11);

    sim::Duration buildTime =
        sim::sec(static_cast<double>(singleBacklogBytes()) / (kWriteMBps * 1024 * 1024));
    driveWriters(*world, rng, world->exec().now() + buildTime);
    world->exec().runFor(sim::sec(8));  // tiering drains; idle chunks migrate

    client::ReaderConfig rcfg;
    rcfg.fetchBytes = 4 * 1024 * 1024;
    auto group = world->cluster->makeReaderGroup("archive", {"bench/stream"}, rcfg);
    auto reader = group.value()->createReader("r0", world->cluster->newClientHost());

    // CRC the first `crcEvents` events only: both rows certainly drain that
    // prefix, so the checksum compares identical event sets even if the two
    // runs overshoot the drain target by different amounts.
    const uint64_t crcEvents = singleBacklogBytes() * 90 / 100 / kEventBytes;
    struct DrainState {
        uint64_t bytes = 0;
        uint64_t events = 0;
        uint32_t crc = 0;
    };
    auto st = std::make_shared<DrainState>();
    auto alive = world->alive;
    std::function<void()> pump = [&, st, alive, crcEvents]() {
        reader->readNextEvent().onComplete([&, st, alive,
                                            crcEvents](const Result<client::EventRead>& res) {
            if (!*alive || !res.isOk()) return;
            const Bytes& payload = res.value().payload;
            st->bytes += payload.size();
            if (st->events < crcEvents) {
                st->crc = crc32(payload.data(), payload.size(), st->crc);
            }
            ++st->events;
            pump();
        });
    };
    sim::TimePoint start = world->exec().now();
    pump();
    uint64_t target = singleBacklogBytes() * 95 / 100;
    int guard = maxSeconds() * 4 * 100;
    while (st->bytes < target && guard-- > 0) world->exec().runFor(sim::msec(10));
    double elapsed = static_cast<double>(world->exec().now() - start) / 1e9;
    double mbps = elapsed > 0 ? static_cast<double>(st->bytes) / (1024 * 1024) / elapsed : 0;
    double ratio = 0;
    if (const auto* codec = world->cluster->codecLts(); codec != nullptr &&
                                                        codec->storedBytes() > 0) {
        ratio = static_cast<double>(codec->rawBytes()) /
                static_cast<double>(codec->storedBytes());
    }
    report.addCustom(label,
                     {{"archive", archive ? 1.0 : 0.0},
                      {"compression_ratio", ratio},
                      {"drained_mb", static_cast<double>(st->bytes) / (1024 * 1024)},
                      {"elapsed_sec", elapsed},
                      {"catchup_mbps", mbps},
                      {"crc_events", static_cast<double>(crcEvents)},
                      {"payload_crc32", static_cast<double>(st->crc)}},
                     &world->exec().mergedMetrics());
}
}  // namespace

int main() {
    Report report("fig12_historical_reads", "Figure 12: historical (catch-up) reads");
    report.note("backlog " + std::to_string(backlogBytes() / (1024 * 1024)) +
                " MB, write rate 100 MB/s, time series in 1s buckets");
    report.note("readahead on/off rows are the storage-read-pipeline ablation (one flag)");

    runPravega(report, /*readahead=*/true);
    runPravega(report, /*readahead=*/false);

    report.section("single reader catch-up (no concurrent writers)");
    runSingleReaderCatchup(report, /*readahead=*/true);
    runSingleReaderCatchup(report, /*readahead=*/false);

    // ---------------- Pulsar ----------------
    {
        PulsarOptions opt;
        opt.partitions = kSegments;
        opt.numProducers = 4;
        opt.offloadEnabled = true;
        auto world = makePulsar(opt);
        sim::Rng rng(7);

        sim::Duration buildTime =
            sim::sec(static_cast<double>(backlogBytes()) / (kWriteMBps * 1024 * 1024));
        driveWriters(*world, rng, world->exec().now() + buildTime);
        world->exec().runFor(sim::sec(2));

        auto drained = std::make_shared<uint64_t>(0);
        std::vector<std::unique_ptr<baselines::PulsarConsumer>> consumers;
        for (int p = 0; p < kSegments; ++p) {
            consumers.push_back(world->cluster->makeConsumer(
                900 + p, "bench", p, /*fromEarliest=*/true,
                [drained](uint32_t, uint64_t bytes, sim::Duration) { *drained += bytes; }));
        }

        report.section("pulsar: time series (1s buckets)");
        uint64_t lastDrain = 0;
        uint64_t written = backlogBytes();
        double peakRead = 0;
        bool caughtUp = false;
        for (int t = 0; t < maxSeconds(); ++t) {
            driveWriters(*world, rng, world->exec().now() + sim::sec(1));
            written += static_cast<uint64_t>(kWriteMBps * 1024 * 1024);
            double readMBps = static_cast<double>(*drained - lastDrain) / (1024 * 1024);
            peakRead = std::max(peakRead, readMBps);
            lastDrain = *drained;
            double backlogMB = (static_cast<double>(written) - static_cast<double>(*drained)) /
                               (1024 * 1024);
            report.addCustom("pulsar", {{"t_sec", static_cast<double>(t)},
                                        {"write_mbps", kWriteMBps},
                                        {"read_mbps", readMBps},
                                        {"backlog_mb", backlogMB}});
            if (backlogMB < 50) {
                report.note("pulsar: caught up at t=" + std::to_string(t) + " s");
                caughtUp = true;
                break;
            }
        }
        report.addCustom("pulsar-summary", {{"peak_read_mbps", peakRead}},
                         &world->exec().mergedMetrics(),
                         caughtUp ? "" : "NEVER caught up (read <= write rate)");
    }

    // New tiers appended last so the pre-existing rows keep their positions.
    report.section("archive tier sweep (hot cache -> object store -> archive)");
    report.note("archive rows: LTS codec on in both; archive=on migrates idle chunks "
                "to the tape model — payload CRCs must match, only latency differs");
    runArchiveSweep(report, /*archive=*/false);
    runArchiveSweep(report, /*archive=*/true);
    return 0;
}
