// Figure 9: impact of routing keys on read performance (§5.5).
//
// 16 segments/partitions; each system runs the same workload with random
// routing keys and without keys. Paper shapes: Pulsar's read latency is
// several times higher with keys (key-ordered dispatch) while its
// throughput is unchanged; Kafka is faster without keys (sticky batching);
// Pravega is virtually insensitive to key dispersion.
#include <cstdio>

#include "bench/harness/adapters.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {10e3, 50e3, 100e3, 250e3};

WorkloadConfig workload(double rate, bool keys) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = keys;
    cfg.window = sim::sec(3);
    return cfg;
}

void rowE2e(const std::string& series, const RunStats& s, const LatencyHistogram& e2e,
            const ConsumeStats& consumed) {
    double rate = consumed.eventsPerSec();
    std::printf("%-34s %12.0f %12.0f %9.2f %9.2f %9.2f %9.2f\n", series.c_str(),
                s.offeredEventsPerSec, rate, rate * 100.0 / (1024 * 1024),
                e2e.percentileMs(50), e2e.percentileMs(95), e2e.percentileMs(99));
    std::fflush(stdout);
}

}  // namespace

int main() {
    printHeader("Figure 9: routing keys vs no keys, 16 segments/partitions, 100B events",
                "latency columns are CONSUMER end-to-end");
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (double rate : kRates) {
            PravegaOptions opt;
            opt.segments = 16;
            opt.numReaders = 16;
            auto world = makePravega(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            rowE2e(std::string("pravega-") + tag, stats, world->e2e, world->consumed);
        }
    }
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (double rate : kRates) {
            KafkaOptions opt;
            opt.partitions = 16;
            opt.numConsumers = 16;
            auto world = makeKafka(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            rowE2e(std::string("kafka-") + tag, stats, world->e2e, world->consumed);
        }
    }
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (double rate : kRates) {
            PulsarOptions opt;
            opt.partitions = 16;
            opt.numConsumers = 16;
            auto world = makePulsar(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            rowE2e(std::string("pulsar-") + tag, stats, world->e2e, world->consumed);
        }
    }
    return 0;
}
