// Figure 9: impact of routing keys on read performance (§5.5).
//
// 16 segments/partitions; each system runs the same workload with random
// routing keys and without keys. Paper shapes: Pulsar's read latency is
// several times higher with keys (key-ordered dispatch) while its
// throughput is unchanged; Kafka is faster without keys (sticky batching);
// Pravega is virtually insensitive to key dispersion.
#include "bench/harness/adapters.h"
#include "bench/harness/report.h"

using namespace pravega;
using namespace pravega::bench;

namespace {

const double kRates[] = {10e3, 50e3, 100e3, 250e3};

size_t rateCount() { return smoke() ? 1 : std::size(kRates); }

WorkloadConfig workload(double rate, bool keys) {
    WorkloadConfig cfg;
    cfg.eventsPerSec = rate;
    cfg.eventBytes = 100;
    cfg.useKeys = keys;
    cfg.window = sim::sec(3);
    return shrinkForSmoke(cfg);
}

}  // namespace

int main() {
    Report report("fig09_routing_keys", "Figure 9: routing keys vs read performance");
    report.section("Figure 9: routing keys vs no keys, 16 segments/partitions, 100B events",
                   "latency columns are CONSUMER end-to-end");
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (size_t i = 0; i < rateCount(); ++i) {
            double rate = kRates[i];
            PravegaOptions opt;
            opt.segments = 16;
            opt.numReaders = 16;
            auto world = makePravega(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            report.addE2e(std::string("pravega-") + tag, stats,
                          world->consumed.eventsPerSec(), 100, world->e2e,
                          &world->exec().mergedMetrics());
        }
    }
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (size_t i = 0; i < rateCount(); ++i) {
            double rate = kRates[i];
            KafkaOptions opt;
            opt.partitions = 16;
            opt.numConsumers = 16;
            auto world = makeKafka(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            report.addE2e(std::string("kafka-") + tag, stats,
                          world->consumed.eventsPerSec(), 100, world->e2e,
                          &world->exec().mergedMetrics());
        }
    }
    for (bool keys : {true, false}) {
        const char* tag = keys ? "keys" : "nokeys";
        for (size_t i = 0; i < rateCount(); ++i) {
            double rate = kRates[i];
            PulsarOptions opt;
            opt.partitions = 16;
            opt.numConsumers = 16;
            auto world = makePulsar(opt);
            auto stats = runOpenLoop(world->exec(), world->producers, workload(rate, keys));
            world->exec().runFor(sim::msec(200));
            report.addE2e(std::string("pulsar-") + tag, stats,
                          world->consumed.eventsPerSec(), 100, world->e2e,
                          &world->exec().mergedMetrics());
        }
    }
    return 0;
}
