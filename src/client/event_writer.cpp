#include "client/event_writer.h"

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::client {

namespace {
constexpr const char* kLog = "event-writer";
}

WriterId EventWriter::nextWriterId_ = 1;

EventWriter::EventWriter(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                         controller::Controller& controller, std::string scopedStream,
                         WriterConfig cfg)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      controller_(controller),
      scopedStream_(std::move(scopedStream)),
      cfg_(cfg),
      writerId_(nextWriterId_++),
      rng_(writerId_ * 0x9E3779B97F4A7C15ULL),
      alive_(std::make_shared<bool>(true)) {}

EventWriter::~EventWriter() { *alive_ = false; }

Status EventWriter::initialize() {
    auto segments = controller_.getCurrentSegments(scopedStream_);
    if (!segments) return segments.status();
    ranges_.clear();
    for (const auto& uri : segments.value()) ranges_[uri.record.keyStart] = uri;
    return Status::ok();
}

SegmentOutputStream* EventWriter::openStream(const controller::SegmentUri& uri) {
    auto it = streams_.find(uri.record.id);
    if (it != streams_.end()) return it->second.get();
    auto stream = std::make_unique<SegmentOutputStream>(
        exec_, net_, clientHost_, uri.store, uri.containerId, uri.record.id, writerId_, cfg_,
        [this](SegmentId segment, std::vector<SegmentOutputStream::ResendEvent> events) {
            onSealed(segment, std::move(events));
        });
    auto* ptr = stream.get();
    streams_[uri.record.id] = std::move(stream);
    return ptr;
}

SegmentOutputStream* EventWriter::streamForHash(double h) {
    auto it = ranges_.upper_bound(h);
    if (it == ranges_.begin()) return nullptr;
    --it;
    if (!it->second.record.covers(h)) return nullptr;
    return openStream(it->second);
}

void EventWriter::writeEvent(std::string_view routingKey, BytesView payload, EventAck ack) {
    double h = routingKey.empty() ? rng_.nextDouble() : keyHash01(routingKey);
    SegmentOutputStream* stream = streamForHash(h);
    if (!stream) {
        // Routing table stale (scale just committed); refresh and retry once.
        initialize();
        stream = streamForHash(h);
    }
    if (!stream) {
        if (ack) ack(Status(Err::NotFound, "no segment for key"));
        return;
    }
    ++eventsWritten_;
    exec_.metrics().counter("client.writer.events_submitted").inc();
    if (stream->sealed()) {
        // A scale event is mid-flight for this key range: queue behind the
        // events already awaiting re-route so per-key order is preserved.
        SegmentOutputStream::ResendEvent re;
        re.payload.assign(payload.begin(), payload.end());
        re.keyHash = h;
        re.ack = std::move(ack);
        rerouting_[stream->segment()].push_back(std::move(re));
        return;
    }
    stream->write(payload, h, std::move(ack));
}

void EventWriter::flush() {
    for (auto& [id, stream] : streams_) stream->flush();
}

void EventWriter::simulateReconnect() {
    for (auto& [id, stream] : streams_) stream->simulateReconnect();
}

void EventWriter::onSealed(SegmentId segment,
                           std::vector<SegmentOutputStream::ResendEvent> events) {
    // The harvested (unacknowledged) events go FIRST; writes issued while
    // the re-route is pending (writeEvent's sealed path) append after.
    auto& queue = rerouting_[segment];
    queue.insert(queue.begin(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
    rerouteWhenReady(segment, {}, 0);
}

void EventWriter::rerouteWhenReady(SegmentId segment,
                                   std::vector<SegmentOutputStream::ResendEvent> /*unused*/,
                                   int attempt) {
    // Fig 2b: successors only become visible after the scale event commits;
    // until then, retry (the segment is sealed, so nothing can be lost).
    auto successors = controller_.getSuccessors(segment);
    if (!successors || successors.value().empty()) {
        if (attempt > 200) {
            PLOG_ERROR(kLog, "successors of %llu never appeared",
                       static_cast<unsigned long long>(segment));
            auto queue = std::move(rerouting_[segment]);
            rerouting_.erase(segment);
            for (auto& e : queue) {
                if (e.ack) e.ack(Status(Err::Timeout, "successor lookup failed"));
            }
            return;
        }
        exec_.schedule(sim::msec(5), [this, alive = alive_, segment, attempt]() {
            if (!*alive) return;
            rerouteWhenReady(segment, {}, attempt + 1);
        });
        return;
    }

    streams_.erase(segment);
    auto queue = std::move(rerouting_[segment]);
    rerouting_.erase(segment);
    Status refreshed = initialize();
    if (!refreshed) {
        for (auto& e : queue) {
            if (e.ack) e.ack(refreshed);
        }
        return;
    }
    rerouted_ += queue.size();
    exec_.metrics().counter("client.writer.rerouted").inc(queue.size());
    for (auto& e : queue) {
        SegmentOutputStream* stream = streamForHash(e.keyHash);
        if (!stream) {
            if (e.ack) e.ack(Status(Err::NotFound, "no successor for key"));
            continue;
        }
        if (stream->sealed()) {
            // Successor already sealed again (rapid consecutive scales):
            // requeue behind it.
            rerouting_[stream->segment()].push_back(std::move(e));
            continue;
        }
        stream->write(BytesView(e.payload), e.keyHash, std::move(e.ack));
    }
}

}  // namespace pravega::client
