// KeyValueTable client [24]: the key-value API built on top of streams that
// Pravega uses for its own metadata (§2.2, §4.3) and exposes to users.
// Supports conditional (version-checked) updates and multi-key transactions
// applied atomically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "segmentstore/table_segment.h"
#include "sim/future.h"
#include "sim/network.h"

namespace pravega::client {

class KeyValueTable {
public:
    /// Creates a new KV table backed by a table segment.
    static Result<std::unique_ptr<KeyValueTable>> create(sim::Core& exec, sim::Network& net,
                                                         sim::HostId clientHost,
                                                         controller::Controller& controller,
                                                         const std::string& scopedName);

    /// Unconditional or conditional put; returns the new version.
    sim::Future<int64_t> put(const std::string& key, Bytes value,
                             int64_t expectedVersion = segmentstore::kAnyVersion);

    /// Insert-only put (fails with BadVersion if the key exists).
    sim::Future<int64_t> putIfAbsent(const std::string& key, Bytes value) {
        return put(key, std::move(value), segmentstore::kNotExists);
    }

    sim::Future<std::optional<segmentstore::TableValue>> get(const std::string& key);

    sim::Future<sim::Unit> remove(const std::string& key,
                                  int64_t expectedVersion = segmentstore::kAnyVersion);

    /// Multi-key atomic transaction (§4.3: "using transactions to update
    /// multiple keys at once").
    sim::Future<std::vector<int64_t>> updateAll(std::vector<segmentstore::TableUpdate> batch);

private:
    KeyValueTable(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                  controller::SegmentUri uri, uint64_t wireOverhead);

    template <typename T, typename Fn>
    sim::Future<T> roundTrip(uint64_t requestBytes, Fn serverFn);

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    controller::SegmentUri uri_;
    uint64_t wireOverhead_;
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::client
