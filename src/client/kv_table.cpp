#include "client/kv_table.h"

namespace pravega::client {

Result<std::unique_ptr<KeyValueTable>> KeyValueTable::create(sim::Core& exec,
                                                             sim::Network& net,
                                                             sim::HostId clientHost,
                                                             controller::Controller& controller,
                                                             const std::string& scopedName) {
    auto uri = controller.createInternalSegment("_kvtables/" + scopedName, /*isTable=*/true);
    if (!uri) return uri.status();
    return std::unique_ptr<KeyValueTable>(
        new KeyValueTable(exec, net, clientHost, uri.value(), 64));
}

KeyValueTable::KeyValueTable(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                             controller::SegmentUri uri, uint64_t wireOverhead)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      uri_(std::move(uri)),
      wireOverhead_(wireOverhead),
      alive_(std::make_shared<bool>(true)) {}

template <typename T, typename Fn>
sim::Future<T> KeyValueTable::roundTrip(uint64_t requestBytes, Fn serverFn) {
    sim::Promise<T> done;
    auto fut = done.future();
    auto alive = alive_;
    net_.send(clientHost_, uri_.store->host(), requestBytes + wireOverhead_,
              [this, alive, serverFn = std::move(serverFn), done]() mutable {
                  auto* container = uri_.store->container(uri_.containerId);
                  if (!container) {
                      done.setError(Err::ContainerOffline, "kv table container offline");
                      return;
                  }
                  serverFn(container).onComplete([this, alive, done](const Result<T>& r) mutable {
                      net_.send(uri_.store->host(), clientHost_, wireOverhead_,
                                [done, r]() mutable { done.complete(r); });
                  });
              });
    return fut;
}

sim::Future<int64_t> KeyValueTable::put(const std::string& key, Bytes value,
                                        int64_t expectedVersion) {
    std::vector<segmentstore::TableUpdate> batch(1);
    batch[0].key = key;
    batch[0].value = std::move(value);
    batch[0].expectedVersion = expectedVersion;
    uint64_t bytes = key.size() + batch[0].value->size();
    segmentstore::SegmentId table = uri_.record.id;
    return roundTrip<int64_t>(bytes, [table, batch = std::move(batch)](
                                         segmentstore::SegmentContainer* c) mutable {
        return c->tableUpdate(table, std::move(batch))
            .then([](const std::vector<int64_t>& versions) { return versions.at(0); });
    });
}

sim::Future<std::optional<segmentstore::TableValue>> KeyValueTable::get(const std::string& key) {
    using Out = std::optional<segmentstore::TableValue>;
    segmentstore::SegmentId table = uri_.record.id;
    return roundTrip<Out>(key.size(), [table, key](segmentstore::SegmentContainer* c) {
        auto r = c->tableGet(table, key);
        if (r.isOk()) return sim::Future<Out>::ready(Out(r.value()));
        if (r.code() == Err::NotFound && c->getInfo(table).isOk()) {
            return sim::Future<Out>::ready(Out(std::nullopt));
        }
        return sim::Future<Out>::failed(r.status());
    });
}

sim::Future<sim::Unit> KeyValueTable::remove(const std::string& key, int64_t expectedVersion) {
    std::vector<segmentstore::TableUpdate> batch(1);
    batch[0].key = key;
    batch[0].value = std::nullopt;
    batch[0].expectedVersion = expectedVersion;
    segmentstore::SegmentId table = uri_.record.id;
    return roundTrip<sim::Unit>(
        key.size(),
        [table, batch = std::move(batch)](segmentstore::SegmentContainer* c) mutable {
            return c->tableUpdate(table, std::move(batch))
                .then([](const std::vector<int64_t>&) { return sim::Unit{}; });
        });
}

sim::Future<std::vector<int64_t>> KeyValueTable::updateAll(
    std::vector<segmentstore::TableUpdate> batch) {
    uint64_t bytes = 0;
    for (const auto& u : batch) bytes += u.key.size() + (u.value ? u.value->size() : 0);
    segmentstore::SegmentId table = uri_.record.id;
    return roundTrip<std::vector<int64_t>>(
        bytes, [table, batch = std::move(batch)](segmentstore::SegmentContainer* c) mutable {
            return c->tableUpdate(table, std::move(batch));
        });
}

}  // namespace pravega::client
