#include "client/reader_group.h"

#include <algorithm>

#include "client/event_reader.h"
#include "common/logging.h"
#include "common/serde.h"

namespace pravega::client {

namespace {
enum class UpdateTag : uint8_t {
    AddReader = 1,
    RemoveReader = 2,
    AddSegments = 3,
    Acquire = 4,
    Release = 5,
    Completed = 6,
};
}  // namespace

size_t ReaderGroupState::segmentsOwnedBy(const std::string& reader) const {
    auto it = assignments.find(reader);
    return it == assignments.end() ? 0 : it->second.size();
}

size_t ReaderGroupState::totalActiveSegments() const {
    size_t n = unassigned.size();
    for (const auto& [reader, segs] : assignments) n += segs.size();
    return n;
}

size_t ReaderGroupState::fairShare() const {
    size_t readers = std::max<size_t>(readerCount(), 1);
    size_t total = totalActiveSegments();
    return (total + readers - 1) / readers;
}

void ReaderGroupState::apply(BytesView update) {
    BinaryReader r(update);
    auto tag = r.u8();
    if (!tag) return;
    switch (static_cast<UpdateTag>(tag.value())) {
        case UpdateTag::AddReader: {
            auto name = r.str();
            if (name) assignments.try_emplace(name.value());
            break;
        }
        case UpdateTag::RemoveReader: {
            auto name = r.str();
            if (!name) return;
            auto it = assignments.find(name.value());
            if (it != assignments.end()) {
                // Offline reader: its segments go back to the pool. (Their
                // offsets revert to 0 only when the reader could not
                // release cleanly; clean close releases with offsets.)
                for (SegmentId seg : it->second) unassigned.emplace(seg, 0);
                assignments.erase(it);
            }
            break;
        }
        case UpdateTag::AddSegments: {
            auto n = r.varint();
            if (!n) return;
            for (uint64_t i = 0; i < n.value(); ++i) {
                auto seg = r.u64();
                auto off = r.i64();
                if (!seg || !off) return;
                unassigned.emplace(seg.value(), off.value());
            }
            break;
        }
        case UpdateTag::Acquire: {
            auto name = r.str();
            auto seg = r.u64();
            if (!name || !seg) return;
            auto it = unassigned.find(seg.value());
            if (it != unassigned.end()) {
                assignments[name.value()].insert(seg.value());
                unassigned.erase(it);
            }
            break;
        }
        case UpdateTag::Release: {
            auto name = r.str();
            auto seg = r.u64();
            auto off = r.i64();
            if (!name || !seg || !off) return;
            auto it = assignments.find(name.value());
            if (it != assignments.end() && it->second.erase(seg.value()) > 0) {
                unassigned.emplace(seg.value(), off.value());
            }
            break;
        }
        case UpdateTag::Completed: {
            auto name = r.str();
            auto seg = r.u64();
            auto n = r.varint();
            if (!name || !seg || !n) return;
            auto it = assignments.find(name.value());
            if (it != assignments.end()) it->second.erase(seg.value());
            completed.insert(seg.value());
            for (uint64_t i = 0; i < n.value(); ++i) {
                auto succ = r.u64();
                auto pc = r.varint();
                if (!succ || !pc) return;
                auto& preds = future[succ.value()];
                for (uint64_t j = 0; j < pc.value(); ++j) {
                    auto p = r.u64();
                    if (!p) return;
                    if (!completed.contains(p.value())) preds.insert(p.value());
                }
            }
            // Promote successors whose predecessors are all completed and
            // drop completed predecessors from every hold (Fig 2c).
            for (auto fit = future.begin(); fit != future.end();) {
                for (auto pit = fit->second.begin(); pit != fit->second.end();) {
                    if (completed.contains(*pit)) {
                        pit = fit->second.erase(pit);
                    } else {
                        ++pit;
                    }
                }
                if (fit->second.empty()) {
                    if (!completed.contains(fit->first)) {
                        unassigned.emplace(fit->first, 0);
                    }
                    fit = future.erase(fit);
                } else {
                    ++fit;
                }
            }
            break;
        }
    }
}

Bytes ReaderGroupState::makeAddReader(const std::string& reader) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::AddReader));
    w.str(reader);
    return out;
}

Bytes ReaderGroupState::makeRemoveReader(const std::string& reader) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::RemoveReader));
    w.str(reader);
    return out;
}

Bytes ReaderGroupState::makeAddSegments(const std::map<SegmentId, int64_t>& segments) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::AddSegments));
    w.varint(segments.size());
    for (const auto& [seg, off] : segments) {
        w.u64(seg);
        w.i64(off);
    }
    return out;
}

Bytes ReaderGroupState::makeAcquire(const std::string& reader, SegmentId segment) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::Acquire));
    w.str(reader);
    w.u64(segment);
    return out;
}

Bytes ReaderGroupState::makeRelease(const std::string& reader, SegmentId segment,
                                    int64_t offset) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::Release));
    w.str(reader);
    w.u64(segment);
    w.i64(offset);
    return out;
}

Bytes ReaderGroupState::makeCompleted(const std::string& reader, SegmentId segment,
                                      const std::vector<controller::SuccessorRecord>& succ) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(static_cast<uint8_t>(UpdateTag::Completed));
    w.str(reader);
    w.u64(segment);
    w.varint(succ.size());
    for (const auto& s : succ) {
        w.u64(s.segment.id);
        w.varint(s.predecessors.size());
        for (SegmentId p : s.predecessors) w.u64(p);
    }
    return out;
}

Result<std::shared_ptr<ReaderGroup>> ReaderGroup::create(
    sim::Core& exec, sim::Network& net, sim::HostId creatorHost,
    controller::Controller& controller, const std::string& groupName,
    const std::vector<std::string>& streams, ReaderConfig cfg) {
    auto uri = controller.createInternalSegment("_readergroups/" + groupName);
    if (!uri) return uri.status();

    // Seed the shared state: the creator registers the streams' HEAD
    // segments (earliest epoch) as unassigned; segments created by later
    // scale events are discovered through the successor protocol, which is
    // what preserves per-key order across scaling (§3.3).
    std::map<SegmentId, int64_t> initial;
    for (const auto& stream : streams) {
        auto segments = controller.getHeadSegments(stream);
        if (!segments) return segments.status();
        for (const auto& s : segments.value()) {
            auto info = s.store->container(s.containerId)
                            ? s.store->container(s.containerId)->getInfo(s.record.id)
                            : Result<segmentstore::SegmentProperties>(Err::ContainerOffline);
            initial[s.record.id] = info ? info.value().startOffset : 0;
        }
    }
    auto group = std::shared_ptr<ReaderGroup>(
        new ReaderGroup(exec, net, controller, uri.value(), cfg));

    auto seed = std::make_shared<StateSynchronizer<ReaderGroupState>>(exec, net, creatorHost,
                                                                      uri.value());
    seed->updateState([initial](const ReaderGroupState&) {
          return std::optional<Bytes>(ReaderGroupState::makeAddSegments(initial));
      })
        .onComplete([seed](const Result<bool>&) { /* keep seed alive until done */ });
    return group;
}

std::unique_ptr<EventReader> ReaderGroup::createReader(const std::string& readerName,
                                                       sim::HostId readerHost) {
    return std::make_unique<EventReader>(exec_, net_, readerHost, controller_, syncUri_,
                                         readerName, cfg_);
}

}  // namespace pravega::client
