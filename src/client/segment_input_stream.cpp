#include "client/segment_input_stream.h"

#include "client/framing.h"
#include "common/logging.h"

namespace pravega::client {

SegmentInputStream::SegmentInputStream(sim::Core& exec, sim::Network& net,
                                       sim::HostId clientHost, controller::SegmentUri uri,
                                       int64_t startOffset, ReaderConfig cfg,
                                       std::function<void()> onData)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      uri_(std::move(uri)),
      cfg_(cfg),
      onData_(std::move(onData)),
      bufferStart_(startOffset),
      fetchOffset_(startOffset),
      alive_(std::make_shared<bool>(true)) {
    ensureFetching();
}

SegmentInputStream::~SegmentInputStream() { *alive_ = false; }

std::optional<Bytes> SegmentInputStream::readNextEvent() {
    auto payload = decodeEvent(BytesView(buffer_), parsePos_);
    if (!payload) {
        ensureFetching();
        return std::nullopt;
    }
    Bytes out(payload->begin(), payload->end());
    // Compact the buffer once fully parsed to bound memory.
    if (parsePos_ >= buffer_.size()) {
        bufferStart_ += static_cast<int64_t>(buffer_.size());
        buffer_.clear();
        parsePos_ = 0;
        ensureFetching();
    }
    return out;
}

void SegmentInputStream::ensureFetching() {
    if (fetching_ || endOfSegment_ || failed_) return;
    fetching_ = true;
    auto alive = alive_;
    uint64_t wire = cfg_.wireOverheadBytes;
    net_.send(clientHost_, uri_.store->host(), wire, [this, alive]() {
        if (!*alive) return;
        auto* container = uri_.store->container(uri_.containerId);
        if (!container) {
            failed_ = true;
            fetching_ = false;
            if (onData_) onData_();
            return;
        }
        uri_.store->chargeRequest(uri_.containerId, 0)
            .thenAsync([this, container](const sim::Unit&) {
            return container->read(uri_.record.id, fetchOffset_,
                                   static_cast<int64_t>(cfg_.fetchBytes));
        })
        .onComplete([this, alive](const Result<segmentstore::ReadResult>& r) {
            if (!*alive) return;
            uint64_t respBytes =
                cfg_.wireOverheadBytes + (r.isOk() ? r.value().data.size() : 0);
            net_.send(uri_.store->host(), clientHost_, respBytes, [this, alive, r]() {
                if (!*alive) return;
                onFetchComplete(r);
            });
        });
    });
}

void SegmentInputStream::onFetchComplete(const Result<segmentstore::ReadResult>& r) {
    fetching_ = false;
    if (!r.isOk()) {
        // Container offline mid-read is transient during failover; retry.
        if (r.code() == Err::ContainerOffline || r.code() == Err::Timeout) {
            exec_.schedule(sim::msec(10), [this, alive = alive_]() {
                if (*alive) ensureFetching();
            });
            return;
        }
        failed_ = true;
        PLOG_WARN("reader", "segment read failed: %s", r.status().toString().c_str());
        if (onData_) onData_();
        return;
    }
    const auto& res = r.value();
    if (!res.data.empty()) {
        append(buffer_, BytesView(res.data));
        fetchOffset_ += static_cast<int64_t>(res.data.size());
    }
    if (res.endOfSegment) endOfSegment_ = true;
    if (onData_) onData_();
    // Keep the pipe primed for tail reads unless we are done or the buffer
    // already holds plenty of unparsed data.
    if (!endOfSegment_ && buffer_.size() - parsePos_ < cfg_.fetchBytes) ensureFetching();
}

}  // namespace pravega::client
