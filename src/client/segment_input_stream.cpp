#include "client/segment_input_stream.h"

#include "client/framing.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace pravega::client {

SegmentInputStream::SegmentInputStream(sim::Core& exec, sim::Network& net,
                                       sim::HostId clientHost, controller::SegmentUri uri,
                                       int64_t startOffset, ReaderConfig cfg,
                                       std::function<void()> onData)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      uri_(std::move(uri)),
      cfg_(cfg),
      onData_(std::move(onData)),
      bufferStart_(startOffset),
      fetchOffset_(startOffset),
      alive_(std::make_shared<bool>(true)) {
    ensureFetching();
}

SegmentInputStream::~SegmentInputStream() { *alive_ = false; }

std::optional<Bytes> SegmentInputStream::readNextEvent() {
    if (failed_) return std::nullopt;  // a failed stream stays failed
    uint32_t len = 0;
    DecodeStatus st = peekEvent(buffer_, len);
    if (st == DecodeStatus::Corrupt) {
        // A length prefix above the protocol bound means the stream is
        // desynchronized or the frame is damaged — retrying or resizing the
        // fetch cannot fix it, so fail the stream instead of looping.
        failed_ = true;
        exec_.metrics().counter("client.frame.corrupt").inc();
        PLOG_WARN("reader", "corrupt event frame at offset %lld (len=%u)",
                  static_cast<long long>(bufferStart_), len);
        if (onData_) onData_();
        return std::nullopt;
    }
    if (st != DecodeStatus::Ok) {
        ensureFetching();
        return std::nullopt;
    }
    Bytes out(len);
    buffer_.copyOut(kEventHeaderBytes, len, out.data());
    // Trim the consumed prefix immediately: buffered memory stays bounded
    // by the unconsumed backlog, never by total bytes read.
    buffer_.trimFront(kEventHeaderBytes + static_cast<size_t>(len));
    bufferStart_ += static_cast<int64_t>(kEventHeaderBytes) + len;
    if (buffer_.empty()) ensureFetching();
    return out;
}

void SegmentInputStream::ensureFetching() {
    if (fetching_ || endOfSegment_ || failed_) return;
    fetching_ = true;
    auto alive = alive_;
    uint64_t wire = cfg_.wireOverheadBytes;
    net_.send(clientHost_, uri_.store->host(), wire, [this, alive]() {
        if (!*alive) return;
        auto* container = uri_.store->container(uri_.containerId);
        if (!container) {
            failed_ = true;
            fetching_ = false;
            if (onData_) onData_();
            return;
        }
        uri_.store->chargeRequest(uri_.containerId, 0)
            .thenAsync([this, container](const sim::Unit&) {
            return container->read(uri_.record.id, fetchOffset_,
                                   static_cast<int64_t>(cfg_.fetchBytes));
        })
        .onComplete([this, alive](const Result<segmentstore::ReadResult>& r) {
            if (!*alive) return;
            uint64_t respBytes =
                cfg_.wireOverheadBytes + (r.isOk() ? r.value().data.size() : 0);
            net_.send(uri_.store->host(), clientHost_, respBytes, [this, alive, r]() {
                if (!*alive) return;
                onFetchComplete(r);
            });
        });
    });
}

void SegmentInputStream::onFetchComplete(const Result<segmentstore::ReadResult>& r) {
    fetching_ = false;
    if (!r.isOk()) {
        // Container offline mid-read is transient during failover; retry.
        if (r.code() == Err::ContainerOffline || r.code() == Err::Timeout) {
            exec_.schedule(sim::msec(10), [this, alive = alive_]() {
                if (*alive) ensureFetching();
            });
            return;
        }
        failed_ = true;
        PLOG_WARN("reader", "segment read failed: %s", r.status().toString().c_str());
        if (onData_) onData_();
        return;
    }
    const auto& res = r.value();
    if (!res.data.empty()) {
        buffer_.appendCopy(BytesView(res.data));
        fetchOffset_ += static_cast<int64_t>(res.data.size());
    }
    if (res.endOfSegment) endOfSegment_ = true;
    if (onData_) onData_();
    // Keep the pipe primed for tail reads unless we are done or the buffer
    // already holds plenty of unparsed data.
    if (!endOfSegment_ && buffer_.size() < cfg_.fetchBytes) ensureFetching();
}

}  // namespace pravega::client
