// SegmentOutputStream: the per-segment append pipe with Pravega's adaptive
// client batching (§4.1, Fig 3).
//
// Unlike clients that hold data until a batch fills, the Pravega writer
// starts a block and closes it using a tracking heuristic: the block size
// estimate is min(maxBatchSize, bytes that arrive in half the server round
// trip), from EWMAs of input rate and measured RTT. Blocks queue client-side
// only when the outstanding-byte window is full (server backpressure), which
// is how LTS throttling propagates to writers.
//
// The stream also implements the exactly-once protocol (§3.2): every block
// carries the count and last event number; on reconnect the server replies
// with the last event number it recorded for this writer id and the stream
// retransmits only what is missing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/bytes.h"
#include "common/result.h"
#include "segmentstore/segment_store.h"
#include "segmentstore/types.h"
#include "sim/network.h"

namespace pravega::client {

using segmentstore::SegmentId;
using segmentstore::WriterId;

struct WriterConfig {
    uint64_t maxBatchBytes = 1024 * 1024;      // upper bound on one block
    sim::Duration maxBatchTime = sim::msec(10);   // bound on the close timer
    uint64_t maxOutstandingBytes = 16 * 1024 * 1024;  // connection window
    sim::Duration initialRttGuess = sim::msec(1);
    /// Per-request wire overhead (protocol framing).
    uint64_t wireOverheadBytes = 64;
};

/// Callback invoked when an event is durably acknowledged (or failed).
using EventAck = std::function<void(Status)>;

class SegmentOutputStream {
public:
    /// Per-event bookkeeping kept until acknowledgement. Payload bytes live
    /// once, in the block buffer; on a seal they are re-parsed from it.
    struct EventRecord {
        uint32_t size;   // unframed payload size
        double keyHash;  // for re-routing to successors after a seal
        EventAck ack;    // may be empty
    };
    /// An unacknowledged event handed back for re-routing after a seal.
    struct ResendEvent {
        Bytes payload;  // unframed
        double keyHash;
        EventAck ack;
    };
    /// Invoked when the segment is sealed: unacked events (in append order)
    /// must be re-routed by the owner (EventWriter) via the successors.
    using SealedHandler = std::function<void(SegmentId, std::vector<ResendEvent>)>;

    SegmentOutputStream(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                        segmentstore::SegmentStore* store, uint32_t containerId,
                        SegmentId segment, WriterId writerId, WriterConfig cfg,
                        SealedHandler onSealed);
    ~SegmentOutputStream();

    SegmentOutputStream(const SegmentOutputStream&) = delete;
    SegmentOutputStream& operator=(const SegmentOutputStream&) = delete;

    /// Buffers one event (framed) into the open block.
    void write(BytesView payload, double keyHash, EventAck ack);

    /// Forces the open block out (used on writer flush()).
    void flush();

    /// Simulates a connection drop: outstanding blocks are considered
    /// unacknowledged and are retransmitted after the reconnect handshake,
    /// relying on server-side dedup for exactly-once (§3.2).
    void simulateReconnect();

    SegmentId segment() const { return segment_; }
    bool sealed() const { return sealedSeen_; }
    uint64_t outstandingBytes() const { return outstandingBytes_; }
    uint64_t queuedBlocks() const { return sendQueue_.size(); }
    sim::Duration estimatedRtt() const { return static_cast<sim::Duration>(rttEstimateNs_); }
    int64_t nextEventNumber() const { return nextEventNumber_; }

private:
    struct Block {
        Bytes data;         // open-block accumulation buffer (framing target)
        /// Frozen at closeBlock(): ownership of `data` moves here, and the
        /// same immutable buffer is shared by the wire send, server-side
        /// append, and any retransmit — the old per-send copyOf is gone.
        SharedBuf payload;
        std::vector<EventRecord> events;
        int64_t lastEventNumber = -1;
        sim::TimePoint openedAt = 0;
        sim::TimePoint sentAt = 0;
    };

    uint64_t batchSizeEstimate() const;
    void maybeCloseBlock();
    void closeBlock();
    void trySend();
    void sendBlock(Block block);
    void onBlockAck(Block block, const Result<int64_t>& result, sim::TimePoint sentAt);
    void handleSealed(Block first);

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    segmentstore::SegmentStore* store_;
    uint32_t containerId_;
    SegmentId segment_;
    WriterId writerId_;
    WriterConfig cfg_;
    SealedHandler onSealed_;

    Block open_;
    bool closeTimerArmed_ = false;
    uint64_t closeTimerEpoch_ = 0;

    std::deque<Block> sendQueue_;   // closed blocks waiting for window
    std::deque<Block> inFlight_;    // sent, not yet acked
    uint64_t outstandingBytes_ = 0;

    int64_t nextEventNumber_ = 0;
    bool sealedSeen_ = false;
    bool setupDone_ = false;
    uint64_t connectionEpoch_ = 0;
    /// Cleared on destruction; in-flight network callbacks check it first.
    std::shared_ptr<bool> alive_;

    // Tracking heuristic state.
    double rttEstimateNs_;
    double inputRateBytesPerSec_ = 0;
    sim::TimePoint lastEventAt_ = 0;

    // World-aggregate client-writer metrics.
    obs::Counter& mBlocks_;
    obs::Counter& mEvents_;
    obs::LatencyHistogram& mBlockBytes_;
    obs::LatencyHistogram& mBatchWaitNs_;
    obs::LatencyHistogram& mRttNs_;
};

}  // namespace pravega::client
