#include "client/segment_output_stream.h"

#include <algorithm>
#include <cassert>

#include "client/framing.h"
#include "common/logging.h"

namespace pravega::client {

namespace {
constexpr const char* kLog = "writer";
}

SegmentOutputStream::SegmentOutputStream(sim::Core& exec, sim::Network& net,
                                         sim::HostId clientHost,
                                         segmentstore::SegmentStore* store, uint32_t containerId,
                                         SegmentId segment, WriterId writerId, WriterConfig cfg,
                                         SealedHandler onSealed)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      store_(store),
      containerId_(containerId),
      segment_(segment),
      writerId_(writerId),
      cfg_(cfg),
      onSealed_(std::move(onSealed)),
      alive_(std::make_shared<bool>(true)),
      rttEstimateNs_(static_cast<double>(cfg.initialRttGuess)),
      mBlocks_(exec.metrics().counter("client.writer.blocks")),
      mEvents_(exec.metrics().counter("client.writer.events")),
      mBlockBytes_(exec.metrics().histogram("client.writer.block_bytes")),
      mBatchWaitNs_(exec.metrics().histogram("trace.write.0_client_batch_wait_ns")),
      mRttNs_(exec.metrics().histogram("client.writer.rtt_ns")) {
    // SetupAppend handshake: fetch the last event number recorded for this
    // writer id so a resumed writer continues from the right place (§3.2).
    setupDone_ = false;
    net_.send(clientHost_, store_->host(), cfg_.wireOverheadBytes, [this, alive = alive_]() {
        if (!*alive) return;
        auto* container = store_->container(containerId_);
        int64_t last = container
                           ? container->getWriterLastEventNumber(segment_, writerId_)
                           : segmentstore::AttributeIndex::kNullValue;
        net_.send(store_->host(), clientHost_, cfg_.wireOverheadBytes, [this, alive, last]() {
            if (!*alive) return;
            nextEventNumber_ =
                last == segmentstore::AttributeIndex::kNullValue ? 0 : last + 1;
            setupDone_ = true;
            trySend();
        });
    });
}

SegmentOutputStream::~SegmentOutputStream() { *alive_ = false; }

void SegmentOutputStream::write(BytesView payload, double keyHash, EventAck ack) {
    if (sealedSeen_) {
        // The owner is re-routing; new writes should not land here.
        if (ack) ack(Status(Err::Sealed, "segment sealed"));
        return;
    }
    if (open_.events.empty()) open_.openedAt = exec_.now();
    encodeEvent(open_.data, payload);
    open_.events.push_back(EventRecord{static_cast<uint32_t>(payload.size()), keyHash,
                                       std::move(ack)});

    // Input-rate EWMA (bytes/s) for the batch-size estimate.
    sim::TimePoint now = exec_.now();
    if (lastEventAt_ > 0 && now > lastEventAt_) {
        double instRate = static_cast<double>(payload.size() + kEventHeaderBytes) /
                          sim::toSeconds(now - lastEventAt_);
        inputRateBytesPerSec_ = inputRateBytesPerSec_ * 0.95 + instRate * 0.05;
    }
    lastEventAt_ = now;

    maybeCloseBlock();
}

uint64_t SegmentOutputStream::batchSizeEstimate() const {
    // §4.1: "the batch size is estimated as the minimum between the defined
    // maximum batch size and half the server round trip time" (i.e., the
    // bytes that arrive in RTT/2 at the current input rate).
    double halfRttSec = rttEstimateNs_ / 2.0 / 1e9;
    double bytesInHalfRtt = inputRateBytesPerSec_ * halfRttSec;
    return std::min<uint64_t>(cfg_.maxBatchBytes,
                              std::max<uint64_t>(1, static_cast<uint64_t>(bytesInHalfRtt)));
}

void SegmentOutputStream::maybeCloseBlock() {
    if (open_.data.size() >= batchSizeEstimate()) {
        closeBlock();
        return;
    }
    if (!closeTimerArmed_) {
        closeTimerArmed_ = true;
        uint64_t epoch = ++closeTimerEpoch_;
        sim::Duration wait = std::min<sim::Duration>(
            cfg_.maxBatchTime, static_cast<sim::Duration>(rttEstimateNs_ / 2.0));
        exec_.schedule(std::max<sim::Duration>(wait, 1), [this, alive = alive_, epoch]() {
            if (!*alive) return;
            if (epoch != closeTimerEpoch_) return;
            closeTimerArmed_ = false;
            if (!open_.events.empty()) closeBlock();
        });
    }
}

void SegmentOutputStream::closeBlock() {
    closeTimerArmed_ = false;
    ++closeTimerEpoch_;
    if (open_.events.empty()) return;
    // Event numbers are NOT assigned here: the SetupAppend handshake may
    // still be in flight, and numbering must start after the server's last
    // recorded event number (§3.2). sendBlock() numbers each block exactly
    // once, in send order, after setup completes.
    open_.payload = SharedBuf(std::move(open_.data));  // freeze: move, not copy
    sendQueue_.push_back(std::move(open_));
    open_ = Block{};
    trySend();
}

void SegmentOutputStream::flush() {
    if (!open_.events.empty()) closeBlock();
}

void SegmentOutputStream::trySend() {
    // Flow control: the outstanding window is how server-side backpressure
    // (WAL latency, LTS throttling) propagates into client-side queueing.
    while (setupDone_ && !sendQueue_.empty() &&
           outstandingBytes_ < cfg_.maxOutstandingBytes) {
        Block block = std::move(sendQueue_.front());
        sendQueue_.pop_front();
        sendBlock(std::move(block));
    }
}

void SegmentOutputStream::sendBlock(Block block) {
    uint64_t wireBytes = block.payload.size() + cfg_.wireOverheadBytes;
    outstandingBytes_ += wireBytes;
    block.sentAt = exec_.now();
    if (block.lastEventNumber < 0) {
        // First transmission only (not a retransmit): trace how long the
        // batch accumulated before hitting the wire.
        mBlocks_.inc();
        mEvents_.inc(block.events.size());
        mBlockBytes_.record(static_cast<sim::Duration>(block.payload.size()));
        mBatchWaitNs_.record(block.sentAt - block.openedAt);
        // Number the block's events. Retransmitted blocks keep their
        // numbers so the server can dedup them.
        block.lastEventNumber =
            nextEventNumber_ + static_cast<int64_t>(block.events.size()) - 1;
        nextEventNumber_ = block.lastEventNumber + 1;
    }

    SharedBuf payload = block.payload;  // shared ref; retained for retransmit
    int64_t lastEventNumber = block.lastEventNumber;
    uint32_t eventCount = static_cast<uint32_t>(block.events.size());
    uint64_t epoch = connectionEpoch_;
    inFlight_.push_back(std::move(block));

    auto deliverAck = [this, alive = alive_, epoch, wireBytes](const Result<int64_t>& r) {
        if (!*alive) return;
        net_.send(store_->host(), clientHost_, cfg_.wireOverheadBytes, [this, alive, epoch, r,
                                                                        wireBytes]() {
            if (!*alive) return;
            if (epoch != connectionEpoch_) return;  // stale connection
            outstandingBytes_ -= std::min(outstandingBytes_, wireBytes);
            assert(!inFlight_.empty());
            Block acked = std::move(inFlight_.front());
            inFlight_.pop_front();
            sim::TimePoint at = acked.sentAt;
            onBlockAck(std::move(acked), r, at);
        });
    };

    net_.send(clientHost_, store_->host(), wireBytes,
              [this, alive = alive_, payload, lastEventNumber, eventCount, deliverAck]() {
                  if (!*alive) return;
                  auto* container = store_->container(containerId_);
                  if (!container) {
                      deliverAck(Result<int64_t>(Err::ContainerOffline, "container moved"));
                      return;
                  }
                  // Capture ids by value: the server-side continuation may
                  // outlive this stream object.
                  SegmentId segment = segment_;
                  WriterId writer = writerId_;
                  store_->chargeRequest(containerId_, payload.size())
                      .thenAsync([container, payload, segment, writer, lastEventNumber,
                                  eventCount](const sim::Unit&) {
                          return container->append(segment, payload, writer,
                                                   lastEventNumber, eventCount);
                      })
                      .onComplete(deliverAck);
              });
}

void SegmentOutputStream::onBlockAck(Block block, const Result<int64_t>& result,
                                     sim::TimePoint sentAt) {
    double rttSample = static_cast<double>(exec_.now() - sentAt);
    rttEstimateNs_ = rttEstimateNs_ * 0.7 + rttSample * 0.3;
    mRttNs_.record(exec_.now() - sentAt);

    if (result.isOk()) {
        for (auto& e : block.events) {
            if (e.ack) e.ack(Status::ok());
        }
        trySend();
        return;
    }
    if (result.code() == Err::Sealed) {
        sealedSeen_ = true;
        ++connectionEpoch_;  // ignore acks for any later in-flight block
        handleSealed(std::move(block));
        return;
    }
    for (auto& e : block.events) {
        if (e.ack) e.ack(result.status());
    }
    trySend();
}

void SegmentOutputStream::handleSealed(Block first) {
    // Everything unacknowledged — this block, any block still on the wire
    // (all of which the sealed server will reject), queued blocks and the
    // open block — goes back to the owner for re-routing to the successors
    // in original order, preserving per-key order (§3.2).
    std::vector<ResendEvent> events;
    auto harvest = [&events](Block& b) {
        // Closed blocks were frozen into `payload`; only the open block
        // still accumulates in `data`.
        BytesView src = b.payload.empty() ? BytesView(b.data) : b.payload.view();
        size_t pos = 0;
        for (auto& e : b.events) {
            auto payload = decodeEvent(src, pos);
            ResendEvent re;
            if (payload) re.payload.assign(payload->begin(), payload->end());
            re.keyHash = e.keyHash;
            re.ack = std::move(e.ack);
            events.push_back(std::move(re));
        }
    };
    harvest(first);
    for (auto& b : inFlight_) harvest(b);
    inFlight_.clear();
    for (auto& b : sendQueue_) harvest(b);
    sendQueue_.clear();
    harvest(open_);
    open_ = Block{};
    outstandingBytes_ = 0;
    ++closeTimerEpoch_;
    closeTimerArmed_ = false;
    PLOG_DEBUG(kLog, "segment %llu sealed; re-routing %zu events",
               static_cast<unsigned long long>(segment_), events.size());
    if (onSealed_) onSealed_(segment_, std::move(events));
}

void SegmentOutputStream::simulateReconnect() {
    // Drop the connection: ignore in-flight acks, re-run the handshake and
    // retransmit everything unacknowledged. Server-side dedup (by writer id
    // and event number) turns retransmitted duplicates into no-op acks.
    ++connectionEpoch_;
    setupDone_ = false;
    while (!inFlight_.empty()) {
        sendQueue_.push_front(std::move(inFlight_.back()));
        inFlight_.pop_back();
    }
    outstandingBytes_ = 0;
    net_.send(clientHost_, store_->host(), cfg_.wireOverheadBytes, [this, alive = alive_]() {
        if (!*alive) return;
        net_.send(store_->host(), clientHost_, cfg_.wireOverheadBytes, [this, alive]() {
            if (!*alive) return;
            setupDone_ = true;
            trySend();
        });
    });
}

}  // namespace pravega::client
