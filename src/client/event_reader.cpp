#include "client/event_reader.h"

#include <algorithm>

#include "common/logging.h"

namespace pravega::client {

namespace {
constexpr const char* kLog = "event-reader";
}

EventReader::EventReader(sim::Core& exec, sim::Network& net, sim::HostId readerHost,
                         controller::Controller& controller, controller::SegmentUri syncUri,
                         std::string readerName, ReaderConfig cfg)
    : exec_(exec),
      net_(net),
      readerHost_(readerHost),
      controller_(controller),
      name_(std::move(readerName)),
      cfg_(cfg),
      sync_(exec, net, readerHost, std::move(syncUri)),
      alive_(std::make_shared<bool>(true)) {
    sync_.updateState([this](const ReaderGroupState&) {
             return std::optional<Bytes>(ReaderGroupState::makeAddReader(name_));
         })
        .onComplete([this, alive = alive_](const Result<bool>&) {
            if (*alive) rebalance();
        });
    syncTick();
}

EventReader::~EventReader() {
    *alive_ = false;
    closed_ = true;
    ++timerEpoch_;
}

void EventReader::syncTick() {
    uint64_t epoch = ++timerEpoch_;
    exec_.scheduleWeak(cfg_.syncInterval, [this, epoch, alive = alive_]() {
        if (!*alive || closed_ || epoch != timerEpoch_) return;
        sync_.fetchUpdates().onComplete([this, alive](const Result<sim::Unit>&) {
            if (!*alive || closed_) return;
            rebalance();
            handleEndedSegments();
            syncTick();
        });
    });
}

void EventReader::rebalance() {
    if (updateInFlight_ || closed_) return;
    const ReaderGroupState& state = sync_.state();
    size_t mine = state.segmentsOwnedBy(name_);
    size_t share = state.fairShare();

    if (!state.unassigned.empty() && mine < share) {
        SegmentId target = state.unassigned.begin()->first;
        updateInFlight_ = true;
        auto offset = std::make_shared<int64_t>(0);
        sync_.updateState([this, target, offset](const ReaderGroupState& s)
                              -> std::optional<Bytes> {
                auto it = s.unassigned.find(target);
                if (it == s.unassigned.end()) return std::nullopt;
                if (s.segmentsOwnedBy(name_) >= s.fairShare()) return std::nullopt;
                *offset = it->second;
                return ReaderGroupState::makeAcquire(name_, target);
            })
            .onComplete([this, target, offset, alive = alive_](const Result<bool>& r) {
                if (!*alive) return;
                updateInFlight_ = false;
                if (r.isOk() && r.value()) {
                    openSegment(target, *offset);
                    rebalance();  // maybe acquire more
                }
            });
        return;
    }

    if (mine > share && !streams_.empty()) {
        // Give a segment back for fairness: pick one that is not mid-
        // completion, freeze reads from it, and release at its position.
        for (auto& [seg, stream] : streams_) {
            if (releasing_.contains(seg) || completing_.contains(seg)) continue;
            SegmentId target = seg;
            int64_t position = stream->position();
            releasing_.insert(target);
            updateInFlight_ = true;
            sync_.updateState([this, target, position](const ReaderGroupState& s)
                                  -> std::optional<Bytes> {
                    auto it = s.assignments.find(name_);
                    if (it == s.assignments.end() || !it->second.contains(target)) {
                        return std::nullopt;
                    }
                    if (it->second.size() <= s.fairShare()) return std::nullopt;
                    return ReaderGroupState::makeRelease(name_, target, position);
                })
                .onComplete([this, target, alive = alive_](const Result<bool>& r) {
                    if (!*alive) return;
                    updateInFlight_ = false;
                    releasing_.erase(target);
                    if (r.isOk() && r.value()) streams_.erase(target);
                });
            return;
        }
    }
}

void EventReader::openSegment(SegmentId segment, int64_t offset) {
    auto uri = controller_.uriOf(segment);
    if (!uri) {
        PLOG_WARN(kLog, "%s cannot resolve segment %llu: %s", name_.c_str(),
                  static_cast<unsigned long long>(segment), uri.status().toString().c_str());
        return;
    }
    streams_[segment] = std::make_unique<SegmentInputStream>(
        exec_, net_, readerHost_, uri.value(), offset, cfg_, [this]() { onData(); });
}

bool EventReader::deliverBuffered(sim::Promise<EventRead>& promise) {
    auto event = pollEvent();
    if (!event) return false;
    promise.setValue(std::move(*event));
    return true;
}

std::optional<EventRead> EventReader::pollEvent() {
    if (streams_.empty()) return std::nullopt;
    // Round-robin over assigned segments, starting after the last served.
    auto start = streams_.upper_bound(rrLast_);
    for (size_t i = 0; i < streams_.size(); ++i) {
        if (start == streams_.end()) start = streams_.begin();
        SegmentId seg = start->first;
        SegmentInputStream* stream = start->second.get();
        ++start;
        if (releasing_.contains(seg)) continue;
        auto payload = stream->readNextEvent();
        if (payload) {
            rrLast_ = seg;
            ++eventsRead_;
            exec_.metrics().counter("client.reader.events").inc();
            return EventRead{std::move(*payload), seg, stream->position()};
        }
    }
    return std::nullopt;
}

sim::Future<EventRead> EventReader::readNextEvent() {
    assert(!waiting_ && "one outstanding readNextEvent at a time");
    sim::Promise<EventRead> promise;
    auto fut = promise.future();
    if (closed_) {
        promise.setError(Err::Cancelled, "reader closed");
        return fut;
    }
    if (deliverBuffered(promise)) return fut;
    handleEndedSegments();
    waiting_.emplace(std::move(promise));
    waitStart_ = exec_.now();
    return fut;
}

void EventReader::onData() {
    if (waiting_) {
        auto promise = std::move(*waiting_);
        waiting_.reset();
        if (!deliverBuffered(promise)) {
            waiting_.emplace(std::move(promise));
        } else {
            // Tail-read dispatch: how long a parked reader waited for new
            // data to arrive and wake it (§4.2 read side).
            exec_.metrics()
                .histogram("trace.read.0_dispatch_ns")
                .record(exec_.now() - waitStart_);
        }
    }
    handleEndedSegments();
}

void EventReader::handleEndedSegments() {
    if (closed_) return;
    for (auto& [seg, stream] : streams_) {
        if (!stream->endOfSegment() || completing_.contains(seg) || releasing_.contains(seg)) {
            continue;
        }
        completing_.insert(seg);
        SegmentId segment = seg;

        // Fetch successors; they appear only once the scale event commits,
        // so retry while the stream reports a scale in progress (§3.3).
        auto successors = controller_.getSuccessors(segment);
        std::vector<controller::SuccessorRecord> succ =
            successors ? successors.value() : std::vector<controller::SuccessorRecord>{};
        if (succ.empty()) {
            auto streamName = controller_.streamOf(segment);
            bool scalePending =
                streamName.isOk() && controller_.isScaling(streamName.value());
            if (scalePending) {
                completing_.erase(segment);
                exec_.schedule(sim::msec(5), [this, alive = alive_]() {
                    if (*alive) handleEndedSegments();
                });
                return;
            }
        }
        sync_.updateState([this, segment, succ](const ReaderGroupState& s)
                              -> std::optional<Bytes> {
                auto it = s.assignments.find(name_);
                if (it == s.assignments.end() || !it->second.contains(segment)) {
                    return std::nullopt;
                }
                return ReaderGroupState::makeCompleted(name_, segment, succ);
            })
            .onComplete([this, segment, alive = alive_](const Result<bool>&) {
                if (!*alive) return;
                completing_.erase(segment);
                streams_.erase(segment);
                rebalance();
                handleEndedSegments();
            });
        return;  // streams_ may mutate; re-entered via the completion
    }
}

void EventReader::close() {
    if (closed_) return;
    closed_ = true;
    ++timerEpoch_;
    // Release every segment at its current position, then deregister.
    std::vector<std::pair<SegmentId, int64_t>> positions;
    for (auto& [seg, stream] : streams_) positions.emplace_back(seg, stream->position());
    auto releaseAll = [this, positions](const ReaderGroupState&) -> std::optional<Bytes> {
        (void)positions;
        return ReaderGroupState::makeRemoveReader(name_);
    };
    // Releases first so offsets are preserved, then removal.
    for (const auto& [seg, off] : positions) {
        sync_.updateState([this, seg = seg, off = off](const ReaderGroupState& s)
                              -> std::optional<Bytes> {
            auto it = s.assignments.find(name_);
            if (it == s.assignments.end() || !it->second.contains(seg)) return std::nullopt;
            return ReaderGroupState::makeRelease(name_, seg, off);
        });
    }
    sync_.updateState(releaseAll);
    streams_.clear();
    if (waiting_) {
        waiting_->setError(Err::Cancelled, "reader closed");
        waiting_.reset();
    }
}

}  // namespace pravega::client
