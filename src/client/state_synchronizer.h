// StateSynchronizer (§3.3, [27]): consistent shared state over a Pravega
// segment via optimistic concurrency.
//
// Participants hold a local copy of the state; every mutation is an update
// record appended to the backing segment with a conditional append at the
// expected tail offset. If another participant got there first, the append
// fails with BadOffset, the loser fetches and applies the missed updates,
// and retries its mutation against the new state. Reader groups use this to
// agree on segment-to-reader assignments.
//
// Operations issued through ONE synchronizer instance are internally
// serialized (an overlapping fetch and update would otherwise double-apply
// records to the local copy); cross-instance concurrency is what the
// conditional append arbitrates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "client/framing.h"
#include "common/bytes.h"
#include "controller/controller.h"
#include "sim/future.h"
#include "sim/network.h"

namespace pravega::client {

/// State must be default-constructible and provide
/// `void apply(BytesView update)`.
template <typename State>
class StateSynchronizer {
public:
    StateSynchronizer(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                      controller::SegmentUri uri, uint64_t wireOverheadBytes = 64)
        : exec_(exec),
          net_(net),
          clientHost_(clientHost),
          uri_(std::move(uri)),
          wireOverhead_(wireOverheadBytes),
          alive_(std::make_shared<bool>(true)) {}

    ~StateSynchronizer() { *alive_ = false; }
    StateSynchronizer(const StateSynchronizer&) = delete;
    StateSynchronizer& operator=(const StateSynchronizer&) = delete;

    const State& state() const { return state_; }
    int64_t revision() const { return offset_; }

    /// Fetches updates appended since our revision and applies them.
    sim::Future<sim::Unit> fetchUpdates() {
        sim::Promise<sim::Unit> done;
        auto fut = done.future();
        enqueue([this, alive = alive_, done]() mutable {
            doFetch([this, alive, done](Status s) mutable {
                if (s.isOk()) {
                    done.setValue(sim::Unit{});
                } else {
                    done.setError(s);
                }
                // Completing the promise may run a continuation that destroys
                // this synchronizer; only pump the op queue if we survived.
                if (*alive) finishOp();
            });
        });
        return fut;
    }

    /// Optimistic mutation: `generator(state)` returns the serialized
    /// update to append, or nullopt to abort (condition no longer holds).
    /// Retries on contention. Completes with true if an update landed.
    sim::Future<bool> updateState(std::function<std::optional<Bytes>(const State&)> generator) {
        sim::Promise<bool> done;
        auto fut = done.future();
        enqueue([this, generator = std::move(generator), done]() mutable {
            attempt(std::move(generator), std::move(done), 0);
        });
        return fut;
    }

private:
    // ---- per-instance operation serialization ----
    void enqueue(std::function<void()> op) {
        pending_.push_back(std::move(op));
        pump();
    }
    void pump() {
        if (busy_ || pending_.empty()) return;
        busy_ = true;
        auto op = std::move(pending_.front());
        pending_.pop_front();
        op();
    }
    void finishOp() {
        busy_ = false;
        pump();
    }

    void applyUpdates(BytesView data) {
        size_t pos = 0;
        while (auto update = decodeEvent(data, pos)) {
            state_.apply(*update);
        }
        offset_ += static_cast<int64_t>(pos);
    }

    /// Reads [offset_, tail) and applies it; `cb(status)` on completion.
    void doFetch(std::function<void(Status)> cb) {
        auto* container = uri_.store->container(uri_.containerId);
        if (!container) {
            cb(Status(Err::ContainerOffline, "sync segment offline"));
            return;
        }
        auto info = container->getInfo(uri_.record.id);
        if (!info) {
            cb(info.status());
            return;
        }
        if (info.value().length <= offset_) {
            cb(Status::ok());
            return;
        }
        int64_t want = info.value().length - offset_;
        auto alive = alive_;
        net_.send(clientHost_, uri_.store->host(), wireOverhead_, [this, alive, want,
                                                                   cb = std::move(cb)]() mutable {
            if (!*alive) return;
            auto* c = uri_.store->container(uri_.containerId);
            if (!c) {
                cb(Status(Err::ContainerOffline, ""));
                return;
            }
            c->read(uri_.record.id, offset_, want)
                .onComplete([this, alive, cb = std::move(cb)](
                                const Result<segmentstore::ReadResult>& r) mutable {
                    if (!*alive) return;
                    uint64_t bytes = wireOverhead_ + (r.isOk() ? r.value().data.size() : 0);
                    net_.send(uri_.store->host(), clientHost_, bytes,
                              [this, alive, cb = std::move(cb), r]() mutable {
                                  if (!*alive) return;
                                  if (!r.isOk()) {
                                      cb(r.status());
                                      return;
                                  }
                                  applyUpdates(BytesView(r.value().data));
                                  cb(Status::ok());
                              });
                });
        });
    }

    void attempt(std::function<std::optional<Bytes>(const State&)> generator,
                 sim::Promise<bool> done, int tries) {
        auto alive = alive_;
        if (tries > 64) {
            done.setError(Err::Timeout, "state synchronizer contention");
            if (*alive) finishOp();
            return;
        }
        doFetch([this, alive, generator = std::move(generator), done,
                 tries](Status fetched) mutable {
            if (!*alive) return;
            if (!fetched.isOk()) {
                done.setError(fetched);
                if (*alive) finishOp();
                return;
            }
            auto update = generator(state_);
            if (!update) {
                done.setValue(false);
                if (*alive) finishOp();
                return;
            }
            Bytes framed;
            encodeEvent(framed, BytesView(*update));
            auto buf = SharedBuf(std::move(framed));
            int64_t expected = offset_;
            net_.send(
                clientHost_, uri_.store->host(), buf.size() + wireOverhead_,
                [this, alive, buf, expected, generator = std::move(generator), done,
                 tries]() mutable {
                    if (!*alive) return;
                    auto* c = uri_.store->container(uri_.containerId);
                    if (!c) {
                        done.setError(Err::ContainerOffline);
                        if (*alive) finishOp();
                        return;
                    }
                    c->conditionalAppend(uri_.record.id, buf, expected)
                        .onComplete([this, alive, buf, generator = std::move(generator), done,
                                     tries](const Result<int64_t>& r) mutable {
                            if (!*alive) return;
                            net_.send(
                                uri_.store->host(), clientHost_, wireOverhead_,
                                [this, alive, buf, generator = std::move(generator), done,
                                 tries, r]() mutable {
                                    if (!*alive) return;
                                    if (r.isOk()) {
                                        // Our own update: apply locally.
                                        applyUpdates(buf.view());
                                        done.setValue(true);
                                        if (*alive) finishOp();
                                        return;
                                    }
                                    if (r.code() == Err::BadOffset) {
                                        // Lost the race: catch up, retry.
                                        attempt(std::move(generator), std::move(done),
                                                tries + 1);
                                        return;
                                    }
                                    done.complete(r.status());
                                    if (*alive) finishOp();
                                });
                        });
                });
        });
    }

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    controller::SegmentUri uri_;
    uint64_t wireOverhead_;
    State state_;
    int64_t offset_ = 0;
    bool busy_ = false;
    std::deque<std::function<void()>> pending_;
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::client
