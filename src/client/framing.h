// Event wire framing. Pravega does not track event boundaries internally
// (§2.1); the client library frames each event as [u32 length][payload]
// when appending and parses the same framing when reading.
//
// Decoding distinguishes three outcomes: Ok (a whole event parsed),
// Partial (more bytes needed), and Corrupt (the length prefix exceeds the
// max-frame bound — garbage, not an incomplete event). The max-frame check
// runs BEFORE any additive bounds arithmetic: `pos + header + len` can wrap
// on 32-bit size_t for a hostile `len`, silently turning corruption into a
// forever-"partial" event.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/buf_chain.h"
#include "common/buf_stats.h"
#include "common/bytes.h"

namespace pravega::client {

constexpr size_t kEventHeaderBytes = 4;

/// Upper bound on a single framed event's payload. Far above anything the
/// client writes (batches cap at maxBatchBytes, single events are KBs), so
/// a larger prefix can only be a corrupt or misaligned frame.
constexpr uint32_t kMaxEventBytes = 16u * 1024 * 1024;

enum class DecodeStatus { Ok, Partial, Corrupt };

/// The one client-side payload copy of the append path (DESIGN.md §11):
/// frames `payload` into the open block's batch buffer.
inline void encodeEvent(Bytes& out, BytesView payload) {
    uint32_t len = static_cast<uint32_t>(payload.size());
    size_t pos = out.size();
    out.resize(pos + kEventHeaderBytes + payload.size());
    std::memcpy(out.data() + pos, &len, kEventHeaderBytes);
    if (!payload.empty()) {
        std::memcpy(out.data() + pos + kEventHeaderBytes, payload.data(), payload.size());
    }
    bufstats::recordCopy(payload.size());
}

/// Parses one event starting at `pos`. On Ok, sets `payload` and advances
/// `pos`; on Partial/Corrupt leaves both untouched.
inline DecodeStatus decodeEventEx(BytesView buffer, size_t& pos, BytesView& payload) {
    if (pos > buffer.size() || buffer.size() - pos < kEventHeaderBytes) {
        return DecodeStatus::Partial;
    }
    uint32_t len = 0;
    std::memcpy(&len, buffer.data() + pos, kEventHeaderBytes);
    if (len > kMaxEventBytes) return DecodeStatus::Corrupt;
    // Wrap-safe remaining-bytes test (subtraction, never addition).
    if (buffer.size() - pos - kEventHeaderBytes < len) return DecodeStatus::Partial;
    payload = buffer.subspan(pos + kEventHeaderBytes, len);
    pos += kEventHeaderBytes + len;
    return DecodeStatus::Ok;
}

/// Chain-front variant for streaming readers: classifies the event at the
/// head of `buffer` and reports its payload length on Ok. The caller
/// extracts with copyOut and consumes with trimFront.
inline DecodeStatus peekEvent(const BufChain& buffer, uint32_t& len) {
    if (!buffer.peekU32(0, len)) return DecodeStatus::Partial;
    if (len > kMaxEventBytes) return DecodeStatus::Corrupt;
    if (buffer.size() - kEventHeaderBytes < len) return DecodeStatus::Partial;
    return DecodeStatus::Ok;
}

/// Legacy convenience for trusted, locally-framed buffers (resend harvest,
/// state synchronizer): folds Corrupt into nullopt.
inline std::optional<BytesView> decodeEvent(BytesView buffer, size_t& pos) {
    BytesView payload;
    if (decodeEventEx(buffer, pos, payload) != DecodeStatus::Ok) return std::nullopt;
    return payload;
}

}  // namespace pravega::client
