// Event wire framing. Pravega does not track event boundaries internally
// (§2.1); the client library frames each event as [u32 length][payload]
// when appending and parses the same framing when reading.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

#include "common/bytes.h"

namespace pravega::client {

constexpr size_t kEventHeaderBytes = 4;

inline void encodeEvent(Bytes& out, BytesView payload) {
    uint32_t len = static_cast<uint32_t>(payload.size());
    size_t pos = out.size();
    out.resize(pos + kEventHeaderBytes + payload.size());
    std::memcpy(out.data() + pos, &len, kEventHeaderBytes);
    if (!payload.empty()) {
        std::memcpy(out.data() + pos + kEventHeaderBytes, payload.data(), payload.size());
    }
}

/// Parses one event starting at `pos`; returns the payload view and
/// advances `pos`, or nullopt when the buffer holds only a partial event.
inline std::optional<BytesView> decodeEvent(BytesView buffer, size_t& pos) {
    if (pos + kEventHeaderBytes > buffer.size()) return std::nullopt;
    uint32_t len = 0;
    std::memcpy(&len, buffer.data() + pos, kEventHeaderBytes);
    if (pos + kEventHeaderBytes + len > buffer.size()) return std::nullopt;
    BytesView payload = buffer.subspan(pos + kEventHeaderBytes, len);
    pos += kEventHeaderBytes + len;
    return payload;
}

}  // namespace pravega::client
