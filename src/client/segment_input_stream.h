// SegmentInputStream: buffered reads from one segment, with event framing
// and tail semantics (the server holds the read open until data arrives,
// §4.2), used by EventReader.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "controller/controller.h"
#include "sim/network.h"

namespace pravega::client {

struct ReaderConfig {
    uint64_t fetchBytes = 256 * 1024;
    uint64_t wireOverheadBytes = 64;
    /// Reader-group coordination cadence (state-sync fetch interval).
    sim::Duration syncInterval = sim::msec(100);
};

class SegmentInputStream {
public:
    /// `onData` fires whenever newly fetched bytes (or end-of-segment)
    /// become available, so the reader can wake parked read() calls.
    SegmentInputStream(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                       controller::SegmentUri uri, int64_t startOffset, ReaderConfig cfg,
                       std::function<void()> onData);
    ~SegmentInputStream();

    SegmentInputStream(const SegmentInputStream&) = delete;
    SegmentInputStream& operator=(const SegmentInputStream&) = delete;

    /// Next buffered event, if any. Never blocks.
    std::optional<Bytes> readNextEvent();

    /// True once the segment is sealed and every byte has been consumed.
    bool endOfSegment() const { return endOfSegment_ && buffer_.empty(); }

    /// Offset of the next unconsumed byte (reader-group release/checkpoint).
    int64_t position() const { return bufferStart_; }

    /// Issues a fetch if the buffer is exhausted and none is in flight.
    void ensureFetching();

    /// Unconsumed buffered bytes (bounded-memory regression tests: this
    /// must track the consumer's backlog, not the total bytes fetched).
    size_t bufferedBytes() const { return buffer_.size(); }

    segmentstore::SegmentId segment() const { return uri_.record.id; }
    const controller::SegmentUri& uri() const { return uri_; }
    bool failed() const { return failed_; }

private:
    void onFetchComplete(const Result<segmentstore::ReadResult>& r);

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    controller::SegmentUri uri_;
    ReaderConfig cfg_;
    std::function<void()> onData_;

    /// Unconsumed fetched bytes. Fetch completions append fragments; every
    /// consumed event trims the chain's front, so buffered memory stays
    /// bounded by the unconsumed backlog even under endless tail reads
    /// (the old flat buffer only compacted when FULLY parsed, which a
    /// steady tail-read never reaches — it grew without bound).
    BufChain buffer_;
    int64_t bufferStart_ = 0;   // stream offset of the chain front
    int64_t fetchOffset_ = 0;   // next offset to request
    bool fetching_ = false;
    bool endOfSegment_ = false;
    bool failed_ = false;
    /// Cleared on destruction; in-flight callbacks check it first.
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::client
