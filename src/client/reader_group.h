// Reader groups (§3.3): coordinated, exactly-once distribution of a
// stream's segments across a set of readers.
//
// The group's state — reader membership, segment-to-reader assignment,
// unassigned segments, completed segments, and successor segments being
// held until their predecessors are fully read — lives in a
// StateSynchronizer over a dedicated coordination segment. The invariants
// from the paper hold by construction: no two readers ever own the same
// segment, and a merged segment (Fig 2c's s4) is not assignable until every
// predecessor has been read to its end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/segment_input_stream.h"
#include "client/state_synchronizer.h"
#include "common/bytes.h"
#include "controller/controller.h"

namespace pravega::client {

using segmentstore::SegmentId;

/// The replicated state; mutated only through serialized updates so every
/// participant's copy converges (optimistic concurrency via the sync).
struct ReaderGroupState {
    std::map<std::string, std::set<SegmentId>> assignments;
    std::map<SegmentId, int64_t> unassigned;  // segment → start offset
    std::set<SegmentId> completed;
    /// Successor → predecessors not yet completed (the merge hold).
    std::map<SegmentId, std::set<SegmentId>> future;

    void apply(BytesView update);

    size_t readerCount() const { return assignments.size(); }
    size_t segmentsOwnedBy(const std::string& reader) const;
    size_t totalActiveSegments() const;
    /// Ceil(active segments / readers): the fairness target (§3.3).
    size_t fairShare() const;

    // ---- update builders ----
    static Bytes makeAddReader(const std::string& reader);
    static Bytes makeRemoveReader(const std::string& reader);
    static Bytes makeAddSegments(const std::map<SegmentId, int64_t>& segments);
    static Bytes makeAcquire(const std::string& reader, SegmentId segment);
    static Bytes makeRelease(const std::string& reader, SegmentId segment, int64_t offset);
    static Bytes makeCompleted(const std::string& reader, SegmentId segment,
                               const std::vector<controller::SuccessorRecord>& successors);
};

class EventReader;

/// Factory/handle for a reader group: owns the coordination segment URI and
/// seeds the initial state with the streams' current segments.
class ReaderGroup {
public:
    /// Creates the group (coordination segment + initial state) reading the
    /// given stream from its head.
    static Result<std::shared_ptr<ReaderGroup>> create(sim::Core& exec, sim::Network& net,
                                                       sim::HostId creatorHost,
                                                       controller::Controller& controller,
                                                       const std::string& groupName,
                                                       const std::vector<std::string>& streams,
                                                       ReaderConfig cfg);

    std::unique_ptr<EventReader> createReader(const std::string& readerName,
                                              sim::HostId readerHost);

    const controller::SegmentUri& syncUri() const { return syncUri_; }
    controller::Controller& controller() { return controller_; }
    const ReaderConfig& config() const { return cfg_; }

private:
    ReaderGroup(sim::Core& exec, sim::Network& net, controller::Controller& controller,
                controller::SegmentUri syncUri, ReaderConfig cfg)
        : exec_(exec), net_(net), controller_(controller), syncUri_(std::move(syncUri)),
          cfg_(cfg) {}

    sim::Core& exec_;
    sim::Network& net_;
    controller::Controller& controller_;
    controller::SegmentUri syncUri_;
    ReaderConfig cfg_;
};

}  // namespace pravega::client
