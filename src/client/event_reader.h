// EventReader (§3.3): reads events from the segments assigned to it by the
// reader group, acquiring/releasing segments for fairness and following the
// successor protocol at scale boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "client/reader_group.h"
#include "client/segment_input_stream.h"
#include "client/state_synchronizer.h"

namespace pravega::client {

struct EventRead {
    Bytes payload;
    SegmentId segment = 0;
    int64_t offset = 0;  // position after this event (resume point)
};

class EventReader {
public:
    EventReader(sim::Core& exec, sim::Network& net, sim::HostId readerHost,
                controller::Controller& controller, controller::SegmentUri syncUri,
                std::string readerName, ReaderConfig cfg);
    ~EventReader();

    EventReader(const EventReader&) = delete;
    EventReader& operator=(const EventReader&) = delete;

    /// Completes when the next event is available. Only one outstanding
    /// read at a time. Events with the same routing key arrive in append
    /// order across scale events (the group's merge-hold guarantees it).
    sim::Future<EventRead> readNextEvent();

    /// Non-blocking variant: next buffered event if one is ready.
    std::optional<EventRead> pollEvent();

    /// Releases all segments and deregisters from the group.
    void close();

    const std::string& name() const { return name_; }
    size_t assignedSegments() const { return streams_.size(); }
    uint64_t eventsRead() const { return eventsRead_; }

private:
    void syncTick();
    void rebalance();
    void openSegment(SegmentId segment, int64_t offset);
    void onData();
    void handleEndedSegments();
    bool deliverBuffered(sim::Promise<EventRead>& promise);

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId readerHost_;
    controller::Controller& controller_;
    std::string name_;
    ReaderConfig cfg_;
    StateSynchronizer<ReaderGroupState> sync_;

    std::map<SegmentId, std::unique_ptr<SegmentInputStream>> streams_;
    std::set<SegmentId> releasing_;   // excluded from reads while a release is in flight
    std::set<SegmentId> completing_;  // end-of-segment protocol in progress
    std::optional<sim::Promise<EventRead>> waiting_;
    sim::TimePoint waitStart_ = 0;  // when waiting_ was parked (trace stage)
    SegmentId rrLast_ = 0;  // round-robin cursor across assigned segments
    bool updateInFlight_ = false;
    bool closed_ = false;
    uint64_t timerEpoch_ = 0;
    uint64_t eventsRead_ = 0;
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::client
