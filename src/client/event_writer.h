// EventWriter: the public write API (§2.1, §3.2).
//
// Routes each event by its routing key's hash onto the owning segment of
// the stream's current epoch and appends through a SegmentOutputStream per
// segment. Handles stream auto-scaling transparently: when a segment is
// sealed, unacknowledged events are re-routed (in order, preserving per-key
// order) to the successor segments obtained from the controller (Fig 2b).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "client/segment_output_stream.h"
#include "controller/controller.h"
#include "sim/network.h"
#include "sim/random.h"

namespace pravega::client {

class EventWriter {
public:
    EventWriter(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                controller::Controller& controller, std::string scopedStream, WriterConfig cfg);
    ~EventWriter();

    /// Fetches the stream's current segments; must succeed before writing.
    Status initialize();

    /// Appends one event. Events with the same (non-empty) routing key are
    /// totally ordered; an empty key gets a random one (no order implied).
    /// `ack` (optional) fires when the event is durable.
    void writeEvent(std::string_view routingKey, BytesView payload, EventAck ack = {});

    /// Flushes all open blocks.
    void flush();

    WriterId id() const { return writerId_; }
    size_t activeStreams() const { return streams_.size(); }
    uint64_t eventsWritten() const { return eventsWritten_; }
    uint64_t rerouted() const { return rerouted_; }

    /// Test hook: drop and re-establish every segment connection.
    void simulateReconnect();

private:
    SegmentOutputStream* streamForHash(double h);
    SegmentOutputStream* openStream(const controller::SegmentUri& uri);
    void onSealed(SegmentId segment, std::vector<SegmentOutputStream::ResendEvent> events);
    void rerouteWhenReady(SegmentId segment,
                          std::vector<SegmentOutputStream::ResendEvent> events, int attempt);

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    controller::Controller& controller_;
    std::string scopedStream_;
    WriterConfig cfg_;
    WriterId writerId_;

    /// Current-epoch ranges: keyStart → uri (for O(log n) hash routing).
    std::map<double, controller::SegmentUri> ranges_;
    std::map<SegmentId, std::unique_ptr<SegmentOutputStream>> streams_;
    /// Events awaiting successor re-route per sealed segment, in append
    /// order: the harvest of unacked events first, then any writes issued
    /// while the scale event is still committing.
    std::map<SegmentId, std::vector<SegmentOutputStream::ResendEvent>> rerouting_;
    sim::Rng rng_;
    /// Liveness token for the successor-retry timer (set false on destroy).
    std::shared_ptr<bool> alive_;
    uint64_t eventsWritten_ = 0;
    uint64_t rerouted_ = 0;

    static WriterId nextWriterId_;
};

}  // namespace pravega::client
