// Pulsar-like baseline (§5, "Apache Pulsar 2.6" comparisons).
//
// Models the design properties the paper attributes Pulsar's behaviour to,
// over the same simulated bookies as Pravega:
//   - brokers in front of BookKeeper (an extra network hop on the write
//     and read path);
//   - one managed ledger PER PARTITION (no cross-partition multiplexing at
//     the broker; only the bookie journal aggregates);
//   - client-side batching only, chosen up front: batching (size/time) or
//     per-event sends — the §5.3 trade-off;
//   - ackQuorum < writeQuorum leaves a re-replication buffer on the broker
//     that grows without bound when one bookie lags; the broker "crashes"
//     (OOM) past a memory limit — §5.6's instability. The "favorable"
//     configuration (ackQ = writeQ = 3) trades throughput for safety;
//   - tiered storage as an add-on: ledgers are offloaded to object storage
//     after rollover, outside the write path (no writer throttling, §5.7),
//     and catch-up reads fetch offloaded data in small, unpipelined blocks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/models.h"
#include "sim/network.h"
#include "wal/ledger_handle.h"
#include "wal/log_client.h"

namespace pravega::baselines {

using MessageAck2 = std::function<void(Status)>;

struct PulsarConfig {
    int brokers = 3;
    wal::ReplicationConfig repl;  // default e3/wq3/aq2 (Table 1)

    // Producer batching (§5.1: 128KB / 1ms when enabled).
    bool batchingEnabled = true;
    uint64_t batchBytes = 128 * 1024;
    sim::Duration batchTime = sim::msec(1);
    uint64_t maxPendingBytesPerPartition = 4 * 1024 * 1024;

    /// Broker → consumer dispatcher flush cadence (dominates Pulsar's
    /// end-to-end latency floor, §5.5).
    sim::Duration dispatchInterval = sim::msec(4);
    /// Extra dispatch passes when routing keys require key-ordered
    /// delivery (§5.5's 3.25x read-latency effect).
    int keyOrderedDispatchPasses = 3;
    /// The broker dispatcher is single-threaded: each delivery costs this
    /// much serialized work. With many partitions each delivery carries
    /// few events, so per-event efficiency collapses (Fig 8b's 76% read
    /// throughput drop at 16 partitions).
    sim::Duration dispatchCost = sim::msec(1);

    /// Broker memory limit; exceeding it crashes the broker (§5.6).
    uint64_t brokerMemoryLimitBytes = 512ULL * 1024 * 1024;

    /// Per-partition managed-ledger pipeline on the broker (Fig 7a: ~300
    /// MB/s single-partition ceiling for Pulsar).
    double partitionBytesPerSec = 300.0 * 1024 * 1024;
    sim::Duration partitionPerRequest = sim::usec(20);

    /// Managed-ledger / netty pipeline latency per produce (not occupancy —
    /// requests overlap). Calibrated to the paper's Fig 6a/8a observation
    /// that Pulsar's write and e2e latencies sit well above Pravega's.
    sim::Duration brokerPipelineLatency = sim::msec(2);

    // Tiered storage add-on (§5.7).
    bool offloadEnabled = false;
    uint64_t ledgerRolloverBytes = 64ULL * 1024 * 1024;
    /// Catch-up reads from offloaded storage use small unpipelined blocks.
    uint64_t offloadReadBlockBytes = 48 * 1024;

    uint64_t wireOverheadBytes = 64;
    sim::CpuModel::Config cpu;
};

class PulsarCluster;

class PulsarProducer {
public:
    PulsarProducer(PulsarCluster& cluster, sim::HostId clientHost, std::string topic,
                   uint64_t seed);

    /// `key` empty → round-robin partitioning; with a key, hash
    /// partitioning (per-key order).
    void send(std::string_view key, uint32_t sizeBytes, MessageAck2 ack);
    void flush();

private:
    friend class PulsarCluster;
    struct Batch {
        int partition = 0;
        uint64_t bytes = 0;
        uint32_t events = 0;
        bool withKeys = false;
        sim::TimePoint openedAt = 0;
        std::vector<MessageAck2> acks;
    };

    void closeBatch(int partition);
    void trySend(int partition);
    void armTimer(int partition);

    PulsarCluster& cluster_;
    sim::HostId clientHost_;
    std::string topic_;
    std::map<int, Batch> open_;
    std::map<int, std::deque<Batch>> queued_;    // partition → ready batches
    std::map<int, uint64_t> outstanding_;        // partition → in-flight bytes
    std::map<int, uint64_t> timerEpoch_;
    int rrPartition_ = 0;
    uint64_t rngState_;
};

class PulsarConsumer {
public:
    using Delivery = std::function<void(uint32_t events, uint64_t bytes, sim::Duration e2e)>;

    /// `fromEarliest` starts at the partition head (catch-up / historical
    /// reads, §5.7); otherwise tail consumption.
    PulsarConsumer(PulsarCluster& cluster, sim::HostId clientHost, std::string topic,
                   int partition, bool fromEarliest, Delivery onDelivery);
    ~PulsarConsumer();

    int64_t backlogBytes() const;

private:
    friend class PulsarCluster;
    void catchUpLoop();

    PulsarCluster& cluster_;
    sim::HostId clientHost_;
    std::string topic_;
    int partition_;
    Delivery onDelivery_;
    int64_t offset_ = 0;
    bool catchingUp_ = false;
    std::shared_ptr<bool> alive_;
};

class PulsarCluster {
public:
    PulsarCluster(sim::Core& exec, sim::Network& net, sim::HostId firstBrokerHost,
                  wal::WalEnv walEnv, sim::ObjectStoreModel* offloadStore, PulsarConfig cfg);

    void createTopic(const std::string& name, int partitions);

    std::unique_ptr<PulsarProducer> makeProducer(sim::HostId clientHost,
                                                 const std::string& topic);
    std::unique_ptr<PulsarConsumer> makeConsumer(sim::HostId clientHost,
                                                 const std::string& topic, int partition,
                                                 bool fromEarliest,
                                                 PulsarConsumer::Delivery onDelivery);

    bool crashed() const { return crashed_; }
    uint64_t bytesProduced() const { return bytesProduced_; }
    uint64_t offloadedBytes() const { return offloadedBytes_; }
    uint64_t brokerMemoryBytes(int broker) const;
    const PulsarConfig& config() const { return cfg_; }

private:
    friend class PulsarProducer;
    friend class PulsarConsumer;

    struct BatchRecord {
        int64_t endOffset;
        uint32_t events;
        uint64_t bytes;
        sim::TimePoint producedAt;
        bool withKeys;
    };
    struct Partition {
        int broker = 0;
        std::unique_ptr<wal::LedgerHandle> ledger;
        std::unique_ptr<sim::QueuedResource> appendPipe;
        int64_t length = 0;
        int64_t offloadedUpTo = 0;   // LTS holds [0, offloadedUpTo)
        uint64_t sinceRollover = 0;
        std::deque<BatchRecord> records;            // awaiting dispatch/consume
        std::vector<std::function<void()>> waiters;  // tail consumers
        bool hasConsumer = false;
        int64_t consumerOffset = 0;
    };
    struct Broker {
        sim::HostId host;
        std::unique_ptr<sim::CpuModel> cpu;
        std::unique_ptr<sim::QueuedResource> dispatcher;  // single-threaded
        bool crashed = false;
    };
    struct Topic {
        std::vector<Partition> partitions;
    };

    void produce(const std::string& topic, int partition, uint64_t bytes, uint32_t events,
                 bool withKeys, sim::TimePoint producedAt, std::function<void(Status)> done);
    void dispatchTick(int brokerId);
    void checkMemory(int brokerId);
    void maybeOffload(const std::string& topic, int partition);
    Partition* find(const std::string& topic, int partition);

    sim::Core& exec_;
    sim::Network& net_;
    wal::WalEnv walEnv_;
    sim::ObjectStoreModel* offloadStore_;
    PulsarConfig cfg_;
    std::vector<Broker> brokers_;
    std::map<std::string, Topic> topics_;
    SharedBuf zeros_;  // shared payload storage for size-only modeling
    bool crashed_ = false;
    uint64_t memoryCheckTick_ = 0;
    uint64_t bytesProduced_ = 0;
    uint64_t offloadedBytes_ = 0;
    uint64_t nextLog_ = 0x50AA0000;
};

}  // namespace pravega::baselines
