#include "baselines/pulsar_like.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::baselines {

namespace {
constexpr const char* kLog = "pulsar-like";
}

// --------------------------------------------------------------- cluster

PulsarCluster::PulsarCluster(sim::Core& exec, sim::Network& net,
                             sim::HostId firstBrokerHost, wal::WalEnv walEnv,
                             sim::ObjectStoreModel* offloadStore, PulsarConfig cfg)
    : exec_(exec),
      net_(net),
      walEnv_(std::move(walEnv)),
      offloadStore_(offloadStore),
      cfg_(cfg),
      zeros_(Bytes(1024 * 1024, 0)) {
    for (int b = 0; b < cfg_.brokers; ++b) {
        Broker broker;
        broker.host = firstBrokerHost + b;
        broker.cpu = std::make_unique<sim::CpuModel>(exec_, cfg_.cpu);
        broker.dispatcher = std::make_unique<sim::QueuedResource>(exec_, 1);
        brokers_.push_back(std::move(broker));
    }
    for (int b = 0; b < cfg_.brokers; ++b) dispatchTick(b);
}

void PulsarCluster::createTopic(const std::string& name, int partitions) {
    Topic topic;
    for (int p = 0; p < partitions; ++p) {
        Partition part;
        part.broker = p % cfg_.brokers;
        // One managed ledger per partition: its own BK ledger (ensemble
        // rotated across bookies), no cross-partition aggregation above
        // the bookie journal.
        std::vector<wal::Bookie*> ensemble;
        size_t n = walEnv_.bookies.size();
        size_t start = (nextLog_ + static_cast<uint64_t>(p)) % n;
        for (int i = 0; i < cfg_.repl.ensembleSize; ++i) {
            ensemble.push_back(walEnv_.bookies[(start + static_cast<size_t>(i)) % n]);
        }
        wal::LedgerId id = walEnv_.registry.create(std::move(ensemble));
        part.ledger = std::make_unique<wal::LedgerHandle>(
            exec_, net_, brokers_[static_cast<size_t>(part.broker)].host, walEnv_.registry, id,
            cfg_.repl);
        part.appendPipe = std::make_unique<sim::QueuedResource>(exec_, 1);
        topic.partitions.push_back(std::move(part));
    }
    ++nextLog_;
    topics_[name] = std::move(topic);
}

PulsarCluster::Partition* PulsarCluster::find(const std::string& topic, int partition) {
    auto it = topics_.find(topic);
    if (it == topics_.end()) return nullptr;
    if (partition < 0 || partition >= static_cast<int>(it->second.partitions.size())) {
        return nullptr;
    }
    return &it->second.partitions[static_cast<size_t>(partition)];
}

uint64_t PulsarCluster::brokerMemoryBytes(int broker) const {
    uint64_t total = 0;
    for (const auto& [name, topic] : topics_) {
        for (const auto& part : topic.partitions) {
            if (part.broker != broker) continue;
            total += part.ledger->unackedBytes() + part.ledger->unackedToFullQuorumBytes();
        }
    }
    return total;
}

void PulsarCluster::checkMemory(int brokerId) {
    if (brokers_[static_cast<size_t>(brokerId)].crashed) return;
    // Scanning every partition's ledger is O(partitions); sample the check
    // so the hot path stays cheap at thousands of partitions.
    if ((++memoryCheckTick_ & 0xFF) != 0) return;
    if (brokerMemoryBytes(brokerId) > cfg_.brokerMemoryLimitBytes) {
        brokers_[static_cast<size_t>(brokerId)].crashed = true;
        crashed_ = true;
        PLOG_WARN(kLog, "broker %d ran out of memory (re-replication backlog)", brokerId);
    }
}

void PulsarCluster::produce(const std::string& topic, int partition, uint64_t bytes,
                            uint32_t events, bool withKeys, sim::TimePoint producedAt,
                            std::function<void(Status)> done) {
    Partition* part = find(topic, partition);
    if (!part) {
        done(Status(Err::NotFound, "no such topic-partition"));
        return;
    }
    Broker& broker = brokers_[static_cast<size_t>(part->broker)];
    if (broker.crashed) {
        done(Status(Err::IoError, "broker crashed (OOM)"));
        return;
    }
    sim::Duration pipeWork =
        cfg_.partitionPerRequest + sim::transferTime(bytes, cfg_.partitionBytesPerSec);
    broker.cpu->execute(bytes)
        .thenAsync([part, pipeWork](const sim::Unit&) { return part->appendPipe->acquire(pipeWork); })
        .onComplete([this, topic, partition, bytes, events, withKeys,
                     producedAt, done, part](const Result<sim::Unit>&) {
        exec_.schedule(cfg_.brokerPipelineLatency, [this, topic, partition, bytes, events,
                                                    withKeys, producedAt, done, part]() {
        part->ledger->addEntry(zeros_.slice(0, bytes))
            .onComplete([this, topic, partition, bytes, events, withKeys, producedAt, done,
                         part](const Result<wal::EntryId>& r) {
                checkMemory(part->broker);
                if (!r.isOk()) {
                    done(r.status());
                    return;
                }
                bytesProduced_ += bytes;
                part->length += static_cast<int64_t>(bytes);
                part->sinceRollover += bytes;
                part->records.push_back(
                    BatchRecord{part->length, events, bytes, producedAt, withKeys});
                if (!part->hasConsumer && part->records.size() > 4) part->records.pop_front();
                maybeOffload(topic, partition);
                // Consumers are NOT woken here: delivery waits for the
                // dispatcher tick, which sets Pulsar's e2e latency floor.
                done(Status::ok());
            });
        });
    });
}

void PulsarCluster::maybeOffload(const std::string& topic, int partition) {
    if (!cfg_.offloadEnabled || !offloadStore_) return;
    Partition* part = find(topic, partition);
    if (!part || part->sinceRollover < cfg_.ledgerRolloverBytes) return;
    uint64_t chunk = cfg_.ledgerRolloverBytes;
    part->sinceRollover -= chunk;
    // The offloader runs OUTSIDE the write path: no producer throttling;
    // if the object store is slower than ingest the backlog just grows
    // (the §5.7 imbalance).
    offloadStore_->put(chunk).onComplete([this, topic, partition, chunk](
                                             const Result<sim::Unit>&) {
        Partition* p = find(topic, partition);
        if (!p) return;
        p->offloadedUpTo += static_cast<int64_t>(chunk);
        offloadedBytes_ += chunk;
    });
}

void PulsarCluster::dispatchTick(int brokerId) {
    exec_.scheduleWeak(cfg_.dispatchInterval, [this, brokerId]() {
        Broker& broker = brokers_[static_cast<size_t>(brokerId)];
        if (!broker.crashed) {
            for (auto& [name, topic] : topics_) {
                for (auto& part : topic.partitions) {
                    if (part.broker != brokerId || !part.hasConsumer) continue;
                    if (part.records.empty() ||
                        part.records.back().endOffset <= part.consumerOffset) {
                        continue;
                    }
                    auto waiters = std::move(part.waiters);
                    part.waiters.clear();
                    for (auto& w : waiters) w();
                }
            }
        }
        dispatchTick(brokerId);
    });
}

// -------------------------------------------------------------- producer

PulsarProducer::PulsarProducer(PulsarCluster& cluster, sim::HostId clientHost,
                               std::string topic, uint64_t seed)
    : cluster_(cluster), clientHost_(clientHost), topic_(std::move(topic)),
      rngState_(seed | 1) {}

void PulsarProducer::send(std::string_view key, uint32_t sizeBytes, MessageAck2 ack) {
    auto* topic = &cluster_.topics_.at(topic_);
    int numPartitions = static_cast<int>(topic->partitions.size());

    int partition;
    bool withKey = !key.empty();
    if (withKey) {
        partition = static_cast<int>(fnv1a64(key) % numPartitions);
    } else {
        partition = rrPartition_;  // rotates when the batch closes
    }

    auto& batch = open_[partition];
    if (batch.events == 0) {
        batch.partition = partition;
        batch.openedAt = cluster_.exec_.now();
        if (cluster_.cfg_.batchingEnabled) armTimer(partition);
    }
    batch.bytes += sizeBytes;
    ++batch.events;
    batch.withKeys = batch.withKeys || withKey;
    if (ack) batch.acks.push_back(std::move(ack));

    if (!cluster_.cfg_.batchingEnabled || batch.bytes >= cluster_.cfg_.batchBytes) {
        if (!withKey) {
            rngState_ = mix64(rngState_);
            rrPartition_ = static_cast<int>(rngState_ % numPartitions);
        }
        closeBatch(partition);
    }
}

void PulsarProducer::armTimer(int partition) {
    uint64_t epoch = ++timerEpoch_[partition];
    cluster_.exec_.schedule(cluster_.cfg_.batchTime, [this, partition, epoch]() {
        auto it = timerEpoch_.find(partition);
        if (it == timerEpoch_.end() || it->second != epoch) return;
        auto bit = open_.find(partition);
        if (bit != open_.end() && bit->second.events > 0) closeBatch(partition);
    });
}

void PulsarProducer::closeBatch(int partition) {
    auto it = open_.find(partition);
    if (it == open_.end() || it->second.events == 0) return;
    ++timerEpoch_[partition];
    queued_[partition].push_back(std::move(it->second));
    open_.erase(it);
    trySend(partition);
}

void PulsarProducer::trySend(int partition) {
    auto& queue = queued_[partition];
    while (!queue.empty() &&
           outstanding_[partition] < cluster_.cfg_.maxPendingBytesPerPartition) {
        auto batch = std::make_shared<Batch>(std::move(queue.front()));
        queue.pop_front();
        outstanding_[partition] += batch->bytes;

        auto* part = cluster_.find(topic_, partition);
        if (!part) {
            for (auto& a : batch->acks) a(Status(Err::NotFound, "partition gone"));
            continue;
        }
        sim::HostId brokerHost =
            cluster_.brokers_[static_cast<size_t>(part->broker)].host;
        uint64_t wire = batch->bytes + cluster_.cfg_.wireOverheadBytes;
        cluster_.net_.send(clientHost_, brokerHost, wire, [this, batch, partition,
                                                           brokerHost]() {
            cluster_.produce(
                topic_, partition, batch->bytes, batch->events, batch->withKeys,
                batch->openedAt,
                [this, batch, partition, brokerHost](Status s) {
                    cluster_.net_.send(brokerHost, clientHost_,
                                       cluster_.cfg_.wireOverheadBytes,
                                       [this, batch, partition, s]() {
                                           outstanding_[partition] -= std::min(
                                               outstanding_[partition], batch->bytes);
                                           for (auto& a : batch->acks) a(s);
                                           trySend(partition);
                                       });
                });
        });
    }
}

void PulsarProducer::flush() {
    std::vector<int> partitions;
    for (auto& [p, b] : open_) partitions.push_back(p);
    for (int p : partitions) closeBatch(p);
}

// -------------------------------------------------------------- consumer

PulsarConsumer::PulsarConsumer(PulsarCluster& cluster, sim::HostId clientHost,
                               std::string topic, int partition, bool fromEarliest,
                               Delivery onDelivery)
    : cluster_(cluster),
      clientHost_(clientHost),
      topic_(std::move(topic)),
      partition_(partition),
      onDelivery_(std::move(onDelivery)),
      alive_(std::make_shared<bool>(true)) {
    auto* part = cluster_.find(topic_, partition_);
    if (part) {
        part->hasConsumer = true;
        offset_ = fromEarliest ? 0 : part->length;
        part->consumerOffset = offset_;
        catchingUp_ = fromEarliest;
    }
    catchUpLoop();
}

PulsarConsumer::~PulsarConsumer() { *alive_ = false; }

int64_t PulsarConsumer::backlogBytes() const {
    auto* part = const_cast<PulsarCluster&>(cluster_).find(topic_, partition_);
    return part ? part->length - offset_ : 0;
}

void PulsarConsumer::catchUpLoop() {
    auto* part = cluster_.find(topic_, partition_);
    if (!part) return;
    auto alive = alive_;
    auto& broker = cluster_.brokers_[static_cast<size_t>(part->broker)];
    sim::HostId brokerHost = broker.host;

    if (offset_ < part->offloadedUpTo && cluster_.offloadStore_) {
        // Historical read from offloaded storage: small block, one
        // outstanding request, index + entry lookups per block (§5.7's
        // "no configuration achieved read > write throughput").
        uint64_t block = std::min<uint64_t>(cluster_.cfg_.offloadReadBlockBytes,
                                            static_cast<uint64_t>(part->offloadedUpTo - offset_));
        cluster_.offloadStore_->get(block).onComplete([this, alive, block, brokerHost,
                                                       part](const Result<sim::Unit>&) {
            if (!*alive) return;
            auto& b = cluster_.brokers_[static_cast<size_t>(part->broker)];
            b.cpu->execute(block).onComplete([this, alive, block,
                                              brokerHost](const Result<sim::Unit>&) {
                cluster_.net_.send(brokerHost, clientHost_,
                                   block + cluster_.cfg_.wireOverheadBytes,
                                   [this, alive, block]() {
                                       if (!*alive) return;
                                       offset_ += static_cast<int64_t>(block);
                                       auto* p = cluster_.find(topic_, partition_);
                                       if (p) p->consumerOffset = offset_;
                                       onDelivery_(0, block, 0);
                                       catchUpLoop();
                                   });
            });
        });
        return;
    }

    if (offset_ < part->length) {
        // Read from BookKeeper / broker cache (fast path). Tail records
        // carry produce timestamps for e2e latency; key-ordered dispatch
        // pays extra passes and per-event CPU (§5.5).
        uint64_t bytes = 0;
        uint32_t events = 0;
        sim::TimePoint oldest = cluster_.exec_.now();
        bool withKeys = false;
        int64_t newOffset = offset_;
        sim::Duration hold = 0;
        for (const auto& rec : part->records) {
            if (rec.endOffset <= offset_) continue;
            if (rec.withKeys) {
                withKeys = true;
                hold = cluster_.cfg_.dispatchInterval *
                       (cluster_.cfg_.keyOrderedDispatchPasses - 1);
                if (rec.producedAt + hold > cluster_.exec_.now()) break;
            }
            bytes += rec.bytes;
            events += rec.events;
            oldest = std::min(oldest, rec.producedAt);
            newOffset = rec.endOffset;
        }
        if (bytes == 0) {
            // Key-ordered hold: try again next dispatch tick.
            part->waiters.push_back([this, alive]() {
                if (*alive) catchUpLoop();
            });
            return;
        }
        if (newOffset == part->length && offset_ == 0 && part->offloadedUpTo == 0 &&
            catchingUp_) {
            catchingUp_ = false;
        }
        offset_ = newOffset;
        part->consumerOffset = offset_;
        while (!part->records.empty() && part->records.front().endOffset <= offset_) {
            part->records.pop_front();
        }
        // Routing keys change the dispatch LATENCY (the hold above), not
        // throughput (§5.5); the single-threaded dispatcher charges per
        // delivery regardless.
        broker.dispatcher
            ->acquire(cluster_.cfg_.dispatchCost + sim::transferTime(bytes, 4.0e9))
            .onComplete([this, alive, bytes, events, oldest,
                         brokerHost](const Result<sim::Unit>&) {
                cluster_.net_.send(brokerHost, clientHost_,
                                   bytes + cluster_.cfg_.wireOverheadBytes,
                                   [this, alive, bytes, events, oldest]() {
                                       if (!*alive) return;
                                       onDelivery_(events, bytes,
                                                   cluster_.exec_.now() - oldest);
                                       catchUpLoop();
                                   });
            });
        return;
    }

    // At the tail: wait for the dispatcher to wake us.
    part->waiters.push_back([this, alive]() {
        if (*alive) catchUpLoop();
    });
}

std::unique_ptr<PulsarProducer> PulsarCluster::makeProducer(sim::HostId clientHost,
                                                            const std::string& topic) {
    static uint64_t seed = 0x9E37;
    return std::make_unique<PulsarProducer>(*this, clientHost, topic, mix64(++seed));
}

std::unique_ptr<PulsarConsumer> PulsarCluster::makeConsumer(sim::HostId clientHost,
                                                            const std::string& topic,
                                                            int partition, bool fromEarliest,
                                                            PulsarConsumer::Delivery onDelivery) {
    return std::make_unique<PulsarConsumer>(*this, clientHost, topic, partition, fromEarliest,
                                            std::move(onDelivery));
}

}  // namespace pravega::baselines
