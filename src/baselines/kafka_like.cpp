#include "baselines/kafka_like.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::baselines {

// ------------------------------------------------------------- cluster

KafkaCluster::KafkaCluster(sim::Core& exec, sim::Network& net, sim::HostId firstBrokerHost,
                           KafkaConfig cfg)
    : exec_(exec), net_(net), cfg_(cfg) {
    for (int b = 0; b < cfg_.brokers; ++b) {
        Broker broker;
        broker.host = firstBrokerHost + b;
        broker.cpu = std::make_unique<sim::CpuModel>(exec_, cfg_.cpu);
        broker.disk = std::make_unique<sim::DiskModel>(exec_, cfg_.disk);
        brokers_.push_back(std::move(broker));
    }
    for (int b = 0; b < cfg_.brokers; ++b) pageFlushTick(b);
}

void KafkaCluster::createTopic(const std::string& name, int partitions) {
    Topic topic;
    for (int p = 0; p < partitions; ++p) {
        Partition part;
        part.leader = p % cfg_.brokers;
        for (int r = 1; r < cfg_.replicationFactor; ++r) {
            part.followers.push_back((part.leader + r) % cfg_.brokers);
        }
        part.appendPipe = std::make_unique<sim::QueuedResource>(exec_, 1);
        topic.partitions.push_back(std::move(part));
    }
    topics_[name] = std::move(topic);
}

KafkaCluster::Partition* KafkaCluster::find(const std::string& topic, int partition) {
    auto it = topics_.find(topic);
    if (it == topics_.end()) return nullptr;
    if (partition < 0 || partition >= static_cast<int>(it->second.partitions.size())) {
        return nullptr;
    }
    return &it->second.partitions[static_cast<size_t>(partition)];
}

uint64_t KafkaCluster::partitionFileId(const std::string& topic, int partition) const {
    return fnv1a64(topic) ^ mix64(static_cast<uint64_t>(partition) + 0x5EED);
}

uint64_t KafkaCluster::diskBytesWritten() const {
    uint64_t total = 0;
    for (const auto& b : brokers_) total += b.disk->bytesWritten();
    return total;
}

void KafkaCluster::produce(const std::string& topic, int partition, uint64_t bytes,
                           uint32_t events, sim::TimePoint producedAt,
                           std::function<void(Status)> done) {
    Partition* part = find(topic, partition);
    if (!part) {
        done(Status(Err::NotFound, "no such topic-partition"));
        return;
    }
    Broker& leader = brokers_[static_cast<size_t>(part->leader)];
    uint64_t fileId = partitionFileId(topic, partition);

    // Durable write at one replica: fsync per produce batch when
    // flush.messages=1, page cache (deferred, aggregated) otherwise.
    auto writeAt = [this, fileId, bytes](int brokerId,
                                         const std::string& topicName,
                                         int part2) -> sim::Future<sim::Unit> {
        Broker& b = brokers_[static_cast<size_t>(brokerId)];
        if (cfg_.flushEveryMessage) {
            return b.disk->write(fileId, bytes, /*fsync=*/true);
        }
        // Page cache: the ack does not wait for the drive, but dirty pages
        // stall the produce path when the background flusher falls behind
        // (Linux dirty throttling).
        Partition* p = find(topicName, part2);
        if (p) p->dirtyByBroker[brokerId] += bytes;
        double backlogSec = sim::toSeconds(b.disk->backlog());
        if (backlogSec > cfg_.dirtyStallSeconds) {
            return b.disk->write(fileId, 0, false);  // queue behind the drive
        }
        return sim::Future<sim::Unit>::ready(sim::Unit{});
    };

    auto state = std::make_shared<int>(0);  // replicas durable
    auto maybeFinish = [this, state, done, topic, partition, bytes, events, producedAt]() {
        if (*state != cfg_.minInsyncReplicas) return;
        ++*state;  // fire once
        Partition* part2 = find(topic, partition);
        if (!part2) {
            done(Status(Err::NotFound, "partition vanished"));
            return;
        }
        bytesProduced_ += bytes;
        part2->length += static_cast<int64_t>(bytes);
        part2->records.push_back(
            BatchRecord{part2->length, events, bytes, producedAt});
        // Bound memory when nobody consumes.
        if (!part2->hasConsumer && part2->records.size() > 4) {
            part2->records.pop_front();
        }
        auto waiters = std::move(part2->waiters);
        part2->waiters.clear();
        for (auto& w : waiters) w();
        done(Status::ok());
    };

    // Leader handles the request (CPU + the partition's single-threaded
    // append pipeline), writes locally, and replicates to followers in
    // parallel; ack when min.insync.replicas are durable.
    sim::Duration pipeWork =
        cfg_.partitionPerRequest + sim::transferTime(bytes, cfg_.partitionBytesPerSec);
    leader.cpu->execute(bytes)
        .thenAsync([part, pipeWork](const sim::Unit&) { return part->appendPipe->acquire(pipeWork); })
        .onComplete([this, topic, partition, writeAt, state, maybeFinish,
                     part](const Result<sim::Unit>&) {
        writeAt(part->leader, topic, partition)
            .onComplete([state, maybeFinish](const Result<sim::Unit>&) {
                ++*state;
                maybeFinish();
            });
        for (int follower : part->followers) {
            Broker& leaderB = brokers_[static_cast<size_t>(part->leader)];
            Broker& followerB = brokers_[static_cast<size_t>(follower)];
            uint64_t bytes2 = cfg_.wireOverheadBytes;
            net_.send(leaderB.host, followerB.host, bytes2,
                      [this, follower, topic, partition, writeAt, state, maybeFinish,
                       &leaderB, &followerB]() {
                          writeAt(follower, topic, partition)
                              .onComplete([this, state, maybeFinish, &leaderB,
                                           &followerB](const Result<sim::Unit>&) {
                                  net_.send(followerB.host, leaderB.host,
                                            cfg_.wireOverheadBytes, [state, maybeFinish]() {
                                                ++*state;
                                                maybeFinish();
                                            });
                              });
                      });
        }
    });
}

void KafkaCluster::pageFlushTick(int brokerId) {
    exec_.scheduleWeak(cfg_.pageFlushInterval, [this, brokerId]() {
        Broker& broker = brokers_[static_cast<size_t>(brokerId)];
        if (!cfg_.flushEveryMessage) {
            // The OS writes each partition's dirty pages as a separate
            // (large) write to that partition's file — this is where the
            // one-file-per-partition design pays at high partition counts.
            for (auto& [name, topic] : topics_) {
                for (size_t p = 0; p < topic.partitions.size(); ++p) {
                    Partition& part = topic.partitions[p];
                    auto it = part.dirtyByBroker.find(brokerId);
                    if (it == part.dirtyByBroker.end() || it->second == 0) continue;
                    broker.disk->write(partitionFileId(name, static_cast<int>(p)), it->second,
                                       false);
                    it->second = 0;
                }
            }
        }
        pageFlushTick(brokerId);
    });
}

// ------------------------------------------------------------- producer

KafkaProducer::KafkaProducer(KafkaCluster& cluster, sim::HostId clientHost, std::string topic,
                             uint64_t seed)
    : cluster_(cluster), clientHost_(clientHost), topic_(std::move(topic)), rngState_(seed | 1) {}

void KafkaProducer::send(std::string_view key, uint32_t sizeBytes, MessageAck ack) {
    auto* topic = &cluster_.topics_.at(topic_);
    int numPartitions = static_cast<int>(topic->partitions.size());

    int partition;
    if (key.empty()) {
        // Sticky partitioner: fill one partition's batch, then rotate —
        // this is why keyless Kafka batches so much better (§5.3, §5.5).
        partition = stickyPartition_;
        stickyBytes_ += sizeBytes;
        if (stickyBytes_ >= cluster_.cfg_.batchBytes) {
            stickyBytes_ = 0;
            rngState_ = mix64(rngState_);
            stickyPartition_ = static_cast<int>(rngState_ % numPartitions);
        }
    } else {
        partition = static_cast<int>(fnv1a64(key) % numPartitions);
    }

    if (pendingBytes_ > cluster_.cfg_.maxPendingBytes) {
        // buffer.memory exhausted → block (we model as drop-with-error so
        // open-loop benches observe saturation instead of infinite memory).
        if (ack) ack(Status(Err::Throttled, "producer buffer full"));
        return;
    }

    auto& batch = open_[partition];
    if (batch.events == 0) {
        batch.partition = partition;
        batch.openedAt = cluster_.exec_.now();
        armLinger(partition);
    }
    batch.bytes += sizeBytes;
    ++batch.events;
    if (ack) batch.acks.push_back(std::move(ack));
    pendingBytes_ += sizeBytes;

    if (batch.bytes >= cluster_.cfg_.batchBytes) closeBatch(partition);
}

void KafkaProducer::armLinger(int partition) {
    uint64_t epoch = ++lingerEpoch_[partition];
    cluster_.exec_.schedule(cluster_.cfg_.lingerTime, [this, partition, epoch]() {
        auto it = lingerEpoch_.find(partition);
        if (it == lingerEpoch_.end() || it->second != epoch) return;
        auto bit = open_.find(partition);
        if (bit != open_.end() && bit->second.events > 0) closeBatch(partition);
    });
}

void KafkaProducer::closeBatch(int partition) {
    auto it = open_.find(partition);
    if (it == open_.end() || it->second.events == 0) return;
    ++lingerEpoch_[partition];
    Batch batch = std::move(it->second);
    open_.erase(it);
    int leader = cluster_.topics_.at(topic_).partitions[static_cast<size_t>(partition)].leader;
    queued_[leader].push_back(std::move(batch));
    trySend(leader);
}

void KafkaProducer::trySend(int brokerId) {
    auto& queue = queued_[brokerId];
    while (!queue.empty() && inFlight_[brokerId] < cluster_.cfg_.maxInFlightPerBroker) {
        // One produce REQUEST carries every ready batch for this broker
        // (multi-partition requests, like the real protocol).
        auto request = std::make_shared<std::vector<Batch>>();
        uint64_t requestBytes = 0;
        while (!queue.empty() && (request->empty() ||
                                  requestBytes < cluster_.cfg_.maxRequestBytes)) {
            requestBytes += queue.front().bytes;
            request->push_back(std::move(queue.front()));
            queue.pop_front();
        }
        ++inFlight_[brokerId];
        uint64_t wire = requestBytes + cluster_.cfg_.wireOverheadBytes;
        sim::HostId brokerHost = cluster_.brokers_[static_cast<size_t>(brokerId)].host;
        cluster_.net_.send(clientHost_, brokerHost, wire, [this, request, requestBytes,
                                                           brokerId, brokerHost]() {
            // All batches in the request are appended (to their partitions)
            // concurrently; the response returns when every one is done.
            auto remaining = std::make_shared<size_t>(request->size());
            auto worst = std::make_shared<Status>();
            for (auto& batch : *request) {
                cluster_.produce(
                    topic_, batch.partition, batch.bytes, batch.events, batch.openedAt,
                    [this, request, requestBytes, brokerId, brokerHost, remaining,
                     worst](Status s) {
                        if (!s.isOk()) *worst = s;
                        if (--*remaining > 0) return;
                        cluster_.net_.send(
                            brokerHost, clientHost_, cluster_.cfg_.wireOverheadBytes,
                            [this, request, requestBytes, brokerId, worst]() {
                                --inFlight_[brokerId];
                                pendingBytes_ -= std::min(pendingBytes_, requestBytes);
                                for (auto& batch : *request) {
                                    for (auto& a : batch.acks) a(*worst);
                                }
                                trySend(brokerId);
                            });
                    });
            }
        });
    }
}

void KafkaProducer::flush() {
    std::vector<int> partitions;
    partitions.reserve(open_.size());
    for (auto& [p, b] : open_) partitions.push_back(p);
    for (int p : partitions) closeBatch(p);
}

// ------------------------------------------------------------- consumer

KafkaConsumer::KafkaConsumer(KafkaCluster& cluster, sim::HostId clientHost, std::string topic,
                             int partition, Delivery onDelivery)
    : cluster_(cluster),
      clientHost_(clientHost),
      topic_(std::move(topic)),
      partition_(partition),
      onDelivery_(std::move(onDelivery)),
      alive_(std::make_shared<bool>(true)) {
    auto* part = cluster_.find(topic_, partition_);
    if (part) {
        part->hasConsumer = true;
        offset_ = part->length;  // tail consumption
    }
    fetchLoop();
}

KafkaConsumer::~KafkaConsumer() { *alive_ = false; }

void KafkaConsumer::fetchLoop() {
    auto* part = cluster_.find(topic_, partition_);
    if (!part) return;
    auto alive = alive_;

    if (part->records.empty() || part->records.back().endOffset <= offset_) {
        // Long poll: wake when the next produce lands.
        part->waiters.push_back([this, alive]() {
            if (*alive) fetchLoop();
        });
        return;
    }
    // Deliver all available batches in one fetch response.
    uint64_t bytes = 0;
    std::vector<KafkaCluster::BatchRecord> out;
    for (const auto& rec : part->records) {
        if (rec.endOffset > offset_) {
            out.push_back(rec);
            bytes += rec.bytes;
        }
    }
    offset_ = part->records.back().endOffset;
    // Trim consumed records.
    while (!part->records.empty() && part->records.front().endOffset <= offset_) {
        part->records.pop_front();
    }

    int leader = part->leader;
    sim::HostId brokerHost = cluster_.brokers_[static_cast<size_t>(leader)].host;
    auto& broker = cluster_.brokers_[static_cast<size_t>(leader)];
    broker.cpu->execute(bytes).onComplete([this, alive, out = std::move(out), bytes,
                                           brokerHost](const Result<sim::Unit>&) {
        cluster_.net_.send(brokerHost, clientHost_, bytes + cluster_.cfg_.wireOverheadBytes,
                           [this, alive, out]() {
                               if (!*alive) return;
                               for (const auto& rec : out) {
                                   onDelivery_(rec.events, rec.bytes,
                                               cluster_.exec_.now() - rec.producedAt);
                               }
                               fetchLoop();
                           });
    });
}

std::unique_ptr<KafkaProducer> KafkaCluster::makeProducer(sim::HostId clientHost,
                                                          const std::string& topic) {
    static uint64_t seed = 0x7A57E;
    return std::make_unique<KafkaProducer>(*this, clientHost, topic, mix64(++seed));
}

std::unique_ptr<KafkaConsumer> KafkaCluster::makeConsumer(sim::HostId clientHost,
                                                          const std::string& topic,
                                                          int partition,
                                                          KafkaConsumer::Delivery onDelivery) {
    return std::make_unique<KafkaConsumer>(*this, clientHost, topic, partition,
                                           std::move(onDelivery));
}

}  // namespace pravega::baselines
