// Kafka-like baseline (§5, "Apache Kafka 2.6" comparisons).
//
// Models the design properties the paper attributes Kafka's behaviour to,
// on the same simulated hardware as Pravega:
//   - one log FILE PER PARTITION on the broker drive (no multiplexing): at
//     high partition counts the drive pays a file-switch cost per flush,
//     which is the §5.6 degradation;
//   - page-cache writes by default (no fsync before ack; the §5.2
//     durability trade-off) vs flush.messages=1 (fsync per produce batch);
//   - leader/follower replication with acks=all, min.insync.replicas=2;
//   - client-side batching only: linger.ms + batch.size per partition,
//     sticky partitioner without keys, hash partitioning with keys (the
//     §5.3/§5.5 routing-key effect: random keys spread events thin across
//     per-partition batches).
//
// Payloads are modeled by size only (the data path cost is bytes, not
// content); producer→consumer latency is tracked per produce batch.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/models.h"
#include "sim/network.h"

namespace pravega::baselines {

using MessageAck = std::function<void(Status)>;

struct KafkaConfig {
    int brokers = 3;
    int replicationFactor = 3;
    int minInsyncReplicas = 2;
    /// log.flush.interval.messages=1 — fsync before every ack (§5.2).
    bool flushEveryMessage = false;

    // Producer knobs (defaults per §5.1: 128KB / 1ms).
    uint64_t batchBytes = 128 * 1024;
    sim::Duration lingerTime = sim::msec(1);
    int maxInFlightPerBroker = 5;
    /// One produce request carries every ready batch for a broker, up to
    /// this size (max.request.size) — the real protocol's multi-partition
    /// produce requests.
    uint64_t maxRequestBytes = 1024 * 1024;
    uint64_t maxPendingBytes = 32 * 1024 * 1024;  // producer buffer.memory

    /// Per-partition append pipeline on the leader (single-threaded log
    /// appender: CRC, copy, index update). This is the single-partition
    /// throughput ceiling the paper observes (~70 MB/s in Fig 7a).
    double partitionBytesPerSec = 70.0 * 1024 * 1024;
    sim::Duration partitionPerRequest = sim::usec(30);

    // Broker page-cache flushing.
    sim::Duration pageFlushInterval = sim::msec(200);
    /// Dirty-page backlog (seconds of drive time) beyond which produces stall.
    double dirtyStallSeconds = 0.5;

    uint64_t wireOverheadBytes = 64;
    sim::CpuModel::Config cpu;
    sim::DiskModel::Config disk;
};

class KafkaCluster;

/// Producer handle: per-partition batching with linger/size close rules.
class KafkaProducer {
public:
    KafkaProducer(KafkaCluster& cluster, sim::HostId clientHost, std::string topic,
                  uint64_t seed);

    /// `key` empty → sticky partitioner; otherwise hash partitioning.
    void send(std::string_view key, uint32_t sizeBytes, MessageAck ack);
    void flush();

    uint64_t pendingBytes() const { return pendingBytes_; }

private:
    friend class KafkaCluster;
    struct Batch {
        int partition = 0;
        uint64_t bytes = 0;
        uint32_t events = 0;
        sim::TimePoint openedAt = 0;
        std::vector<MessageAck> acks;
    };

    void closeBatch(int partition);
    void trySend(int brokerId);
    void armLinger(int partition);

    KafkaCluster& cluster_;
    sim::HostId clientHost_;
    std::string topic_;
    std::map<int, Batch> open_;                 // partition → open batch
    std::map<int, std::deque<Batch>> queued_;   // broker → ready batches
    std::map<int, int> inFlight_;               // broker → outstanding requests
    std::map<int, uint64_t> lingerEpoch_;
    uint64_t pendingBytes_ = 0;
    int stickyPartition_ = 0;
    uint64_t stickyBytes_ = 0;
    uint64_t rngState_;
};

/// Consumer handle: long-poll fetch of one partition, reporting per-batch
/// end-to-end latency (produce time → delivery).
class KafkaConsumer {
public:
    using Delivery = std::function<void(uint32_t events, uint64_t bytes, sim::Duration e2e)>;

    KafkaConsumer(KafkaCluster& cluster, sim::HostId clientHost, std::string topic,
                  int partition, Delivery onDelivery);
    ~KafkaConsumer();

private:
    friend class KafkaCluster;
    void fetchLoop();

    KafkaCluster& cluster_;
    sim::HostId clientHost_;
    std::string topic_;
    int partition_;
    Delivery onDelivery_;
    int64_t offset_ = 0;
    std::shared_ptr<bool> alive_;
};

class KafkaCluster {
public:
    KafkaCluster(sim::Core& exec, sim::Network& net, sim::HostId firstBrokerHost,
                 KafkaConfig cfg);

    void createTopic(const std::string& name, int partitions);

    std::unique_ptr<KafkaProducer> makeProducer(sim::HostId clientHost,
                                                const std::string& topic);
    std::unique_ptr<KafkaConsumer> makeConsumer(sim::HostId clientHost,
                                                const std::string& topic, int partition,
                                                KafkaConsumer::Delivery onDelivery);

    const KafkaConfig& config() const { return cfg_; }
    uint64_t bytesProduced() const { return bytesProduced_; }
    uint64_t diskBytesWritten() const;

private:
    friend class KafkaProducer;
    friend class KafkaConsumer;

    struct BatchRecord {
        int64_t endOffset;
        uint32_t events;
        uint64_t bytes;
        sim::TimePoint producedAt;
    };
    struct Partition {
        int leader = 0;
        std::vector<int> followers;
        int64_t length = 0;
        /// Serialized leader-side append pipeline (see partitionBytesPerSec).
        std::unique_ptr<sim::QueuedResource> appendPipe;
        /// Page-cache bytes not yet written to disk, per replica broker.
        std::map<int, uint64_t> dirtyByBroker;
        std::deque<BatchRecord> records;  // for consumer delivery/latency
        std::vector<std::function<void()>> waiters;  // long-poll fetches
        bool hasConsumer = false;
    };
    struct Broker {
        sim::HostId host;
        std::unique_ptr<sim::CpuModel> cpu;
        std::unique_ptr<sim::DiskModel> disk;
    };
    struct Topic {
        std::vector<Partition> partitions;
    };

    /// Handles one produce request at the leader; `done` fires when the
    /// replication/durability requirements are satisfied.
    void produce(const std::string& topic, int partition, uint64_t bytes, uint32_t events,
                 sim::TimePoint producedAt, std::function<void(Status)> done);
    void pageFlushTick(int brokerId);
    uint64_t partitionFileId(const std::string& topic, int partition) const;
    Partition* find(const std::string& topic, int partition);

    sim::Core& exec_;
    sim::Network& net_;
    KafkaConfig cfg_;
    std::vector<Broker> brokers_;
    std::map<std::string, Topic> topics_;
    uint64_t bytesProduced_ = 0;
    uint64_t flushEpoch_ = 0;
};

}  // namespace pravega::baselines
