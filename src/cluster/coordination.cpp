#include "cluster/coordination.h"

#include "common/logging.h"
#include "common/serde.h"

namespace pravega::cluster {

Result<int64_t> CoordinationStore::create(const std::string& key, Bytes value) {
    if (nodes_.contains(key)) return Status(Err::AlreadyExists, key);
    nodes_[key] = Node{std::move(value), 1};
    notify(key);
    return static_cast<int64_t>(1);
}

Result<int64_t> CoordinationStore::set(const std::string& key, Bytes value,
                                       int64_t expectedVersion) {
    auto it = nodes_.find(key);
    if (it == nodes_.end()) {
        if (expectedVersion > 0) return Status(Err::BadVersion, key);
        nodes_[key] = Node{std::move(value), 1};
        notify(key);
        return static_cast<int64_t>(1);
    }
    if (expectedVersion >= 0 && it->second.version != expectedVersion) {
        return Status(Err::BadVersion, key);
    }
    it->second.value = std::move(value);
    ++it->second.version;
    notify(key);
    return it->second.version;
}

Result<CoordinationStore::Node> CoordinationStore::get(const std::string& key) const {
    auto it = nodes_.find(key);
    if (it == nodes_.end()) return Status(Err::NotFound, key);
    return it->second;
}

Status CoordinationStore::remove(const std::string& key) {
    if (nodes_.erase(key) == 0) return Status(Err::NotFound, key);
    notify(key);
    return Status::ok();
}

std::vector<std::string> CoordinationStore::list(const std::string& prefix) const {
    std::vector<std::string> out;
    for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0) break;
        out.push_back(it->first);
    }
    return out;
}

void CoordinationStore::watch(std::string prefix, Watcher watcher) {
    watchers_.emplace_back(std::move(prefix), std::move(watcher));
}

void CoordinationStore::notify(const std::string& key) {
    for (const auto& [prefix, watcher] : watchers_) {
        if (key.compare(0, prefix.size(), prefix) == 0) watcher(key);
    }
}

Status ContainerRegistry::assign(uint32_t containerId, segmentstore::SegmentStore* store) {
    std::string key = "containers/" + std::to_string(containerId);
    Bytes value;
    BinaryWriter w(value);
    w.u32(static_cast<uint32_t>(store->host()));
    store_.set(key, std::move(value));
    owners_[containerId] = store;
    return store->addContainer(containerId);
}

Status ContainerRegistry::rebalance(const std::vector<segmentstore::SegmentStore*>& stores) {
    if (stores.empty()) return Status(Err::InvalidArgument, "no stores");
    for (uint32_t c = 0; c < containerCount_; ++c) {
        segmentstore::SegmentStore* target = stores[c % stores.size()];
        auto it = owners_.find(c);
        if (it != owners_.end() && it->second == target) continue;
        if (it != owners_.end() && it->second != nullptr) {
            it->second->removeContainer(c);  // graceful handoff
        }
        Status s = assign(c, target);
        if (!s) return s;
    }
    return Status::ok();
}

Status ContainerRegistry::moveContainer(uint32_t containerId,
                                        segmentstore::SegmentStore* target) {
    if (target == nullptr) return Status(Err::InvalidArgument, "null target");
    if (containerId >= containerCount_) return Status(Err::InvalidArgument, "bad container");
    auto it = owners_.find(containerId);
    if (it != owners_.end() && it->second == target) return Status::ok();
    if (it != owners_.end() && it->second != nullptr) {
        it->second->removeContainer(containerId);  // graceful handoff
    }
    return assign(containerId, target);
}

Status ContainerRegistry::failStore(segmentstore::SegmentStore* crashed,
                                    const std::vector<segmentstore::SegmentStore*>& survivors) {
    if (survivors.empty()) return Status(Err::InvalidArgument, "no survivors");
    size_t next = 0;
    for (auto& [containerId, owner] : owners_) {
        if (owner != crashed) continue;
        // No graceful shutdown: the survivor's recovery fences the WAL and
        // the crashed instance's subsequent writes fail (§4.4).
        Status s = assign(containerId, survivors[next % survivors.size()]);
        if (!s) return s;
        ++next;
    }
    return Status::ok();
}

segmentstore::SegmentStore* ContainerRegistry::ownerOf(uint32_t containerId) const {
    auto it = owners_.find(containerId);
    return it == owners_.end() ? nullptr : it->second;
}

segmentstore::SegmentContainer* ContainerRegistry::containerFor(uint32_t containerId) const {
    auto* store = ownerOf(containerId);
    return store ? store->container(containerId) : nullptr;
}

}  // namespace pravega::cluster
