#include "cluster/chaos.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/logging.h"

namespace pravega::cluster {

const char* chaosKindName(ChaosEvent::Kind kind) {
    switch (kind) {
        case ChaosEvent::Kind::BookieCrash: return "bookie-crash";
        case ChaosEvent::Kind::BookieRestart: return "bookie-restart";
        case ChaosEvent::Kind::StoreCrash: return "store-crash";
        case ChaosEvent::Kind::Partition: return "partition";
        case ChaosEvent::Kind::Heal: return "heal";
        case ChaosEvent::Kind::LinkDegrade: return "link-degrade";
        case ChaosEvent::Kind::LtsOutage: return "lts-outage";
        case ChaosEvent::Kind::LtsSlowdown: return "lts-slowdown";
        case ChaosEvent::Kind::LtsRestore: return "lts-restore";
    }
    return "unknown";
}

ChaosSchedule::ChaosSchedule(PravegaCluster& cluster, Config cfg)
    : cluster_(cluster), cfg_(cfg) {
    generate();
}

void ChaosSchedule::generate() {
    sim::Rng rng(cfg_.seed);
    const auto& ccfg = cluster_.config();

    // Candidate fault classes, re-evaluated per slot so caps apply.
    enum class Cls { Bookie, PartitionSB, Degrade, Store, LtsOut, LtsSlow };

    const sim::Duration slot = cfg_.horizon / std::max(1, cfg_.faults);
    std::vector<int> crashedBookies;
    for (int i = 0; i < cfg_.faults; ++i) {
        std::vector<Cls> classes;
        if (cfg_.bookieFaults && ccfg.bookies > 0) classes.push_back(Cls::Bookie);
        if (cfg_.networkFaults) {
            if (cfg_.partitionFaults) classes.push_back(Cls::PartitionSB);
            if (cfg_.degradeFaults) classes.push_back(Cls::Degrade);
        }
        if (cfg_.storeFaults && plannedStoreCrashes_ < cfg_.maxStoreCrashes &&
            plannedStoreCrashes_ + 1 < ccfg.segmentStores) {
            classes.push_back(Cls::Store);
        }
        if (cfg_.ltsFaults) {
            if (cfg_.ltsOutageFaults) classes.push_back(Cls::LtsOut);
            if (cfg_.ltsSlowdownFaults) classes.push_back(Cls::LtsSlow);
        }
        if (classes.empty()) break;

        const sim::TimePoint slotStart = cfg_.start + static_cast<sim::Duration>(i) * slot;
        // The fault opens in the first half of its slot and closes before
        // the slot ends, so windows never overlap across slots.
        const sim::TimePoint at =
            slotStart + static_cast<sim::Duration>(rng.nextBounded(
                            static_cast<uint64_t>(std::max<sim::Duration>(1, slot / 2))));
        const sim::Duration window = static_cast<sim::Duration>(
            slot / 8 + static_cast<sim::Duration>(rng.nextBounded(
                           static_cast<uint64_t>(std::max<sim::Duration>(1, slot / 4)))));

        Cls cls = classes[rng.nextBounded(classes.size())];
        switch (cls) {
            case Cls::Bookie: {
                // Prefer bookies not crashed earlier in this schedule: once a
                // crash triggers ensemble changes, the evicted bookie carries
                // no traffic, so re-crashing it would exercise (and surface)
                // nothing. Cycle through all of them before repeating.
                std::vector<int> candidates;
                for (int b = 0; b < ccfg.bookies; ++b) {
                    if (std::find(crashedBookies.begin(), crashedBookies.end(), b) ==
                        crashedBookies.end()) {
                        candidates.push_back(b);
                    }
                }
                if (candidates.empty()) {
                    crashedBookies.clear();
                    for (int b = 0; b < ccfg.bookies; ++b) candidates.push_back(b);
                }
                int bookie = candidates[rng.nextBounded(candidates.size())];
                crashedBookies.push_back(bookie);
                timeline_.push_back({at, ChaosEvent::Kind::BookieCrash, bookie, -1, window, 0});
                timeline_.push_back(
                    {at + window, ChaosEvent::Kind::BookieRestart, bookie, -1, 0, 0});
                break;
            }
            case Cls::PartitionSB: {
                int store = static_cast<int>(rng.nextBounded(
                    static_cast<uint64_t>(std::max(1, ccfg.segmentStores))));
                int bookie = static_cast<int>(rng.nextBounded(
                    static_cast<uint64_t>(std::max(1, ccfg.bookies))));
                int a = cluster_.storeHost(static_cast<size_t>(store));
                int b = cluster_.bookieHost(static_cast<size_t>(bookie));
                timeline_.push_back({at, ChaosEvent::Kind::Partition, a, b, window, 0});
                timeline_.push_back({at + window, ChaosEvent::Kind::Heal, a, b, 0, 0});
                break;
            }
            case Cls::Degrade: {
                int store = static_cast<int>(rng.nextBounded(
                    static_cast<uint64_t>(std::max(1, ccfg.segmentStores))));
                int bookie = static_cast<int>(rng.nextBounded(
                    static_cast<uint64_t>(std::max(1, ccfg.bookies))));
                int a = cluster_.storeHost(static_cast<size_t>(store));
                int b = cluster_.bookieHost(static_cast<size_t>(bookie));
                // 1–25% of nominal bandwidth plus 0.2–1.2 ms extra latency.
                double factor = 0.01 + 0.24 * rng.nextDouble();
                timeline_.push_back(
                    {at, ChaosEvent::Kind::LinkDegrade, a, b, window, factor});
                break;
            }
            case Cls::Store: {
                int store = plannedStoreCrashes_++;
                timeline_.push_back({at, ChaosEvent::Kind::StoreCrash, store, -1, 0, 0});
                break;
            }
            case Cls::LtsOut: {
                timeline_.push_back({at, ChaosEvent::Kind::LtsOutage, -1, -1, window, 0});
                break;
            }
            case Cls::LtsSlow: {
                double extraMs = 1.0 + 20.0 * rng.nextDouble();
                timeline_.push_back({at, ChaosEvent::Kind::LtsSlowdown, -1, -1, window,
                                     extraMs * sim::kMillisecond});
                timeline_.push_back({at + window, ChaosEvent::Kind::LtsRestore, -1, -1, 0, 0});
                break;
            }
        }
    }
    std::stable_sort(timeline_.begin(), timeline_.end(),
                     [](const ChaosEvent& x, const ChaosEvent& y) { return x.at < y.at; });
}

void ChaosSchedule::arm() {
    assert(!armed_ && "a schedule arms once");
    armed_ = true;
    sim::Core& exec = cluster_.executor();
    for (const ChaosEvent& ev : timeline_) {
        exec.schedule(std::max<sim::Duration>(0, ev.at - exec.now()),
                      [this, ev]() { execute(ev); });
    }
}

void ChaosSchedule::execute(const ChaosEvent& ev) {
    std::string line = "t=" + std::to_string(ev.at) + " " + chaosKindName(ev.kind);
    Status applied;
    switch (ev.kind) {
        case ChaosEvent::Kind::BookieCrash:
            applied = cluster_.crashBookie(static_cast<size_t>(ev.a));
            line += " bookie=" + std::to_string(ev.a);
            break;
        case ChaosEvent::Kind::BookieRestart:
            applied = cluster_.restartBookie(static_cast<size_t>(ev.a));
            line += " bookie=" + std::to_string(ev.a);
            break;
        case ChaosEvent::Kind::StoreCrash:
            applied = cluster_.crashStore(static_cast<size_t>(ev.a));
            line += " store=" + std::to_string(ev.a);
            break;
        case ChaosEvent::Kind::Partition:
            cluster_.network().partition(ev.a, ev.b);
            line += " hosts=" + std::to_string(ev.a) + "," + std::to_string(ev.b);
            break;
        case ChaosEvent::Kind::Heal:
            cluster_.network().heal(ev.a, ev.b);
            line += " hosts=" + std::to_string(ev.a) + "," + std::to_string(ev.b);
            break;
        case ChaosEvent::Kind::LinkDegrade:
            cluster_.network().degrade(ev.a, ev.b, sim::usec(500), ev.magnitude,
                                       ev.duration);
            line += " hosts=" + std::to_string(ev.a) + "," + std::to_string(ev.b) +
                    " factor=" + std::to_string(ev.magnitude);
            break;
        case ChaosEvent::Kind::LtsOutage:
            if (auto* flts = cluster_.faultLts()) {
                flts->startOutage(ev.duration);
            } else {
                applied = Status(Err::InvalidArgument, "faultInjectLts off");
            }
            line += " for=" + std::to_string(ev.duration);
            break;
        case ChaosEvent::Kind::LtsSlowdown:
            if (auto* flts = cluster_.faultLts()) {
                flts->setExtraLatency(static_cast<sim::Duration>(ev.magnitude));
            } else {
                applied = Status(Err::InvalidArgument, "faultInjectLts off");
            }
            line += " extra=" + std::to_string(static_cast<int64_t>(ev.magnitude));
            break;
        case ChaosEvent::Kind::LtsRestore:
            if (auto* flts = cluster_.faultLts()) flts->setExtraLatency(0);
            break;
    }
    if (!applied.isOk()) line += " [skipped: " + applied.toString() + "]";
    executed_.push_back(line);
    PLOG_INFO("chaos", "%s", line.c_str());
}

sim::TimePoint ChaosSchedule::endTime() const {
    sim::TimePoint end = cfg_.start;
    for (const ChaosEvent& ev : timeline_) end = std::max(end, ev.at + ev.duration);
    return end;
}

std::vector<detect::FaultWindow> ChaosSchedule::faultWindows() const {
    std::vector<detect::FaultWindow> out;
    for (const ChaosEvent& ev : timeline_) {
        switch (ev.kind) {
            case ChaosEvent::Kind::BookieCrash:
            case ChaosEvent::Kind::Partition:
            case ChaosEvent::Kind::LinkDegrade:
            case ChaosEvent::Kind::LtsOutage:
            case ChaosEvent::Kind::LtsSlowdown:
                out.push_back({chaosKindName(ev.kind), ev.a, ev.b, ev.at,
                               ev.at + ev.duration});
                break;
            case ChaosEvent::Kind::StoreCrash:
                // Permanent: the window runs to the end of the schedule.
                out.push_back({chaosKindName(ev.kind), ev.a, ev.b, ev.at, endTime()});
                break;
            case ChaosEvent::Kind::BookieRestart:
            case ChaosEvent::Kind::Heal:
            case ChaosEvent::Kind::LtsRestore:
                break;  // closers; already folded into the opener's window
        }
    }
    // timeline_ is at-sorted, so windows come out start-sorted already.
    return out;
}

std::string ChaosSchedule::groundTruthJson() const {
    char buf[64];
    std::string out = "{\"seed\":";
    out += std::to_string(cfg_.seed);
    std::snprintf(buf, sizeof(buf), ",\"start_ms\":%.6g", sim::toMillis(cfg_.start));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"horizon_ms\":%.6g", sim::toMillis(cfg_.horizon));
    out += buf;
    out += ",\"windows\":[";
    const std::vector<detect::FaultWindow> windows = faultWindows();
    for (size_t i = 0; i < windows.size(); ++i) {
        const detect::FaultWindow& w = windows[i];
        if (i > 0) out += ",";
        out += "{\"class\":\"";
        out += w.klass;
        out += "\",\"a\":";
        out += std::to_string(w.a);
        out += ",\"b\":";
        out += std::to_string(w.b);
        std::snprintf(buf, sizeof(buf), ",\"start_ms\":%.6g", sim::toMillis(w.start));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"end_ms\":%.6g}", sim::toMillis(w.end));
        out += buf;
    }
    out += "]}";
    return out;
}

}  // namespace pravega::cluster
