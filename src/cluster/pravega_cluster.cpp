#include "cluster/pravega_cluster.h"

#include "common/logging.h"

namespace pravega::cluster {

namespace {
constexpr sim::HostId kBookieHostBase = 100;
constexpr sim::HostId kStoreHostBase = 200;
}  // namespace

PravegaCluster::PravegaCluster(ClusterConfig cfg) : cfg_(cfg), net_(exec_, cfg.link) {
    // Bookies, each with a dedicated journal drive (Table 1: 1 NVMe).
    for (int b = 0; b < cfg_.bookies; ++b) {
        journalDrives_.push_back(std::make_unique<sim::DiskModel>(exec_, cfg_.journalDrive));
        bookies_.push_back(std::make_unique<wal::Bookie>(exec_, kBookieHostBase + b,
                                                         *journalDrives_.back(), cfg_.bookie));
    }

    switch (cfg_.ltsKind) {
        case LtsKind::InMemory:
            lts_ = std::make_unique<lts::InMemoryChunkStorage>();
            break;
        case LtsKind::SimulatedObject:
            lts_ = std::make_unique<lts::SimulatedObjectStorage>(exec_, cfg_.lts);
            break;
        case LtsKind::NoOp:
            lts_ = std::make_unique<lts::NoOpChunkStorage>();
            break;
        case LtsKind::FileSystem:
            lts_ = std::make_unique<lts::FileSystemChunkStorage>(cfg_.fsRoot);
            break;
    }

    for (int s = 0; s < cfg_.segmentStores; ++s) {
        stores_.push_back(std::make_unique<segmentstore::SegmentStore>(
            exec_, kStoreHostBase + s, walEnv(), *lts_, cfg_.store));
        storeAlive_.push_back(true);
    }

    registry_ = std::make_unique<ContainerRegistry>(coordination_, cfg_.containerCount);
    Status balanced = registry_->rebalance(stores());
    if (!balanced) {
        PLOG_ERROR("cluster", "container distribution failed: %s",
                   balanced.toString().c_str());
    }
    controller_ = std::make_unique<controller::Controller>(exec_, *registry_, cfg_.controller);
}

wal::WalEnv PravegaCluster::walEnv() {
    return wal::WalEnv{exec_, net_, ledgerRegistry_, logMeta_, bookies()};
}

std::vector<segmentstore::SegmentStore*> PravegaCluster::stores() {
    std::vector<segmentstore::SegmentStore*> out;
    for (size_t i = 0; i < stores_.size(); ++i) {
        if (storeAlive_[i]) out.push_back(stores_[i].get());
    }
    return out;
}

std::vector<wal::Bookie*> PravegaCluster::bookies() {
    std::vector<wal::Bookie*> out;
    out.reserve(bookies_.size());
    for (auto& b : bookies_) out.push_back(b.get());
    return out;
}

std::unique_ptr<client::EventWriter> PravegaCluster::makeWriter(const std::string& scopedStream,
                                                                client::WriterConfig cfg) {
    auto writer = std::make_unique<client::EventWriter>(exec_, net_, newClientHost(),
                                                        *controller_, scopedStream, cfg);
    writer->initialize();
    return writer;
}

Result<std::shared_ptr<client::ReaderGroup>> PravegaCluster::makeReaderGroup(
    const std::string& groupName, const std::vector<std::string>& streams,
    client::ReaderConfig cfg) {
    return client::ReaderGroup::create(exec_, net_, newClientHost(), *controller_, groupName,
                                       streams, cfg);
}

Status PravegaCluster::createStream(const std::string& scope, const std::string& stream,
                                    controller::StreamConfig config) {
    controller_->createScope(scope);
    auto fut = controller_->createStream(scope, stream, config);
    // Stream creation is a metadata cascade; drive the sim until it lands.
    bool done = runUntil([&]() { return fut.isReady(); }, sim::sec(10));
    if (!done) return Status(Err::Timeout, "stream creation did not finish");
    return fut.result().status();
}

Status PravegaCluster::crashStore(size_t index) {
    if (index >= stores_.size() || !storeAlive_[index]) {
        return Status(Err::InvalidArgument, "no such live store");
    }
    storeAlive_[index] = false;
    // No graceful shutdown: the survivors' recovery fences the WAL (§4.4).
    return registry_->failStore(stores_[index].get(), stores());
}

bool PravegaCluster::runUntil(const std::function<bool()>& pred, sim::Duration timeout) {
    sim::TimePoint deadline = exec_.now() + timeout;
    while (!pred() && exec_.now() < deadline) {
        if (!exec_.runOne()) {
            // Idle: advance in small steps so timers can still fire.
            exec_.runUntil(std::min(deadline, exec_.now() + sim::msec(1)));
            if (exec_.pendingTasks() == 0) break;
        }
    }
    return pred();
}

}  // namespace pravega::cluster
