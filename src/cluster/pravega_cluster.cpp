#include "cluster/pravega_cluster.h"

#include "common/logging.h"

namespace pravega::cluster {

namespace {
constexpr sim::HostId kBookieHostBase = 100;
constexpr sim::HostId kStoreHostBase = 200;
}  // namespace

PravegaCluster::PravegaCluster(ClusterConfig cfg)
    : cfg_(cfg), net_(exec_, cfg.link, cfg.networkFaultSeed) {
    // Bookies, each with a dedicated journal drive (Table 1: 1 NVMe).
    for (int b = 0; b < cfg_.bookies; ++b) {
        journalDrives_.push_back(std::make_unique<sim::DiskModel>(exec_, cfg_.journalDrive));
        bookies_.push_back(std::make_unique<wal::Bookie>(exec_, kBookieHostBase + b,
                                                         *journalDrives_.back(), cfg_.bookie));
    }
    ledgerRegistry_.setBookiePool(bookies());

    switch (cfg_.ltsKind) {
        case LtsKind::InMemory:
            lts_ = std::make_unique<lts::InMemoryChunkStorage>();
            break;
        case LtsKind::SimulatedObject:
            lts_ = std::make_unique<lts::SimulatedObjectStorage>(exec_, cfg_.lts);
            break;
        case LtsKind::NoOp:
            lts_ = std::make_unique<lts::NoOpChunkStorage>();
            break;
        case LtsKind::FileSystem:
            lts_ = std::make_unique<lts::FileSystemChunkStorage>(cfg_.fsRoot);
            break;
    }
    if (cfg_.faultInjectLts) {
        faultLts_ = std::make_unique<lts::FaultInjectionChunkStorage>(exec_, *lts_,
                                                                      cfg_.ltsFaults);
    }

    for (int s = 0; s < cfg_.segmentStores; ++s) {
        stores_.push_back(std::make_unique<segmentstore::SegmentStore>(
            exec_, kStoreHostBase + s, walEnv(), lts(), cfg_.store));
        storeAlive_.push_back(true);
    }

    registry_ = std::make_unique<ContainerRegistry>(coordination_, cfg_.containerCount);
    Status balanced = registry_->rebalance(stores());
    if (!balanced) {
        PLOG_ERROR("cluster", "container distribution failed: %s",
                   balanced.toString().c_str());
    }
    controller_ = std::make_unique<controller::Controller>(exec_, *registry_, cfg_.controller);
}

wal::WalEnv PravegaCluster::walEnv() {
    return wal::WalEnv{exec_, net_, ledgerRegistry_, logMeta_, bookies()};
}

std::vector<segmentstore::SegmentStore*> PravegaCluster::stores() {
    std::vector<segmentstore::SegmentStore*> out;
    for (size_t i = 0; i < stores_.size(); ++i) {
        if (storeAlive_[i]) out.push_back(stores_[i].get());
    }
    return out;
}

std::vector<wal::Bookie*> PravegaCluster::bookies() {
    std::vector<wal::Bookie*> out;
    out.reserve(bookies_.size());
    for (auto& b : bookies_) out.push_back(b.get());
    return out;
}

std::unique_ptr<client::EventWriter> PravegaCluster::makeWriter(const std::string& scopedStream,
                                                                client::WriterConfig cfg) {
    auto writer = std::make_unique<client::EventWriter>(exec_, net_, newClientHost(),
                                                        *controller_, scopedStream, cfg);
    writer->initialize();
    return writer;
}

Result<std::shared_ptr<client::ReaderGroup>> PravegaCluster::makeReaderGroup(
    const std::string& groupName, const std::vector<std::string>& streams,
    client::ReaderConfig cfg) {
    return client::ReaderGroup::create(exec_, net_, newClientHost(), *controller_, groupName,
                                       streams, cfg);
}

Status PravegaCluster::createStream(const std::string& scope, const std::string& stream,
                                    controller::StreamConfig config) {
    controller_->createScope(scope);
    auto fut = controller_->createStream(scope, stream, config);
    // Stream creation is a metadata cascade; drive the sim until it lands.
    bool done = runUntil([&]() { return fut.isReady(); }, sim::sec(10));
    if (!done) return Status(Err::Timeout, "stream creation did not finish");
    return fut.result().status();
}

Status PravegaCluster::crashBookie(size_t index) {
    if (index >= bookies_.size()) return Status(Err::InvalidArgument, "no such bookie");
    if (!bookies_[index]->alive()) return Status(Err::InvalidArgument, "bookie already down");
    bookies_[index]->crash();
    return Status::ok();
}

Status PravegaCluster::restartBookie(size_t index) {
    if (index >= bookies_.size()) return Status(Err::InvalidArgument, "no such bookie");
    if (bookies_[index]->alive()) return Status(Err::InvalidArgument, "bookie not crashed");
    bookies_[index]->restart();
    return Status::ok();
}

sim::HostId PravegaCluster::storeHost(size_t index) const {
    return kStoreHostBase + static_cast<sim::HostId>(index);
}

size_t PravegaCluster::liveStoreCount() const {
    size_t n = 0;
    for (bool alive : storeAlive_) n += alive;
    return n;
}

Status PravegaCluster::crashStore(size_t index) {
    if (index >= stores_.size() || !storeAlive_[index]) {
        return Status(Err::InvalidArgument, "no such live store");
    }
    storeAlive_[index] = false;
    // No graceful shutdown: the survivors' recovery fences the WAL (§4.4).
    return registry_->failStore(stores_[index].get(), stores());
}

bool PravegaCluster::runUntil(const std::function<bool()>& pred, sim::Duration timeout) {
    sim::TimePoint deadline = exec_.now() + timeout;
    while (!pred() && exec_.now() < deadline) {
        if (!exec_.runOne()) {
            // Idle: advance in small steps so timers can still fire.
            exec_.runUntil(std::min(deadline, exec_.now() + sim::msec(1)));
            if (exec_.pendingTasks() == 0) break;
        }
    }
    return pred();
}

}  // namespace pravega::cluster
