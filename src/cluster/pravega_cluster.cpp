#include "cluster/pravega_cluster.h"

#include "common/logging.h"

namespace pravega::cluster {

namespace {
constexpr sim::HostId kBookieHostBase = 100;
constexpr sim::HostId kStoreHostBase = 200;
}  // namespace

PravegaCluster::PravegaCluster(ClusterConfig cfg)
    : cfg_(cfg), machine_(cfg.machine), net_(machine_, cfg.link, cfg.networkFaultSeed) {
    int cores = machine_.coreCount();
    // Bookies, each with a dedicated journal drive (Table 1: 1 NVMe),
    // pinned round-robin across cores: bookie b's RPC handling and journal
    // device live on core (b % cores).
    for (int b = 0; b < cfg_.bookies; ++b) {
        sim::Core& core = machine_.core(b % cores);
        net_.pinHost(kBookieHostBase + b, core);
        journalDrives_.push_back(std::make_unique<sim::DiskModel>(core, cfg_.journalDrive));
        bookies_.push_back(std::make_unique<wal::Bookie>(core, kBookieHostBase + b,
                                                         *journalDrives_.back(), cfg_.bookie));
    }
    ledgerRegistry_.setBookiePool(bookies());

    switch (cfg_.ltsKind) {
        case LtsKind::InMemory:
            lts_ = std::make_unique<lts::InMemoryChunkStorage>();
            break;
        case LtsKind::SimulatedObject:
            lts_ = std::make_unique<lts::SimulatedObjectStorage>(machine_, cfg_.lts);
            break;
        case LtsKind::NoOp:
            lts_ = std::make_unique<lts::NoOpChunkStorage>();
            break;
        case LtsKind::FileSystem:
            lts_ = std::make_unique<lts::FileSystemChunkStorage>(cfg_.fsRoot);
            break;
    }
    if (cfg_.faultInjectLts) {
        faultLts_ = std::make_unique<lts::FaultInjectionChunkStorage>(machine_, *lts_,
                                                                      cfg_.ltsFaults);
    }
    // Decorator stack, inside out: backend → faults → archive → codec. The
    // codec sits outermost so chunks stay compressed (and checksummed) when
    // they migrate to the archive, and a fault-injected bit flip lands on
    // stored bytes — which the codec must catch on read.
    ltsTop_ = faultLts_ ? static_cast<lts::ChunkStorage*>(faultLts_.get()) : lts_.get();
    if (cfg_.archiveLts) {
        archiveLts_ = std::make_unique<lts::ArchiveTierChunkStorage>(machine_, *ltsTop_,
                                                                     cfg_.ltsArchive);
        ltsTop_ = archiveLts_.get();
    }
    if (cfg_.compressLts) {
        codecLts_ = std::make_unique<lts::CodecChunkStorage>(machine_, *ltsTop_,
                                                             cfg_.ltsCodec);
        ltsTop_ = codecLts_.get();
    }

    // Segment stores: frontend (request arrival) on core (s % cores),
    // containers placed on core (containerId % cores) — the shard-per-core
    // layout ("each core manages a distinct set of logs").
    for (int s = 0; s < cfg_.segmentStores; ++s) {
        sim::Core& core = machine_.core(s % cores);
        net_.pinHost(kStoreHostBase + s, core);
        stores_.push_back(std::make_unique<segmentstore::SegmentStore>(
            core, kStoreHostBase + s, walEnv(), lts(), cfg_.store,
            [this](uint32_t cid) -> sim::Core& { return containerCore(cid); }));
        storeAlive_.push_back(true);
    }

    registry_ = std::make_unique<ContainerRegistry>(coordination_, cfg_.containerCount);
    Status balanced = registry_->rebalance(stores());
    if (!balanced) {
        PLOG_ERROR("cluster", "container distribution failed: %s",
                   balanced.toString().c_str());
    }
    controller_ = std::make_unique<controller::Controller>(machine_, *registry_, cfg_.controller);

    if (cfg_.rebalanceContainers) {
        rebalancer_ = std::make_unique<controller::Rebalancer>(machine_, *registry_, stores(),
                                                               cfg_.rebalancer);
        rebalancer_->start();
    }
    if (cfg_.tenantQuotas) {
        quotas_ = std::make_unique<controller::TenantQuotaManager>(machine_, *controller_,
                                                                   stores(), cfg_.quota);
        quotas_->start();
    }
}

wal::WalEnv PravegaCluster::walEnv() {
    return wal::WalEnv{machine_, net_, ledgerRegistry_, logMeta_, bookies()};
}

std::vector<segmentstore::SegmentStore*> PravegaCluster::stores() {
    std::vector<segmentstore::SegmentStore*> out;
    for (size_t i = 0; i < stores_.size(); ++i) {
        if (storeAlive_[i]) out.push_back(stores_[i].get());
    }
    return out;
}

std::vector<wal::Bookie*> PravegaCluster::bookies() {
    std::vector<wal::Bookie*> out;
    out.reserve(bookies_.size());
    for (auto& b : bookies_) out.push_back(b.get());
    return out;
}

std::unique_ptr<client::EventWriter> PravegaCluster::makeWriter(const std::string& scopedStream,
                                                                client::WriterConfig cfg) {
    sim::HostId host = newClientHost();
    auto writer = std::make_unique<client::EventWriter>(net_.coreOf(host), net_, host,
                                                        *controller_, scopedStream, cfg);
    writer->initialize();
    return writer;
}

Result<std::shared_ptr<client::ReaderGroup>> PravegaCluster::makeReaderGroup(
    const std::string& groupName, const std::vector<std::string>& streams,
    client::ReaderConfig cfg) {
    sim::HostId host = newClientHost();
    return client::ReaderGroup::create(net_.coreOf(host), net_, host, *controller_, groupName,
                                       streams, cfg);
}

Status PravegaCluster::createStream(const std::string& scope, const std::string& stream,
                                    controller::StreamConfig config) {
    controller_->createScope(scope);
    auto fut = controller_->createStream(scope, stream, config);
    // Stream creation is a metadata cascade; drive the sim until it lands.
    bool done = runUntil([&]() { return fut.isReady(); }, sim::sec(10));
    if (!done) return Status(Err::Timeout, "stream creation did not finish");
    return fut.result().status();
}

Status PravegaCluster::crashBookie(size_t index) {
    if (index >= bookies_.size()) return Status(Err::InvalidArgument, "no such bookie");
    if (!bookies_[index]->alive()) return Status(Err::InvalidArgument, "bookie already down");
    bookies_[index]->crash();
    return Status::ok();
}

Status PravegaCluster::restartBookie(size_t index) {
    if (index >= bookies_.size()) return Status(Err::InvalidArgument, "no such bookie");
    if (bookies_[index]->alive()) return Status(Err::InvalidArgument, "bookie not crashed");
    bookies_[index]->restart();
    return Status::ok();
}

sim::HostId PravegaCluster::storeHost(size_t index) const {
    return kStoreHostBase + static_cast<sim::HostId>(index);
}

size_t PravegaCluster::liveStoreCount() const {
    size_t n = 0;
    for (bool alive : storeAlive_) n += alive;
    return n;
}

Status PravegaCluster::crashStore(size_t index) {
    if (index >= stores_.size() || !storeAlive_[index]) {
        return Status(Err::InvalidArgument, "no such live store");
    }
    storeAlive_[index] = false;
    // No graceful shutdown: the survivors' recovery fences the WAL (§4.4).
    return registry_->failStore(stores_[index].get(), stores());
}

bool PravegaCluster::runUntil(const std::function<bool()>& pred, sim::Duration timeout) {
    sim::TimePoint deadline = machine_.now() + timeout;
    while (!pred() && machine_.now() < deadline) {
        if (!machine_.runOne()) {
            // Idle: advance in small steps so timers can still fire.
            machine_.runUntil(std::min(deadline, machine_.now() + sim::msec(1)));
            if (machine_.pendingTasks() == 0) break;
        }
    }
    return pred();
}

}  // namespace pravega::cluster
