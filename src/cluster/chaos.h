// ChaosSchedule: a seeded, replayable fault-injection timeline.
//
// FoundationDB-style deterministic simulation testing: from a single seed
// the schedule generates a timeline of faults — bookie crash/restart,
// segment-store crash, network partition/heal, link degradation, LTS
// outage/slowdown — and executes it against a PravegaCluster on the
// cluster's virtual clock. Every injected event is logged; the same seed
// against the same cluster configuration and workload reproduces the
// identical event timeline and final state, so any invariant violation
// found under a random seed is replayable bit-for-bit.
//
// Fault windows are slotted: the horizon is divided into `faults` slots and
// each fault opens and closes inside its own slot. This guarantees at most
// one bookie is down at any instant, which preserves the ack-quorum
// durability bound (every acknowledged entry lives on >= ackQuorum bookies,
// of which at most one can be missing) — the schedule explores availability
// and ordering faults without ever *licensing* data loss.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/pravega_cluster.h"
#include "detect/scoring.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pravega::cluster {

struct ChaosEvent {
    enum class Kind {
        BookieCrash,    // a: bookie index
        BookieRestart,  // a: bookie index
        StoreCrash,     // a: store index
        Partition,      // a, b: host ids (store <-> bookie)
        Heal,           // a, b: host ids
        LinkDegrade,    // a, b: host ids; duration; magnitude = bw factor
        LtsOutage,      // duration
        LtsSlowdown,    // duration; magnitude = extra latency (ns)
        LtsRestore,     // ends a slowdown
    };

    sim::TimePoint at = 0;
    Kind kind;
    int a = -1;
    int b = -1;
    sim::Duration duration = 0;
    double magnitude = 0;
};

const char* chaosKindName(ChaosEvent::Kind kind);

class ChaosSchedule {
public:
    struct Config {
        uint64_t seed = 1;
        /// First fault fires no earlier than this (lets traffic ramp up).
        sim::TimePoint start = sim::msec(20);
        /// Faults are drawn inside [start, start + horizon).
        sim::Duration horizon = sim::sec(2);
        /// Number of fault injections (each gets its own slot; paired
        /// closing events — restart/heal — ride in the same slot).
        int faults = 6;

        // Which fault classes the generator may draw. The coarse switches
        // (networkFaults, ltsFaults) gate whole groups for back-compat; the
        // fine flags below select within a group, so e.g. a partition-only
        // schedule is `networkFaults=true, degradeFaults=false`.
        bool bookieFaults = true;
        bool networkFaults = true;
        bool storeFaults = false;  // store crashes are permanent; opt-in
        bool ltsFaults = false;    // requires ClusterConfig::faultInjectLts
        bool partitionFaults = true;    // within networkFaults
        bool degradeFaults = true;      // within networkFaults
        bool ltsOutageFaults = true;    // within ltsFaults
        bool ltsSlowdownFaults = true;  // within ltsFaults

        /// Cap on how many stores may crash over the whole schedule (the
        /// generator additionally never crashes the last live store).
        int maxStoreCrashes = 1;
    };

    ChaosSchedule(PravegaCluster& cluster, Config cfg);

    /// The generated timeline, ordered by virtual time. Pure function of
    /// (seed, config, cluster shape); inspectable before arming.
    const std::vector<ChaosEvent>& timeline() const { return timeline_; }

    /// Schedules every timeline event on the cluster executor. Call once,
    /// before driving the simulation.
    void arm();

    /// Human-readable log of executed events in execution order; the
    /// determinism contract is that equal seeds yield equal logs.
    const std::vector<std::string>& executedLog() const { return executed_; }

    bool finished() const { return executed_.size() == timeline_.size(); }

    /// Virtual time by which every fault window has closed.
    sim::TimePoint endTime() const;

    /// Ground-truth fault intervals for detection scoring: opener events
    /// paired with their closers (crash→restart, partition→heal,
    /// slowdown→restore; degrades and outages carry their own duration; a
    /// store crash is permanent and ends at endTime()). Ordered by start
    /// time; pure function of the generated timeline.
    std::vector<detect::FaultWindow> faultWindows() const;

    /// Deterministic JSON of the ground truth for BENCH_*.json:
    /// {"seed":..,"start_ms":..,"horizon_ms":..,"windows":[
    ///   {"class":..,"a":..,"b":..,"start_ms":..,"end_ms":..}, ...]}.
    std::string groundTruthJson() const;

private:
    void generate();
    void execute(const ChaosEvent& ev);

    PravegaCluster& cluster_;
    Config cfg_;
    std::vector<ChaosEvent> timeline_;
    std::vector<std::string> executed_;
    int plannedStoreCrashes_ = 0;
    bool armed_ = false;
};

}  // namespace pravega::cluster
