// PravegaCluster: assembles a full simulated deployment — bookies with
// journal drives, segment stores hosting containers, long-term storage, the
// controller, and the network — mirroring the paper's Table 1 layout
// (3 segment stores co-located with 3 bookies, one NVMe journal drive each,
// EFS-like LTS). Tests, benchmarks and examples all build on this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/event_writer.h"
#include "client/reader_group.h"
#include "cluster/coordination.h"
#include "controller/auto_scaler.h"
#include "controller/controller.h"
#include "controller/quota.h"
#include "controller/rebalancer.h"
#include "lts/archive_tier.h"
#include "lts/chunk_codec.h"
#include "lts/chunk_storage.h"
#include "lts/fault_injection.h"
#include "segmentstore/segment_store.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "wal/bookie.h"
#include "wal/log_client.h"

namespace pravega::cluster {

enum class LtsKind { InMemory, SimulatedObject, NoOp, FileSystem };

struct ClusterConfig {
    int segmentStores = 3;
    int bookies = 3;
    uint32_t containerCount = 8;

    wal::Bookie::Config bookie;
    sim::DiskModel::Config journalDrive;
    segmentstore::SegmentStore::Config store;
    sim::Link::Config link;
    controller::Controller::Config controller;

    LtsKind ltsKind = LtsKind::SimulatedObject;
    sim::ObjectStoreModel::Config lts;
    std::string fsRoot = "/tmp/pravega-lts";

    /// Wraps the LTS backend in a FaultInjectionChunkStorage so the chaos
    /// layer can inject outages/slowdowns (`faultLts()` exposes the knobs).
    bool faultInjectLts = false;
    lts::FaultInjectionChunkStorage::Config ltsFaults;

    /// Cold archive tier: migrates idle chunks from the primary store to a
    /// tape-library model (deep first-byte latency). Off by default.
    bool archiveLts = false;
    lts::ArchiveTierChunkStorage::Config ltsArchive;

    /// LTS data reduction: per-block compression + CRC checksums on the
    /// flush path (outermost decorator — archived chunks stay compressed).
    /// Off by default; the golden smoke JSON depends on that.
    bool compressLts = false;
    lts::CodecChunkStorage::Config ltsCodec;

    /// Load-aware container rebalancing across segment stores: replaces
    /// the boot-time static `cid % N` placement with a greedy move-budget
    /// policy once traffic flows. Off by default.
    bool rebalanceContainers = false;
    controller::Rebalancer::Config rebalancer;

    /// Per-tenant (scope) ingest quotas with cooperative throttling.
    /// Off by default; register limits via `quotas()->setQuota(...)`.
    bool tenantQuotas = false;
    controller::TenantQuotaManager::Config quota;

    /// Seed for the network's per-link fault PRNGs (probabilistic loss).
    uint64_t networkFaultSeed = 0x5EED0FFAULL;

    /// Sharded-substrate shape: core count, cross-core hand-off latency,
    /// per-core RNG seeding. The default (1 core) reproduces the pre-shard
    /// single-executor behavior byte-for-byte.
    sim::MachineConfig machine;
};

class PravegaCluster {
public:
    PravegaCluster() : PravegaCluster(ClusterConfig{}) {}
    explicit PravegaCluster(ClusterConfig cfg);

    /// The sharded simulation substrate driving this cluster.
    sim::Machine& machine() { return machine_; }
    /// The control-plane core (core 0): controller, coordination, and any
    /// component not explicitly pinned elsewhere live here.
    sim::Core& executor() { return machine_; }
    /// Core hosting container `containerId` (containerId % cores).
    sim::Core& containerCore(uint32_t containerId) {
        return machine_.core(static_cast<int>(containerId) % machine_.coreCount());
    }
    sim::Network& network() { return net_; }
    controller::Controller& ctrl() { return *controller_; }
    ContainerRegistry& registry() { return *registry_; }
    /// The storage stores write to: the outermost decorator of the stack
    /// codec(archive(fault(backend))), each layer optional.
    lts::ChunkStorage& lts() { return *ltsTop_; }
    CoordinationStore& coordination() { return coordination_; }

    std::vector<segmentstore::SegmentStore*> stores();
    std::vector<wal::Bookie*> bookies();
    wal::WalEnv walEnv();

    /// Allocates a host id for a client machine, pinned round-robin across
    /// the machine's cores.
    sim::HostId newClientHost() {
        sim::HostId h = nextClientHost_++;
        net_.pinHost(h, machine_.core(static_cast<int>(h - 1000) % machine_.coreCount()));
        return h;
    }

    // ---- convenience factories -----------------------------------------
    std::unique_ptr<client::EventWriter> makeWriter(const std::string& scopedStream,
                                                    client::WriterConfig cfg = {});
    Result<std::shared_ptr<client::ReaderGroup>> makeReaderGroup(
        const std::string& groupName, const std::vector<std::string>& streams,
        client::ReaderConfig cfg = {});

    /// Creates scope+stream with the given config; runs the sim until done.
    Status createStream(const std::string& scope, const std::string& stream,
                        controller::StreamConfig config);

    /// Crashes a segment store (no graceful shutdown) and redistributes its
    /// containers to the survivors, exercising WAL fencing (§4.4).
    Status crashStore(size_t index);

    // ---- chaos hooks ----------------------------------------------------

    /// Hard-crashes a bookie: queued journal adds fail, unsynced entries
    /// are lost, and every RPC is rejected until `restartBookie`.
    Status crashBookie(size_t index);

    /// Restarts a crashed bookie (journal replay recovers durable entries).
    Status restartBookie(size_t index);

    bool bookieAlive(size_t index) const {
        return index < bookies_.size() && bookies_[index]->alive();
    }
    sim::HostId bookieHost(size_t index) const { return bookies_[index]->host(); }
    sim::HostId storeHost(size_t index) const;
    size_t liveStoreCount() const;

    /// The load-aware container rebalancer, or nullptr when
    /// `rebalanceContainers` is off.
    controller::Rebalancer* rebalancer() { return rebalancer_.get(); }

    /// The tenant quota manager, or nullptr when `tenantQuotas` is off.
    controller::TenantQuotaManager* quotas() { return quotas_.get(); }

    /// The fault-injection decorator around LTS, or nullptr when
    /// `faultInjectLts` is off.
    lts::FaultInjectionChunkStorage* faultLts() { return faultLts_.get(); }

    /// The codec decorator, or nullptr when `compressLts` is off.
    lts::CodecChunkStorage* codecLts() { return codecLts_.get(); }

    /// The archive tier, or nullptr when `archiveLts` is off.
    lts::ArchiveTierChunkStorage* archiveTier() { return archiveLts_.get(); }

    /// Runs the simulation for the given virtual duration / until idle.
    void runFor(sim::Duration d) { machine_.runFor(d); }
    uint64_t runUntilIdle() { return machine_.runUntilIdle(); }

    /// Runs until `pred()` or the (virtual-time) deadline; true if pred held.
    bool runUntil(const std::function<bool()>& pred, sim::Duration timeout);

    const ClusterConfig& config() const { return cfg_; }

private:
    ClusterConfig cfg_;
    sim::Machine machine_;
    sim::Network net_;
    wal::LedgerRegistry ledgerRegistry_;
    wal::LogMetadataStore logMeta_;
    std::vector<std::unique_ptr<sim::DiskModel>> journalDrives_;
    std::vector<std::unique_ptr<wal::Bookie>> bookies_;
    std::unique_ptr<lts::ChunkStorage> lts_;  // backend
    std::unique_ptr<lts::FaultInjectionChunkStorage> faultLts_;  // optional decorator
    std::unique_ptr<lts::ArchiveTierChunkStorage> archiveLts_;   // optional decorator
    std::unique_ptr<lts::CodecChunkStorage> codecLts_;           // optional decorator
    lts::ChunkStorage* ltsTop_ = nullptr;  // outermost layer of the stack
    std::vector<std::unique_ptr<segmentstore::SegmentStore>> stores_;
    std::vector<bool> storeAlive_;
    CoordinationStore coordination_;
    std::unique_ptr<ContainerRegistry> registry_;
    std::unique_ptr<controller::Controller> controller_;
    // Declared after controller_/registry_/stores_ (destroyed first: both
    // hold references into them).
    std::unique_ptr<controller::Rebalancer> rebalancer_;
    std::unique_ptr<controller::TenantQuotaManager> quotas_;
    sim::HostId nextClientHost_ = 1000;
};

}  // namespace pravega::cluster
