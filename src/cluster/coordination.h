// Cluster coordination: the ZooKeeper stand-in (§2.2).
//
// Pravega uses a consensus service only for leader election and cluster
// management — notably the assignment of segment containers to segment
// stores, which must be kept in a consistent store so that a container has
// exactly one owner (§4.4). CoordinationStore is a linearizable versioned
// KV with watches; ContainerRegistry implements the assignment logic and
// the crash-redistribution protocol on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "segmentstore/segment_store.h"

namespace pravega::cluster {

class CoordinationStore {
public:
    struct Node {
        Bytes value;
        int64_t version = 0;
    };
    using Watcher = std::function<void(const std::string& key)>;

    /// Creates a key; fails with AlreadyExists.
    Result<int64_t> create(const std::string& key, Bytes value);

    /// Sets a key; `expectedVersion` of -1 is unconditional. Returns the
    /// new version, or BadVersion on mismatch.
    Result<int64_t> set(const std::string& key, Bytes value, int64_t expectedVersion = -1);

    Result<Node> get(const std::string& key) const;
    Status remove(const std::string& key);
    std::vector<std::string> list(const std::string& prefix) const;

    /// Registers a watcher invoked on any create/set/remove under `prefix`.
    void watch(std::string prefix, Watcher watcher);

private:
    void notify(const std::string& key);
    std::map<std::string, Node> nodes_;
    std::vector<std::pair<std::string, Watcher>> watchers_;
};

/// Owns the container → segment-store assignment. Exactly-one-owner is
/// enforced in two layers, as in the paper: the assignment lives here (the
/// consistent store), and WAL fencing guarantees that even a store that
/// wrongly believes it still owns a container cannot write (§4.4).
class ContainerRegistry {
public:
    ContainerRegistry(CoordinationStore& store, uint32_t containerCount)
        : store_(store), containerCount_(containerCount) {}

    uint32_t containerCount() const { return containerCount_; }

    /// Distributes all containers round-robin across `stores`, starting
    /// (or re-starting, with recovery+fencing) each container on its owner.
    Status rebalance(const std::vector<segmentstore::SegmentStore*>& stores);

    /// Redistributes a crashed store's containers to the survivors. The
    /// crashed store is NOT shut down gracefully — the new owners' WAL
    /// recovery fences it out.
    Status failStore(segmentstore::SegmentStore* crashed,
                     const std::vector<segmentstore::SegmentStore*>& survivors);

    /// Gracefully moves one container to `target`: the current owner shuts
    /// it down (pending ops fail, clients retry against the new owner),
    /// then `target` runs recovery + WAL fencing. The load-aware
    /// rebalancer's primitive; a no-op when `target` already owns it.
    Status moveContainer(uint32_t containerId, segmentstore::SegmentStore* target);

    segmentstore::SegmentStore* ownerOf(uint32_t containerId) const;
    segmentstore::SegmentContainer* containerFor(uint32_t containerId) const;

private:
    Status assign(uint32_t containerId, segmentstore::SegmentStore* store);

    CoordinationStore& store_;
    uint32_t containerCount_;
    std::map<uint32_t, segmentstore::SegmentStore*> owners_;
};

}  // namespace pravega::cluster
