#include "wal/bookie.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::wal {

Bookie::Bookie(sim::Executor& exec, sim::HostId host, sim::DiskModel& journalDrive, Config cfg)
    : exec_(exec),
      host_(host),
      journal_(journalDrive),
      cfg_(cfg),
      journalFileId_(mix64(0xB00C1E00ULL + static_cast<uint64_t>(host))) {}

sim::Future<sim::Unit> Bookie::addEntry(LedgerId ledger, EntryId entry, SharedBuf data) {
    if (deleted_.contains(ledger)) {
        return sim::Future<sim::Unit>::failed(Status(Err::NotFound, "ledger deleted"));
    }
    auto& state = ledgers_[ledger];
    if (state.fenced) {
        return sim::Future<sim::Unit>::failed(Status(Err::Fenced, "ledger fenced"));
    }
    storedBytes_ += data.size();
    state.entries[entry] = std::move(data);

    PendingAdd add;
    add.journalBytes = state.entries[entry].size() + cfg_.entryOverheadBytes;
    auto fut = add.done.future();
    pending_.push_back(std::move(add));
    maybeStartFlush();
    return fut;
}

void Bookie::maybeStartFlush() {
    if (flushInFlight_ || pending_.empty()) return;
    flushInFlight_ = true;

    // Group commit: take everything queued (up to the group bound) into one
    // journal write; requests arriving during the write join the next group.
    std::vector<sim::Promise<sim::Unit>> group;
    uint64_t bytes = 0;
    while (!pending_.empty() && (group.empty() || bytes < cfg_.maxGroupBytes)) {
        bytes += pending_.front().journalBytes;
        group.push_back(std::move(pending_.front().done));
        pending_.pop_front();
    }
    // Charge the per-entry processing as equivalent journal bytes so it
    // rides the same serialized device (entries × latency × bandwidth).
    uint64_t entryCost = static_cast<uint64_t>(
        static_cast<double>(group.size()) *
        static_cast<double>(cfg_.perEntryLatency) / 1e9 * journal_.config().bytesPerSec);

    journal_.write(journalFileId_, bytes + entryCost, cfg_.journalSync)
        .onComplete([this, group = std::move(group)](const Result<sim::Unit>&) mutable {
            for (auto& p : group) p.setValue(sim::Unit{});
            flushInFlight_ = false;
            maybeStartFlush();
        });
}

Result<EntryId> Bookie::fenceLedger(LedgerId ledger) {
    if (deleted_.contains(ledger)) return Status(Err::NotFound, "ledger deleted");
    auto& state = ledgers_[ledger];
    state.fenced = true;
    return state.entries.empty() ? kNoEntry : state.entries.rbegin()->first;
}

Result<SharedBuf> Bookie::readEntry(LedgerId ledger, EntryId entry) const {
    auto it = ledgers_.find(ledger);
    if (it == ledgers_.end()) return Status(Err::NotFound, "no such ledger");
    auto eit = it->second.entries.find(entry);
    if (eit == it->second.entries.end()) return Status(Err::NotFound, "no such entry");
    return eit->second;
}

Result<EntryId> Bookie::lastEntry(LedgerId ledger) const {
    auto it = ledgers_.find(ledger);
    if (it == ledgers_.end()) return Status(Err::NotFound, "no such ledger");
    return it->second.entries.empty() ? kNoEntry : it->second.entries.rbegin()->first;
}

void Bookie::deleteLedger(LedgerId ledger) {
    auto it = ledgers_.find(ledger);
    if (it != ledgers_.end()) {
        for (const auto& [id, buf] : it->second.entries) storedBytes_ -= buf.size();
        ledgers_.erase(it);
    }
    deleted_.insert(ledger);
}

}  // namespace pravega::wal
