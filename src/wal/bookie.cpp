#include "wal/bookie.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::wal {

Bookie::Bookie(sim::Core& exec, sim::HostId host, sim::DiskModel& journalDrive, Config cfg)
    : exec_(exec),
      host_(host),
      journal_(journalDrive),
      cfg_(cfg),
      journalFileId_(mix64(0xB00C1E00ULL + static_cast<uint64_t>(host))),
      mAdds_(exec.metrics().counter("wal.bookie.adds")),
      mAddBytes_(exec.metrics().counter("wal.bookie.add_bytes")),
      mRejectUnavailable_(exec.metrics().counter("wal.bookie.reject.unavailable")),
      mRejectFenced_(exec.metrics().counter("wal.bookie.reject.fenced")),
      mCrashes_(exec.metrics().counter("wal.bookie.crashes")),
      mRestarts_(exec.metrics().counter("wal.bookie.restarts")),
      mFlushes_(exec.metrics().counter("wal.bookie.journal.flushes")),
      mGroupBytes_(exec.metrics().histogram("wal.bookie.journal.group_bytes")),
      mGroupEntries_(exec.metrics().histogram("wal.bookie.journal.group_entries")),
      mSyncNs_(exec.metrics().histogram("trace.write.3_journal_sync_ns")) {}

sim::Future<sim::Unit> Bookie::addEntry(LedgerId ledger, EntryId entry, BufChain data) {
    if (!alive_) {
        mRejectUnavailable_.inc();
        return sim::Future<sim::Unit>::failed(Status(Err::Unavailable, "bookie crashed"));
    }
    if (deleted_.contains(ledger)) {
        return sim::Future<sim::Unit>::failed(Status(Err::NotFound, "ledger deleted"));
    }
    auto& state = ledgers_[ledger];
    if (state.fenced) {
        mRejectFenced_.inc();
        return sim::Future<sim::Unit>::failed(Status(Err::Fenced, "ledger fenced"));
    }
    mAdds_.inc();
    mAddBytes_.inc(data.size());
    storedBytes_ += data.size();
    state.entries[entry] = data;

    PendingAdd add;
    add.ledger = ledger;
    add.entry = entry;
    add.data = std::move(data);
    add.journalBytes = add.data.size() + cfg_.entryOverheadBytes;
    auto fut = add.done.future();
    pending_.push_back(std::move(add));
    maybeStartFlush();
    return fut;
}

void Bookie::maybeStartFlush() {
    if (flushInFlight_ || pending_.empty()) return;
    flushInFlight_ = true;

    // Group commit: take everything queued (up to the group bound) into one
    // journal write; requests arriving during the write join the next group.
    std::vector<JournalRecord> records;
    uint64_t bytes = 0;
    while (!pending_.empty() && (inFlightAcks_.empty() || bytes < cfg_.maxGroupBytes)) {
        bytes += pending_.front().journalBytes;
        inFlightAcks_.push_back(std::move(pending_.front().done));
        records.push_back(JournalRecord{pending_.front().ledger, pending_.front().entry,
                                        std::move(pending_.front().data)});
        pending_.pop_front();
    }
    // Charge the per-entry processing as equivalent journal bytes so it
    // rides the same serialized device (entries × latency × bandwidth).
    uint64_t entryCost = static_cast<uint64_t>(
        static_cast<double>(inFlightAcks_.size()) *
        static_cast<double>(cfg_.perEntryLatency) / 1e9 * journal_.config().bytesPerSec);

    mFlushes_.inc();
    mGroupBytes_.record(static_cast<sim::Duration>(bytes));
    mGroupEntries_.record(static_cast<sim::Duration>(inFlightAcks_.size()));
    sim::TimePoint flushStart = exec_.now();
    journal_.write(journalFileId_, bytes + entryCost, cfg_.journalSync)
        .onComplete([this, epoch = epoch_, flushStart,
                     records = std::move(records)](const Result<sim::Unit>&) mutable {
            // Crashed mid-flush: the group is lost; crash() already failed
            // the acks, and this completion belongs to a dead epoch.
            if (epoch != epoch_) return;
            mSyncNs_.record(exec_.now() - flushStart);
            for (auto& rec : records) journalRecords_.push_back(std::move(rec));
            auto acks = std::move(inFlightAcks_);
            inFlightAcks_.clear();
            flushInFlight_ = false;
            for (auto& p : acks) p.setValue(sim::Unit{});
            maybeStartFlush();
        });
}

Result<EntryId> Bookie::fenceLedger(LedgerId ledger) {
    if (!alive_) return Status(Err::Unavailable, "bookie crashed");
    if (deleted_.contains(ledger)) return Status(Err::NotFound, "ledger deleted");
    auto& state = ledgers_[ledger];
    state.fenced = true;
    fenced_.insert(ledger);
    return state.entries.empty() ? kNoEntry : state.entries.rbegin()->first;
}

Result<SharedBuf> Bookie::readEntry(LedgerId ledger, EntryId entry) const {
    if (!alive_) return Status(Err::Unavailable, "bookie crashed");
    auto it = ledgers_.find(ledger);
    if (it == ledgers_.end()) return Status(Err::NotFound, "no such ledger");
    auto eit = it->second.entries.find(entry);
    if (eit == it->second.entries.end()) return Status(Err::NotFound, "no such entry");
    return eit->second.linearize();
}

Result<EntryId> Bookie::lastEntry(LedgerId ledger) const {
    if (!alive_) return Status(Err::Unavailable, "bookie crashed");
    auto it = ledgers_.find(ledger);
    if (it == ledgers_.end()) return Status(Err::NotFound, "no such ledger");
    return it->second.entries.empty() ? kNoEntry : it->second.entries.rbegin()->first;
}

void Bookie::deleteLedger(LedgerId ledger) {
    if (!alive_) return;
    auto it = ledgers_.find(ledger);
    if (it != ledgers_.end()) {
        for (const auto& [id, buf] : it->second.entries) storedBytes_ -= buf.size();
        ledgers_.erase(it);
    }
    deleted_.insert(ledger);
    // The entry-log GC: durable records of a deleted ledger are reclaimed.
    std::erase_if(journalRecords_, [ledger](const JournalRecord& r) {
        return r.ledger == ledger;
    });
}

void Bookie::crash() {
    if (!alive_) return;
    alive_ = false;
    ++crashCount_;
    mCrashes_.inc();
    ++epoch_;  // invalidates the in-flight flush completion, if any
    flushInFlight_ = false;
    // Queued and mid-flush adds never reach the journal; their clients see
    // Unavailable (in practice the TCP connection resets).
    auto doomed = std::move(pending_);
    pending_.clear();
    auto doomedAcks = std::move(inFlightAcks_);
    inFlightAcks_.clear();
    ledgers_.clear();
    storedBytes_ = 0;
    for (auto& add : doomed) {
        add.done.setError(Status(Err::Unavailable, "bookie crashed"));
    }
    for (auto& p : doomedAcks) {
        p.setError(Status(Err::Unavailable, "bookie crashed"));
    }
    PLOG_INFO("bookie", "host %d crashed (%llu journaled records survive)", host_,
              static_cast<unsigned long long>(journalRecords_.size()));
}

void Bookie::restart() {
    if (alive_) return;
    alive_ = true;
    mRestarts_.inc();
    rebuildFromJournal();
    PLOG_INFO("bookie", "host %d restarted: %llu entries recovered", host_,
              static_cast<unsigned long long>(journalRecords_.size()));
}

void Bookie::rebuildFromJournal() {
    ledgers_.clear();
    storedBytes_ = 0;
    for (const auto& rec : journalRecords_) {
        if (deleted_.contains(rec.ledger)) continue;
        auto& state = ledgers_[rec.ledger];
        auto [it, inserted] = state.entries.emplace(rec.entry, rec.data);
        if (inserted) storedBytes_ += rec.data.size();
    }
    // Fence markers are durable metadata; re-apply them.
    for (LedgerId id : fenced_) {
        if (!deleted_.contains(id)) ledgers_[id].fenced = true;
    }
}

}  // namespace pravega::wal
