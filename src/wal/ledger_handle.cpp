#include "wal/ledger_handle.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace pravega::wal {

LedgerHandle::LedgerHandle(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                           LedgerRegistry& registry, LedgerId id, ReplicationConfig repl)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      registry_(registry),
      id_(id),
      repl_(repl),
      alive_(std::make_shared<bool>(true)) {
    auto* info = registry_.find(id);
    assert(info && "ledger must exist in the registry");
    ensemble_ = info->ensemble;
    assert(static_cast<int>(ensemble_.size()) >= repl_.writeQuorum);
}

LedgerHandle::~LedgerHandle() { *alive_ = false; }

sim::Future<EntryId> LedgerHandle::addEntry(BufChain data) {
    if (closed_ || fencedOut_) {
        return sim::Future<EntryId>::failed(
            Status(fencedOut_ ? Err::Fenced : Err::Sealed, "ledger not writable"));
    }
    if (static_cast<int>(ensemble_.size()) < repl_.ackQuorum) {
        return sim::Future<EntryId>::failed(
            Status(Err::Unavailable, "not enough bookies for ack quorum"));
    }
    EntryId entry = nextEntry_++;
    appendedBytes_ += data.size();
    unackedBytes_ += data.size();
    fullUnackedBytes_ += data.size();
    auto& inf = inFlight_[entry];
    inf.bytes = data.size();
    inf.data = data;
    auto fut = inf.done.future();

    size_t targets = std::min(ensemble_.size(), static_cast<size_t>(repl_.writeQuorum));
    for (size_t i = 0; i < targets; ++i) inf.writeSet.push_back(ensemble_[i]);
    for (Bookie* bookie : inf.writeSet) sendToBookie(bookie, entry, data);
    armTimeout(entry);
    return fut;
}

void LedgerHandle::sendToBookie(Bookie* bookie, EntryId entry, const BufChain& data) {
    const uint64_t wireBytes = data.size() + kWireOverhead;
    net_.send(clientHost_, bookie->host(), wireBytes,
              [this, alive = alive_, bookie, entry, data]() {
                  if (!*alive) return;
                  bookie->addEntry(id_, entry, data)
                      .onComplete([this, alive, bookie, entry](const Result<sim::Unit>& r) {
                          if (!*alive) return;
                          // Response travels back to the client.
                          net_.send(bookie->host(), clientHost_, kWireOverhead,
                                    [this, alive, bookie, entry, r]() {
                                        if (*alive) onAck(bookie, entry, r);
                                    });
                      });
              });
}

void LedgerHandle::armTimeout(EntryId entry) {
    if (repl_.writeTimeout <= 0) return;
    exec_.schedule(repl_.writeTimeout, [this, alive = alive_, entry]() {
        if (!*alive) return;
        auto it = inFlight_.find(entry);
        if (it == inFlight_.end()) return;
        // Every write-set bookie that still owes an ack is declared failed;
        // re-arm to police the replacements (and full-quorum stragglers).
        std::vector<Bookie*> suspects;
        for (Bookie* b : it->second.writeSet) {
            if (!it->second.ackedBy.contains(b)) suspects.push_back(b);
        }
        for (Bookie* b : suspects) handleBookieFailure(b);
        if (inFlight_.contains(entry)) armTimeout(entry);
    });
}

bool LedgerHandle::fullyReplicated(const InFlight& inf) const {
    for (Bookie* b : inf.writeSet) {
        if (!inf.ackedBy.contains(b)) return false;
    }
    return true;
}

void LedgerHandle::onAck(Bookie* bookie, EntryId entry, const Result<sim::Unit>& r) {
    auto it = inFlight_.find(entry);
    if (it == inFlight_.end()) return;  // already resolved (e.g., failure path)
    auto& inf = it->second;
    if (r.isOk()) {
        // A late ack from a bookie that was since replaced still counts
        // toward the quorum: the entry IS durable there.
        inf.ackedBy.insert(bookie);
        if (!inf.fullReleased && fullyReplicated(inf)) {
            inf.fullReleased = true;
            fullUnackedBytes_ -= std::min(fullUnackedBytes_, inf.bytes);
        }
        drainConfirmed();
        return;
    }
    if (r.code() == Err::Fenced) {
        // A newer owner fenced us: fatal for this handle, not the bookie.
        fencedOut_ = true;
        if (!inf.confirmed) {
            inf.failed = true;
            inf.error = r.status();
        }
        drainConfirmed();
        return;
    }
    if (r.code() == Err::Unavailable || r.code() == Err::IoError ||
        r.code() == Err::Timeout) {
        // Connection-level failure: the bookie is bad, not the entry.
        handleBookieFailure(bookie);
        return;
    }
    // Any other rejection (e.g. ledger deleted under us) fails the entry.
    if (!inf.confirmed) {
        inf.failed = true;
        inf.error = r.status();
    }
    drainConfirmed();
}

void LedgerHandle::handleBookieFailure(Bookie* bad) {
    if (failedBookies_.contains(bad)) return;
    failedBookies_.insert(bad);
    if (std::find(ensemble_.begin(), ensemble_.end(), bad) == ensemble_.end()) return;

    // Ensemble change: prefer a pool bookie not already used and not known
    // bad. The registry stands in for the ZK-kept bookie availability view,
    // so only live bookies are eligible.
    Bookie* replacement = nullptr;
    for (Bookie* cand : registry_.bookiePool()) {
        if (!cand->alive() || failedBookies_.contains(cand)) continue;
        if (std::find(ensemble_.begin(), ensemble_.end(), cand) != ensemble_.end()) continue;
        replacement = cand;
        break;
    }

    auto* info = registry_.find(id_);
    if (replacement) {
        ++ensembleChanges_;
        exec_.metrics().counter("wal.ensemble_changes").inc();
        std::replace(ensemble_.begin(), ensemble_.end(), bad, replacement);
        if (info) {
            std::replace(info->ensemble.begin(), info->ensemble.end(), bad, replacement);
            if (std::find(info->everMembers.begin(), info->everMembers.end(), replacement) ==
                info->everMembers.end()) {
                info->everMembers.push_back(replacement);
            }
        }
        // Re-replicate everything the failed bookie still owed.
        for (auto& [e, inf] : inFlight_) {
            if (std::find(inf.writeSet.begin(), inf.writeSet.end(), bad) !=
                inf.writeSet.end()) {
                std::replace(inf.writeSet.begin(), inf.writeSet.end(), bad, replacement);
                sendToBookie(replacement, e, inf.data);
            }
        }
        PLOG_INFO("wal", "ledger %llu: ensemble change, bookie %d -> %d",
                  static_cast<unsigned long long>(id_), bad->host(), replacement->host());
    } else {
        // No spare bookie: degrade to the survivors. Appends stay available
        // while at least ackQuorum ensemble members remain.
        std::erase(ensemble_, bad);
        for (auto& [e, inf] : inFlight_) std::erase(inf.writeSet, bad);
        PLOG_WARN("wal", "ledger %llu: no replacement for bookie %d, degrading to %zu members",
                  static_cast<unsigned long long>(id_), bad->host(), ensemble_.size());
    }

    // Shrunken write sets may now be fully acked; entries that can no
    // longer reach the ack quorum must fail.
    for (auto& [e, inf] : inFlight_) {
        if (!inf.fullReleased && fullyReplicated(inf)) {
            inf.fullReleased = true;
            fullUnackedBytes_ -= std::min(fullUnackedBytes_, inf.bytes);
        }
    }
    for (auto& [e, inf] : inFlight_) {
        if (inf.confirmed || inf.failed) continue;
        std::set<Bookie*> reachable = inf.ackedBy;
        reachable.insert(inf.writeSet.begin(), inf.writeSet.end());
        if (static_cast<int>(reachable.size()) < repl_.ackQuorum) {
            inf.failed = true;
            inf.error = Status(Err::Unavailable, "ack quorum unreachable");
            break;  // drainConfirmed poisons the suffix anyway
        }
    }
    drainConfirmed();
}

void LedgerHandle::drainConfirmed() {
    // Entries confirm strictly in entry order: an entry resolves only when
    // it has an ack quorum AND all earlier entries are confirmed. Fully-
    // replicated confirmed entries are erased eagerly; confirmed entries
    // still short of the full write set stay (re-replication buffer) but do
    // not block later confirmations.
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        auto& inf = it->second;
        if (inf.confirmed) {
            if (inf.fullReleased) {
                it = inFlight_.erase(it);
            } else {
                ++it;
            }
            continue;
        }
        if (inf.failed) {
            // A failed entry poisons the unconfirmed suffix: nothing after
            // it can confirm in order, so fail them all (the owner
            // re-opens the log).
            Status error = inf.error;
            std::vector<sim::Promise<EntryId>> doomed;
            for (auto dit = it; dit != inFlight_.end(); ++dit) {
                if (!dit->second.confirmed) {
                    doomed.push_back(std::move(dit->second.done));
                    unackedBytes_ -= std::min(unackedBytes_, dit->second.bytes);
                    if (!dit->second.fullReleased) {
                        fullUnackedBytes_ -= std::min(fullUnackedBytes_, dit->second.bytes);
                    }
                }
            }
            inFlight_.erase(it, inFlight_.end());
            for (auto& p : doomed) p.setError(error);
            if (closed_ && !registryClosed_ && inFlight_.empty()) {
                registryClosed_ = true;
                registry_.close(id_, lastAddConfirmed_);
            }
            return;
        }
        if (static_cast<int>(inf.ackedBy.size()) < repl_.ackQuorum) break;
        EntryId entry = it->first;
        lastAddConfirmed_ = std::max(lastAddConfirmed_, entry);
        inf.confirmed = true;
        unackedBytes_ -= std::min(unackedBytes_, inf.bytes);
        auto done = inf.done;
        if (inf.fullReleased) {
            it = inFlight_.erase(it);
        } else {
            ++it;
        }
        done.setValue(entry);
    }
    if (closed_ && !registryClosed_ && inFlight_.empty()) {
        registryClosed_ = true;
        registry_.close(id_, lastAddConfirmed_);
    }
}

void LedgerHandle::close() {
    if (closed_) return;
    closed_ = true;
    // Entries may still be awaiting their quorum; the registry records the
    // final LAC only once in-flight appends drain (drainConfirmed), so
    // recovery never reads a stale last-entry for a "closed" ledger.
    if (inFlight_.empty()) {
        registryClosed_ = true;
        registry_.close(id_, lastAddConfirmed_);
    }
}

Result<std::vector<SharedBuf>> LedgerHandle::recoverAndClose(LedgerRegistry& registry,
                                                             LedgerId id) {
    auto* info = registry.find(id);
    if (!info) return Status(Err::NotFound, "ledger not in registry");

    // Fence every bookie that ever held entries of this ledger (ensemble
    // changes append members; the original ones may still hold the oldest
    // entries) so the previous owner can no longer add, then recover up to
    // the highest entry any bookie reports. (A full BK implementation
    // recovers to the highest entry seen by an ack quorum; with writeQuorum
    // == ensembleSize the max over responses is correct.)
    const std::vector<Bookie*>& members =
        info->everMembers.empty() ? info->ensemble : info->everMembers;
    EntryId last = kNoEntry;
    for (Bookie* b : members) {
        auto r = b->fenceLedger(id);
        if (r.isOk()) last = std::max(last, r.value());
    }
    if (info->closed) last = info->lastEntry;  // closed ledgers are authoritative

    std::vector<SharedBuf> entries;
    for (EntryId e = 0; e <= last; ++e) {
        bool found = false;
        for (Bookie* b : members) {
            auto r = b->readEntry(id, e);
            if (r.isOk()) {
                entries.push_back(std::move(r.value()));
                found = true;
                break;
            }
        }
        if (!found) {
            // Entry beyond the durable prefix (never reached ack quorum and
            // bookies lost it): recovery stops at the last contiguous entry.
            last = e - 1;
            break;
        }
    }
    registry.close(id, last);
    return entries;
}

}  // namespace pravega::wal
