#include "wal/ledger_handle.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace pravega::wal {

LedgerHandle::LedgerHandle(sim::Executor& exec, sim::Network& net, sim::HostId clientHost,
                           LedgerRegistry& registry, LedgerId id, ReplicationConfig repl)
    : exec_(exec),
      net_(net),
      clientHost_(clientHost),
      registry_(registry),
      id_(id),
      repl_(repl),
      alive_(std::make_shared<bool>(true)) {
    auto* info = registry_.find(id);
    assert(info && "ledger must exist in the registry");
    ensemble_ = info->ensemble;
    assert(static_cast<int>(ensemble_.size()) >= repl_.writeQuorum);
}

LedgerHandle::~LedgerHandle() { *alive_ = false; }

sim::Future<EntryId> LedgerHandle::addEntry(SharedBuf data) {
    if (closed_ || fencedOut_) {
        return sim::Future<EntryId>::failed(
            Status(fencedOut_ ? Err::Fenced : Err::Sealed, "ledger not writable"));
    }
    EntryId entry = nextEntry_++;
    appendedBytes_ += data.size();
    unackedBytes_ += data.size();
    fullUnackedBytes_ += data.size();
    auto& inf = inFlight_[entry];
    inf.bytes = data.size();
    auto fut = inf.done.future();

    const uint64_t wireBytes = data.size() + kWireOverhead;
    for (int i = 0; i < repl_.writeQuorum; ++i) {
        Bookie* bookie = ensemble_[static_cast<size_t>(i)];
        net_.send(clientHost_, bookie->host(), wireBytes,
                  [this, alive = alive_, bookie, entry, data]() {
                      if (!*alive) return;
                      bookie->addEntry(id_, entry, data)
                          .onComplete([this, alive, bookie, entry](const Result<sim::Unit>& r) {
                              if (!*alive) return;
                              // Response travels back to the client.
                              net_.send(bookie->host(), clientHost_, kWireOverhead,
                                        [this, alive, entry, r]() {
                                            if (*alive) onAck(entry, r);
                                        });
                          });
                  });
    }
    return fut;
}

void LedgerHandle::onAck(EntryId entry, const Result<sim::Unit>& r) {
    auto it = inFlight_.find(entry);
    if (it == inFlight_.end()) return;  // already resolved (e.g., failure path)
    auto& inf = it->second;
    if (!r.isOk()) {
        if (!inf.confirmed) {
            inf.failed = true;
            inf.error = r.status();
        }
        if (r.code() == Err::Fenced) fencedOut_ = true;
    } else {
        ++inf.acks;
        if (inf.acks >= repl_.writeQuorum) {
            // Fully replicated: release the re-replication buffer.
            fullUnackedBytes_ -= std::min(fullUnackedBytes_, inf.bytes);
            if (inf.confirmed) {
                inFlight_.erase(it);
                return;
            }
            inf.acks = repl_.writeQuorum;  // saturate; entry kept until confirmed
        }
    }
    drainConfirmed();
}

void LedgerHandle::drainConfirmed() {
    // Entries confirm strictly in entry order: an entry resolves only when
    // it has an ack quorum AND all earlier entries are confirmed. Fully-
    // replicated confirmed entries are erased eagerly in onAck; confirmed
    // entries still short of the full write quorum stay (re-replication
    // buffer) but do not block later confirmations.
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        auto& inf = it->second;
        if (inf.confirmed) {
            ++it;
            continue;
        }
        if (inf.failed) {
            // A failed entry poisons the unconfirmed suffix: nothing after
            // it can confirm in order, so fail them all (the owner
            // re-opens the log).
            Status error = inf.error;
            std::vector<sim::Promise<EntryId>> doomed;
            for (auto dit = it; dit != inFlight_.end(); ++dit) {
                if (!dit->second.confirmed) {
                    doomed.push_back(std::move(dit->second.done));
                    unackedBytes_ -= std::min(unackedBytes_, dit->second.bytes);
                    fullUnackedBytes_ -= std::min(fullUnackedBytes_, dit->second.bytes);
                }
            }
            inFlight_.erase(it, inFlight_.end());
            for (auto& p : doomed) p.setError(error);
            if (closed_ && !registryClosed_ && inFlight_.empty()) {
                registryClosed_ = true;
                registry_.close(id_, lastAddConfirmed_);
            }
            return;
        }
        if (inf.acks < repl_.ackQuorum) break;
        EntryId entry = it->first;
        lastAddConfirmed_ = std::max(lastAddConfirmed_, entry);
        inf.confirmed = true;
        unackedBytes_ -= std::min(unackedBytes_, inf.bytes);
        auto done = inf.done;
        if (inf.acks >= repl_.writeQuorum) {
            it = inFlight_.erase(it);
        } else {
            ++it;
        }
        done.setValue(entry);
    }
    if (closed_ && !registryClosed_ && inFlight_.empty()) {
        registryClosed_ = true;
        registry_.close(id_, lastAddConfirmed_);
    }
}

void LedgerHandle::close() {
    if (closed_) return;
    closed_ = true;
    // Entries may still be awaiting their quorum; the registry records the
    // final LAC only once in-flight appends drain (drainConfirmed), so
    // recovery never reads a stale last-entry for a "closed" ledger.
    if (inFlight_.empty()) {
        registryClosed_ = true;
        registry_.close(id_, lastAddConfirmed_);
    }
}

Result<std::vector<SharedBuf>> LedgerHandle::recoverAndClose(LedgerRegistry& registry,
                                                             LedgerId id) {
    auto* info = registry.find(id);
    if (!info) return Status(Err::NotFound, "ledger not in registry");

    // Fence every ensemble bookie so the previous owner can no longer add,
    // then recover up to the highest entry any bookie reports. (A full BK
    // implementation recovers to the highest entry seen by an ack quorum;
    // with writeQuorum == ensembleSize the max over responses is correct.)
    EntryId last = kNoEntry;
    for (Bookie* b : info->ensemble) {
        auto r = b->fenceLedger(id);
        if (r.isOk()) last = std::max(last, r.value());
    }
    if (info->closed) last = info->lastEntry;  // closed ledgers are authoritative

    std::vector<SharedBuf> entries;
    for (EntryId e = 0; e <= last; ++e) {
        bool found = false;
        for (Bookie* b : info->ensemble) {
            auto r = b->readEntry(id, e);
            if (r.isOk()) {
                entries.push_back(std::move(r.value()));
                found = true;
                break;
            }
        }
        if (!found) {
            // Entry beyond the durable prefix (never reached ack quorum and
            // bookies lost it): recovery stops at the last contiguous entry.
            last = e - 1;
            break;
        }
    }
    registry.close(id, last);
    return entries;
}

}  // namespace pravega::wal
