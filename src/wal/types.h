// Write-Ahead Log (BookKeeper-like) shared types.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pravega::wal {

using LedgerId = uint64_t;
using EntryId = int64_t;
using BookieId = int;

constexpr EntryId kNoEntry = -1;

/// Replication parameters (paper Table 1: ensemble=3, writeQuorum=3,
/// ackQuorum=2 for both Pravega and Pulsar).
struct ReplicationConfig {
    int ensembleSize = 3;
    int writeQuorum = 3;
    int ackQuorum = 2;
};

/// Address of a WAL entry within a durable log (ledger sequence).
struct LogAddress {
    LedgerId ledger = 0;
    EntryId entry = kNoEntry;
    /// Monotonically increasing across ledgers of the same log; the unit of
    /// truncation and recovery ordering.
    int64_t sequence = -1;

    friend auto operator<=>(const LogAddress&, const LogAddress&) = default;
};

}  // namespace pravega::wal
