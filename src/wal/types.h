// Write-Ahead Log (BookKeeper-like) shared types.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pravega::wal {

using LedgerId = uint64_t;
using EntryId = int64_t;
using BookieId = int;

constexpr EntryId kNoEntry = -1;

/// Replication parameters (paper Table 1: ensemble=3, writeQuorum=3,
/// ackQuorum=2 for both Pravega and Pulsar).
struct ReplicationConfig {
    int ensembleSize = 3;
    int writeQuorum = 3;
    int ackQuorum = 2;
    /// Per-entry write timeout: a write-set bookie that has not acked an
    /// entry within this window is declared failed and replaced (ensemble
    /// change). 0 disables timeout detection — explicit error responses
    /// (e.g. a crashed bookie's connection reset) still trigger ensemble
    /// changes. Keep 0 for the §5.6 slow-bookie memory-growth experiments,
    /// which rely on a laggard staying in the ensemble.
    sim::Duration writeTimeout = 0;
};

/// Address of a WAL entry within a durable log (ledger sequence).
struct LogAddress {
    LedgerId ledger = 0;
    EntryId entry = kNoEntry;
    /// Monotonically increasing across ledgers of the same log; the unit of
    /// truncation and recovery ordering.
    int64_t sequence = -1;

    friend auto operator<=>(const LogAddress&, const LogAddress&) = default;
};

}  // namespace pravega::wal
