// LedgerHandle: client-side replicated append to an ensemble of bookies.
//
// Implements the BookKeeper write protocol the paper relies on: an entry is
// sent to `writeQuorum` bookies and acknowledged once `ackQuorum` of them
// confirm it AND all earlier entries are confirmed (entries acknowledge in
// order, which gives the log its prefix-durability property). Fencing makes
// a new owner able to exclude the old one (§4.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/network.h"
#include "wal/bookie.h"
#include "wal/types.h"

namespace pravega::wal {

/// Ledger metadata store (stand-in for the ZooKeeper-kept BK metadata).
struct LedgerInfo {
    std::vector<Bookie*> ensemble;
    bool closed = false;
    EntryId lastEntry = kNoEntry;
};

class LedgerRegistry {
public:
    LedgerId create(std::vector<Bookie*> ensemble) {
        LedgerId id = nextId_++;
        ledgers_[id] = LedgerInfo{std::move(ensemble), false, kNoEntry};
        return id;
    }
    LedgerInfo* find(LedgerId id) {
        auto it = ledgers_.find(id);
        return it == ledgers_.end() ? nullptr : &it->second;
    }
    void close(LedgerId id, EntryId lastEntry) {
        if (auto* info = find(id)) {
            info->closed = true;
            info->lastEntry = lastEntry;
        }
    }
    void erase(LedgerId id) { ledgers_.erase(id); }

private:
    LedgerId nextId_ = 1;
    std::map<LedgerId, LedgerInfo> ledgers_;
};

class LedgerHandle {
public:
    /// Per-entry request/response framing on the wire.
    static constexpr uint64_t kWireOverhead = 64;

    LedgerHandle(sim::Executor& exec, sim::Network& net, sim::HostId clientHost,
                 LedgerRegistry& registry, LedgerId id, ReplicationConfig repl);
    ~LedgerHandle();

    LedgerHandle(const LedgerHandle&) = delete;
    LedgerHandle& operator=(const LedgerHandle&) = delete;

    LedgerId id() const { return id_; }

    /// Replicated append; completes with the entry id once ack-quorum
    /// durable and all prior entries confirmed.
    sim::Future<EntryId> addEntry(SharedBuf data);

    /// Closes the ledger for appends and records the last confirmed entry.
    void close();

    EntryId lastAddConfirmed() const { return lastAddConfirmed_; }
    uint64_t appendedBytes() const { return appendedBytes_; }
    bool closed() const { return closed_; }

    /// Bytes not yet confirmed by the ACK quorum (client flow control).
    uint64_t unackedBytes() const { return unackedBytes_; }

    /// Bytes not yet confirmed by the FULL write quorum. The BK client must
    /// retain these for possible re-replication; a persistently slow bookie
    /// makes this grow without bound — the §5.6 Pulsar OOM mechanism that
    /// ackQuorum == writeQuorum avoids (at a throughput cost).
    uint64_t unackedToFullQuorumBytes() const { return fullUnackedBytes_; }

    /// Recovery open: fences the ensemble, determines the last recoverable
    /// entry (max over fence responses), closes the ledger, and returns its
    /// entries in order. Used by a new container owner (§4.4).
    static Result<std::vector<SharedBuf>> recoverAndClose(LedgerRegistry& registry, LedgerId id);

    /// True while appends are awaiting bookie responses (the owner must
    /// keep the handle alive until drained).
    bool hasInFlight() const { return !inFlight_.empty(); }

private:
    struct InFlight {
        int acks = 0;
        uint64_t bytes = 0;
        bool failed = false;
        bool confirmed = false;  // ack quorum reached, future completed
        Status error;
        sim::Promise<EntryId> done;
    };

    void onAck(EntryId entry, const Result<sim::Unit>& r);
    void drainConfirmed();

    sim::Executor& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    LedgerRegistry& registry_;
    LedgerId id_;
    ReplicationConfig repl_;
    std::vector<Bookie*> ensemble_;

    EntryId nextEntry_ = 0;
    EntryId lastAddConfirmed_ = kNoEntry;
    std::map<EntryId, InFlight> inFlight_;
    uint64_t appendedBytes_ = 0;
    uint64_t unackedBytes_ = 0;
    uint64_t fullUnackedBytes_ = 0;
    bool closed_ = false;
    bool registryClosed_ = false;
    bool fencedOut_ = false;
    /// Cleared on destruction; in-flight network callbacks check it first.
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::wal
