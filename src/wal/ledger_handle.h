// LedgerHandle: client-side replicated append to an ensemble of bookies.
//
// Implements the BookKeeper write protocol the paper relies on: an entry is
// sent to `writeQuorum` bookies and acknowledged once `ackQuorum` of them
// confirm it AND all earlier entries are confirmed (entries acknowledge in
// order, which gives the log its prefix-durability property). Fencing makes
// a new owner able to exclude the old one (§4.4).
//
// Bookie-failure handling (the BK availability mechanism, [40]): when a
// write-set bookie fails an add with a connection-level error or misses the
// per-entry write timeout, the handle performs an ENSEMBLE CHANGE — it asks
// the registry's bookie pool for a replacement, swaps it into the ensemble
// (updating the ledger metadata), and re-replicates every entry the failed
// bookie had not acknowledged. If no replacement exists the handle degrades
// to the surviving bookies, which keeps appends available as long as at
// least ackQuorum of them remain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/network.h"
#include "wal/bookie.h"
#include "wal/types.h"

namespace pravega::wal {

/// Ledger metadata store (stand-in for the ZooKeeper-kept BK metadata).
struct LedgerInfo {
    /// Current write ensemble (mutated by ensemble changes).
    std::vector<Bookie*> ensemble;
    /// Every bookie that ever belonged to the ensemble — a flat stand-in
    /// for BK's segmented metadata: older entries may live only on
    /// since-replaced members, so recovery fences and reads all of them.
    std::vector<Bookie*> everMembers;
    bool closed = false;
    EntryId lastEntry = kNoEntry;
};

class LedgerRegistry {
public:
    LedgerId create(std::vector<Bookie*> ensemble) {
        LedgerId id = nextId_++;
        ledgers_[id] = LedgerInfo{ensemble, std::move(ensemble), false, kNoEntry};
        return id;
    }
    LedgerInfo* find(LedgerId id) {
        auto it = ledgers_.find(id);
        return it == ledgers_.end() ? nullptr : &it->second;
    }
    void close(LedgerId id, EntryId lastEntry) {
        if (auto* info = find(id)) {
            info->closed = true;
            info->lastEntry = lastEntry;
        }
    }
    void erase(LedgerId id) { ledgers_.erase(id); }

    /// The full bookie fleet, from which ensemble changes draw
    /// replacements. Empty pool → no replacements (degrade-only).
    void setBookiePool(std::vector<Bookie*> pool) { pool_ = std::move(pool); }
    const std::vector<Bookie*>& bookiePool() const { return pool_; }

private:
    LedgerId nextId_ = 1;
    std::map<LedgerId, LedgerInfo> ledgers_;
    std::vector<Bookie*> pool_;
};

class LedgerHandle {
public:
    /// Per-entry request/response framing on the wire.
    static constexpr uint64_t kWireOverhead = 64;

    LedgerHandle(sim::Core& exec, sim::Network& net, sim::HostId clientHost,
                 LedgerRegistry& registry, LedgerId id, ReplicationConfig repl);
    ~LedgerHandle();

    LedgerHandle(const LedgerHandle&) = delete;
    LedgerHandle& operator=(const LedgerHandle&) = delete;

    LedgerId id() const { return id_; }

    /// Replicated append; completes with the entry id once ack-quorum
    /// durable and all prior entries confirmed. The chain is shared with
    /// every write-set bookie by reference — no payload copies.
    sim::Future<EntryId> addEntry(BufChain data);

    /// Closes the ledger for appends and records the last confirmed entry.
    void close();

    EntryId lastAddConfirmed() const { return lastAddConfirmed_; }
    uint64_t appendedBytes() const { return appendedBytes_; }
    bool closed() const { return closed_; }

    /// Bytes not yet confirmed by the ACK quorum (client flow control).
    uint64_t unackedBytes() const { return unackedBytes_; }

    /// Bytes not yet confirmed by the FULL write quorum. The BK client must
    /// retain these for possible re-replication; a persistently slow bookie
    /// makes this grow without bound — the §5.6 Pulsar OOM mechanism that
    /// ackQuorum == writeQuorum avoids (at a throughput cost).
    uint64_t unackedToFullQuorumBytes() const { return fullUnackedBytes_; }

    /// Ensemble changes performed by this handle (bookie failures handled).
    uint64_t ensembleChanges() const { return ensembleChanges_; }

    /// Recovery open: fences the ensemble, determines the last recoverable
    /// entry (max over fence responses), closes the ledger, and returns its
    /// entries in order. Used by a new container owner (§4.4).
    static Result<std::vector<SharedBuf>> recoverAndClose(LedgerRegistry& registry, LedgerId id);

    /// True while appends are awaiting bookie responses (the owner must
    /// keep the handle alive until drained).
    bool hasInFlight() const { return !inFlight_.empty(); }

private:
    struct InFlight {
        BufChain data;  // retained for re-replication
        /// Bookies this entry targets. A vector in ensemble order — NOT a
        /// set keyed on pointers — so iteration (send order, suspect
        /// order) is deterministic across runs; replay depends on it.
        std::vector<Bookie*> writeSet;
        std::set<Bookie*> ackedBy;  // membership/size queries only
        uint64_t bytes = 0;
        bool failed = false;
        bool confirmed = false;     // ack quorum reached, future completed
        bool fullReleased = false;  // full write set acked; buffer released
        Status error;
        sim::Promise<EntryId> done;
    };

    void sendToBookie(Bookie* bookie, EntryId entry, const BufChain& data);
    void armTimeout(EntryId entry);
    void onAck(Bookie* bookie, EntryId entry, const Result<sim::Unit>& r);
    void handleBookieFailure(Bookie* bad);
    void failFrom(std::map<EntryId, InFlight>::iterator it, Status error);
    void drainConfirmed();
    bool fullyReplicated(const InFlight& inf) const;

    sim::Core& exec_;
    sim::Network& net_;
    sim::HostId clientHost_;
    LedgerRegistry& registry_;
    LedgerId id_;
    ReplicationConfig repl_;
    std::vector<Bookie*> ensemble_;
    /// Bookies this handle has declared dead (never re-trusted; a restarted
    /// bookie rejoins via new ledgers' ensembles).
    std::set<Bookie*> failedBookies_;

    EntryId nextEntry_ = 0;
    EntryId lastAddConfirmed_ = kNoEntry;
    std::map<EntryId, InFlight> inFlight_;
    uint64_t appendedBytes_ = 0;
    uint64_t unackedBytes_ = 0;
    uint64_t fullUnackedBytes_ = 0;
    uint64_t ensembleChanges_ = 0;
    bool closed_ = false;
    bool registryClosed_ = false;
    bool fencedOut_ = false;
    /// Cleared on destruction; in-flight network callbacks check it first.
    std::shared_ptr<bool> alive_;
};

}  // namespace pravega::wal
