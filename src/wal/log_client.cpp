#include "wal/log_client.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"

namespace pravega::wal {

LogClient::LogClient(WalEnv env, sim::HostId clientHost, uint64_t logId, Config cfg)
    : env_(std::move(env)), clientHost_(clientHost), logId_(logId), cfg_(cfg) {
    assert(!env_.bookies.empty());
    // The registry doubles as the bookie availability view; ensemble
    // changes draw replacements from this pool.
    if (env_.registry.bookiePool().empty()) {
        env_.registry.setBookiePool(env_.bookies);
    }
}

std::vector<Bookie*> LogClient::pickEnsemble() const {
    // Deterministic rotation spreads ensembles of different logs across the
    // bookie fleet.
    std::vector<Bookie*> out;
    size_t n = env_.bookies.size();
    size_t start = static_cast<size_t>(mix64(logId_) % n);
    for (int i = 0; i < cfg_.repl.ensembleSize; ++i) {
        out.push_back(env_.bookies[(start + static_cast<size_t>(i)) % n]);
    }
    return out;
}

Result<std::vector<std::pair<LogAddress, SharedBuf>>> LogClient::recover() {
    std::vector<std::pair<LogAddress, SharedBuf>> out;
    auto& refs = env_.logMeta.logs[logId_];
    int64_t lastSeq = -1;
    for (const auto& ref : refs) {
        auto entries = LedgerHandle::recoverAndClose(env_.registry, ref.id);
        if (!entries) {
            // Deleted (truncated) ledgers simply contribute nothing.
            continue;
        }
        int64_t seq = ref.firstSequence;
        for (auto& buf : entries.value()) {
            LogAddress addr{ref.id, static_cast<EntryId>(seq - ref.firstSequence), seq};
            out.emplace_back(addr, std::move(buf));
            lastSeq = seq++;
        }
        lastSeq = std::max(lastSeq, ref.firstSequence - 1 +
                                        static_cast<int64_t>(entries.value().size()));
    }
    nextSequence_ = lastSeq + 1;
    nextToDeliver_ = nextSequence_;
    initialized_ = true;
    rollover();
    return out;
}

void LogClient::rollover() {
    if (current_) {
        current_->close();
        // The closed handle may still have appends awaiting bookie acks;
        // keep it alive until they drain.
        std::erase_if(retired_, [this](const auto& h) {
            if (h->hasInFlight()) return false;
            ensembleChangesRetired_ += h->ensembleChanges();
            return true;
        });
        retired_.push_back(std::move(current_));
    }
    LedgerId id = env_.registry.create(pickEnsemble());
    env_.logMeta.logs[logId_].push_back({id, nextSequence_});
    current_ = std::make_unique<LedgerHandle>(env_.exec, env_.net, clientHost_, env_.registry,
                                              id, cfg_.repl);
}

sim::Future<LogAddress> LogClient::append(BufChain data) {
    assert(initialized_ && "recover() must run before append()");
    if (current_->appendedBytes() >= cfg_.rolloverBytes) rollover();

    int64_t seq = nextSequence_++;
    auto& m = env_.exec.metrics();
    m.counter("wal.log.appends").inc();
    m.counter("wal.log.append_bytes").inc(data.size());
    LedgerId ledger = current_->id();
    sim::Promise<LogAddress> promise;
    auto fut = promise.future();
    waiting_.emplace(seq, std::move(promise));
    ++inFlightAppends_;

    current_->addEntry(std::move(data))
        .onComplete([this, seq, ledger](const Result<EntryId>& r) {
            --inFlightAppends_;
            if (r.isOk()) {
                deliverInOrder(seq, LogAddress{ledger, r.value(), seq});
            } else {
                deliverInOrder(seq, r.status());
            }
        });
    return fut;
}

void LogClient::deliverInOrder(int64_t seq, Result<LogAddress> result) {
    completed_.emplace(seq, std::move(result));
    while (!completed_.empty() && completed_.begin()->first == nextToDeliver_) {
        auto cit = completed_.begin();
        auto wit = waiting_.find(cit->first);
        assert(wit != waiting_.end());
        auto promise = std::move(wit->second);
        auto res = std::move(cit->second);
        waiting_.erase(wit);
        completed_.erase(cit);
        ++nextToDeliver_;
        promise.complete(std::move(res));
    }
}

void LogClient::truncate(LogAddress upTo) {
    auto& refs = env_.logMeta.logs[logId_];
    // A ledger is deletable when the next ledger starts at or before the
    // truncation sequence + 1 (i.e., every entry in it is <= upTo) and it
    // is not the ledger currently open for appends.
    while (refs.size() > 1 && refs[1].firstSequence <= upTo.sequence + 1 &&
           (!current_ || refs[0].id != current_->id())) {
        auto* info = env_.registry.find(refs[0].id);
        if (info) {
            // Delete from every member that ever held entries (ensemble
            // changes may have spread the ledger beyond the final ensemble).
            const auto& members =
                info->everMembers.empty() ? info->ensemble : info->everMembers;
            for (Bookie* b : members) b->deleteLedger(refs[0].id);
        }
        env_.registry.erase(refs[0].id);
        refs.erase(refs.begin());
    }
}

size_t LogClient::ledgerCount() const {
    auto it = env_.logMeta.logs.find(logId_);
    return it == env_.logMeta.logs.end() ? 0 : it->second.size();
}

}  // namespace pravega::wal
