// LogClient: the durable-log abstraction segment containers write to.
//
// "WAL logs in Pravega are a metadata abstraction built on top of Apache
// Bookkeeper ledgers" (§4.1): a log is an ordered sequence of ledgers; the
// log rolls over to a fresh ledger as it grows, truncation deletes whole
// ledgers (§4.3), and a new owner fences all of the log's ledgers during
// recovery so the previous owner can no longer write (§4.4).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/network.h"
#include "wal/ledger_handle.h"
#include "wal/types.h"

namespace pravega::wal {

/// Durable per-log ledger lists (ZooKeeper-kept in the real system).
struct LogMetadataStore {
    struct LedgerRef {
        LedgerId id;
        int64_t firstSequence;
    };
    std::map<uint64_t, std::vector<LedgerRef>> logs;
};

/// Everything a LogClient needs from its environment.
struct WalEnv {
    sim::Core& exec;
    sim::Network& net;
    LedgerRegistry& registry;
    LogMetadataStore& logMeta;
    std::vector<Bookie*> bookies;
};

class LogClient {
public:
    struct Config {
        uint64_t rolloverBytes = 64ULL * 1024 * 1024;
        ReplicationConfig repl;
    };

    LogClient(WalEnv env, sim::HostId clientHost, uint64_t logId, Config cfg);

    /// Takes ownership of the log: fences all existing ledgers, returns
    /// every surviving entry in order, and opens a fresh ledger for writes.
    /// Must be called (even on a brand-new log) before `append`.
    Result<std::vector<std::pair<LogAddress, SharedBuf>>> recover();

    /// Ordered durable append. Completions are delivered in sequence order
    /// even across ledger rollovers. Takes a fragment chain; payload bytes
    /// are shared with the caller, never copied.
    sim::Future<LogAddress> append(BufChain data);

    /// Deletes all ledgers that lie entirely at or before `upTo`.
    void truncate(LogAddress upTo);

    bool initialized() const { return initialized_; }
    int64_t nextSequence() const { return nextSequence_; }
    size_t ledgerCount() const;
    uint64_t inFlightAppends() const { return inFlightAppends_; }

    /// Cumulative ensemble changes across all this log's ledger handles
    /// (bookie failures survived without losing availability).
    uint64_t ensembleChanges() const {
        uint64_t total = ensembleChangesRetired_;
        for (const auto& h : retired_) total += h->ensembleChanges();
        if (current_) total += current_->ensembleChanges();
        return total;
    }

private:
    std::vector<Bookie*> pickEnsemble() const;
    void rollover();
    void deliverInOrder(int64_t seq, Result<LogAddress> result);

    WalEnv env_;
    sim::HostId clientHost_;
    uint64_t logId_;
    Config cfg_;

    std::unique_ptr<LedgerHandle> current_;
    /// Rolled-over handles kept alive until their in-flight appends drain.
    std::vector<std::unique_ptr<LedgerHandle>> retired_;
    int64_t nextSequence_ = 0;
    bool initialized_ = false;
    uint64_t inFlightAppends_ = 0;
    uint64_t ensembleChangesRetired_ = 0;

    // In-order completion gate across ledgers: promises are resolved
    // strictly by sequence, holding later completions until earlier ones.
    int64_t nextToDeliver_ = 0;
    std::map<int64_t, sim::Promise<LogAddress>> waiting_;
    std::map<int64_t, Result<LogAddress>> completed_;
};

}  // namespace pravega::wal
