// Bookie: the BookKeeper storage server (§2.2, [40]).
//
// A bookie journals every add-entry request to a dedicated drive before
// acknowledging, and opportunistically groups concurrent requests into one
// journal write ("third level of aggregation", §4.1): while a journal flush
// is in flight, new requests accumulate and are flushed together when it
// completes. Entries are also kept in an in-memory ledger index for reads
// and ledger recovery (the entry-log device is not on the ack path and is
// not modeled; see DESIGN.md).
//
// Chaos semantics: a bookie can crash and restart. While crashed every RPC
// fails with Unavailable. Restart replays the journal: entries whose
// group-commit completed before the crash are recovered; entries that were
// only in memory (queued or mid-flush) are lost — which is exactly why the
// client ack-quorum exists. Fence and delete markers are treated as durable
// metadata (ZooKeeper-backed in real BK) and survive crashes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/models.h"
#include "sim/network.h"
#include "wal/types.h"

namespace pravega::wal {

class Bookie {
public:
    struct Config {
        /// Journal fsync before ack (default on; Fig 5's Pravega "no flush"
        /// ablation turns this off).
        bool journalSync = true;
        /// Per-entry journal record overhead (headers, checksums).
        uint64_t entryOverheadBytes = 32;
        /// Upper bound on one journal group-commit write.
        uint64_t maxGroupBytes = 4 * 1024 * 1024;
        /// Per-entry journal processing (header, checksum, index update).
        /// Thin per-partition entries (Pulsar-style) pay this at high rates;
        /// multiplexed 1MB frames (Pravega containers) amortize it — the
        /// paper's §6(ii) multiplexing argument.
        sim::Duration perEntryLatency = sim::usec(4);
    };

    Bookie(sim::Core& exec, sim::HostId host, sim::DiskModel& journalDrive, Config cfg);

    sim::HostId host() const { return host_; }

    /// Journals and stores one entry (a fragment chain shared with the
    /// sender — stored by reference, no payload copy). Completes after the
    /// entry is durable (per `journalSync`). Rejects writes to fenced or
    /// deleted ledgers.
    sim::Future<sim::Unit> addEntry(LedgerId ledger, EntryId entry, BufChain data);

    /// Fences a ledger: no further adds accepted. Returns the last entry id
    /// this bookie has (for recovery). Idempotent.
    Result<EntryId> fenceLedger(LedgerId ledger);

    /// Recovery/read path: linearizes the stored chain (the one place a
    /// WAL entry is flattened; cold by design).
    Result<SharedBuf> readEntry(LedgerId ledger, EntryId entry) const;
    Result<EntryId> lastEntry(LedgerId ledger) const;

    /// Drops all entries of a ledger (WAL truncation deletes ledgers, §4.3).
    void deleteLedger(LedgerId ledger);

    // ---- chaos: crash / restart ----------------------------------------

    /// Hard crash: in-memory state is discarded, queued and mid-flush adds
    /// fail with Unavailable, and every RPC is rejected until restart.
    void crash();

    /// Restart after a crash: rebuilds the ledger index by replaying the
    /// journal (only group-commits that completed before the crash).
    void restart();

    bool alive() const { return alive_; }
    uint64_t crashCount() const { return crashCount_; }

    uint64_t storedBytes() const { return storedBytes_; }

private:
    struct PendingAdd {
        LedgerId ledger;
        EntryId entry;
        BufChain data;
        uint64_t journalBytes;
        sim::Promise<sim::Unit> done;
    };
    struct LedgerState {
        std::map<EntryId, BufChain> entries;
        bool fenced = false;
    };
    /// One durable journal record (replayed on restart).
    struct JournalRecord {
        LedgerId ledger;
        EntryId entry;
        BufChain data;
    };

    void maybeStartFlush();
    void rebuildFromJournal();

    sim::Core& exec_;
    sim::HostId host_;
    sim::DiskModel& journal_;
    Config cfg_;
    uint64_t journalFileId_;

    std::deque<PendingAdd> pending_;
    bool flushInFlight_ = false;
    /// Acks owed by the flush currently on the disk; kept out of the disk
    /// callback so crash() can fail them (connection reset) instead of
    /// leaving the clients' futures dangling forever.
    std::vector<sim::Promise<sim::Unit>> inFlightAcks_;
    std::map<LedgerId, LedgerState> ledgers_;
    /// Durable metadata: survives crashes (ZooKeeper-backed in real BK).
    std::set<LedgerId> deleted_;
    std::set<LedgerId> fenced_;
    /// Durable journal contents: records land here only when their
    /// group-commit disk write completes.
    std::vector<JournalRecord> journalRecords_;
    uint64_t storedBytes_ = 0;

    bool alive_ = true;
    /// Bumped on crash so stale flush-completion callbacks are discarded.
    uint64_t epoch_ = 0;
    uint64_t crashCount_ = 0;

    // World-aggregate bookie metrics (all bookies share the named series).
    obs::Counter& mAdds_;
    obs::Counter& mAddBytes_;
    obs::Counter& mRejectUnavailable_;
    obs::Counter& mRejectFenced_;
    obs::Counter& mCrashes_;
    obs::Counter& mRestarts_;
    obs::Counter& mFlushes_;
    obs::LatencyHistogram& mGroupBytes_;
    obs::LatencyHistogram& mGroupEntries_;
    obs::LatencyHistogram& mSyncNs_;
};

}  // namespace pravega::wal
