// Bookie: the BookKeeper storage server (§2.2, [40]).
//
// A bookie journals every add-entry request to a dedicated drive before
// acknowledging, and opportunistically groups concurrent requests into one
// journal write ("third level of aggregation", §4.1): while a journal flush
// is in flight, new requests accumulate and are flushed together when it
// completes. Entries are also kept in an in-memory ledger index for reads
// and ledger recovery (the entry-log device is not on the ack path and is
// not modeled; see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/models.h"
#include "sim/network.h"
#include "wal/types.h"

namespace pravega::wal {

class Bookie {
public:
    struct Config {
        /// Journal fsync before ack (default on; Fig 5's Pravega "no flush"
        /// ablation turns this off).
        bool journalSync = true;
        /// Per-entry journal record overhead (headers, checksums).
        uint64_t entryOverheadBytes = 32;
        /// Upper bound on one journal group-commit write.
        uint64_t maxGroupBytes = 4 * 1024 * 1024;
        /// Per-entry journal processing (header, checksum, index update).
        /// Thin per-partition entries (Pulsar-style) pay this at high rates;
        /// multiplexed 1MB frames (Pravega containers) amortize it — the
        /// paper's §6(ii) multiplexing argument.
        sim::Duration perEntryLatency = sim::usec(4);
    };

    Bookie(sim::Executor& exec, sim::HostId host, sim::DiskModel& journalDrive, Config cfg);

    sim::HostId host() const { return host_; }

    /// Journals and stores one entry. Completes after the entry is durable
    /// (per `journalSync`). Rejects writes to fenced or deleted ledgers.
    sim::Future<sim::Unit> addEntry(LedgerId ledger, EntryId entry, SharedBuf data);

    /// Fences a ledger: no further adds accepted. Returns the last entry id
    /// this bookie has (for recovery). Idempotent.
    Result<EntryId> fenceLedger(LedgerId ledger);

    Result<SharedBuf> readEntry(LedgerId ledger, EntryId entry) const;
    Result<EntryId> lastEntry(LedgerId ledger) const;

    /// Drops all entries of a ledger (WAL truncation deletes ledgers, §4.3).
    void deleteLedger(LedgerId ledger);

    uint64_t storedBytes() const { return storedBytes_; }

private:
    struct PendingAdd {
        uint64_t journalBytes;
        sim::Promise<sim::Unit> done;
    };
    struct LedgerState {
        std::map<EntryId, SharedBuf> entries;
        bool fenced = false;
    };

    void maybeStartFlush();

    sim::Executor& exec_;
    sim::HostId host_;
    sim::DiskModel& journal_;
    Config cfg_;
    uint64_t journalFileId_;

    std::deque<PendingAdd> pending_;
    bool flushInFlight_ = false;
    std::map<LedgerId, LedgerState> ledgers_;
    std::set<LedgerId> deleted_;
    uint64_t storedBytes_ = 0;
};

}  // namespace pravega::wal
