// Virtual-time observability: named counters, gauges, log-bucketed latency
// histograms, and windowed rate meters, collected in a per-world
// MetricsRegistry.
//
// Determinism contract: every instrument is driven exclusively by virtual
// time (`sim::Core::now()`) and by the deterministic event order of the
// simulation — no wall clock, no global state, no iteration over unordered
// containers. `dump()` renders instruments sorted by name with fixed
// formatting, so two same-seed runs of the same binary produce byte-identical
// dumps. That makes metrics assertable in tests and turns the chaos suite
// into a white-box tool.
//
// One registry per Core (see sim::Core::metrics()): a "world" in
// this codebase is one executor, so per-world isolation falls out naturally
// and bench sweep points never bleed counters into each other.
//
// Hot-path usage: look instruments up ONCE (construction time), keep the
// reference. References remain stable for the registry's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/time.h"

namespace pravega::obs {

/// Monotonic event count.
class Counter {
public:
    void inc(uint64_t n = 1) { value_ += n; }
    uint64_t value() const { return value_; }

private:
    uint64_t value_ = 0;
};

/// Last-written value (queue depths, utilization ratios).
class Gauge {
public:
    void set(double v) { value_ = v; }
    void add(double d) { value_ += d; }
    double value() const { return value_; }

private:
    double value_ = 0;
};

/// Windowed rate over virtual time: a ring of fixed-width buckets covering
/// the trailing window. `mark()` and `perSecond()` both advance the ring to
/// the current virtual time, so a quiet meter decays to zero.
class RateMeter {
public:
    using NowFn = std::function<sim::TimePoint()>;

    explicit RateMeter(NowFn now, sim::Duration window = sim::kSecond, size_t buckets = 10);

    void mark(uint64_t n = 1);
    /// Rate over clamp(time since creation, bucketWidth, window): an empty
    /// window reads exactly 0, and a cold start (marks moments after
    /// creation) divides by at least one bucket width instead of a
    /// near-zero span — no NaN or inflated garbage rates.
    double perSecond() const;
    uint64_t total() const { return total_; }
    sim::Duration window() const { return window_; }

    /// Accumulates `other` into this meter. Both rings are advanced to the
    /// current virtual time first; with identical geometry (same window,
    /// same bucket count — the per-core partition case) the merge is
    /// bucket-exact, otherwise the in-window counts fold into the current
    /// bucket as a conservative approximation.
    void mergeFrom(const RateMeter& other);

private:
    void advanceTo(sim::TimePoint now) const;

    NowFn now_;
    sim::Duration window_;
    sim::Duration bucketWidth_;
    sim::TimePoint createdAt_;
    mutable std::vector<uint64_t> ring_;
    mutable int64_t currentBucket_;  // absolute bucket index of ring head
    uint64_t total_ = 0;
};

class MetricsRegistry {
public:
    /// `now` supplies virtual time for the rate meters (normally the owning
    /// executor's clock).
    explicit MetricsRegistry(RateMeter::NowFn now);

    // Find-or-create. Returned references are stable for the registry's
    // lifetime; cache them on hot paths.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);
    RateMeter& meter(const std::string& name, sim::Duration window = sim::kSecond);

    // Read-only lookup; nullptr when the instrument was never created.
    const Counter* findCounter(const std::string& name) const;
    const Gauge* findGauge(const std::string& name) const;
    const LatencyHistogram* findHistogram(const std::string& name) const;
    const RateMeter* findMeter(const std::string& name) const;

    /// Convenience for assertions: value of a counter, or 0 if absent.
    uint64_t counterValue(const std::string& name) const;

    /// Folds every instrument of `src` into this registry, find-or-create
    /// per name: counters and gauges sum, histograms merge bucket-wise,
    /// meters merge ring-wise. Same-name instruments from different source
    /// registries land in ONE instrument here — this is how per-core
    /// registry partitions aggregate into the machine-wide snapshot without
    /// double-registration.
    void mergeFrom(const MetricsRegistry& src);

    /// Deterministic text dump: one line per instrument, sorted by name,
    /// fixed formatting. Byte-identical across same-seed runs.
    std::string dump() const;

    /// Deterministic JSON object {"counters":{...},"gauges":{...},
    /// "histograms":{...},"meters":{...}} — embedded into BENCH_*.json.
    std::string toJson() const;

    void visitCounters(const std::function<void(const std::string&, const Counter&)>& fn) const;
    void visitHistograms(
        const std::function<void(const std::string&, const LatencyHistogram&)>& fn) const;

private:
    RateMeter::NowFn now_;
    // std::map: sorted iteration (deterministic dumps) + stable references.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
    std::map<std::string, std::unique_ptr<RateMeter>> meters_;
};

/// Records virtual-time elapsed between construction and `finish()` into a
/// stage histogram. The trace-span facility: each pipeline stage owns a
/// histogram named `trace.<flow>.<k>_<stage>` — the numeric prefix makes the
/// sorted dump read in pipeline order — and spans attribute one event's (or
/// batch's) latency to its stage.
class StageSpan {
public:
    StageSpan(sim::TimePoint start, LatencyHistogram& hist) : start_(start), hist_(&hist) {}

    /// Record `now - start` into the stage histogram (idempotent).
    void finish(sim::TimePoint now) {
        if (hist_ == nullptr) return;
        hist_->record(now - start_);
        hist_ = nullptr;
    }
    sim::TimePoint start() const { return start_; }

private:
    sim::TimePoint start_;
    LatencyHistogram* hist_;
};

}  // namespace pravega::obs
