// Log-bucketed latency histogram (HdrHistogram-style): constant memory,
// cheap recording, percentile queries for the latency-vs-throughput curves.
//
// Promoted from bench/harness into the obs:: layer so the benches, the
// component instrumentation, and the tests all share ONE histogram
// implementation. Recording is pure arithmetic over virtual-time durations,
// so same-seed runs produce bit-identical histograms.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace pravega::obs {

class LatencyHistogram {
public:
    void record(sim::Duration nanos) {
        if (nanos < 0) nanos = 0;
        ++buckets_[bucketOf(static_cast<uint64_t>(nanos))];
        ++count_;
        sum_ += static_cast<double>(nanos);
        max_ = std::max(max_, nanos);
    }

    uint64_t count() const { return count_; }
    double meanMs() const { return count_ ? sum_ / static_cast<double>(count_) / 1e6 : 0; }
    double maxMs() const { return static_cast<double>(max_) / 1e6; }
    double meanNs() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
    double maxNs() const { return static_cast<double>(max_); }
    double sumNs() const { return sum_; }

    /// Approximate percentile (upper bound of the containing bucket), ns.
    double percentileNs(double p) const {
        if (count_ == 0) return 0;
        uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1));
        uint64_t seen = 0;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen > rank) return bucketUpperNs(i);
        }
        return maxNs();
    }

    /// Approximate percentile (upper bound of the containing bucket), ms.
    double percentileMs(double p) const { return percentileNs(p) / 1e6; }

    void reset() {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

    /// The histogram of samples recorded since `prev` was copied off this
    /// histogram (bucket-wise difference). This is how windowed percentiles
    /// are computed over a cumulative histogram: snapshot at t-W, delta at
    /// t. `max` carries this histogram's lifetime max — an upper bound for
    /// the window, never consulted by percentile queries while the delta
    /// has samples. An unrelated or newer `prev` clamps to empty rather
    /// than producing garbage counts.
    LatencyHistogram deltaSince(const LatencyHistogram& prev) const {
        LatencyHistogram d;
        uint64_t n = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            d.buckets_[i] = buckets_[i] > prev.buckets_[i] ? buckets_[i] - prev.buckets_[i] : 0;
            n += d.buckets_[i];
        }
        d.count_ = n;
        d.sum_ = n > 0 && sum_ > prev.sum_ ? sum_ - prev.sum_ : 0;
        d.max_ = n > 0 ? max_ : 0;
        return d;
    }

    /// Accumulates `other`'s samples into this histogram (bucket-wise sum).
    /// Used to fold per-core registry partitions into one merged view;
    /// identical bucket layouts make the merge exact.
    void mergeFrom(const LatencyHistogram& other) {
        for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
    }

    /// Worst-case relative error of a percentile query: one bucket step.
    static constexpr double kBucketRelativeError = 0.125;

private:
    // 20 ns .. ~100 s in 12.5% steps: 8 sub-buckets per octave.
    static constexpr size_t kBuckets = 272;
    static constexpr double kBase = 20.0;

    static size_t bucketOf(uint64_t nanos) {
        if (nanos < kBase) return 0;
        double octaves = std::log2(static_cast<double>(nanos) / kBase);
        size_t b = static_cast<size_t>(octaves * 8.0) + 1;
        return std::min(b, kBuckets - 1);
    }
    static double bucketUpperNs(size_t b) {
        if (b == 0) return kBase;
        return kBase * std::pow(2.0, static_cast<double>(b) / 8.0);
    }

    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    double sum_ = 0;
    sim::Duration max_ = 0;
};

}  // namespace pravega::obs
