#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace pravega::obs {
namespace {

// Fixed-format double rendering shared by dump() and toJson(). %.6g is
// locale-independent here (no locale is ever set in this codebase) and
// deterministic for equal inputs, which is all the byte-identical contract
// needs.
std::string fmtDouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

RateMeter::RateMeter(NowFn now, sim::Duration window, size_t buckets)
    : now_(std::move(now)),
      window_(window),
      bucketWidth_(window / static_cast<sim::Duration>(buckets)),
      createdAt_(now_()),
      ring_(buckets, 0),
      currentBucket_(createdAt_ / std::max<sim::Duration>(bucketWidth_, 1)) {
    if (bucketWidth_ <= 0) bucketWidth_ = 1;
}

void RateMeter::advanceTo(sim::TimePoint now) const {
    int64_t target = now / bucketWidth_;
    if (target <= currentBucket_) return;
    int64_t steps = target - currentBucket_;
    auto n = static_cast<int64_t>(ring_.size());
    if (steps >= n) {
        std::fill(ring_.begin(), ring_.end(), 0);
    } else {
        for (int64_t b = currentBucket_ + 1; b <= target; ++b) {
            ring_[static_cast<size_t>(b % n)] = 0;
        }
    }
    currentBucket_ = target;
}

void RateMeter::mark(uint64_t n) {
    sim::TimePoint now = now_();
    advanceTo(now);
    ring_[static_cast<size_t>(currentBucket_ % static_cast<int64_t>(ring_.size()))] += n;
    total_ += n;
}

double RateMeter::perSecond() const {
    sim::TimePoint now = now_();
    advanceTo(now);
    uint64_t inWindow = 0;
    for (uint64_t v : ring_) inWindow += v;
    if (inWindow == 0) return 0;  // empty window: exactly zero, never 0/0
    // Cold start: marks recorded moments after creation must not divide by
    // a near-zero span and report an astronomically inflated rate (the
    // failure detectors sample meters and would alarm on the garbage).
    // The span floors at one bucket width — the meter's resolution.
    sim::Duration span = std::clamp<sim::Duration>(now - createdAt_, bucketWidth_, window_);
    return static_cast<double>(inWindow) / sim::toSeconds(span);
}

void RateMeter::mergeFrom(const RateMeter& other) {
    sim::TimePoint now = now_();
    advanceTo(now);
    other.advanceTo(now);
    total_ += other.total_;
    // Earlier creation carries over so perSecond() divides by the true span
    // of observed activity, not the (later) merge-registry creation time.
    createdAt_ = std::min(createdAt_, other.createdAt_);
    auto n = static_cast<int64_t>(ring_.size());
    if (bucketWidth_ == other.bucketWidth_ &&
        n == static_cast<int64_t>(other.ring_.size())) {
        // Identical geometry and both advanced to `now`: absolute bucket
        // indices line up, so the rings add element-wise.
        for (size_t i = 0; i < ring_.size(); ++i) ring_[i] += other.ring_[i];
    } else {
        uint64_t inWindow = 0;
        for (uint64_t v : other.ring_) inWindow += v;
        ring_[static_cast<size_t>(currentBucket_ % n)] += inWindow;
    }
}

MetricsRegistry::MetricsRegistry(RateMeter::NowFn now) : now_(std::move(now)) {}

Counter& MetricsRegistry::counter(const std::string& name) {
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

RateMeter& MetricsRegistry::meter(const std::string& name, sim::Duration window) {
    auto& slot = meters_[name];
    if (!slot) slot = std::make_unique<RateMeter>(now_, window);
    return *slot;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::findGauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricsRegistry::findHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

const RateMeter* MetricsRegistry::findMeter(const std::string& name) const {
    auto it = meters_.find(name);
    return it == meters_.end() ? nullptr : it->second.get();
}

uint64_t MetricsRegistry::counterValue(const std::string& name) const {
    const Counter* c = findCounter(name);
    return c ? c->value() : 0;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& src) {
    for (const auto& [name, c] : src.counters_) counter(name).inc(c->value());
    for (const auto& [name, g] : src.gauges_) gauge(name).add(g->value());
    for (const auto& [name, h] : src.histograms_) histogram(name).mergeFrom(*h);
    for (const auto& [name, m] : src.meters_) meter(name, m->window()).mergeFrom(*m);
}

std::string MetricsRegistry::dump() const {
    std::string out;
    char buf[256];
    for (const auto& [name, c] : counters_) {
        std::snprintf(buf, sizeof(buf), "counter %s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += buf;
    }
    for (const auto& [name, g] : gauges_) {
        out += "gauge ";
        out += name;
        out += " ";
        out += fmtDouble(g->value());
        out += "\n";
    }
    for (const auto& [name, h] : histograms_) {
        std::snprintf(buf, sizeof(buf), "histogram %s count=%llu", name.c_str(),
                      static_cast<unsigned long long>(h->count()));
        out += buf;
        out += " mean_ns=";
        out += fmtDouble(h->meanNs());
        out += " p50_ns=";
        out += fmtDouble(h->percentileNs(50));
        out += " p95_ns=";
        out += fmtDouble(h->percentileNs(95));
        out += " p99_ns=";
        out += fmtDouble(h->percentileNs(99));
        out += " max_ns=";
        out += fmtDouble(h->maxNs());
        out += "\n";
    }
    for (const auto& [name, m] : meters_) {
        std::snprintf(buf, sizeof(buf), "meter %s total=%llu", name.c_str(),
                      static_cast<unsigned long long>(m->total()));
        out += buf;
        out += " per_sec=";
        out += fmtDouble(m->perSecond());
        out += "\n";
    }
    return out;
}

std::string MetricsRegistry::toJson() const {
    std::string out = "{";
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += jsonEscape(name);
        out += "\":";
        out += std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += jsonEscape(name);
        out += "\":";
        out += fmtDouble(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += jsonEscape(name);
        out += "\":{\"count\":";
        out += std::to_string(h->count());
        out += ",\"mean_ns\":";
        out += fmtDouble(h->meanNs());
        out += ",\"p50_ns\":";
        out += fmtDouble(h->percentileNs(50));
        out += ",\"p95_ns\":";
        out += fmtDouble(h->percentileNs(95));
        out += ",\"p99_ns\":";
        out += fmtDouble(h->percentileNs(99));
        out += ",\"max_ns\":";
        out += fmtDouble(h->maxNs());
        out += "}";
    }
    out += "},\"meters\":{";
    first = true;
    for (const auto& [name, m] : meters_) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += jsonEscape(name);
        out += "\":{\"total\":";
        out += std::to_string(m->total());
        out += ",\"per_sec\":";
        out += fmtDouble(m->perSecond());
        out += "}";
    }
    out += "}}";
    return out;
}

void MetricsRegistry::visitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
}

void MetricsRegistry::visitHistograms(
    const std::function<void(const std::string&, const LatencyHistogram&)>& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
}

}  // namespace pravega::obs
