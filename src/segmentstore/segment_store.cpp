#include "segmentstore/segment_store.h"

#include "common/logging.h"

namespace pravega::segmentstore {

SegmentStore::SegmentStore(sim::Executor& exec, sim::HostId host, wal::WalEnv walEnv,
                           lts::ChunkStorage& lts, Config cfg)
    : exec_(exec),
      host_(host),
      walEnv_(walEnv),
      lts_(lts),
      cfg_(cfg),
      cpu_(exec, cfg.cpu),
      cache_(cfg.cache) {}

Status SegmentStore::addContainer(uint32_t containerId) {
    if (containers_.contains(containerId)) {
        return Status(Err::AlreadyExists, "container already hosted");
    }
    auto container = std::make_unique<SegmentContainer>(exec_, containerId, walEnv_, host_, lts_,
                                                        cache_, cfg_.container);
    Status started = container->start();
    if (!started) return started;
    containers_[containerId] = std::move(container);
    return Status::ok();
}

void SegmentStore::removeContainer(uint32_t containerId) {
    auto it = containers_.find(containerId);
    if (it == containers_.end()) return;
    it->second->shutdown();
    containers_.erase(it);
}

SegmentContainer* SegmentStore::container(uint32_t containerId) {
    auto it = containers_.find(containerId);
    return it == containers_.end() ? nullptr : it->second.get();
}

std::vector<uint32_t> SegmentStore::containerIds() const {
    std::vector<uint32_t> out;
    out.reserve(containers_.size());
    for (const auto& [id, c] : containers_) out.push_back(id);
    return out;
}

std::map<SegmentId, SegmentRate> SegmentStore::drainRates() {
    std::map<SegmentId, SegmentRate> out;
    for (auto& [id, c] : containers_) {
        for (auto& [seg, rate] : c->drainRates()) {
            auto& agg = out[seg];
            agg.bytes += rate.bytes;
            agg.events += rate.events;
        }
    }
    return out;
}

}  // namespace pravega::segmentstore
