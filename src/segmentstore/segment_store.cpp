#include "segmentstore/segment_store.h"

#include <algorithm>

#include "common/logging.h"

namespace pravega::segmentstore {

SegmentStore::SegmentStore(sim::Core& exec, sim::HostId host, wal::WalEnv walEnv,
                           lts::ChunkStorage& lts, Config cfg, ContainerPlacement placement)
    : exec_(exec),
      host_(host),
      walEnv_(walEnv),
      lts_(lts),
      cfg_(cfg),
      placement_(std::move(placement)),
      cache_(cfg.cache) {}

sim::Core& SegmentStore::containerCore(uint32_t containerId) {
    return placement_ ? placement_(containerId) : exec_;
}

sim::CpuModel& SegmentStore::cpuFor(sim::Core& core) {
    auto& slot = cpuByCore_[core.id()];
    if (!slot) {
        sim::CpuModel::Config perCore = cfg_.cpu;
        perCore.cores = std::max(1, cfg_.cpu.cores / core.machine().coreCount());
        slot = std::make_unique<sim::CpuModel>(core, perCore);
    }
    return *slot;
}

sim::Future<sim::Unit> SegmentStore::chargeRequest(uint32_t containerId, uint64_t bytes) {
    sim::Core& core = containerCore(containerId);
    sim::CpuModel& cpu = cpuFor(core);
    sim::Machine& machine = exec_.machine();
    if (core.id() == machine.runningCore()) {
        // Same shard: charge directly (the pre-shard fast path).
        return cpu.execute(bytes);
    }
    sim::Promise<sim::Unit> p;
    auto fut = p.future();
    machine.submitTo(core.id(), [&cpu, bytes, p]() mutable {
        cpu.execute(bytes).onComplete(
            [p](const Result<sim::Unit>& r) mutable { p.complete(r); });
    });
    return fut;
}

Status SegmentStore::addContainer(uint32_t containerId) {
    if (containers_.contains(containerId)) {
        return Status(Err::AlreadyExists, "container already hosted");
    }
    sim::Core& core = containerCore(containerId);
    // The container's whole environment — WAL client, storage writer,
    // read pipeline — lives on its placed core. WalEnv holds references,
    // so a fresh env is built around the container core.
    wal::WalEnv env{core, walEnv_.net, walEnv_.registry, walEnv_.logMeta, walEnv_.bookies};
    auto container = std::make_unique<SegmentContainer>(core, containerId, env, host_, lts_,
                                                        cache_, cfg_.container);
    Status started = container->start();
    if (!started) return started;
    containers_[containerId] = std::move(container);
    return Status::ok();
}

void SegmentStore::removeContainer(uint32_t containerId) {
    auto it = containers_.find(containerId);
    if (it == containers_.end()) return;
    it->second->shutdown();
    containers_.erase(it);
}

SegmentContainer* SegmentStore::container(uint32_t containerId) {
    auto it = containers_.find(containerId);
    return it == containers_.end() ? nullptr : it->second.get();
}

std::vector<uint32_t> SegmentStore::containerIds() const {
    std::vector<uint32_t> out;
    out.reserve(containers_.size());
    for (const auto& [id, c] : containers_) out.push_back(id);
    return out;
}

std::map<SegmentId, SegmentRate> SegmentStore::drainRates() {
    std::map<SegmentId, SegmentRate> out;
    for (auto& [id, c] : containers_) {
        for (auto& [seg, rate] : c->drainRates()) {
            auto& agg = out[seg];
            agg.bytes += rate.bytes;
            agg.events += rate.events;
        }
    }
    return out;
}

}  // namespace pravega::segmentstore
