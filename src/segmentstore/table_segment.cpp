#include "segmentstore/table_segment.h"

namespace pravega::segmentstore {

Status TableIndex::validate(const std::vector<TableUpdate>& batch) const {
    for (const auto& u : batch) {
        auto it = entries_.find(u.key);
        if (u.expectedVersion == kAnyVersion) continue;
        if (u.expectedVersion == kNotExists) {
            if (it != entries_.end()) {
                return Status(Err::BadVersion, "key exists: " + u.key);
            }
            continue;
        }
        if (it == entries_.end() || it->second.version != u.expectedVersion) {
            return Status(Err::BadVersion, "version mismatch: " + u.key);
        }
    }
    return Status::ok();
}

std::vector<int64_t> TableIndex::apply(const std::vector<TableUpdate>& batch) {
    std::vector<int64_t> versions;
    versions.reserve(batch.size());
    for (const auto& u : batch) {
        if (u.value) {
            int64_t v = nextVersion_++;
            entries_[u.key] = TableValue{*u.value, v};
            versions.push_back(v);
        } else {
            entries_.erase(u.key);
            versions.push_back(-1);
        }
    }
    return versions;
}

Result<TableValue> TableIndex::get(const std::string& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status(Err::NotFound, key);
    return it->second;
}

std::vector<std::pair<std::string, TableValue>> TableIndex::scanPrefix(
    const std::string& prefix) const {
    std::vector<std::pair<std::string, TableValue>> out;
    for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0) break;
        out.push_back(*it);
    }
    return out;
}

void TableIndex::serialize(BinaryWriter& w) const {
    w.i64(nextVersion_);
    w.varint(entries_.size());
    for (const auto& [key, tv] : entries_) {
        w.str(key);
        w.bytes(tv.value);
        w.i64(tv.version);
    }
}

Status TableIndex::deserialize(BinaryReader& r) {
    auto nv = r.i64();
    auto n = r.varint();
    if (!nv || !n) return Status(Err::IoError, "corrupt table snapshot");
    entries_.clear();
    nextVersion_ = nv.value();
    for (uint64_t i = 0; i < n.value(); ++i) {
        auto key = r.str();
        auto value = r.bytes();
        auto version = r.i64();
        if (!key || !value || !version) return Status(Err::IoError, "corrupt table entry");
        entries_[key.value()] = TableValue{std::move(value.value()), version.value()};
    }
    return Status::ok();
}

void TableIndex::serializeBatch(const std::vector<TableUpdate>& batch, BinaryWriter& w) {
    w.varint(batch.size());
    for (const auto& u : batch) {
        w.str(u.key);
        w.u8(u.value ? 1 : 0);
        if (u.value) w.bytes(*u.value);
        w.i64(u.expectedVersion);
    }
}

Result<std::vector<TableUpdate>> TableIndex::deserializeBatch(BinaryReader& r) {
    auto n = r.varint();
    if (!n) return n.status();
    // Validate the count against the bytes actually present (every update
    // occupies at least 3 bytes) before reserving: corrupt inputs must fail
    // cleanly, not allocate unbounded memory.
    if (n.value() > r.remaining() / 3 + 1) {
        return Status(Err::IoError, "implausible batch count");
    }
    std::vector<TableUpdate> batch;
    batch.reserve(n.value());
    for (uint64_t i = 0; i < n.value(); ++i) {
        TableUpdate u;
        auto key = r.str();
        auto hasValue = r.u8();
        if (!key || !hasValue) return Status(Err::IoError, "corrupt update batch");
        u.key = std::move(key.value());
        if (hasValue.value()) {
            auto value = r.bytes();
            if (!value) return value.status();
            u.value = std::move(value.value());
        }
        auto ev = r.i64();
        if (!ev) return ev.status();
        u.expectedVersion = ev.value();
        batch.push_back(std::move(u));
    }
    return batch;
}

}  // namespace pravega::segmentstore
