// Per-segment attributes (§3.2, "segment attributes").
//
// Attributes are key→int64 pairs attached to a segment; Pravega's
// exactly-once writer protocol persists ⟨writer id, event number⟩ here as
// part of processing each append, and serves it back on reconnection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/result.h"
#include "common/serde.h"
#include "segmentstore/types.h"

namespace pravega::segmentstore {

class AttributeIndex {
public:
    /// Reserved value meaning "attribute absent" (mirrors Pravega's
    /// Attributes.NULL_ATTRIBUTE_VALUE).
    static constexpr int64_t kNullValue = INT64_MIN;

    void addSegment(SegmentId segment) { attrs_.try_emplace(segment); }
    void removeSegment(SegmentId segment) { attrs_.erase(segment); }

    /// Returns the attribute value, or kNullValue when unset.
    int64_t get(SegmentId segment, AttributeId attribute) const;

    void set(SegmentId segment, AttributeId attribute, int64_t value);

    /// Atomic compare-and-set; `expected` of kNullValue means "must be
    /// unset". Returns BadVersion on mismatch.
    Status compareAndSet(SegmentId segment, AttributeId attribute, int64_t expected,
                         int64_t value);

    size_t count(SegmentId segment) const;

    /// Checkpoint support: serialize / restore one segment's attributes.
    void serialize(SegmentId segment, BinaryWriter& w) const;
    Status deserialize(SegmentId segment, BinaryReader& r);

private:
    std::map<SegmentId, std::map<AttributeId, int64_t>> attrs_;
};

}  // namespace pravega::segmentstore
