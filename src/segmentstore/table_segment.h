// Table segments: the key-value store built on segments that Pravega uses
// for its own metadata — controller stream records (§2.2) and LTS chunk
// metadata (§4.3). Updates support conditional (version-checked) writes and
// multi-key transactions applied atomically; "this guarantees that
// concurrent operations will never leave the metadata in an inconsistent
// state" (§4.3).
//
// This class is the in-memory index plus (de)serialization of update
// batches; durability comes from the segment container, which routes each
// batch through the WAL as a TableUpdate operation and replays them (or a
// checkpoint snapshot) on recovery.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serde.h"

namespace pravega::segmentstore {

/// Version sentinels for conditional updates.
constexpr int64_t kAnyVersion = -1;   // unconditional
constexpr int64_t kNotExists = -2;    // key must not exist

struct TableUpdate {
    std::string key;
    std::optional<Bytes> value;  // nullopt = removal
    int64_t expectedVersion = kAnyVersion;
};

struct TableValue {
    Bytes value;
    int64_t version = 0;
};

class TableIndex {
public:
    /// Validates a batch against current versions without applying it.
    Status validate(const std::vector<TableUpdate>& batch) const;

    /// Applies a batch atomically (call validate first on the ingest path;
    /// recovery replays pre-validated batches). Returns the versions
    /// assigned to each update, in order (removals get -1).
    std::vector<int64_t> apply(const std::vector<TableUpdate>& batch);

    Result<TableValue> get(const std::string& key) const;
    bool contains(const std::string& key) const { return entries_.contains(key); }
    size_t size() const { return entries_.size(); }

    /// Ordered iteration (used by chunk-metadata scans and tests).
    std::vector<std::pair<std::string, TableValue>> scanPrefix(const std::string& prefix) const;

    /// Checkpoint support.
    void serialize(BinaryWriter& w) const;
    Status deserialize(BinaryReader& r);

    static void serializeBatch(const std::vector<TableUpdate>& batch, BinaryWriter& w);
    static Result<std::vector<TableUpdate>> deserializeBatch(BinaryReader& r);

private:
    std::map<std::string, TableValue> entries_;
    int64_t nextVersion_ = 1;
};

}  // namespace pravega::segmentstore
