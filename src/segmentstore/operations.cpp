#include "segmentstore/operations.h"

namespace pravega::segmentstore {

uint64_t Operation::serializedSize() const {
    // Close upper bound used for frame-size accounting: fixed header plus
    // payload and name.
    return 1 + 8 + 8 + 8 + 8 + 4 + 10 + data.size() + name.size() + 2;
}

void serializeOp(BinaryWriter& w, const Operation& op) {
    serializeOpHeader(w, op);
    w.raw(op.data.view());
}

void serializeOpHeader(BinaryWriter& w, const Operation& op) {
    w.u8(static_cast<uint8_t>(op.type));
    w.u64(op.segment);
    w.i64(op.offset);
    w.u64(op.writer);
    w.i64(op.eventNumber);
    w.u32(op.eventCount);
    w.str(op.name);
    w.u8(op.isTable ? 1 : 0);
    // The payload's length prefix (w.bytes == varint + raw payload).
    w.varint(op.data.size());
}

Result<std::vector<Operation>> deserializeFrame(BytesView frame) {
    BinaryReader r(frame);
    std::vector<Operation> ops;
    while (!r.atEnd()) {
        Operation op;
        auto type = r.u8();
        auto segment = r.u64();
        auto offset = r.i64();
        auto writer = r.u64();
        auto eventNumber = r.i64();
        auto eventCount = r.u32();
        auto name = r.str();
        auto isTable = r.u8();
        auto data = r.bytes();
        if (!type || !segment || !offset || !writer || !eventNumber || !eventCount || !name ||
            !isTable || !data) {
            return Status(Err::IoError, "corrupt data frame");
        }
        op.type = static_cast<OpType>(type.value());
        op.segment = segment.value();
        op.offset = offset.value();
        op.writer = writer.value();
        op.eventNumber = eventNumber.value();
        op.eventCount = eventCount.value();
        op.name = std::move(name.value());
        op.isTable = isTable.value() != 0;
        op.data = SharedBuf(std::move(data.value()));
        ops.push_back(std::move(op));
    }
    return ops;
}

}  // namespace pravega::segmentstore
