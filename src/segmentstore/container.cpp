#include "segmentstore/container.h"

#include <algorithm>
#include <cassert>

#include "common/buf_chain.h"
#include "common/logging.h"

namespace pravega::segmentstore {

namespace {
constexpr const char* kLog = "container";

SegmentId systemTableIdFor(uint32_t containerId) {
    return makeSegmentId(0xFFFFFFFFu, containerId);
}
}  // namespace

SegmentContainer::SegmentContainer(sim::Core& exec, uint32_t containerId, wal::WalEnv walEnv,
                                   sim::HostId host, lts::ChunkStorage& lts, BlockCache& cache,
                                   ContainerConfig cfg)
    : exec_(exec),
      containerId_(containerId),
      host_(host),
      lts_(lts),
      cache_(cache),
      cfg_(cfg),
      log_(std::make_unique<wal::LogClient>(walEnv, host, containerId, cfg.log)),
      readIndex_(cache),
      systemTable_(systemTableIdFor(containerId)),
      mOpsEnqueued_(exec.metrics().counter("store.ops.enqueued")),
      mFramesClosed_(exec.metrics().counter("store.frames.closed")),
      mThrottleCount_(exec.metrics().counter("store.throttle.count")),
      mThrottleNs_(exec.metrics().counter("store.throttle.ns")),
      mCacheHits_(exec.metrics().counter("store.cache.read_hits")),
      mCacheMisses_(exec.metrics().counter("store.cache.read_misses")),
      mCacheEvictions_(exec.metrics().counter("store.cache.evictions")),
      mTailWaits_(exec.metrics().counter("store.read.tail_waits")),
      mReadCoalesced_(exec.metrics().counter("store.read.coalesced")),
      mLtsFetches_(exec.metrics().counter("store.read.lts_fetches")),
      mPrefetchIssued_(exec.metrics().counter("store.prefetch.issued")),
      mPrefetchHits_(exec.metrics().counter("store.prefetch.hits")),
      mPrefetchWasted_(exec.metrics().counter("store.prefetch.wasted_bytes")),
      mQueueDepth_(exec.metrics().gauge("store.op_queue.depth")),
      mFrameBytes_(exec.metrics().histogram("store.frame.bytes")),
      mFrameOps_(exec.metrics().histogram("store.frame.ops")),
      mStoreQueueNs_(exec.metrics().histogram("trace.write.1_store_queue_ns")),
      mWalCommitNs_(exec.metrics().histogram("trace.write.2_wal_commit_ns")),
      mDemandFetchNs_(exec.metrics().histogram("trace.read.1_lts_fetch_ns")),
      mPrefetchFetchNs_(exec.metrics().histogram("trace.read.2_prefetch_fetch_ns")) {
    readIndex_.setEvictionCounter(&mCacheEvictions_);
    storageWriter_ = std::make_unique<StorageWriter>(exec, *this, lts, cfg.storage);
}

SegmentContainer::~SegmentContainer() {
    if (!offline_) shutdown();
    *alive_ = false;
}

SegmentContainer::SegmentMeta* SegmentContainer::findSegment(SegmentId id) {
    auto it = segments_.find(id);
    return it == segments_.end() || it->second.props.deleted ? nullptr : &it->second;
}

const SegmentContainer::SegmentMeta* SegmentContainer::findSegment(SegmentId id) const {
    auto it = segments_.find(id);
    return it == segments_.end() || it->second.props.deleted ? nullptr : &it->second;
}

// --------------------------------------------------------------- startup

Status SegmentContainer::start() {
    auto recovered = log_->recover();
    if (!recovered) return recovered.status();

    for (auto& [addr, frame] : recovered.value()) {
        auto ops = deserializeFrame(frame.view());
        if (!ops) return ops.status();
        for (auto& op : ops.value()) applyOp(op, addr.sequence, /*replay=*/true);
        lastAppliedSeq_ = addr.sequence;
    }
    offline_ = false;

    // Reconcile recovered segments against LTS (chunk metadata is in the
    // system table, which the replay above restored).
    for (auto& [id, meta] : segments_) {
        if (meta.props.isTable || meta.props.deleted) continue;
        auto len = storageWriter_->reconcileSegment(id);
        if (len) {
            meta.props.storageLength = len.value();
            readIndex_.setStorageLength(id, len.value());
        }
        meta.appliedLength = meta.props.length;
    }
    for (auto& [id, meta] : segments_) meta.appliedLength = meta.props.length;

    if (!segments_.contains(systemTable_)) {
        createSegment(systemTable_, "_system/container_" + std::to_string(containerId_), true);
    }

    storageWriter_->start();
    startCachePolicyTimer();
    PLOG_INFO(kLog, "container %u online, %zu segments recovered", containerId_,
              segments_.size());
    return Status::ok();
}

void SegmentContainer::shutdown() {
    if (offline_) return;
    offline_ = true;
    storageWriter_->stop();
    ++cacheTimerEpoch_;  // cancels the cache policy timer
    failAllPending(Status(Err::ContainerOffline, "container shut down"));
    PLOG_WARN(kLog, "container %u shut down", containerId_);
}

void SegmentContainer::failAllPending(Status error) {
    auto frame = std::move(openFrame_);
    openFrame_ = PendingFrame{};
    for (auto& c : frame.completions) c(error);
    auto waiters = std::move(tailWaiters_);
    tailWaiters_.clear();
    for (auto& [seg, list] : waiters) {
        for (auto& w : list) w.wake.setError(error);
    }
    // Drain the in-flight fetch table; late piece completions are dropped
    // by the epoch bump.
    ++fetchEpoch_;
    auto fetches = std::move(inflightFetches_);
    inflightFetches_.clear();
    for (auto& [seg, perSeg] : fetches) {
        for (auto& [start, fetch] : perSeg) {
            for (auto& w : fetch.waiters) w.promise.setError(error);
        }
    }
    prefetchInflightBytes_ = 0;
    readStates_.clear();
}

void SegmentContainer::startCachePolicyTimer() {
    uint64_t epoch = cacheTimerEpoch_;
    // The liveness token must be checked before the epoch: the timer (owned
    // by the machine) can fire after this container was destroyed, and even
    // the epoch comparison would then read freed memory.
    exec_.scheduleWeak(cfg_.cachePolicyInterval, [this, epoch, alive = alive_]() {
        if (!*alive) return;
        if (epoch != cacheTimerEpoch_ || offline_) return;
        readIndex_.applyCachePolicy();
        startCachePolicyTimer();
    });
}

// ------------------------------------------------------------- admission

sim::Duration SegmentContainer::throttleDelay() const {
    double f = 0.0;
    double backlog = lts_.backlogSeconds();
    if (backlog > cfg_.throttleStartSeconds) {
        f = (backlog - cfg_.throttleStartSeconds) /
            (cfg_.throttleFullSeconds - cfg_.throttleStartSeconds);
    }
    uint64_t segPending = storageWriter_->maxSegmentPendingBytes();
    if (segPending > cfg_.throttleStartSegmentBytes) {
        double g = static_cast<double>(segPending - cfg_.throttleStartSegmentBytes) /
                   static_cast<double>(cfg_.throttleFullSegmentBytes -
                                       cfg_.throttleStartSegmentBytes);
        f = std::max(f, g);
    }
    f = std::clamp(f, 0.0, 1.0);
    return static_cast<sim::Duration>(f * static_cast<double>(cfg_.maxThrottleDelay));
}

void SegmentContainer::admit(std::function<void()> fn) {
    sim::Duration d = throttleDelay();
    sim::TimePoint at = std::max(exec_.now() + d, admitCursor_);
    if (at <= exec_.now()) {
        fn();
        return;
    }
    // LTS-backpressure accounting: how long admission held this op back.
    mThrottleCount_.inc();
    mThrottleNs_.inc(static_cast<uint64_t>(at - exec_.now()));
    admitCursor_ = at;
    exec_.schedule(at - exec_.now(), std::move(fn));
}

// ------------------------------------------------------------ public API

sim::Future<sim::Unit> SegmentContainer::createSegment(SegmentId id, std::string name,
                                                       bool isTable) {
    if (offline_) return sim::Future<sim::Unit>::failed(Status(Err::ContainerOffline, ""));
    if (segments_.contains(id) && !segments_[id].props.deleted) {
        return sim::Future<sim::Unit>::failed(Status(Err::AlreadyExists, name));
    }
    auto& meta = segments_[id];
    meta = SegmentMeta{};
    meta.props.id = id;
    meta.props.name = name;
    meta.props.isTable = isTable;
    readIndex_.addSegment(id);
    attributes_.addSegment(id);

    Operation op;
    op.type = OpType::Create;
    op.segment = id;
    op.name = std::move(name);
    op.isTable = isTable;

    sim::Promise<sim::Unit> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable {
        if (r.isOk()) {
            p.setValue(sim::Unit{});
        } else {
            p.setError(r.status());
        }
    });
    return fut;
}

sim::Future<int64_t> SegmentContainer::append(SegmentId id, SharedBuf data, WriterId writer,
                                              int64_t eventNumber, uint32_t eventCount) {
    if (offline_) return sim::Future<int64_t>::failed(Status(Err::ContainerOffline, ""));
    sim::Promise<int64_t> p;
    auto fut = p.future();
    admit([this, id, data = std::move(data), writer, eventNumber, eventCount, p]() mutable {
        if (offline_) {
            p.setError(Err::ContainerOffline);
            return;
        }
        SegmentMeta* meta = findSegment(id);
        if (!meta) {
            p.setError(Err::NotFound, "no such segment");
            return;
        }
        if (meta->props.sealed) {
            p.setError(Err::Sealed, "segment is sealed");
            return;
        }
        if (writer != 0) {
            // Exactly-once: stale event numbers are duplicates from a
            // writer retry; acknowledge without appending (§3.2).
            int64_t last = attributes_.get(id, writer);
            if (last != AttributeIndex::kNullValue && eventNumber <= last) {
                p.setValue(-1);
                return;
            }
            attributes_.set(id, writer, eventNumber);
        }
        Operation op;
        op.type = OpType::Append;
        op.segment = id;
        op.offset = meta->props.length;
        op.writer = writer;
        op.eventNumber = eventNumber;
        op.eventCount = eventCount;
        op.data = std::move(data);
        meta->props.length += static_cast<int64_t>(op.data.size());
        enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable { p.complete(r); });
    });
    return fut;
}

sim::Future<int64_t> SegmentContainer::conditionalAppend(SegmentId id, SharedBuf data,
                                                         int64_t expectedOffset) {
    if (offline_) return sim::Future<int64_t>::failed(Status(Err::ContainerOffline, ""));
    SegmentMeta* meta = findSegment(id);
    if (!meta) return sim::Future<int64_t>::failed(Status(Err::NotFound, ""));
    if (meta->props.sealed) return sim::Future<int64_t>::failed(Status(Err::Sealed, ""));
    if (meta->props.length != expectedOffset) {
        return sim::Future<int64_t>::failed(Status(Err::BadOffset, "conditional append lost"));
    }
    Operation op;
    op.type = OpType::Append;
    op.segment = id;
    op.offset = meta->props.length;
    op.eventCount = 1;
    op.data = std::move(data);
    meta->props.length += static_cast<int64_t>(op.data.size());

    sim::Promise<int64_t> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable { p.complete(r); });
    return fut;
}

sim::Future<sim::Unit> SegmentContainer::seal(SegmentId id) {
    if (offline_) return sim::Future<sim::Unit>::failed(Status(Err::ContainerOffline, ""));
    SegmentMeta* meta = findSegment(id);
    if (!meta) return sim::Future<sim::Unit>::failed(Status(Err::NotFound, ""));
    if (meta->props.sealed) return sim::Future<sim::Unit>::ready(sim::Unit{});
    meta->props.sealed = true;

    Operation op;
    op.type = OpType::Seal;
    op.segment = id;
    sim::Promise<sim::Unit> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable {
        if (r.isOk()) {
            p.setValue(sim::Unit{});
        } else {
            p.setError(r.status());
        }
    });
    return fut;
}

sim::Future<sim::Unit> SegmentContainer::truncate(SegmentId id, int64_t newStartOffset) {
    if (offline_) return sim::Future<sim::Unit>::failed(Status(Err::ContainerOffline, ""));
    SegmentMeta* meta = findSegment(id);
    if (!meta) return sim::Future<sim::Unit>::failed(Status(Err::NotFound, ""));
    if (newStartOffset > meta->props.length) {
        return sim::Future<sim::Unit>::failed(Status(Err::BadOffset, "beyond segment length"));
    }
    meta->props.startOffset = std::max(meta->props.startOffset, newStartOffset);

    Operation op;
    op.type = OpType::Truncate;
    op.segment = id;
    op.offset = newStartOffset;
    sim::Promise<sim::Unit> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable {
        if (r.isOk()) {
            p.setValue(sim::Unit{});
        } else {
            p.setError(r.status());
        }
    });
    return fut;
}

sim::Future<sim::Unit> SegmentContainer::deleteSegment(SegmentId id) {
    if (offline_) return sim::Future<sim::Unit>::failed(Status(Err::ContainerOffline, ""));
    SegmentMeta* meta = findSegment(id);
    if (!meta) return sim::Future<sim::Unit>::failed(Status(Err::NotFound, ""));
    meta->props.deleted = true;

    Operation op;
    op.type = OpType::Delete;
    op.segment = id;
    sim::Promise<sim::Unit> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p](const Result<int64_t>& r) mutable {
        if (r.isOk()) {
            p.setValue(sim::Unit{});
        } else {
            p.setError(r.status());
        }
    });
    return fut;
}

Result<SegmentProperties> SegmentContainer::getInfo(SegmentId id) const {
    const SegmentMeta* meta = findSegment(id);
    if (!meta) return Status(Err::NotFound, "no such segment");
    SegmentProperties props = meta->props;
    // External view: the readable prefix, not yet-unacknowledged appends.
    props.length = meta->appliedLength;
    return props;
}

int64_t SegmentContainer::getWriterLastEventNumber(SegmentId id, WriterId writer) const {
    return attributes_.get(id, writer);
}

sim::Future<std::vector<int64_t>> SegmentContainer::tableUpdate(SegmentId id,
                                                                std::vector<TableUpdate> batch) {
    using Out = std::vector<int64_t>;
    if (offline_) return sim::Future<Out>::failed(Status(Err::ContainerOffline, ""));
    SegmentMeta* meta = findSegment(id);
    if (!meta || !meta->props.isTable) {
        return sim::Future<Out>::failed(Status(Err::NotFound, "no such table segment"));
    }
    // Validate + apply against the (enqueue-time) index so concurrent
    // conditional updates serialize correctly, then make it durable.
    Status valid = meta->table.validate(batch);
    if (!valid) return sim::Future<Out>::failed(valid);
    auto versions = meta->table.apply(batch);

    Bytes serialized;
    BinaryWriter w(serialized);
    TableIndex::serializeBatch(batch, w);

    Operation op;
    op.type = OpType::TableUpdate;
    op.segment = id;
    op.offset = meta->props.length;
    op.data = SharedBuf(std::move(serialized));
    meta->props.length += static_cast<int64_t>(op.data.size());

    sim::Promise<Out> p;
    auto fut = p.future();
    enqueueOp(std::move(op), [p, versions = std::move(versions)](const Result<int64_t>& r) mutable {
        if (r.isOk()) {
            p.setValue(std::move(versions));
        } else {
            p.setError(r.status());
        }
    });
    return fut;
}

Result<TableValue> SegmentContainer::tableGet(SegmentId id, const std::string& key) const {
    const SegmentMeta* meta = findSegment(id);
    if (!meta || !meta->props.isTable) return Status(Err::NotFound, "no such table segment");
    return meta->table.get(key);
}

std::vector<std::pair<std::string, TableValue>> SegmentContainer::tableScan(
    SegmentId id, const std::string& prefix) const {
    const SegmentMeta* meta = findSegment(id);
    if (!meta || !meta->props.isTable) return {};
    return meta->table.scanPrefix(prefix);
}

// ------------------------------------------------------------ frame path

void SegmentContainer::enqueueOp(Operation op, std::function<void(Result<int64_t>)> completion) {
    if (openFrame_.ops.empty()) openFrame_.openedAt = exec_.now();
    openFrame_.bytes += op.serializedSize();
    openFrame_.ops.push_back(std::move(op));
    openFrame_.completions.push_back(std::move(completion));
    mOpsEnqueued_.inc();
    mQueueDepth_.set(static_cast<double>(openFrame_.ops.size()) +
                     static_cast<double>(inFlightFrames_));

    if (openFrame_.bytes >= cfg_.maxFrameBytes) {
        closeFrame();
    } else {
        scheduleFrameTimer();
    }
}

sim::Duration SegmentContainer::currentBatchDelay() const {
    // Delay = RecentLatency * (1 - AvgWriteSize / MaxFrameSize), bounded.
    double fill = avgWriteSizeBytes_ / static_cast<double>(cfg_.maxFrameBytes);
    fill = std::clamp(fill, 0.0, 1.0);
    auto d = static_cast<sim::Duration>(recentWalLatencyNs_ * (1.0 - fill));
    return std::clamp<sim::Duration>(d, 0, cfg_.maxBatchDelay);
}

void SegmentContainer::scheduleFrameTimer() {
    if (frameTimerArmed_) return;
    frameTimerArmed_ = true;
    uint64_t epoch = ++frameTimerEpoch_;
    exec_.schedule(currentBatchDelay(), [this, epoch]() {
        if (epoch != frameTimerEpoch_ || offline_) return;
        frameTimerArmed_ = false;
        if (!openFrame_.ops.empty()) closeFrame();
    });
}

void SegmentContainer::closeFrame() {
    frameTimerArmed_ = false;
    ++frameTimerEpoch_;  // cancel any armed timer
    if (openFrame_.ops.empty()) return;

    auto frame = std::move(openFrame_);
    openFrame_ = PendingFrame{};

    // Serialize every op's header (fixed fields + payload length prefix)
    // into one small buffer, then splice the payloads in as shared
    // fragments: the resulting chain is byte-identical to the old
    // serializeOp stream, but payload bytes ride into the WAL entry by
    // reference instead of being copied a second time.
    Bytes headers;
    BinaryWriter w(headers);
    std::vector<size_t> cuts;
    cuts.reserve(frame.ops.size() + 1);
    for (const auto& op : frame.ops) {
        cuts.push_back(headers.size());
        serializeOpHeader(w, op);
    }
    cuts.push_back(headers.size());
    SharedBuf hbuf{std::move(headers)};
    BufChain serialized;
    for (size_t i = 0; i < frame.ops.size(); ++i) {
        serialized.append(hbuf.slice(cuts[i], cuts[i + 1] - cuts[i]));
        serialized.append(frame.ops[i].data);
    }
    uint64_t frameBytes = serialized.size();

    // EWMA of frame sizes feeds the delay formula.
    avgWriteSizeBytes_ = avgWriteSizeBytes_ * 0.8 + static_cast<double>(frameBytes) * 0.2;

    sim::TimePoint sentAt = exec_.now();
    mFramesClosed_.inc();
    mFrameBytes_.record(static_cast<sim::Duration>(frameBytes));
    mFrameOps_.record(static_cast<sim::Duration>(frame.ops.size()));
    mStoreQueueNs_.record(sentAt - frame.openedAt);
    ++inFlightFrames_;
    log_->append(std::move(serialized))
        .onComplete([this, ops = std::move(frame.ops), completions = std::move(frame.completions),
                     sentAt](const Result<wal::LogAddress>& r) mutable {
            --inFlightFrames_;
            if (!r.isOk()) {
                for (auto& c : completions) c(r.status());
                PLOG_ERROR(kLog, "container %u WAL write failed (%s); shutting down",
                           containerId_, r.status().toString().c_str());
                shutdown();
                return;
            }
            double latency = static_cast<double>(exec_.now() - sentAt);
            recentWalLatencyNs_ = recentWalLatencyNs_ * 0.8 + latency * 0.2;
            mWalCommitNs_.record(exec_.now() - sentAt);
            applyFrame(std::move(ops), std::move(completions), r.value().sequence);
        });
}

void SegmentContainer::applyFrame(std::vector<Operation> ops,
                                  std::vector<std::function<void(Result<int64_t>)>> completions,
                                  int64_t walSequence) {
    assert(ops.size() == completions.size());
    for (size_t i = 0; i < ops.size(); ++i) {
        applyOp(ops[i], walSequence, /*replay=*/false);
        completions[i](ops[i].offset);
    }
    lastAppliedSeq_ = walSequence;
    maybeCheckpoint();
}

void SegmentContainer::applyOp(Operation& op, int64_t walSequence, bool replay) {
    ++appliedOps_;
    ++opsSinceCheckpoint_;
    bytesSinceCheckpoint_ += op.data.size();

    switch (op.type) {
        case OpType::Create: {
            if (replay) {
                auto& meta = segments_[op.segment];
                meta = SegmentMeta{};
                meta.props.id = op.segment;
                meta.props.name = op.name;
                meta.props.isTable = op.isTable;
                readIndex_.addSegment(op.segment);
                attributes_.addSegment(op.segment);
            }
            break;
        }
        case OpType::Append: {
            SegmentMeta* meta = findSegment(op.segment);
            if (!meta) {
                if (!replay) break;
                // Pre-checkpoint tail during replay: materialize a
                // placeholder; a later checkpoint restores authoritative
                // metadata (§4.4 recovery).
                auto& m = segments_[op.segment];
                m.props.id = op.segment;
                readIndex_.addSegment(op.segment);
                attributes_.addSegment(op.segment);
                meta = &m;
            }
            if (replay) {
                meta->props.length = std::max(meta->props.length,
                                              op.offset + static_cast<int64_t>(op.data.size()));
                if (op.writer != 0) attributes_.set(op.segment, op.writer, op.eventNumber);
            }
            readIndex_.append(op.segment, op.offset, BufChain(op.data));
            meta->appliedLength = std::max(meta->appliedLength,
                                           op.offset + static_cast<int64_t>(op.data.size()));
            if (!meta->props.isTable) {
                storageWriter_->queueAppend(op.segment, op.offset, op.data, walSequence);
                if (!replay) {
                    auto& rate = rates_[op.segment];
                    rate.bytes += op.data.size();
                    rate.events += op.eventCount;
                    auto& cum = cumRates_[op.segment];
                    cum.bytes += op.data.size();
                    cum.events += op.eventCount;
                    cumBytes_ += op.data.size();
                    cumEvents_ += op.eventCount;
                }
            }
            if (!replay) wakeTailWaiters(op.segment);
            break;
        }
        case OpType::Seal: {
            SegmentMeta* meta = findSegment(op.segment);
            if (meta) {
                if (replay) meta->props.sealed = true;
                if (!replay) wakeTailWaiters(op.segment);  // waiters see end-of-segment
            }
            break;
        }
        case OpType::Truncate: {
            SegmentMeta* meta = findSegment(op.segment);
            if (meta) {
                if (replay) {
                    meta->props.startOffset = std::max(meta->props.startOffset, op.offset);
                }
                readIndex_.truncate(op.segment, op.offset);
            }
            break;
        }
        case OpType::Delete: {
            auto it = segments_.find(op.segment);
            if (it != segments_.end()) {
                it->second.props.deleted = true;
                readIndex_.removeSegment(op.segment);
                attributes_.removeSegment(op.segment);
                storageWriter_->notifyDeleted(op.segment);
                readStates_.erase(op.segment);
                auto fit = inflightFetches_.find(op.segment);
                if (fit != inflightFetches_.end()) {
                    auto fetches = std::move(fit->second);
                    inflightFetches_.erase(fit);
                    for (auto& [start, fetch] : fetches) {
                        if (fetch.prefetch) {
                            uint64_t bytes = static_cast<uint64_t>(fetch.end - start);
                            prefetchInflightBytes_ -= std::min(prefetchInflightBytes_, bytes);
                        }
                        for (auto& w : fetch.waiters) {
                            w.promise.setError(Status(Err::NotFound, "segment deleted"));
                        }
                    }
                }
                if (!replay) wakeTailWaiters(op.segment);
            }
            break;
        }
        case OpType::TableUpdate: {
            if (replay) {
                SegmentMeta* meta = findSegment(op.segment);
                if (meta) {
                    BinaryReader r(op.data.view());
                    auto batch = TableIndex::deserializeBatch(r);
                    if (batch) {
                        meta->table.apply(batch.value());
                        meta->props.length += static_cast<int64_t>(op.data.size());
                    }
                }
            }
            break;
        }
        case OpType::MetadataCheckpoint: {
            if (replay) {
                restoreCheckpoint(op.data.view());
            } else {
                checkpointSeqs_.push_back(walSequence);
                checkpointPending_ = false;
                ++checkpointsWritten_;
                truncateWalIfPossible();
            }
            break;
        }
    }
}

void SegmentContainer::wakeTailWaiters(SegmentId id) {
    auto it = tailWaiters_.find(id);
    if (it == tailWaiters_.end()) return;
    SegmentMeta* meta = findSegment(id);
    int64_t applied = meta ? meta->appliedLength : INT64_MAX;
    bool closed = !meta || meta->props.sealed;

    std::vector<TailWaiter> ready;
    auto& list = it->second;
    for (auto wit = list.begin(); wit != list.end();) {
        if (closed || wit->offset < applied) {
            ready.push_back(std::move(*wit));
            wit = list.erase(wit);
        } else {
            ++wit;
        }
    }
    if (list.empty()) tailWaiters_.erase(it);
    for (auto& w : ready) w.wake.setValue(sim::Unit{});
}

// ----------------------------------------------------------- checkpoints

void SegmentContainer::maybeCheckpoint() {
    if (checkpointPending_ || offline_) return;
    if (opsSinceCheckpoint_ < cfg_.checkpointEveryOps &&
        bytesSinceCheckpoint_ < cfg_.checkpointEveryBytes) {
        return;
    }
    checkpointPending_ = true;
    opsSinceCheckpoint_ = 0;
    bytesSinceCheckpoint_ = 0;

    Operation op;
    op.type = OpType::MetadataCheckpoint;
    op.data = SharedBuf(serializeCheckpoint());
    enqueueOp(std::move(op), [](const Result<int64_t>&) {});
}

Bytes SegmentContainer::serializeCheckpoint() const {
    Bytes out;
    BinaryWriter w(out);
    uint64_t live = 0;
    for (const auto& [id, meta] : segments_) {
        if (!meta.props.deleted) ++live;
    }
    w.varint(live);
    for (const auto& [id, meta] : segments_) {
        if (meta.props.deleted) continue;
        w.u64(id);
        w.str(meta.props.name);
        w.u8(meta.props.isTable ? 1 : 0);
        w.u8(meta.props.sealed ? 1 : 0);
        w.i64(meta.props.length);
        w.i64(meta.props.startOffset);
        w.i64(meta.props.storageLength);
        attributes_.serialize(id, w);
        if (meta.props.isTable) meta.table.serialize(w);
    }
    return out;
}

Status SegmentContainer::restoreCheckpoint(BytesView snapshot) {
    BinaryReader r(snapshot);
    auto count = r.varint();
    if (!count) return count.status();

    std::map<SegmentId, SegmentMeta> restored;
    for (uint64_t i = 0; i < count.value(); ++i) {
        auto id = r.u64();
        auto name = r.str();
        auto isTable = r.u8();
        auto sealed = r.u8();
        auto length = r.i64();
        auto startOffset = r.i64();
        auto storageLength = r.i64();
        if (!id || !name || !isTable || !sealed || !length || !startOffset || !storageLength) {
            return Status(Err::IoError, "corrupt checkpoint");
        }
        SegmentMeta meta;
        meta.props.id = id.value();
        meta.props.name = std::move(name.value());
        meta.props.isTable = isTable.value() != 0;
        meta.props.sealed = sealed.value() != 0;
        meta.props.length = length.value();
        meta.props.startOffset = startOffset.value();
        meta.props.storageLength = storageLength.value();
        meta.appliedLength = meta.props.length;
        Status attrs = attributes_.deserialize(id.value(), r);
        if (!attrs) return attrs;
        if (meta.props.isTable) {
            Status table = meta.table.deserialize(r);
            if (!table) return table;
        }
        readIndex_.addSegment(id.value());
        restored.emplace(id.value(), std::move(meta));
    }
    // Preserve read-index contents (replayed appends); metadata resets to
    // the snapshot, which is authoritative at this point in the log.
    segments_ = std::move(restored);
    return Status::ok();
}

void SegmentContainer::truncateWalIfPossible() {
    int64_t flushed = storageWriter_->flushedWalSequence();
    int64_t candidate = -1;
    while (!checkpointSeqs_.empty() && checkpointSeqs_.front() <= flushed) {
        candidate = checkpointSeqs_.front();
        checkpointSeqs_.pop_front();
    }
    if (candidate > lastTruncatedSeq_ + 1) {
        log_->truncate(wal::LogAddress{0, 0, candidate - 1});
        lastTruncatedSeq_ = candidate - 1;
        ++walTruncations_;
    }
}

void SegmentContainer::onSegmentFlushed(SegmentId id, int64_t newStorageLength) {
    SegmentMeta* meta = findSegment(id);
    if (!meta) return;
    meta->props.storageLength = std::max(meta->props.storageLength, newStorageLength);
    readIndex_.setStorageLength(id, meta->props.storageLength);
}

void SegmentContainer::onStorageProgress() {
    if (!offline_) truncateWalIfPossible();
}

// ------------------------------------------------------------- read path

sim::Future<ReadResult> SegmentContainer::read(SegmentId id, int64_t offset, int64_t maxBytes) {
    if (offline_) return sim::Future<ReadResult>::failed(Status(Err::ContainerOffline, ""));
    sim::Promise<ReadResult> p;
    auto fut = p.future();
    attemptRead(id, offset, maxBytes, std::move(p), 0, /*counted=*/false);
    return fut;
}

void SegmentContainer::attemptRead(SegmentId id, int64_t offset, int64_t maxBytes,
                                   sim::Promise<ReadResult> promise, int depth, bool counted) {
    SegmentMeta* meta = findSegment(id);
    if (!meta) {
        promise.setError(Err::NotFound, "no such segment");
        return;
    }
    auto outcome = readIndex_.read(id, offset, maxBytes, meta->appliedLength,
                                   meta->props.startOffset);
    if (!outcome) {
        promise.setError(outcome.status());
        return;
    }
    if (auto* hit = std::get_if<ReadHit>(&outcome.value())) {
        // Hit/miss accounting is by *first resolution*: a read counts once,
        // at the first attempt that resolves to data-in-cache (hit) or
        // needs-LTS (miss). Tail-woken reads land here uncounted and count
        // as hits; fetch retries arrive with counted=true and count nothing.
        if (!counted) mCacheHits_.inc();
        ReadResult res;
        res.data = std::move(hit->data);
        res.offset = offset;
        res.endOfSegment =
            meta->props.sealed &&
            offset + static_cast<int64_t>(res.data.size()) >= meta->appliedLength;
        if (cfg_.readPipeline.enabled) {
            int64_t readEnd = offset + static_cast<int64_t>(res.data.size());
            consumePrefetched(id, offset, readEnd);
            noteSequentialHit(id, offset, readEnd, *meta);
        }
        promise.setValue(std::move(res));
        return;
    }
    if (std::holds_alternative<ReadAtTail>(outcome.value())) {
        if (meta->props.sealed) {
            ReadResult res;
            res.offset = offset;
            res.endOfSegment = true;
            promise.setValue(std::move(res));
            return;
        }
        // Register a tail waiter; retry when new data is applied (§4.2:
        // "return a future that will be completed when new data is added").
        // The wait itself is neither a hit nor a miss — `counted` rides
        // along so the woken retry attributes the read at its resolution.
        mTailWaits_.inc();
        TailWaiter waiter;
        waiter.offset = offset;
        auto wake = waiter.wake.future();
        tailWaiters_[id].push_back(std::move(waiter));
        wake.onComplete([this, id, offset, maxBytes, promise, depth,
                         counted](const Result<sim::Unit>& r) mutable {
            if (!r.isOk()) {
                promise.setError(r.status());
                return;
            }
            attemptRead(id, offset, maxBytes, std::move(promise), depth + 1, counted);
        });
        return;
    }

    // Cache miss: fetch the gap from LTS, index it, retry (§4.2).
    if (!counted) {
        mCacheMisses_.inc();
        counted = true;
    }
    auto miss = std::get<ReadMiss>(outcome.value());
    if (depth > 8) {
        promise.setError(Err::IoError, "read did not converge");
        return;
    }
    if (!cfg_.readPipeline.enabled) {
        legacyFetch(id, miss, PendingRead{offset, maxBytes, std::move(promise), depth, counted});
        return;
    }

    // A demand miss over a range we prefetched means the prefetch was
    // evicted before use — charge it as waste.
    chargeWastedPrefetch(id, miss.offset, miss.offset + miss.length);

    // Coalesce onto an in-flight fetch already covering the miss offset:
    // this reader rides that fetch instead of issuing its own.
    auto sit = inflightFetches_.find(id);
    if (sit != inflightFetches_.end()) {
        auto next = sit->second.upper_bound(miss.offset);
        if (next != sit->second.begin()) {
            auto prev = std::prev(next);
            if (prev->second.end > miss.offset) {
                mReadCoalesced_.inc();
                prev->second.waiters.push_back(
                    PendingRead{offset, maxBytes, std::move(promise), depth, counted});
                return;
            }
        }
    }

    int64_t start = miss.offset;
    int64_t end = miss.offset + miss.length;
    // Clip against the next in-flight fetch so fetched ranges never overlap.
    if (sit != inflightFetches_.end()) {
        auto next = sit->second.upper_bound(start);
        if (next != sit->second.end() && next->first < end) end = next->first;
    }
    PendingRead demand{offset, maxBytes, std::move(promise), depth, counted};
    int64_t fetched = startFetch(id, start, end, /*prefetch=*/false, &demand);
    if (cfg_.readPipeline.readahead && fetched > start) {
        if (SegmentMeta* m = findSegment(id)) maybePrefetch(id, fetched, *m);
    }
}

void SegmentContainer::legacyFetch(SegmentId id, const ReadMiss& miss, PendingRead waiter) {
    auto chunk = storageWriter_->findChunk(id, miss.offset);
    if (!chunk) {
        waiter.promise.setError(chunk.status());
        return;
    }
    int64_t within = miss.offset - chunk.value().startOffset;
    int64_t len = std::min(miss.length, chunk.value().length - within);
    if (len <= 0) {
        waiter.promise.setError(Err::IoError, "chunk metadata inconsistent with read index");
        return;
    }
    mLtsFetches_.inc();
    sim::TimePoint startedAt = exec_.now();
    lts_.read(chunk.value().name, static_cast<uint64_t>(within), static_cast<uint64_t>(len))
        .onComplete([this, id, missOffset = miss.offset, w = std::move(waiter),
                     startedAt](const Result<SharedBuf>& r) mutable {
            mDemandFetchNs_.record(exec_.now() - startedAt);
            if (!r.isOk()) {
                w.promise.setError(r.status());
                return;
            }
            readIndex_.insertFromStorage(id, missOffset, r.value().view());
            attemptRead(id, w.offset, w.maxBytes, std::move(w.promise), w.depth + 1, w.counted);
        });
}

int64_t SegmentContainer::startFetch(SegmentId id, int64_t start, int64_t end, bool prefetch,
                                     PendingRead* demand) {
    const auto& rp = cfg_.readPipeline;
    auto chunks = storageWriter_->findChunks(id, start, end - start);
    // Build contiguous per-chunk pieces covering [start, ...), bounded by
    // the parallel-fetch fan-out cap. A gap (or a range past the flushed
    // chunks) stops coverage; demand readers on a gap get a hard error so
    // the inconsistency surfaces instead of looping.
    struct Piece {
        std::string name;
        uint64_t within = 0;
        uint64_t length = 0;
    };
    std::vector<Piece> pieces;
    int64_t cursor = start;
    for (const auto& c : chunks) {
        if (c.startOffset > cursor) break;  // gap in chunk coverage
        int64_t pieceEnd = std::min(end, c.startOffset + c.length);
        if (pieceEnd <= cursor) continue;
        pieces.push_back(Piece{c.name, static_cast<uint64_t>(cursor - c.startOffset),
                               static_cast<uint64_t>(pieceEnd - cursor)});
        cursor = pieceEnd;
        if (cursor >= end) break;
        if (static_cast<int>(pieces.size()) >= rp.maxParallelChunkFetches) break;
    }
    if (pieces.empty()) {
        if (demand) {
            demand->promise.setError(Err::IoError, "chunk metadata inconsistent with read index");
        }
        return start;
    }
    int64_t fetchEnd = cursor;

    auto& entry = inflightFetches_[id][start];
    entry.end = fetchEnd;
    entry.prefetch = prefetch;
    entry.piecesRemaining = static_cast<int>(pieces.size());
    entry.startedAt = exec_.now();
    // The demand waiter must be registered BEFORE any piece is issued: a
    // synchronous backend completes reads inline, which would drain the
    // entry before the waiter existed.
    if (demand) entry.waiters.push_back(std::move(*demand));

    if (prefetch) {
        mPrefetchIssued_.inc();
        prefetchInflightBytes_ += static_cast<uint64_t>(fetchEnd - start);
    }
    uint64_t epoch = fetchEpoch_;
    int64_t pieceOffset = start;
    for (auto& piece : pieces) {
        int64_t insertAt = pieceOffset;
        pieceOffset += static_cast<int64_t>(piece.length);
        mLtsFetches_.inc();
        lts_.read(piece.name, piece.within, piece.length)
            .onComplete([this, id, start, insertAt, epoch](const Result<SharedBuf>& r) {
                if (epoch != fetchEpoch_ || offline_) return;
                Status st;
                if (r.isOk()) {
                    readIndex_.insertFromStorage(id, insertAt, r.value().view());
                } else {
                    st = r.status();
                }
                finishFetchPiece(id, start, st);
            });
    }
    return fetchEnd;
}

void SegmentContainer::finishFetchPiece(SegmentId id, int64_t start, Status st) {
    auto sit = inflightFetches_.find(id);
    if (sit == inflightFetches_.end()) return;
    auto eit = sit->second.find(start);
    if (eit == sit->second.end()) return;
    InflightFetch& entry = eit->second;
    if (!st && entry.failure) entry.failure = st;  // keep the first failure
    if (--entry.piecesRemaining > 0) return;

    // Fetch complete: detach the entry before waking waiters — their
    // retries may start new fetches on this segment.
    InflightFetch done = std::move(entry);
    sit->second.erase(eit);
    if (sit->second.empty()) inflightFetches_.erase(sit);

    if (done.prefetch) {
        uint64_t bytes = static_cast<uint64_t>(done.end - start);
        prefetchInflightBytes_ -= std::min(prefetchInflightBytes_, bytes);
        mPrefetchFetchNs_.record(exec_.now() - done.startedAt);
        if (done.failure) {
            // Record the landed range so later hits count as prefetch hits
            // and eviction-before-use lands on the waste counter.
            auto& pf = readStates_[id].prefetched;
            int64_t s = start;
            int64_t e = done.end;
            auto it = pf.lower_bound(s);
            if (it != pf.begin()) {
                auto prev = std::prev(it);
                if (prev->second >= s) {
                    s = prev->first;
                    e = std::max(e, prev->second);
                    pf.erase(prev);
                }
            }
            while (it != pf.end() && it->first <= e) {
                e = std::max(e, it->second);
                it = pf.erase(it);
            }
            pf[s] = e;
        }
    } else {
        mDemandFetchNs_.record(exec_.now() - done.startedAt);
    }

    for (auto& w : done.waiters) {
        if (done.failure) {
            attemptRead(id, w.offset, w.maxBytes, std::move(w.promise), w.depth + 1, w.counted);
        } else {
            w.promise.setError(done.failure);
        }
    }
}

void SegmentContainer::maybePrefetch(SegmentId id, int64_t from, const SegmentMeta& meta) {
    const auto& rp = cfg_.readPipeline;
    if (!rp.enabled || !rp.readahead || offline_) return;
    // Only flushed data has chunks to prefetch from; the unflushed tail is
    // already in cache (and the eviction policy protects it — prefetch must
    // not change that, hence the utilization margin below).
    int64_t horizon = std::min(
        meta.props.storageLength,
        from + static_cast<int64_t>(rp.prefetchWindows) *
                   static_cast<int64_t>(rp.prefetchFetchBytes));
    int64_t cursor = from;
    while (cursor < horizon) {
        cursor = readIndex_.contiguousEnd(id, cursor, horizon);  // skip cached runs
        if (cursor >= horizon) break;
        if (cache_.utilization() >= rp.prefetchMaxCacheUtilization) break;
        if (prefetchInflightBytes_ >= rp.prefetchBudgetBytes) break;
        int64_t end = std::min(horizon, cursor + static_cast<int64_t>(rp.prefetchFetchBytes));
        // Skip past (or clip against) fetches already in flight.
        bool covered = false;
        auto sit = inflightFetches_.find(id);
        if (sit != inflightFetches_.end()) {
            auto next = sit->second.upper_bound(cursor);
            if (next != sit->second.begin()) {
                auto prev = std::prev(next);
                if (prev->second.end > cursor) {
                    cursor = prev->second.end;
                    covered = true;
                }
            }
            if (!covered && next != sit->second.end() && next->first < end) end = next->first;
        }
        if (covered) continue;
        if (end <= cursor) break;
        int64_t got = startFetch(id, cursor, end, /*prefetch=*/true, nullptr);
        if (got <= cursor) break;  // no chunk coverage yet: stop
        cursor = got;
    }
}

void SegmentContainer::noteSequentialHit(SegmentId id, int64_t offset, int64_t readEnd,
                                         const SegmentMeta& meta) {
    auto& state = readStates_[id];
    state.streak = offset == state.lastReadEnd ? state.streak + 1 : 1;
    state.lastReadEnd = readEnd;
    if (state.streak >= cfg_.readPipeline.sequentialStreak) {
        maybePrefetch(id, readEnd, meta);
    }
}

bool SegmentContainer::consumePrefetched(SegmentId id, int64_t offset, int64_t readEnd) {
    auto rit = readStates_.find(id);
    if (rit == readStates_.end()) return false;
    auto& pf = rit->second.prefetched;
    bool any = false;
    auto it = pf.lower_bound(offset);
    if (it != pf.begin()) {
        auto prev = std::prev(it);
        if (prev->second > offset) it = prev;
    }
    while (it != pf.end() && it->first < readEnd) {
        int64_t a = it->first;
        int64_t b = it->second;
        any = true;
        it = pf.erase(it);
        if (a < offset) pf.emplace(a, offset);
        if (b > readEnd) {
            it = pf.emplace(readEnd, b).first;
            ++it;
        }
    }
    if (any) mPrefetchHits_.inc();
    return any;
}

void SegmentContainer::chargeWastedPrefetch(SegmentId id, int64_t missStart, int64_t missEnd) {
    auto rit = readStates_.find(id);
    if (rit == readStates_.end()) return;
    auto& pf = rit->second.prefetched;
    auto it = pf.lower_bound(missStart);
    if (it != pf.begin()) {
        auto prev = std::prev(it);
        if (prev->second > missStart) it = prev;
    }
    while (it != pf.end() && it->first < missEnd) {
        int64_t a = it->first;
        int64_t b = it->second;
        int64_t overlap = std::min(b, missEnd) - std::max(a, missStart);
        it = pf.erase(it);
        if (overlap > 0) mPrefetchWasted_.inc(static_cast<uint64_t>(overlap));
        if (a < missStart) pf.emplace(a, missStart);
        if (b > missEnd) {
            it = pf.emplace(missEnd, b).first;
            ++it;
        }
    }
}

// ----------------------------------------------------------- observation

std::map<SegmentId, SegmentRate> SegmentContainer::drainRates() {
    auto out = std::move(rates_);
    rates_.clear();
    return out;
}

std::vector<SegmentId> SegmentContainer::listSegments() const {
    std::vector<SegmentId> out;
    for (const auto& [id, meta] : segments_) {
        if (!meta.props.deleted) out.push_back(id);
    }
    return out;
}

}  // namespace pravega::segmentstore
