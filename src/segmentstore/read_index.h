// The read index (§4.2): a complete view of each segment's data across WAL
// (tail, cache-resident) and LTS, without readers knowing where data lives.
//
// Per segment, an AVL tree sorted by start offset maps to entries holding a
// cache address plus the usage metadata that drives eviction. Tail appends
// extend the last entry in O(1) via the block cache's append; cache misses
// are reported to the caller, which fetches from LTS and re-inserts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "segmentstore/avl_map.h"
#include "segmentstore/cache.h"
#include "segmentstore/types.h"

namespace pravega::segmentstore {

/// Outcome of a read-index lookup.
struct ReadHit {
    Bytes data;          // starts exactly at the requested offset
};
struct ReadMiss {
    int64_t offset;      // fetch this range from LTS...
    int64_t length;      // ...then insertFromStorage() and retry
};
struct ReadAtTail {};    // offset == segment length; caller registers a tail future
using ReadOutcome = std::variant<ReadHit, ReadMiss, ReadAtTail>;

class ReadIndex {
public:
    struct Config {
        /// Entries are split beyond this length to bound reassembly cost.
        int64_t maxEntryLength = 128 * 1024;
        /// Cache utilization above which applyCachePolicy evicts.
        double evictionThreshold = 0.80;
        /// Utilization the eviction pass drives down to.
        double evictionTarget = 0.70;
    };

    explicit ReadIndex(BlockCache& cache) : ReadIndex(cache, Config{}) {}
    ReadIndex(BlockCache& cache, Config cfg);

    /// Releases every cached entry: the cache is shared by all containers
    /// on a segment store and outlives any one container (failover).
    ~ReadIndex();

    ReadIndex(const ReadIndex&) = delete;
    ReadIndex& operator=(const ReadIndex&) = delete;

    /// Registers a segment (idempotent).
    void addSegment(SegmentId segment);
    void removeSegment(SegmentId segment);

    /// Tail append at `offset` (must equal current indexed length unless
    /// the index has gaps from eviction — gaps are fine, appends are not
    /// required to be contiguous with evicted history).
    Status append(SegmentId segment, int64_t offset, BytesView data);

    /// Chain variant of the tail append: fragments are copied straight
    /// into cache blocks, the chain itself is never flattened.
    Status append(SegmentId segment, int64_t offset, const BufChain& data);

    /// Inserts data fetched from LTS covering [offset, offset+size). Bytes
    /// already indexed are trimmed away on BOTH sides: against an
    /// overlapping floor entry (possible after eviction plus a concurrent
    /// refetch of a stale gap) and against any ceiling entries, filling
    /// only the real gaps. Never double-indexes a byte.
    Status insertFromStorage(SegmentId segment, int64_t offset, BytesView data);

    /// Attempts to serve [offset, offset+maxBytes) for a segment whose
    /// current length is `segmentLength` and truncation point `startOffset`.
    Result<ReadOutcome> read(SegmentId segment, int64_t offset, int64_t maxBytes,
                             int64_t segmentLength, int64_t startOffset);

    /// Drops indexed data before `newStartOffset` (segment truncation).
    void truncate(SegmentId segment, int64_t newStartOffset);

    /// End of the contiguous indexed run covering `offset` (== `offset`
    /// when nothing covers it). Capped at `limit` so the walk stays cheap;
    /// used by the readahead prefetcher to find where cached data runs out.
    int64_t contiguousEnd(SegmentId segment, int64_t offset, int64_t limit);

    /// Advances the flushed-to-LTS watermark; data below it is evictable.
    void setStorageLength(SegmentId segment, int64_t storageLength);

    /// Generation-based eviction: bumps the current generation and, if the
    /// cache is above the eviction threshold, evicts least-recently-used
    /// entries (only below each segment's storage watermark) until at the
    /// target. Returns the number of entries evicted.
    int applyCachePolicy();

    /// Optional registry counter bumped on every eviction (any trigger:
    /// timer-driven policy runs and insert-time pressure evictions alike).
    void setEvictionCounter(obs::Counter* c) { evictionCounter_ = c; }

    uint64_t indexedBytes() const { return indexedBytes_; }
    uint64_t entryCount() const;

private:
    struct Entry {
        int64_t length = 0;
        CacheAddress address = kInvalidAddress;
        uint64_t lastUsedGeneration = 0;
    };
    struct SegmentIndex {
        AvlMap<int64_t, Entry> entries;
        int64_t storageLength = 0;
    };

    Status insertEntry(SegmentIndex& idx, int64_t offset, BytesView data);
    Status insertEntry(SegmentIndex& idx, int64_t offset, BufChain data);

    /// Debug-build invariant: entries of `idx` are non-overlapping and
    /// offset-ordered. No-op in release builds.
    void checkSegmentInvariants(SegmentIndex& idx);

    BlockCache& cache_;
    Config cfg_;
    std::map<SegmentId, SegmentIndex> segments_;
    uint64_t generation_ = 0;
    uint64_t indexedBytes_ = 0;
    obs::Counter* evictionCounter_ = nullptr;
};

}  // namespace pravega::segmentstore
