// Segment store shared types.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace pravega::segmentstore {

/// Segment ids encode the stream epoch that created them in the high 32
/// bits and the segment number in the low 32 bits (as in Pravega).
using SegmentId = uint64_t;

constexpr SegmentId makeSegmentId(uint32_t epoch, uint32_t number) {
    return (static_cast<uint64_t>(epoch) << 32) | number;
}
constexpr uint32_t epochOf(SegmentId id) { return static_cast<uint32_t>(id >> 32); }
constexpr uint32_t numberOf(SegmentId id) { return static_cast<uint32_t>(id); }

/// Writer identity used for the exactly-once dedup protocol (§3.2).
using WriterId = uint64_t;

/// Attribute ids: per-segment key→int64 attributes; writer ids map into
/// the attribute key space (segment attributes, §3.2).
using AttributeId = uint64_t;

struct SegmentProperties {
    SegmentId id = 0;
    std::string name;
    int64_t length = 0;          // next append offset
    int64_t startOffset = 0;     // truncation point
    int64_t storageLength = 0;   // bytes durably moved to LTS
    bool sealed = false;
    bool deleted = false;
    bool isTable = false;        // table segments back KV metadata (§4.3)
};

}  // namespace pravega::segmentstore
