// SegmentContainer: the unit of the data plane (§2.2, §4.1).
//
// Every request that modifies a segment becomes an Operation queued for
// processing. A container has a single dedicated WAL log to which ALL of
// its segments' operations are multiplexed — the crucial design feature
// that lets Pravega support enormous segment counts without per-segment
// physical resources. Operations are aggregated into data frames whose
// close is governed by the paper's delay formula
//     Delay = RecentLatency * (1 - AvgWriteSize / MaxFrameSize)
// and each acknowledged frame is applied to the in-memory state (read
// index, attributes, tables), acknowledged to clients, and handed to the
// storage writer for tiering.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "lts/chunk_storage.h"
#include "segmentstore/attribute_index.h"
#include "segmentstore/cache.h"
#include "segmentstore/operations.h"
#include "segmentstore/read_index.h"
#include "segmentstore/storage_writer.h"
#include "segmentstore/table_segment.h"
#include "segmentstore/types.h"
#include "sim/machine.h"
#include "sim/future.h"
#include "wal/log_client.h"

namespace pravega::segmentstore {

struct ContainerConfig {
    uint64_t maxFrameBytes = 1024 * 1024;       // paper §4.1: e.g. 1 MB frames
    sim::Duration maxBatchDelay = sim::msec(20);  // bound on the delay formula
    uint64_t checkpointEveryOps = 4000;
    uint64_t checkpointEveryBytes = 32 * 1024 * 1024;
    StorageWriterConfig storage;
    wal::LogClient::Config log;

    /// Ingest throttling (§4.3): appends are delayed proportionally when
    /// either the LTS device backlog (seconds of queued transfers) or the
    /// hottest segment's unflushed backlog (bytes waiting for LTS) exceeds
    /// its start threshold, ramping to `maxThrottleDelay` at the full one.
    double throttleStartSeconds = 1.0;
    double throttleFullSeconds = 10.0;
    uint64_t throttleStartSegmentBytes = 64ULL * 1024 * 1024;
    uint64_t throttleFullSegmentBytes = 256ULL * 1024 * 1024;
    sim::Duration maxThrottleDelay = sim::msec(500);

    /// Cache policy cadence (read-index eviction).
    sim::Duration cachePolicyInterval = sim::msec(250);

    /// Storage read pipeline (§4.2, §5.7): coalesced LTS fetches, parallel
    /// multi-chunk demand fetches, and budget-bounded segment readahead for
    /// catch-up readers.
    struct ReadPipelineConfig {
        /// Master switch: false restores the legacy serial fetch-retry path
        /// (no coalescing, no parallel multi-chunk fetch, no readahead).
        bool enabled = true;
        /// Readahead ablation flag (Fig 12): prefetch the next windows into
        /// the block cache on a miss or a sequential-hit streak.
        bool readahead = true;
        /// Fetch windows the prefetcher keeps in flight ahead of a reader.
        int prefetchWindows = 4;
        /// Size of each prefetch fetch window.
        uint64_t prefetchFetchBytes = 4 * 1024 * 1024;
        /// Cap on in-flight prefetch bytes per container.
        uint64_t prefetchBudgetBytes = 32 * 1024 * 1024;
        /// Prefetch stops above this cache utilization so readahead can
        /// never push the cache into evicting the live tail (§4.2 policy
        /// evicts only below the storage watermark; this margin keeps
        /// prefetch from forcing those evictions either).
        double prefetchMaxCacheUtilization = 0.75;
        /// Fan-out bound for one demand miss spanning chunk boundaries.
        int maxParallelChunkFetches = 8;
        /// Sequential depth-0 hits in a row that trigger readahead.
        int sequentialStreak = 2;
    };
    ReadPipelineConfig readPipeline;
};

struct ReadResult {
    Bytes data;
    int64_t offset = 0;
    bool endOfSegment = false;
};

/// Per-segment throughput counters for the control-plane feedback loop
/// (§3.1): the data plane reports rates, the controller reacts.
struct SegmentRate {
    uint64_t bytes = 0;
    uint64_t events = 0;
};

class SegmentContainer {
public:
    SegmentContainer(sim::Core& exec, uint32_t containerId, wal::WalEnv walEnv,
                     sim::HostId host, lts::ChunkStorage& lts, BlockCache& cache,
                     ContainerConfig cfg);
    ~SegmentContainer();

    SegmentContainer(const SegmentContainer&) = delete;
    SegmentContainer& operator=(const SegmentContainer&) = delete;

    /// Recovery + startup (§4.4): fences the WAL, replays checkpoint +
    /// operations, reconciles LTS chunks, starts background work.
    Status start();

    /// Severe-error shutdown: fails pending operations; a future owner (or
    /// this one, via start()) recovers from WAL.
    void shutdown();
    bool isOffline() const { return offline_; }

    uint32_t id() const { return containerId_; }

    // ---- segment API --------------------------------------------------
    sim::Future<sim::Unit> createSegment(SegmentId id, std::string name, bool isTable = false);

    /// Event-writer append with the exactly-once protocol (§3.2): if
    /// `writer` != 0, `eventNumber` must exceed the writer's last recorded
    /// event number; stale appends are acknowledged idempotently without
    /// writing. Completes with the offset at which data was appended.
    sim::Future<int64_t> append(SegmentId id, SharedBuf data, WriterId writer = 0,
                                int64_t eventNumber = -1, uint32_t eventCount = 1);

    /// Compare-and-append at an expected offset (the primitive beneath the
    /// state synchronizer's optimistic concurrency, §3.3).
    sim::Future<int64_t> conditionalAppend(SegmentId id, SharedBuf data, int64_t expectedOffset);

    /// Read with tail semantics: returns immediately-available data, fetches
    /// from LTS on a miss, or waits for new data at the tail (§4.2).
    sim::Future<ReadResult> read(SegmentId id, int64_t offset, int64_t maxBytes);

    sim::Future<sim::Unit> seal(SegmentId id);
    sim::Future<sim::Unit> truncate(SegmentId id, int64_t newStartOffset);
    sim::Future<sim::Unit> deleteSegment(SegmentId id);

    Result<SegmentProperties> getInfo(SegmentId id) const;

    /// Writer-reconnect handshake: last event number recorded for `writer`
    /// on this segment (kNullValue when none).
    int64_t getWriterLastEventNumber(SegmentId id, WriterId writer) const;

    // ---- table API (metadata KV, §4.3) --------------------------------
    sim::Future<std::vector<int64_t>> tableUpdate(SegmentId id, std::vector<TableUpdate> batch);
    Result<TableValue> tableGet(SegmentId id, const std::string& key) const;
    std::vector<std::pair<std::string, TableValue>> tableScan(SegmentId id,
                                                              const std::string& prefix) const;

    /// The container's own metadata table segment (chunk records etc.).
    SegmentId systemTableSegment() const { return systemTable_; }

    // ---- feedback / observability -------------------------------------
    /// Drains per-segment rate counters accumulated since the last call.
    std::map<SegmentId, SegmentRate> drainRates();

    /// Monotonic ingest totals since this container instance started
    /// (replay excluded). Unlike drainRates() these are not destructive,
    /// so the rebalancer and the quota manager can take window deltas
    /// without stealing the auto-scaler's feedback signal. A container
    /// that moves to another store restarts from zero — consumers treat a
    /// decrease as a fresh instance.
    uint64_t totalBytesIn() const { return cumBytes_; }
    uint64_t totalEventsIn() const { return cumEvents_; }
    const std::map<SegmentId, SegmentRate>& cumulativeRates() const { return cumRates_; }

    std::vector<SegmentId> listSegments() const;
    uint64_t appliedOps() const { return appliedOps_; }
    int64_t lastAppliedSequence() const { return lastAppliedSeq_; }
    uint64_t walTruncations() const { return walTruncations_; }
    uint64_t checkpointsWritten() const { return checkpointsWritten_; }
    sim::Duration currentBatchDelay() const;
    lts::ChunkStorage& ltsStorage() { return lts_; }
    StorageWriter& storageWriter() { return *storageWriter_; }
    wal::LogClient& walLog() { return *log_; }
    ReadIndex& readIndex() { return readIndex_; }

    // ---- used by StorageWriter ----------------------------------------
    void onSegmentFlushed(SegmentId id, int64_t newStorageLength);
    void onStorageProgress();

private:
    struct SegmentMeta {
        SegmentProperties props;
        int64_t appliedLength = 0;  // readable prefix (apply-time)
        TableIndex table;           // only for isTable segments
    };
    struct PendingFrame {
        std::vector<Operation> ops;
        std::vector<std::function<void(Result<int64_t>)>> completions;
        uint64_t bytes = 0;
        sim::TimePoint openedAt = 0;  // first op's enqueue time (trace stage)
    };
    struct TailWaiter {
        int64_t offset;
        sim::Promise<sim::Unit> wake;
    };
    /// A read parked on an in-flight LTS fetch (the original misser and any
    /// coalesced riders); re-attempted when the fetch lands.
    struct PendingRead {
        int64_t offset;
        int64_t maxBytes;
        sim::Promise<ReadResult> promise;
        int depth;
        bool counted;  // hit/miss already attributed (first resolution)
    };
    /// One outstanding LTS fetch for [start, end) of a segment, possibly
    /// split into parallel per-chunk piece reads.
    struct InflightFetch {
        int64_t end = 0;
        bool prefetch = false;
        int piecesRemaining = 0;
        sim::TimePoint startedAt = 0;
        Status failure;  // first piece failure, if any
        std::vector<PendingRead> waiters;
    };
    /// Per-segment readahead state.
    struct SegmentReadState {
        int64_t lastReadEnd = -1;
        int streak = 0;
        std::map<int64_t, int64_t> prefetched;  // inserted, unconsumed ranges
    };

    SegmentMeta* findSegment(SegmentId id);
    const SegmentMeta* findSegment(SegmentId id) const;

    /// Admission gate: serializes op processing and applies throttling.
    void admit(std::function<void()> fn);
    sim::Duration throttleDelay() const;

    void enqueueOp(Operation op, std::function<void(Result<int64_t>)> completion);
    void closeFrame();
    void scheduleFrameTimer();
    void applyFrame(std::vector<Operation> ops,
                    std::vector<std::function<void(Result<int64_t>)>> completions,
                    int64_t walSequence);
    void applyOp(Operation& op, int64_t walSequence, bool replay);
    void maybeCheckpoint();
    Bytes serializeCheckpoint() const;
    Status restoreCheckpoint(BytesView snapshot);
    void wakeTailWaiters(SegmentId id);
    void failAllPending(Status error);
    void attemptRead(SegmentId id, int64_t offset, int64_t maxBytes,
                     sim::Promise<ReadResult> promise, int depth, bool counted);
    void legacyFetch(SegmentId id, const ReadMiss& miss, PendingRead waiter);
    /// Starts an LTS fetch for [start, end) (parallel per-chunk pieces,
    /// capped at maxParallelChunkFetches). `demand` (when non-null) becomes
    /// the fetch's first waiter; on setup failure its promise is failed.
    /// Returns the end of the range actually being fetched (`start` when no
    /// fetch could be started, e.g. no chunks cover the range yet).
    int64_t startFetch(SegmentId id, int64_t start, int64_t end, bool prefetch,
                       PendingRead* demand);
    void finishFetchPiece(SegmentId id, int64_t start, Status st);
    void maybePrefetch(SegmentId id, int64_t from, const SegmentMeta& meta);
    void noteSequentialHit(SegmentId id, int64_t offset, int64_t readEnd,
                           const SegmentMeta& meta);
    bool consumePrefetched(SegmentId id, int64_t offset, int64_t readEnd);
    void chargeWastedPrefetch(SegmentId id, int64_t missStart, int64_t missEnd);
    void startCachePolicyTimer();
    void truncateWalIfPossible();

    sim::Core& exec_;
    uint32_t containerId_;
    sim::HostId host_;
    lts::ChunkStorage& lts_;
    BlockCache& cache_;
    ContainerConfig cfg_;

    std::unique_ptr<wal::LogClient> log_;
    ReadIndex readIndex_;
    AttributeIndex attributes_;
    std::unique_ptr<StorageWriter> storageWriter_;

    std::map<SegmentId, SegmentMeta> segments_;
    SegmentId systemTable_;

    // Open frame + in-flight frames.
    PendingFrame openFrame_;
    uint64_t frameTimerEpoch_ = 0;
    bool frameTimerArmed_ = false;
    uint64_t inFlightFrames_ = 0;

    // Delay-formula inputs (EWMAs, §4.1).
    double recentWalLatencyNs_ = 1.0e6;  // start at 1 ms
    double avgWriteSizeBytes_ = 0.0;

    // Admission gate (ordering + throttle).
    sim::TimePoint admitCursor_ = 0;

    // Checkpoint / truncation bookkeeping.
    uint64_t opsSinceCheckpoint_ = 0;
    uint64_t bytesSinceCheckpoint_ = 0;
    std::deque<int64_t> checkpointSeqs_;  // applied checkpoint WAL sequences
    int64_t lastAppliedSeq_ = -1;
    int64_t lastTruncatedSeq_ = -1;
    bool checkpointPending_ = false;
    uint64_t walTruncations_ = 0;
    uint64_t checkpointsWritten_ = 0;

    std::map<SegmentId, std::vector<TailWaiter>> tailWaiters_;
    std::map<SegmentId, SegmentRate> rates_;
    std::map<SegmentId, SegmentRate> cumRates_;
    uint64_t cumBytes_ = 0;
    uint64_t cumEvents_ = 0;

    // Storage read pipeline: in-flight fetch table (fetch start offset ->
    // fetch) and per-segment readahead state.
    std::map<SegmentId, std::map<int64_t, InflightFetch>> inflightFetches_;
    std::map<SegmentId, SegmentReadState> readStates_;
    uint64_t prefetchInflightBytes_ = 0;
    uint64_t fetchEpoch_ = 0;  // invalidates piece completions on shutdown

    uint64_t appliedOps_ = 0;
    bool offline_ = true;  // start() brings the container online
    uint64_t cacheTimerEpoch_ = 0;
    /// Liveness token for the cache-policy timer (scheduleWeak holds a raw
    /// `this` inside the machine, which can outlive this container).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    // World-aggregate container metrics (cached registry instruments).
    obs::Counter& mOpsEnqueued_;
    obs::Counter& mFramesClosed_;
    obs::Counter& mThrottleCount_;
    obs::Counter& mThrottleNs_;
    obs::Counter& mCacheHits_;
    obs::Counter& mCacheMisses_;
    obs::Counter& mCacheEvictions_;
    obs::Counter& mTailWaits_;
    obs::Counter& mReadCoalesced_;
    obs::Counter& mLtsFetches_;
    obs::Counter& mPrefetchIssued_;
    obs::Counter& mPrefetchHits_;
    obs::Counter& mPrefetchWasted_;
    obs::Gauge& mQueueDepth_;
    obs::LatencyHistogram& mFrameBytes_;
    obs::LatencyHistogram& mFrameOps_;
    obs::LatencyHistogram& mStoreQueueNs_;
    obs::LatencyHistogram& mWalCommitNs_;
    obs::LatencyHistogram& mDemandFetchNs_;
    obs::LatencyHistogram& mPrefetchFetchNs_;
};

}  // namespace pravega::segmentstore
