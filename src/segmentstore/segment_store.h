// SegmentStore: a data-plane server instance (§2.2). Its main role is to
// host segment containers; requests are routed to the container that owns
// the segment via the stateless uniform hash. The store also charges
// request-handling CPU, which is what saturates first in some of the
// paper's high-parallelism scenarios.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "lts/chunk_storage.h"
#include "segmentstore/cache.h"
#include "segmentstore/container.h"
#include "sim/models.h"
#include "sim/network.h"
#include "wal/log_client.h"

namespace pravega::segmentstore {

class SegmentStore {
public:
    struct Config {
        ContainerConfig container;
        sim::CpuModel::Config cpu;
        BlockCache::Config cache;
    };

    /// Maps a container id to the Core shard hosting it. Empty placement
    /// pins every container to the store's frontend core (`exec`), which is
    /// exactly the pre-shard behavior.
    using ContainerPlacement = std::function<sim::Core&(uint32_t)>;

    SegmentStore(sim::Core& exec, sim::HostId host, wal::WalEnv walEnv,
                 lts::ChunkStorage& lts, Config cfg, ContainerPlacement placement = {});

    sim::HostId host() const { return host_; }

    /// Starts hosting a container (runs recovery). Part of normal startup
    /// and of re-distribution after another store's crash (§4.4).
    Status addContainer(uint32_t containerId);

    /// Stops hosting a container (simulated crash / graceful handoff).
    void removeContainer(uint32_t containerId);

    SegmentContainer* container(uint32_t containerId);
    bool hasContainer(uint32_t containerId) const { return containers_.contains(containerId); }
    std::vector<uint32_t> containerIds() const;

    /// The Core shard hosting `containerId` under the store's placement.
    sim::Core& containerCore(uint32_t containerId);

    /// Charges request-handling CPU for a request to `containerId` carrying
    /// `bytes`. The charge lands on the container's core — a request
    /// arriving on another shard hops through the machine mailbox first
    /// (paying hand-off latency), so per-core CPU partitions saturate
    /// independently and throughput scales with core count.
    sim::Future<sim::Unit> chargeRequest(uint32_t containerId, uint64_t bytes);

    BlockCache& cache() { return cache_; }
    /// The frontend core's CPU partition.
    sim::CpuModel& cpu() { return cpuFor(exec_); }

    /// Aggregated per-segment rates across hosted containers (feedback
    /// loop to the control plane, §3.1) plus total bytes for Fig 13's
    /// per-segment-store load series.
    std::map<SegmentId, SegmentRate> drainRates();

private:
    /// Find-or-create the CPU partition of `core`. The configured lane
    /// count is split evenly across the machine's cores, so total modeled
    /// CPU capacity is independent of the shard count.
    sim::CpuModel& cpuFor(sim::Core& core);

    sim::Core& exec_;
    sim::HostId host_;
    wal::WalEnv walEnv_;
    lts::ChunkStorage& lts_;
    Config cfg_;
    ContainerPlacement placement_;
    std::map<int, std::unique_ptr<sim::CpuModel>> cpuByCore_;
    BlockCache cache_;
    std::map<uint32_t, std::unique_ptr<SegmentContainer>> containers_;
};

}  // namespace pravega::segmentstore
