// SegmentStore: a data-plane server instance (§2.2). Its main role is to
// host segment containers; requests are routed to the container that owns
// the segment via the stateless uniform hash. The store also charges
// request-handling CPU, which is what saturates first in some of the
// paper's high-parallelism scenarios.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "lts/chunk_storage.h"
#include "segmentstore/cache.h"
#include "segmentstore/container.h"
#include "sim/models.h"
#include "sim/network.h"
#include "wal/log_client.h"

namespace pravega::segmentstore {

class SegmentStore {
public:
    struct Config {
        ContainerConfig container;
        sim::CpuModel::Config cpu;
        BlockCache::Config cache;
    };

    SegmentStore(sim::Executor& exec, sim::HostId host, wal::WalEnv walEnv,
                 lts::ChunkStorage& lts, Config cfg);

    sim::HostId host() const { return host_; }

    /// Starts hosting a container (runs recovery). Part of normal startup
    /// and of re-distribution after another store's crash (§4.4).
    Status addContainer(uint32_t containerId);

    /// Stops hosting a container (simulated crash / graceful handoff).
    void removeContainer(uint32_t containerId);

    SegmentContainer* container(uint32_t containerId);
    bool hasContainer(uint32_t containerId) const { return containers_.contains(containerId); }
    std::vector<uint32_t> containerIds() const;

    /// Charges request-handling CPU for a request carrying `bytes`.
    sim::Future<sim::Unit> chargeRequest(uint64_t bytes) { return cpu_.execute(bytes); }

    BlockCache& cache() { return cache_; }
    sim::CpuModel& cpu() { return cpu_; }

    /// Aggregated per-segment rates across hosted containers (feedback
    /// loop to the control plane, §3.1) plus total bytes for Fig 13's
    /// per-segment-store load series.
    std::map<SegmentId, SegmentRate> drainRates();

private:
    sim::Executor& exec_;
    sim::HostId host_;
    wal::WalEnv walEnv_;
    lts::ChunkStorage& lts_;
    Config cfg_;
    sim::CpuModel cpu_;
    BlockCache cache_;
    std::map<uint32_t, std::unique_ptr<SegmentContainer>> containers_;
};

}  // namespace pravega::segmentstore
