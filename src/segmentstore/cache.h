// The Pravega block cache (§4.2, Fig 4), byte-exact to the paper's layout.
//
// The cache is divided into equal-sized blocks inside pre-allocated
// contiguous buffers. Blocks are daisy-chained (each block points to its
// predecessor) to form cache entries; an entry's address is the address of
// its LAST block, which makes appends O(1): locate the last block, fill its
// remaining capacity, then chain new blocks. Empty blocks are chained in a
// per-buffer free list (small concurrency domain in the real system), and a
// queue of buffers-with-available-blocks makes finding a free block O(1).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "common/result.h"

namespace pravega::segmentstore {

/// 32-bit block address: (buffer id << blockBits) | block id.
using CacheAddress = uint32_t;
constexpr CacheAddress kInvalidAddress = 0xFFFFFFFFu;

class BlockCache {
public:
    struct Config {
        uint32_t blockSize = 4 * 1024;
        uint32_t blocksPerBuffer = 512;  // 2 MB buffers, as in Fig 4's example
        uint32_t maxBuffers = 2048;      // 4 GB cap by default
    };

    explicit BlockCache(Config cfg);

    /// Stores a new entry; returns the address of its last block.
    Result<CacheAddress> insert(BytesView data);

    /// Chain-aware insert: copies fragment by fragment straight into cache
    /// blocks (the single block-granularity copy of the ingest path — the
    /// chain is never flattened first).
    Result<CacheAddress> insert(const BufChain& data);

    /// Appends to an existing entry; returns the (possibly new) address of
    /// the entry's last block. O(1) in the entry length.
    Result<CacheAddress> append(CacheAddress address, BytesView data);

    /// Chain-aware append. On CacheFull the entry survives with every
    /// fragment that fit (consistent lengths — callers resync via
    /// entryLength, same contract as the view overload's topped-up state).
    Result<CacheAddress> append(CacheAddress address, const BufChain& data);

    /// Reassembles the full entry by walking the predecessor chain.
    Result<Bytes> get(CacheAddress address) const;

    /// Ranged read: copies only [offset, offset+length) of the entry
    /// (clamped to the entry length), skipping preceding blocks without
    /// touching their bytes.
    Result<Bytes> get(CacheAddress address, uint64_t offset, uint64_t length) const;

    /// Total payload bytes stored in the entry.
    Result<uint64_t> entryLength(CacheAddress address) const;

    /// Frees every block of the entry.
    Status remove(CacheAddress address);

    // --- observability ------------------------------------------------
    uint32_t usedBlocks() const { return usedBlocks_; }
    uint32_t allocatedBuffers() const { return static_cast<uint32_t>(buffers_.size()); }
    uint64_t storedBytes() const { return storedBytes_; }
    uint64_t capacityBytes() const {
        return static_cast<uint64_t>(cfg_.maxBuffers) * cfg_.blocksPerBuffer * cfg_.blockSize;
    }
    /// Fraction of maximum capacity currently holding data blocks.
    double utilization() const {
        return static_cast<double>(usedBlocks_) /
               (static_cast<double>(cfg_.maxBuffers) * cfg_.blocksPerBuffer);
    }
    const Config& config() const { return cfg_; }

private:
    struct BlockMeta {
        bool used = false;
        uint32_t length = 0;          // payload bytes in this block
        CacheAddress prev = kInvalidAddress;  // predecessor in the entry chain
        uint32_t nextFree = UINT32_MAX;       // free-list link within the buffer
    };

    struct Buffer {
        std::unique_ptr<uint8_t[]> data;
        std::vector<BlockMeta> blocks;
        uint32_t freeHead = UINT32_MAX;
        uint32_t freeCount = 0;
    };

    CacheAddress makeAddress(uint32_t bufferId, uint32_t blockId) const {
        return (bufferId << blockBits_) | blockId;
    }
    uint32_t bufferOf(CacheAddress a) const { return a >> blockBits_; }
    uint32_t blockOf(CacheAddress a) const { return a & ((1u << blockBits_) - 1); }

    bool validAddress(CacheAddress a) const;
    uint8_t* blockData(CacheAddress a);
    const uint8_t* blockData(CacheAddress a) const;
    BlockMeta& meta(CacheAddress a);
    const BlockMeta& meta(CacheAddress a) const;

    /// Pops a free block (allocating a new buffer if needed and allowed).
    Result<CacheAddress> allocBlock();
    void freeBlock(CacheAddress a);

    Config cfg_;
    uint32_t blockBits_;
    std::vector<Buffer> buffers_;
    /// Buffers that currently have at least one free block.
    std::deque<uint32_t> buffersWithSpace_;
    std::vector<bool> inSpaceQueue_;
    uint32_t usedBlocks_ = 0;
    uint64_t storedBytes_ = 0;
};

}  // namespace pravega::segmentstore
