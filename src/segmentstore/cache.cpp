#include "segmentstore/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace pravega::segmentstore {

BlockCache::BlockCache(Config cfg) : cfg_(cfg) {
    assert(std::has_single_bit(cfg_.blocksPerBuffer) && "blocksPerBuffer must be a power of 2");
    assert(cfg_.blockSize > 0 && cfg_.maxBuffers > 0);
    blockBits_ = static_cast<uint32_t>(std::countr_zero(cfg_.blocksPerBuffer));
    inSpaceQueue_.assign(cfg_.maxBuffers, false);
}

bool BlockCache::validAddress(CacheAddress a) const {
    if (a == kInvalidAddress) return false;
    uint32_t buf = bufferOf(a);
    uint32_t blk = blockOf(a);
    return buf < buffers_.size() && blk < cfg_.blocksPerBuffer && buffers_[buf].blocks[blk].used;
}

uint8_t* BlockCache::blockData(CacheAddress a) {
    return buffers_[bufferOf(a)].data.get() + static_cast<size_t>(blockOf(a)) * cfg_.blockSize;
}

const uint8_t* BlockCache::blockData(CacheAddress a) const {
    return buffers_[bufferOf(a)].data.get() + static_cast<size_t>(blockOf(a)) * cfg_.blockSize;
}

BlockCache::BlockMeta& BlockCache::meta(CacheAddress a) {
    return buffers_[bufferOf(a)].blocks[blockOf(a)];
}

const BlockCache::BlockMeta& BlockCache::meta(CacheAddress a) const {
    return buffers_[bufferOf(a)].blocks[blockOf(a)];
}

Result<CacheAddress> BlockCache::allocBlock() {
    while (!buffersWithSpace_.empty()) {
        uint32_t bufId = buffersWithSpace_.front();
        Buffer& buf = buffers_[bufId];
        if (buf.freeHead == UINT32_MAX) {
            // Buffer filled up since it was queued; drop it.
            buffersWithSpace_.pop_front();
            inSpaceQueue_[bufId] = false;
            continue;
        }
        uint32_t blk = buf.freeHead;
        BlockMeta& m = buf.blocks[blk];
        buf.freeHead = m.nextFree;
        --buf.freeCount;
        m = BlockMeta{};
        m.used = true;
        ++usedBlocks_;
        if (buf.freeCount == 0) {
            buffersWithSpace_.pop_front();
            inSpaceQueue_[bufId] = false;
        }
        return makeAddress(bufId, blk);
    }

    if (buffers_.size() >= cfg_.maxBuffers) return Status(Err::CacheFull, "all buffers full");

    // Pre-allocate a contiguous buffer and chain all its blocks as free.
    uint32_t bufId = static_cast<uint32_t>(buffers_.size());
    Buffer buf;
    buf.data = std::make_unique<uint8_t[]>(static_cast<size_t>(cfg_.blocksPerBuffer) * cfg_.blockSize);
    buf.blocks.resize(cfg_.blocksPerBuffer);
    for (uint32_t i = 0; i < cfg_.blocksPerBuffer; ++i) {
        buf.blocks[i].nextFree = (i + 1 < cfg_.blocksPerBuffer) ? i + 1 : UINT32_MAX;
    }
    buf.freeHead = 0;
    buf.freeCount = cfg_.blocksPerBuffer;
    buffers_.push_back(std::move(buf));
    buffersWithSpace_.push_back(bufId);
    inSpaceQueue_[bufId] = true;
    return allocBlock();
}

void BlockCache::freeBlock(CacheAddress a) {
    uint32_t bufId = bufferOf(a);
    uint32_t blk = blockOf(a);
    Buffer& buf = buffers_[bufId];
    BlockMeta& m = buf.blocks[blk];
    assert(m.used);
    m = BlockMeta{};
    m.nextFree = buf.freeHead;
    buf.freeHead = blk;
    ++buf.freeCount;
    --usedBlocks_;
    if (!inSpaceQueue_[bufId]) {
        buffersWithSpace_.push_back(bufId);
        inSpaceQueue_[bufId] = true;
    }
}

Result<CacheAddress> BlockCache::insert(BytesView data) {
    auto first = allocBlock();
    if (!first) return first.status();
    CacheAddress last = first.value();
    meta(last).prev = kInvalidAddress;

    size_t pos = std::min<size_t>(data.size(), cfg_.blockSize);
    std::memcpy(blockData(last), data.data(), pos);
    meta(last).length = static_cast<uint32_t>(pos);
    storedBytes_ += pos;

    if (pos < data.size()) {
        auto extended = append(last, data.subspan(pos));
        if (!extended) {
            remove(last);
            return extended.status();
        }
        last = extended.value();
    }
    return last;
}

Result<CacheAddress> BlockCache::insert(const BufChain& data) {
    if (data.empty()) return insert(BytesView());
    const auto& frags = data.fragments();
    auto addr = insert(frags[0].view());
    if (!addr) return addr.status();
    CacheAddress last = addr.value();
    for (size_t i = 1; i < frags.size(); ++i) {
        auto extended = append(last, frags[i].view());
        if (!extended) {
            remove(last);
            return extended.status();
        }
        last = extended.value();
    }
    return last;
}

Result<CacheAddress> BlockCache::append(CacheAddress address, const BufChain& data) {
    CacheAddress last = address;
    for (const auto& frag : data.fragments()) {
        auto extended = append(last, frag.view());
        if (!extended) return extended.status();
        last = extended.value();
    }
    return last;
}

Result<CacheAddress> BlockCache::append(CacheAddress address, BytesView data) {
    if (!validAddress(address)) return Status(Err::InvalidArgument, "bad cache address");
    CacheAddress last = address;
    size_t pos = 0;

    // Fill the remaining capacity of the current last block first.
    {
        BlockMeta& m = meta(last);
        uint32_t room = cfg_.blockSize - m.length;
        size_t n = std::min<size_t>(room, data.size());
        if (n > 0) {
            std::memcpy(blockData(last) + m.length, data.data(), n);
            m.length += static_cast<uint32_t>(n);
            pos += n;
            storedBytes_ += n;
        }
    }

    // Then chain fresh blocks for the remainder.
    while (pos < data.size()) {
        auto blk = allocBlock();
        if (!blk) {
            // Unwind blocks chained by THIS call before failing: callers
            // only know `address`, and chains point backward, so anything
            // past it would be unreachable and leak forever. The entry
            // survives in its topped-up original state (old blocks plus the
            // fill of the old last block), which is exactly the state
            // `entryLength(address)` reports.
            while (last != address) {
                CacheAddress prev = meta(last).prev;
                storedBytes_ -= meta(last).length;
                freeBlock(last);
                last = prev;
            }
            return blk.status();
        }
        meta(blk.value()).prev = last;
        size_t n = std::min<size_t>(cfg_.blockSize, data.size() - pos);
        std::memcpy(blockData(blk.value()), data.data() + pos, n);
        meta(blk.value()).length = static_cast<uint32_t>(n);
        storedBytes_ += n;
        pos += n;
        last = blk.value();
    }
    return last;
}

Result<Bytes> BlockCache::get(CacheAddress address) const {
    if (!validAddress(address)) return Status(Err::InvalidArgument, "bad cache address");
    // Walk the predecessor chain collecting blocks (last → first), then
    // assemble in forward order.
    std::vector<CacheAddress> chain;
    for (CacheAddress a = address; a != kInvalidAddress; a = meta(a).prev) chain.push_back(a);

    uint64_t total = 0;
    for (CacheAddress a : chain) total += meta(a).length;

    Bytes out;
    out.reserve(static_cast<size_t>(total));
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const BlockMeta& m = meta(*it);
        const uint8_t* p = blockData(*it);
        out.insert(out.end(), p, p + m.length);
    }
    return out;
}

Result<Bytes> BlockCache::get(CacheAddress address, uint64_t offset, uint64_t length) const {
    if (!validAddress(address)) return Status(Err::InvalidArgument, "bad cache address");
    std::vector<CacheAddress> chain;
    for (CacheAddress a = address; a != kInvalidAddress; a = meta(a).prev) chain.push_back(a);

    uint64_t total = 0;
    for (CacheAddress a : chain) total += meta(a).length;
    if (offset > total) offset = total;
    length = std::min(length, total - offset);

    Bytes out;
    out.reserve(static_cast<size_t>(length));
    uint64_t pos = 0;  // entry-relative offset of the current block's start
    for (auto it = chain.rbegin(); it != chain.rend() && length > 0; ++it) {
        const BlockMeta& m = meta(*it);
        uint64_t end = pos + m.length;
        if (end > offset) {
            uint64_t from = offset > pos ? offset - pos : 0;
            uint64_t n = std::min<uint64_t>(m.length - from, length);
            const uint8_t* p = blockData(*it) + from;
            out.insert(out.end(), p, p + n);
            offset += n;
            length -= n;
        }
        pos = end;
    }
    return out;
}

Result<uint64_t> BlockCache::entryLength(CacheAddress address) const {
    if (!validAddress(address)) return Status(Err::InvalidArgument, "bad cache address");
    uint64_t total = 0;
    for (CacheAddress a = address; a != kInvalidAddress; a = meta(a).prev) total += meta(a).length;
    return total;
}

Status BlockCache::remove(CacheAddress address) {
    if (!validAddress(address)) return Status(Err::InvalidArgument, "bad cache address");
    CacheAddress a = address;
    while (a != kInvalidAddress) {
        CacheAddress prev = meta(a).prev;
        storedBytes_ -= meta(a).length;
        freeBlock(a);
        a = prev;
    }
    return Status::ok();
}

}  // namespace pravega::segmentstore
