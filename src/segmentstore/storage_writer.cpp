#include "segmentstore/storage_writer.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "common/logging.h"
#include "common/serde.h"
#include "segmentstore/container.h"

namespace pravega::segmentstore {

namespace {
constexpr const char* kLog = "storage-writer";
}

Bytes ChunkRecord::serialize() const {
    Bytes out;
    BinaryWriter w(out);
    w.str(name);
    w.i64(startOffset);
    w.i64(length);
    return out;
}

Result<ChunkRecord> ChunkRecord::deserialize(BytesView data) {
    BinaryReader r(data);
    auto name = r.str();
    auto startOffset = r.i64();
    auto length = r.i64();
    if (!name || !startOffset || !length) return Status(Err::IoError, "corrupt chunk record");
    return ChunkRecord{std::move(name.value()), startOffset.value(), length.value()};
}

StorageWriter::StorageWriter(sim::Core& exec, SegmentContainer& container,
                             lts::ChunkStorage& storage, StorageWriterConfig cfg)
    : exec_(exec),
      container_(container),
      storage_(storage),
      cfg_(cfg),
      mFlushes_(exec.metrics().counter("store.writer.flushes")),
      mFlushBytes_(exec.metrics().counter("store.writer.flush_bytes")),
      mFlushFailures_(exec.metrics().counter("store.writer.flush_failures")),
      mCompactions_(exec.metrics().counter("store.writer.compactions")),
      mCompactedBytes_(exec.metrics().counter("store.writer.compacted_bytes")),
      mOrphanChunks_(exec.metrics().gauge("lts.orphan_chunks")),
      mFlushNs_(exec.metrics().histogram("store.writer.flush_ns")),
      mFlushBatchBytes_(exec.metrics().histogram("store.writer.flush_batch_bytes")) {}

void StorageWriter::start() {
    if (running_) return;
    running_ = true;
    uint64_t epoch = ++timerEpoch_;
    exec_.scheduleWeak(cfg_.scanInterval, [this, epoch, alive = alive_]() {
        if (!*alive) return;  // writer destroyed with the timer in flight
        if (epoch != timerEpoch_ || !running_) return;
        running_ = false;
        start();  // re-arm, then scan
        scan();
    });
    armCompactTimer();
}

// The flush-scan timer re-arms through start() (bumping timerEpoch_ every
// tick), so the slower compaction timer keeps its own armed flag and epoch:
// it survives scan re-arms but dies across stop() (which bumps the epoch AND
// clears the armed flag, so the next start() arms a fresh timer). A stale
// timer firing after a restart sees the epoch mismatch and returns without
// touching compactArmed_ — that flag then describes the restart's timer.
void StorageWriter::armCompactTimer() {
    if (cfg_.compactMinChunkBytes == 0 || compactArmed_) return;
    compactArmed_ = true;
    uint64_t epoch = compactEpoch_;
    exec_.scheduleWeak(cfg_.compactInterval, [this, epoch, alive = alive_]() {
        if (!*alive) return;  // writer destroyed with the timer in flight
        if (epoch != compactEpoch_) return;  // stale: a stop() invalidated us,
                                             // and compactArmed_ now belongs
                                             // to a newer timer (if any)
        compactArmed_ = false;
        if (!running_) return;
        compactScan();
        armCompactTimer();
    });
}

void StorageWriter::stop() {
    running_ = false;
    ++timerEpoch_;
    ++compactEpoch_;
    // The epoch bump orphaned any in-flight compaction timer; clear the armed
    // flag so the next start() arms a fresh one instead of no-opping (the
    // stale timer would otherwise never re-arm and compaction would stay dead
    // across a stop()/start() cycle).
    compactArmed_ = false;
}

std::string StorageWriter::chunkKey(SegmentId segment, int64_t index) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "chunks/%016llx/%012lld",
                  static_cast<unsigned long long>(segment), static_cast<long long>(index));
    return buf;
}

std::string StorageWriter::chunkName(SegmentId segment, int64_t startOffset) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "seg-%016llx-%012lld",
                  static_cast<unsigned long long>(segment), static_cast<long long>(startOffset));
    return buf;
}

int64_t StorageWriter::chunkIndexFromKey(const std::string& key) {
    size_t slash = key.find_last_of('/');
    if (slash == std::string::npos) return -1;
    return std::strtoll(key.c_str() + slash + 1, nullptr, 10);
}

void StorageWriter::queueAppend(SegmentId segment, int64_t offset, SharedBuf data,
                                int64_t walSequence) {
    auto& state = segments_[segment];
    if (state.deleted) return;
    // Drop bytes already durable in LTS (recovery replays the WAL tail,
    // which may overlap the flushed prefix).
    auto info = container_.getInfo(segment);
    if (info && offset + static_cast<int64_t>(data.size()) <= info.value().storageLength) {
        return;
    }
    if (state.pending.empty()) state.oldestPending = exec_.now();
    state.pendingBytes += data.size();
    pendingBytes_ += data.size();
    state.pending.push_back(PendingAppend{offset, std::move(data), walSequence});
}

void StorageWriter::notifyDeleted(SegmentId segment) {
    auto it = segments_.find(segment);
    if (it != segments_.end()) {
        pendingBytes_ -= it->second.pendingBytes;
        it->second.pending.clear();
        it->second.pendingBytes = 0;
        it->second.deleted = true;
    }
    // Chunk removal is best-effort and asynchronous, but a dropped failure
    // would leave an orphan chunk that totalBytes() counts forever — so
    // failures are logged, retried once, and then surfaced on a gauge.
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    for (const auto& [key, value] : chunks) {
        auto rec = ChunkRecord::deserialize(value.value);
        if (rec) removeChunk(rec.value().name, /*isRetry=*/false);
    }
}

void StorageWriter::removeChunk(const std::string& name, bool isRetry) {
    storage_.remove(name).onComplete([this, name, isRetry](const Result<sim::Unit>& r) {
        if (r.isOk() || r.status().code() == Err::NotFound) return;
        if (!isRetry) {
            PLOG_WARN(kLog, "chunk remove failed (%s), retrying once: %s",
                      r.status().toString().c_str(), name.c_str());
            removeChunk(name, /*isRetry=*/true);
            return;
        }
        PLOG_WARN(kLog, "chunk remove retry failed (%s); orphaning %s",
                  r.status().toString().c_str(), name.c_str());
        mOrphanChunks_.add(1.0);
    });
}

void StorageWriter::scan() {
    for (auto& [segment, state] : segments_) {
        if (state.flushing || state.deleted || state.pending.empty()) continue;
        if (activeFlushes_ >= cfg_.maxConcurrentFlushes) break;
        bool sizeReady = state.pendingBytes >= cfg_.flushSizeBytes;
        bool ageReady = exec_.now() - state.oldestPending >= cfg_.flushTimeout;
        if (sizeReady || ageReady) flushSegment(segment, state);
    }
}

void StorageWriter::flushSegment(SegmentId segment, SegmentState& state) {
    // Current durable frontier from chunk metadata; anything below it is
    // already in LTS (makes flush retries and recovery overlap idempotent).
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    ChunkRecord last;
    int64_t lastIndex = -1;
    int64_t lastVersion = kNotExists;
    if (!chunks.empty()) {
        auto rec = ChunkRecord::deserialize(chunks.back().second.value);
        if (rec) {
            last = rec.value();
            // The index comes from the KEY, not the record count: compaction
            // deletes records, and a new chunk keyed `size()-1` would sort
            // before surviving keys, breaking findChunks' key-order ==
            // offset-order invariant.
            lastIndex = chunkIndexFromKey(chunks.back().first);
            lastVersion = chunks.back().second.version;
        }
    }
    int64_t storageStart = lastIndex >= 0 ? last.startOffset + last.length : 0;

    // Aggregate pending appends into one contiguous write (§4.3: "it
    // buffers small appends into larger writes to LTS"). The aggregate is a
    // fragment chain over the queued payloads — no bytes move here; the
    // terminal media write inside the chunk backend is the only copy.
    // Entries stay in the queue until the flush succeeds so
    // flushedWalSequence() cannot advance (and truncate the WAL) past data
    // not yet durable in LTS.
    BufChain agg;
    size_t flushCount = 0;
    uint64_t flushBytes = 0;
    int64_t cursor = -1;
    for (const auto& entry : state.pending) {
        if (agg.size() >= cfg_.flushSizeBytes * 2) break;
        int64_t end = entry.offset + static_cast<int64_t>(entry.data.size());
        if (end <= storageStart) {
            // Entirely below the durable frontier (replayed prefix).
            ++flushCount;
            flushBytes += entry.data.size();
            continue;
        }
        int64_t from = std::max<int64_t>(0, storageStart - entry.offset);
        if (cursor < 0) cursor = entry.offset + from;
        assert(entry.offset + from == cursor && "storage queue must be contiguous");
        agg.append(entry.data.slice(static_cast<size_t>(from),
                                    entry.data.size() - static_cast<size_t>(from)));
        cursor = end;
        ++flushCount;
        flushBytes += entry.data.size();
    }
    if (agg.empty()) {
        // Nothing new to write (all below the frontier): just retire.
        for (size_t i = 0; i < flushCount; ++i) state.pending.pop_front();
        state.pendingBytes -= flushBytes;
        pendingBytes_ -= flushBytes;
        if (!state.pending.empty()) state.oldestPending = exec_.now();
        container_.onStorageProgress();
        return;
    }

    state.flushing = true;
    ++activeFlushes_;
    mFlushes_.inc();
    mFlushBatchBytes_.record(static_cast<sim::Duration>(agg.size()));
    sim::TimePoint flushStart = exec_.now();

    // Build the per-chunk write plan, rolling chunks at maxChunkBytes.
    struct FlushPlan {
        std::string chunk;
        std::string key;
        int64_t version;     // expected table version for the metadata CAS
        ChunkRecord record;  // record after this write
        BufChain data;       // zero-copy slice of the aggregate chain
        bool createChunk;
    };
    auto plans = std::make_shared<std::vector<FlushPlan>>();
    size_t pos = 0;
    int64_t offset = storageStart;
    while (pos < agg.size()) {
        bool needNew = lastIndex < 0 ||
                       last.length >= static_cast<int64_t>(cfg_.maxChunkBytes);
        if (needNew) {
            ++lastIndex;
            last = ChunkRecord{chunkName(segment, offset), offset, 0};
            lastVersion = kNotExists;
        }
        size_t room = cfg_.maxChunkBytes - static_cast<size_t>(last.length);
        size_t n = std::min(room, agg.size() - pos);
        FlushPlan plan;
        plan.chunk = last.name;
        plan.key = chunkKey(segment, lastIndex);
        plan.version = lastVersion;
        plan.createChunk = (lastVersion == kNotExists);
        plan.data = agg.share(pos, n);
        last.length += static_cast<int64_t>(n);
        plan.record = last;
        plans->push_back(std::move(plan));
        pos += n;
        offset += static_cast<int64_t>(n);
        lastVersion = kAnyVersion;  // subsequent writes in this flush chain
    }

    // Execute plans sequentially: create-if-needed, append, record metadata
    // via a conditional table update, then continue or finish.
    auto runPlan = std::make_shared<std::function<void(size_t)>>();
    int64_t finalLength = cursor;
    // The stored function holds only a weak ref to itself; the strong refs
    // live in the in-flight continuations. A chain interrupted mid-flight
    // (executor wound down with an LTS write outstanding) is then reclaimed
    // with the futures instead of leaking the self-ownership cycle.
    *runPlan = [this, segment, plans,
                weakPlan = std::weak_ptr<std::function<void(size_t)>>(runPlan),
                finalLength, flushCount, flushBytes, flushStart](size_t i) {
        auto runPlan = weakPlan.lock();
        if (!runPlan) return;
        auto& st = segments_[segment];
        if (i >= plans->size()) {
            mFlushNs_.record(exec_.now() - flushStart);
            // Success: retire the flushed entries.
            for (size_t k = 0; k < flushCount && !st.pending.empty(); ++k) {
                st.pending.pop_front();
            }
            st.pendingBytes -= std::min<uint64_t>(flushBytes, st.pendingBytes);
            pendingBytes_ -= std::min<uint64_t>(flushBytes, pendingBytes_);
            if (!st.pending.empty()) st.oldestPending = exec_.now();
            st.flushing = false;
            --activeFlushes_;
            container_.onSegmentFlushed(segment, finalLength);
            container_.onStorageProgress();
            // Keep draining a backlogged segment immediately instead of
            // waiting for the next scan tick (the drain must be limited by
            // LTS, not by the scan cadence).
            if (st.pendingBytes >= cfg_.flushSizeBytes && running_) {
                exec_.post([this, segment]() {
                    auto it = segments_.find(segment);
                    if (it != segments_.end() && !it->second.flushing &&
                        !it->second.deleted && running_ &&
                        activeFlushes_ < cfg_.maxConcurrentFlushes) {
                        flushSegment(segment, it->second);
                    }
                });
            }
            return;
        }
        auto runAppend = [this, plans, runPlan, i, segment]() {
            auto& plan = (*plans)[i];
            uint64_t n = plan.data.size();
            storage_.append(plan.chunk, std::move(plan.data))
                .onComplete([this, plans, runPlan, i, n,
                             segment](const Result<sim::Unit>& r) {
                    auto& st2 = segments_[segment];
                    if (!r.isOk()) {
                        // Leave the queue untouched; the next scan retries
                        // and the durable-frontier trim keeps it idempotent.
                        PLOG_WARN(kLog, "LTS append failed (%s); will retry",
                                  r.status().toString().c_str());
                        mFlushFailures_.inc();
                        st2.flushing = false;
                        --activeFlushes_;
                        return;
                    }
                    flushedBytes_ += n;
                    mFlushBytes_.inc(n);
                    std::vector<TableUpdate> batch;
                    TableUpdate u;
                    u.key = (*plans)[i].key;
                    u.value = (*plans)[i].record.serialize();
                    u.expectedVersion = (*plans)[i].version;
                    batch.push_back(std::move(u));
                    container_.tableUpdate(container_.systemTableSegment(), std::move(batch))
                        .onComplete([runPlan, i](const Result<std::vector<int64_t>>& tr) {
                            if (!tr.isOk()) {
                                PLOG_WARN(kLog, "chunk metadata update failed: %s",
                                          tr.status().toString().c_str());
                            }
                            (*runPlan)(i + 1);
                        });
                });
        };
        if ((*plans)[i].createChunk) {
            storage_.create((*plans)[i].chunk)
                .onComplete([runAppend](const Result<sim::Unit>&) { runAppend(); });
        } else {
            runAppend();
        }
    };
    (*runPlan)(0);
}

uint64_t StorageWriter::compactions() const { return mCompactions_.value(); }

void StorageWriter::compactScan() {
    for (auto& [segment, state] : segments_) {
        if (state.flushing || state.deleted) continue;
        if (activeFlushes_ >= cfg_.maxConcurrentFlushes) break;
        compactSegment(segment, state);
    }
}

void StorageWriter::compactSegment(SegmentId segment, SegmentState& state) {
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    if (chunks.size() < 3) return;  // need a run of >= 2 plus the active tail
    // Find the first run of >= 2 adjacent small chunks. The LAST record is
    // never a candidate: it is still receiving appends, and merging it would
    // race the flush path's durable-frontier math.
    struct Victim {
        std::string key;
        int64_t version;
        ChunkRecord rec;
    };
    std::vector<Victim> run;
    size_t limit = chunks.size() - 1;
    for (size_t i = 0; i < limit; ++i) {
        auto rec = ChunkRecord::deserialize(chunks[i].second.value);
        bool small = rec && rec.value().length > 0 &&
                     rec.value().length < static_cast<int64_t>(cfg_.compactMinChunkBytes);
        if (small) {
            int64_t runBytes = 0;
            for (const auto& v : run) runBytes += v.rec.length;
            if (runBytes + rec.value().length <= static_cast<int64_t>(cfg_.maxChunkBytes)) {
                run.push_back(
                    Victim{chunks[i].first, chunks[i].second.version, rec.value()});
                continue;
            }
        }
        if (run.size() >= 2) break;  // a full run ended here — merge it
        run.clear();
    }
    if (run.size() < 2) return;

    // Lock the segment against concurrent flushes: the metadata CAS below
    // and flushSegment's frontier scan must not interleave.
    state.flushing = true;
    ++activeFlushes_;

    auto victims = std::make_shared<std::vector<Victim>>(std::move(run));
    int64_t mergedStart = victims->front().rec.startOffset;
    int64_t mergedLen = 0;
    for (const auto& v : *victims) mergedLen += v.rec.length;
    // `-c<gen>` uniquifies: plain chunkName(segment, mergedStart) is the
    // first victim's own name (or a prior generation's).
    std::string mergedName =
        chunkName(segment, mergedStart) + "-c" + std::to_string(++compactGen_);

    auto finish = [this, segment](bool ok, const std::string& newChunk) {
        auto it = segments_.find(segment);
        if (it != segments_.end()) it->second.flushing = false;
        --activeFlushes_;
        if (!ok && !newChunk.empty()) removeChunk(newChunk, /*isRetry=*/false);
    };

    // Read every victim chunk fully (in parallel — they are immutable), then
    // write the merged chunk, then swap the metadata atomically.
    auto payloads = std::make_shared<std::vector<SharedBuf>>(victims->size());
    auto remaining = std::make_shared<size_t>(victims->size());
    auto failed = std::make_shared<bool>(false);
    for (size_t i = 0; i < victims->size(); ++i) {
        const auto& v = (*victims)[i];
        storage_.read(v.rec.name, 0, static_cast<uint64_t>(v.rec.length))
            .onComplete([this, segment, victims, payloads, remaining, failed, i,
                         mergedName, mergedStart, mergedLen,
                         finish](const Result<SharedBuf>& r) {
                if (!r.isOk() ||
                    r.value().size() != static_cast<uint64_t>((*victims)[i].rec.length)) {
                    *failed = true;
                }
                (*payloads)[i] = r.isOk() ? r.value() : SharedBuf();
                if (--*remaining > 0) return;
                if (*failed) {
                    finish(false, "");
                    return;
                }
                BufChain merged;
                for (auto& buf : *payloads) merged.append(std::move(buf));
                storage_.create(mergedName)
                    .onComplete([this, segment, victims, merged = std::move(merged),
                                 mergedName, mergedStart, mergedLen,
                                 finish](const Result<sim::Unit>& cr) mutable {
                        if (!cr.isOk()) {
                            finish(false, "");
                            return;
                        }
                        storage_.append(mergedName, std::move(merged))
                            .onComplete([this, segment, victims, mergedName,
                                         mergedStart, mergedLen,
                                         finish](const Result<sim::Unit>& ar) {
                                if (!ar.isOk()) {
                                    finish(false, mergedName);
                                    return;
                                }
                                // Atomic swap: the first victim's record
                                // becomes the merged record; the rest are
                                // deleted. Version guards abort the whole
                                // batch if anything moved underneath us.
                                std::vector<TableUpdate> batch;
                                TableUpdate u;
                                u.key = victims->front().key;
                                u.value =
                                    ChunkRecord{mergedName, mergedStart, mergedLen}
                                        .serialize();
                                u.expectedVersion = victims->front().version;
                                batch.push_back(std::move(u));
                                for (size_t k = 1; k < victims->size(); ++k) {
                                    TableUpdate d;
                                    d.key = (*victims)[k].key;
                                    d.value = std::nullopt;
                                    d.expectedVersion = (*victims)[k].version;
                                    batch.push_back(std::move(d));
                                }
                                container_
                                    .tableUpdate(container_.systemTableSegment(),
                                                 std::move(batch))
                                    .onComplete([this, victims, mergedName, mergedLen,
                                                 finish](const Result<
                                                         std::vector<int64_t>>& tr) {
                                        if (!tr.isOk()) {
                                            PLOG_WARN(kLog,
                                                      "compaction CAS failed: %s",
                                                      tr.status().toString().c_str());
                                            finish(false, mergedName);
                                            return;
                                        }
                                        mCompactions_.inc();
                                        mCompactedBytes_.inc(
                                            static_cast<uint64_t>(mergedLen));
                                        // Old chunks are unreachable now; any
                                        // read already in flight captured its
                                        // data when it was issued.
                                        for (const auto& v : *victims) {
                                            removeChunk(v.rec.name,
                                                        /*isRetry=*/false);
                                        }
                                        finish(true, "");
                                    });
                            });
                    });
            });
    }
}

Result<int64_t> StorageWriter::reconcileSegment(SegmentId segment) {
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    if (chunks.empty()) return static_cast<int64_t>(0);
    auto rec = ChunkRecord::deserialize(chunks.back().second.value);
    if (!rec) return rec.status();
    ChunkRecord last = rec.value();
    // A chunk longer than its record means a flush landed whose metadata
    // update was lost with the WAL tail; adopt the actual length.
    auto actual = storage_.stat(last.name);
    if (actual && static_cast<int64_t>(actual.value().length) > last.length) {
        last.length = static_cast<int64_t>(actual.value().length);
        std::vector<TableUpdate> fix;
        TableUpdate u;
        u.key = chunks.back().first;
        u.value = last.serialize();
        fix.push_back(std::move(u));
        container_.tableUpdate(container_.systemTableSegment(), std::move(fix));
    }
    return last.startOffset + last.length;
}

Result<ChunkRecord> StorageWriter::findChunk(SegmentId segment, int64_t offset) const {
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    // Records are ordered by chunk index == offset order; linear scan from
    // the back finds the covering chunk (reads cluster near recent data).
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
        auto rec = ChunkRecord::deserialize(it->second.value);
        if (!rec) continue;
        if (rec.value().startOffset <= offset &&
            offset < rec.value().startOffset + rec.value().length) {
            return rec.value();
        }
    }
    return Status(Err::NotFound, "no chunk covers offset");
}

std::vector<ChunkRecord> StorageWriter::findChunks(SegmentId segment, int64_t offset,
                                                   int64_t length) const {
    std::vector<ChunkRecord> out;
    if (length <= 0) return out;
    int64_t end = offset + length;
    auto chunks = container_.tableScan(container_.systemTableSegment(),
                                       chunkKey(segment, 0).substr(0, 24));
    for (const auto& [key, value] : chunks) {
        auto rec = ChunkRecord::deserialize(value.value);
        if (!rec) continue;
        const ChunkRecord& r = rec.value();
        if (r.startOffset >= end) break;  // records are in offset order
        if (r.startOffset + r.length > offset) out.push_back(r);
    }
    return out;
}

uint64_t StorageWriter::maxSegmentPendingBytes() const {
    uint64_t worst = 0;
    for (const auto& [segment, state] : segments_) {
        worst = std::max(worst, state.pendingBytes);
    }
    return worst;
}

int64_t StorageWriter::flushedWalSequence() const {
    int64_t minPending = INT64_MAX;
    for (const auto& [segment, state] : segments_) {
        if (!state.pending.empty()) {
            minPending = std::min(minPending, state.pending.front().walSequence);
        }
    }
    if (minPending == INT64_MAX) return container_.lastAppliedSequence();
    return minPending - 1;
}

}  // namespace pravega::segmentstore
