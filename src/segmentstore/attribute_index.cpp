#include "segmentstore/attribute_index.h"

namespace pravega::segmentstore {

int64_t AttributeIndex::get(SegmentId segment, AttributeId attribute) const {
    auto sit = attrs_.find(segment);
    if (sit == attrs_.end()) return kNullValue;
    auto ait = sit->second.find(attribute);
    return ait == sit->second.end() ? kNullValue : ait->second;
}

void AttributeIndex::set(SegmentId segment, AttributeId attribute, int64_t value) {
    if (value == kNullValue) {
        auto sit = attrs_.find(segment);
        if (sit != attrs_.end()) sit->second.erase(attribute);
        return;
    }
    attrs_[segment][attribute] = value;
}

Status AttributeIndex::compareAndSet(SegmentId segment, AttributeId attribute, int64_t expected,
                                     int64_t value) {
    int64_t current = get(segment, attribute);
    if (current != expected) return Status(Err::BadVersion, "attribute value mismatch");
    set(segment, attribute, value);
    return Status::ok();
}

size_t AttributeIndex::count(SegmentId segment) const {
    auto sit = attrs_.find(segment);
    return sit == attrs_.end() ? 0 : sit->second.size();
}

void AttributeIndex::serialize(SegmentId segment, BinaryWriter& w) const {
    auto sit = attrs_.find(segment);
    if (sit == attrs_.end()) {
        w.varint(0);
        return;
    }
    w.varint(sit->second.size());
    for (const auto& [id, value] : sit->second) {
        w.u64(id);
        w.i64(value);
    }
}

Status AttributeIndex::deserialize(SegmentId segment, BinaryReader& r) {
    auto n = r.varint();
    if (!n) return n.status();
    auto& m = attrs_[segment];
    m.clear();
    for (uint64_t i = 0; i < n.value(); ++i) {
        auto id = r.u64();
        auto value = r.i64();
        if (!id || !value) return Status(Err::IoError, "corrupt attribute record");
        m[id.value()] = value.value();
    }
    return Status::ok();
}

}  // namespace pravega::segmentstore
