// WAL operations (§4.1): every request that modifies a segment becomes an
// Operation, serialized into data frames and written to the container's
// single multiplexed log. Recovery deserializes and replays them (§4.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serde.h"
#include "segmentstore/types.h"

namespace pravega::segmentstore {

enum class OpType : uint8_t {
    Append = 1,
    Create = 2,
    Seal = 3,
    Truncate = 4,
    Delete = 5,
    TableUpdate = 6,
    MetadataCheckpoint = 7,
};

struct Operation {
    OpType type = OpType::Append;
    SegmentId segment = 0;

    // Append fields.
    int64_t offset = -1;  // assigned by the container when processing
    WriterId writer = 0;
    int64_t eventNumber = -1;
    uint32_t eventCount = 0;
    SharedBuf data;  // event payload / serialized table batch / checkpoint

    // Create fields.
    std::string name;
    bool isTable = false;

    // Truncate field: offset (reused).

    /// Serialized size contribution to a data frame.
    uint64_t serializedSize() const;
};

void serializeOp(BinaryWriter& w, const Operation& op);

/// Serializes everything EXCEPT the payload bytes: the fixed fields plus
/// the payload's varint length prefix. `serializeOpHeader` followed by the
/// raw payload bytes is byte-identical to `serializeOp` — the frame builder
/// uses this to emit headers into one small buffer and splice the payload
/// in by reference (BufChain fragment) instead of copying it.
void serializeOpHeader(BinaryWriter& w, const Operation& op);

/// Deserializes a whole data frame (a concatenation of operations).
Result<std::vector<Operation>> deserializeFrame(BytesView frame);

}  // namespace pravega::segmentstore
