// Custom AVL search tree used by the read index (§4.2).
//
// The paper notes the read index keeps "a sorted index of entries per
// segment (indexed by their start offsets) ... implemented via a custom AVL
// search tree to minimize memory usage while not sacrificing access
// performance". This is that tree: an ordered map with floor/ceiling
// queries (find the entry covering a given offset) and in-order traversal.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>

namespace pravega::segmentstore {

template <typename K, typename V>
class AvlMap {
public:
    AvlMap() = default;
    ~AvlMap() { destroy(root_); }

    AvlMap(const AvlMap&) = delete;
    AvlMap& operator=(const AvlMap&) = delete;
    AvlMap(AvlMap&& other) noexcept : root_(other.root_), size_(other.size_) {
        other.root_ = nullptr;
        other.size_ = 0;
    }
    AvlMap& operator=(AvlMap&& other) noexcept {
        if (this != &other) {
            destroy(root_);
            root_ = other.root_;
            size_ = other.size_;
            other.root_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Inserts or overwrites. Returns true if a new key was inserted.
    bool insert(const K& key, V value) {
        bool inserted = false;
        root_ = insertNode(root_, key, std::move(value), inserted);
        if (inserted) ++size_;
        return inserted;
    }

    /// Removes `key`; returns true if it was present.
    bool erase(const K& key) {
        bool removed = false;
        root_ = eraseNode(root_, key, removed);
        if (removed) --size_;
        return removed;
    }

    V* find(const K& key) {
        Node* n = root_;
        while (n) {
            if (key < n->key) {
                n = n->left;
            } else if (n->key < key) {
                n = n->right;
            } else {
                return &n->value;
            }
        }
        return nullptr;
    }
    const V* find(const K& key) const { return const_cast<AvlMap*>(this)->find(key); }

    /// Greatest entry with key <= `key`, or nullptr.
    std::pair<const K*, V*> floorEntry(const K& key) {
        Node* best = nullptr;
        Node* n = root_;
        while (n) {
            if (n->key < key || n->key == key) {
                best = n;
                n = n->right;
            } else {
                n = n->left;
            }
        }
        return best ? std::pair<const K*, V*>{&best->key, &best->value}
                    : std::pair<const K*, V*>{nullptr, nullptr};
    }

    /// Smallest entry with key >= `key`, or nullptr.
    std::pair<const K*, V*> ceilingEntry(const K& key) {
        Node* best = nullptr;
        Node* n = root_;
        while (n) {
            if (key < n->key || n->key == key) {
                best = n;
                n = n->left;
            } else {
                n = n->right;
            }
        }
        return best ? std::pair<const K*, V*>{&best->key, &best->value}
                    : std::pair<const K*, V*>{nullptr, nullptr};
    }

    std::pair<const K*, V*> firstEntry() {
        Node* n = root_;
        while (n && n->left) n = n->left;
        return n ? std::pair<const K*, V*>{&n->key, &n->value}
                 : std::pair<const K*, V*>{nullptr, nullptr};
    }

    std::pair<const K*, V*> lastEntry() {
        Node* n = root_;
        while (n && n->right) n = n->right;
        return n ? std::pair<const K*, V*>{&n->key, &n->value}
                 : std::pair<const K*, V*>{nullptr, nullptr};
    }

    /// In-order traversal; `fn(key, value)` returns false to stop early.
    void forEach(const std::function<bool(const K&, V&)>& fn) {
        forEachNode(root_, fn);
    }

    void clear() {
        destroy(root_);
        root_ = nullptr;
        size_ = 0;
    }

    /// Height of the tree (for balance invariant checks in tests).
    int height() const { return heightOf(root_); }

    /// Verifies AVL balance + ordering invariants (test support).
    bool checkInvariants() const {
        bool ok = true;
        checkNode(root_, nullptr, nullptr, ok);
        return ok;
    }

private:
    struct Node {
        K key;
        V value;
        Node* left = nullptr;
        Node* right = nullptr;
        int height = 1;
        Node(const K& k, V v) : key(k), value(std::move(v)) {}
    };

    static int heightOf(const Node* n) { return n ? n->height : 0; }
    static int balanceOf(const Node* n) {
        return n ? heightOf(n->left) - heightOf(n->right) : 0;
    }
    static void update(Node* n) {
        n->height = 1 + std::max(heightOf(n->left), heightOf(n->right));
    }

    static Node* rotateRight(Node* y) {
        Node* x = y->left;
        y->left = x->right;
        x->right = y;
        update(y);
        update(x);
        return x;
    }

    static Node* rotateLeft(Node* x) {
        Node* y = x->right;
        x->right = y->left;
        y->left = x;
        update(x);
        update(y);
        return y;
    }

    static Node* rebalance(Node* n) {
        update(n);
        int bal = balanceOf(n);
        if (bal > 1) {
            if (balanceOf(n->left) < 0) n->left = rotateLeft(n->left);
            return rotateRight(n);
        }
        if (bal < -1) {
            if (balanceOf(n->right) > 0) n->right = rotateRight(n->right);
            return rotateLeft(n);
        }
        return n;
    }

    static Node* insertNode(Node* n, const K& key, V&& value, bool& inserted) {
        if (!n) {
            inserted = true;
            return new Node(key, std::move(value));
        }
        if (key < n->key) {
            n->left = insertNode(n->left, key, std::move(value), inserted);
        } else if (n->key < key) {
            n->right = insertNode(n->right, key, std::move(value), inserted);
        } else {
            n->value = std::move(value);
            return n;
        }
        return rebalance(n);
    }

    static Node* eraseNode(Node* n, const K& key, bool& removed) {
        if (!n) return nullptr;
        if (key < n->key) {
            n->left = eraseNode(n->left, key, removed);
        } else if (n->key < key) {
            n->right = eraseNode(n->right, key, removed);
        } else {
            removed = true;
            if (!n->left || !n->right) {
                Node* child = n->left ? n->left : n->right;
                delete n;
                return child;  // may be null
            }
            // Two children: replace with in-order successor.
            Node* succ = n->right;
            while (succ->left) succ = succ->left;
            n->key = succ->key;
            n->value = std::move(succ->value);
            bool dummy = false;
            n->right = eraseNode(n->right, succ->key, dummy);
        }
        return rebalance(n);
    }

    static void destroy(Node* n) {
        if (!n) return;
        destroy(n->left);
        destroy(n->right);
        delete n;
    }

    static bool forEachNode(Node* n, const std::function<bool(const K&, V&)>& fn) {
        if (!n) return true;
        if (!forEachNode(n->left, fn)) return false;
        if (!fn(n->key, n->value)) return false;
        return forEachNode(n->right, fn);
    }

    static int checkNode(const Node* n, const K* lo, const K* hi, bool& ok) {
        if (!n) return 0;
        if ((lo && !(*lo < n->key)) || (hi && !(n->key < *hi))) ok = false;
        int lh = checkNode(n->left, lo, &n->key, ok);
        int rh = checkNode(n->right, &n->key, hi, ok);
        if (n->height != 1 + std::max(lh, rh)) ok = false;
        if (lh - rh > 1 || rh - lh > 1) ok = false;
        return n->height;
    }

    Node* root_ = nullptr;
    size_t size_ = 0;
};

}  // namespace pravega::segmentstore
