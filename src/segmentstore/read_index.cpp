#include "segmentstore/read_index.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/logging.h"

namespace pravega::segmentstore {

ReadIndex::ReadIndex(BlockCache& cache, Config cfg) : cache_(cache), cfg_(cfg) {}

ReadIndex::~ReadIndex() {
    std::vector<SegmentId> ids;
    ids.reserve(segments_.size());
    for (const auto& [id, idx] : segments_) ids.push_back(id);
    for (SegmentId id : ids) removeSegment(id);
}

void ReadIndex::addSegment(SegmentId segment) {
    segments_.try_emplace(segment);
}

void ReadIndex::removeSegment(SegmentId segment) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return;
    it->second.entries.forEach([&](const int64_t&, Entry& e) {
        if (e.address != kInvalidAddress) cache_.remove(e.address);
        indexedBytes_ -= static_cast<uint64_t>(e.length);
        return true;
    });
    segments_.erase(it);
}

Status ReadIndex::append(SegmentId segment, int64_t offset, BytesView data) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return Status(Err::NotFound, "segment not in read index");
    SegmentIndex& idx = it->second;

    // Fast path: extend the last entry in place when contiguous and small
    // enough — this is the O(1) append the block-chained cache enables.
    auto last = idx.entries.lastEntry();
    if (last.first && *last.first + last.second->length == offset &&
        last.second->address != kInvalidAddress &&
        last.second->length + static_cast<int64_t>(data.size()) <= cfg_.maxEntryLength) {
        auto newAddr = cache_.append(last.second->address, data);
        if (newAddr) {
            last.second->address = newAddr.value();
            last.second->length += static_cast<int64_t>(data.size());
            last.second->lastUsedGeneration = generation_;
            indexedBytes_ += data.size();
            return Status::ok();
        }
        if (newAddr.code() != Err::CacheFull) return newAddr.status();
        // Cache full mid-append: the entry was partially extended; bring the
        // index in sync with whatever the cache now holds, evict, retry once.
        auto len = cache_.entryLength(last.second->address);
        if (len) {
            indexedBytes_ += len.value() - static_cast<uint64_t>(last.second->length);
            last.second->length = static_cast<int64_t>(len.value());
        }
        applyCachePolicy();
        int64_t done = *last.first + last.second->length - offset;
        if (done >= static_cast<int64_t>(data.size())) return Status::ok();
        return insertEntry(idx, offset + done, data.subspan(static_cast<size_t>(done)));
    }
    return insertEntry(idx, offset, data);
}

Status ReadIndex::insertEntry(SegmentIndex& idx, int64_t offset, BytesView data) {
    // Split oversized payloads into maxEntryLength pieces.
    while (!data.empty()) {
        size_t n = std::min<size_t>(data.size(), static_cast<size_t>(cfg_.maxEntryLength));
        auto addr = cache_.insert(data.first(n));
        if (!addr && addr.code() == Err::CacheFull) {
            applyCachePolicy();
            addr = cache_.insert(data.first(n));
        }
        if (!addr) return addr.status();
        Entry e;
        e.length = static_cast<int64_t>(n);
        e.address = addr.value();
        e.lastUsedGeneration = generation_;
        idx.entries.insert(offset, e);
        indexedBytes_ += n;
        offset += static_cast<int64_t>(n);
        data = data.subspan(n);
    }
    return Status::ok();
}

Status ReadIndex::append(SegmentId segment, int64_t offset, const BufChain& data) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return Status(Err::NotFound, "segment not in read index");
    SegmentIndex& idx = it->second;

    // Same O(1) fast path as the view overload, fed fragment by fragment.
    auto last = idx.entries.lastEntry();
    if (last.first && *last.first + last.second->length == offset &&
        last.second->address != kInvalidAddress &&
        last.second->length + static_cast<int64_t>(data.size()) <= cfg_.maxEntryLength) {
        auto newAddr = cache_.append(last.second->address, data);
        if (newAddr) {
            last.second->address = newAddr.value();
            last.second->length += static_cast<int64_t>(data.size());
            last.second->lastUsedGeneration = generation_;
            indexedBytes_ += data.size();
            return Status::ok();
        }
        if (newAddr.code() != Err::CacheFull) return newAddr.status();
        auto len = cache_.entryLength(last.second->address);
        if (len) {
            indexedBytes_ += len.value() - static_cast<uint64_t>(last.second->length);
            last.second->length = static_cast<int64_t>(len.value());
        }
        applyCachePolicy();
        int64_t done = *last.first + last.second->length - offset;
        if (done >= static_cast<int64_t>(data.size())) return Status::ok();
        return insertEntry(idx, offset + done,
                           data.share(static_cast<size_t>(done),
                                      data.size() - static_cast<size_t>(done)));
    }
    return insertEntry(idx, offset, data);
}

Status ReadIndex::insertEntry(SegmentIndex& idx, int64_t offset, BufChain data) {
    // Split oversized payloads into maxEntryLength pieces (zero-copy
    // slices; the only byte movement is the block-granularity copy inside
    // the cache).
    while (!data.empty()) {
        size_t n = std::min<size_t>(data.size(), static_cast<size_t>(cfg_.maxEntryLength));
        BufChain piece = data.share(0, n);
        auto addr = cache_.insert(piece);
        if (!addr && addr.code() == Err::CacheFull) {
            applyCachePolicy();
            addr = cache_.insert(piece);
        }
        if (!addr) return addr.status();
        Entry e;
        e.length = static_cast<int64_t>(n);
        e.address = addr.value();
        e.lastUsedGeneration = generation_;
        idx.entries.insert(offset, e);
        indexedBytes_ += n;
        offset += static_cast<int64_t>(n);
        data.trimFront(n);
    }
    return Status::ok();
}

Status ReadIndex::insertFromStorage(SegmentId segment, int64_t offset, BytesView data) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return Status(Err::NotFound, "segment not in read index");
    SegmentIndex& idx = it->second;
    // Avoid double-indexing: an entry may overlap the fetched range from
    // EITHER side. A floor entry overlapping `offset` happens when part of
    // the range was re-indexed (tail append or another fetch) while this
    // fetch was in flight; ceiling entries bound how far we may insert.
    // Walk the range, skipping covered bytes and inserting only the gaps.
    while (!data.empty()) {
        auto floor = idx.entries.floorEntry(offset);
        if (floor.first && *floor.first + floor.second->length > offset) {
            // Front of the range is already indexed: skip past it.
            int64_t skip = *floor.first + floor.second->length - offset;
            if (skip >= static_cast<int64_t>(data.size())) break;
            offset += skip;
            data = data.subspan(static_cast<size_t>(skip));
            continue;
        }
        auto ceiling = idx.entries.ceilingEntry(offset);
        int64_t limit = ceiling.first ? *ceiling.first : offset + static_cast<int64_t>(data.size());
        int64_t usable = std::min<int64_t>(static_cast<int64_t>(data.size()), limit - offset);
        if (usable > 0) {
            Status s = insertEntry(idx, offset, data.first(static_cast<size_t>(usable)));
            if (!s) return s;
            offset += usable;
            data = data.subspan(static_cast<size_t>(usable));
        }
        // usable == 0 means a ceiling entry starts exactly at `offset`; the
        // next iteration's floor check skips over it.
    }
    checkSegmentInvariants(idx);
    return Status::ok();
}

void ReadIndex::checkSegmentInvariants(SegmentIndex& idx) {
#ifndef NDEBUG
    int64_t prevEnd = INT64_MIN;
    idx.entries.forEach([&](const int64_t& off, Entry& e) {
        assert(e.length > 0 && "read-index entry must hold bytes");
        assert(off >= prevEnd && "read-index entries must not overlap");
        prevEnd = off + e.length;
        return true;
    });
#else
    (void)idx;
#endif
}

int64_t ReadIndex::contiguousEnd(SegmentId segment, int64_t offset, int64_t limit) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return offset;
    SegmentIndex& idx = it->second;
    int64_t end = offset;
    while (end < limit) {
        auto floor = idx.entries.floorEntry(end);
        if (!floor.first || *floor.first + floor.second->length <= end) break;
        end = *floor.first + floor.second->length;
    }
    return std::min(end, limit);
}

Result<ReadOutcome> ReadIndex::read(SegmentId segment, int64_t offset, int64_t maxBytes,
                                    int64_t segmentLength, int64_t startOffset) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return Status(Err::NotFound, "segment not in read index");
    if (offset < startOffset) return Status(Err::Truncated, "offset before truncation point");
    if (offset > segmentLength) return Status(Err::BadOffset, "offset beyond segment end");
    if (offset == segmentLength) return ReadOutcome{ReadAtTail{}};

    maxBytes = std::min(maxBytes, segmentLength - offset);
    SegmentIndex& idx = it->second;

    auto floor = idx.entries.floorEntry(offset);
    if (floor.first && *floor.first + floor.second->length > offset) {
        // Cache hit: serve from this entry (possibly fewer than maxBytes;
        // the iterator semantics let callers continue from the new offset).
        Entry& e = *floor.second;
        e.lastUsedGeneration = generation_;
        int64_t within = offset - *floor.first;
        int64_t n = std::min<int64_t>(e.length - within, maxBytes);
        // Ranged get: only the requested bytes are copied out of cache
        // blocks (the old full-entry get + re-slice copied twice).
        auto part = cache_.get(e.address, static_cast<uint64_t>(within),
                               static_cast<uint64_t>(n));
        if (!part) return part.status();
        return ReadOutcome{ReadHit{std::move(part.value())}};
    }

    // Miss: compute the gap to fetch from LTS — up to the next indexed
    // entry or the requested size, whichever is nearer.
    auto ceiling = idx.entries.ceilingEntry(offset);
    int64_t gapEnd = ceiling.first ? std::min(*ceiling.first, offset + maxBytes)
                                   : offset + maxBytes;
    return ReadOutcome{ReadMiss{offset, gapEnd - offset}};
}

void ReadIndex::truncate(SegmentId segment, int64_t newStartOffset) {
    auto it = segments_.find(segment);
    if (it == segments_.end()) return;
    SegmentIndex& idx = it->second;
    std::vector<int64_t> toRemove;
    idx.entries.forEach([&](const int64_t& off, Entry& e) {
        if (off + e.length <= newStartOffset) toRemove.push_back(off);
        return off < newStartOffset;  // stop once past the truncation point
    });
    for (int64_t off : toRemove) {
        Entry* e = idx.entries.find(off);
        if (e->address != kInvalidAddress) cache_.remove(e->address);
        indexedBytes_ -= static_cast<uint64_t>(e->length);
        idx.entries.erase(off);
    }
}

void ReadIndex::setStorageLength(SegmentId segment, int64_t storageLength) {
    auto it = segments_.find(segment);
    if (it != segments_.end()) {
        it->second.storageLength = std::max(it->second.storageLength, storageLength);
    }
}

int ReadIndex::applyCachePolicy() {
    ++generation_;
    if (cache_.utilization() < cfg_.evictionThreshold) return 0;

    // Collect eviction candidates: entries fully below their segment's
    // storage watermark (anything above it is not yet durable in LTS and
    // must stay resident for the storage writer / tail readers).
    struct Candidate {
        uint64_t gen;
        SegmentId segment;
        int64_t offset;
        int64_t length;
    };
    std::vector<Candidate> candidates;
    for (auto& [segId, idx] : segments_) {
        idx.entries.forEach([&](const int64_t& off, Entry& e) {
            if (off + e.length <= idx.storageLength && e.address != kInvalidAddress) {
                candidates.push_back({e.lastUsedGeneration, segId, off, e.length});
            }
            return true;
        });
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.gen < b.gen; });

    int evicted = 0;
    uint64_t capacity = cache_.capacityBytes();
    for (const auto& c : candidates) {
        if (static_cast<double>(cache_.storedBytes()) / static_cast<double>(capacity) <=
            cfg_.evictionTarget) {
            break;
        }
        SegmentIndex& idx = segments_[c.segment];
        Entry* e = idx.entries.find(c.offset);
        if (!e) continue;
        cache_.remove(e->address);
        indexedBytes_ -= static_cast<uint64_t>(e->length);
        idx.entries.erase(c.offset);
        ++evicted;
    }
    if (evictionCounter_ != nullptr && evicted > 0) {
        evictionCounter_->inc(static_cast<uint64_t>(evicted));
    }
    return evicted;
}

uint64_t ReadIndex::entryCount() const {
    uint64_t n = 0;
    for (const auto& [id, idx] : segments_) n += idx.entries.size();
    return n;
}

}  // namespace pravega::segmentstore
