// The storage writer (§4.3): de-multiplexes operations written to WAL,
// groups them by segment, aggregates small appends into larger writes, and
// applies them to LTS as chunks. After a flush it records chunk metadata in
// the container's system table segment (conditional updates, as the paper
// prescribes) and advances the WAL truncation watermark.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "lts/chunk_storage.h"
#include "obs/metrics.h"
#include "segmentstore/types.h"
#include "sim/machine.h"
#include "sim/future.h"

namespace pravega::segmentstore {

class SegmentContainer;

struct StorageWriterConfig {
    /// Flush a segment's pending data once it reaches this size...
    uint64_t flushSizeBytes = 4 * 1024 * 1024;
    /// ...or once its oldest pending byte is this old.
    sim::Duration flushTimeout = sim::msec(500);
    /// Chunks roll over at this size; historical reads fetch chunks in
    /// parallel (§5.7), so the chunk size bounds read parallelism grain.
    uint64_t maxChunkBytes = 16 * 1024 * 1024;
    /// How often the writer scans for flush-ready segments.
    sim::Duration scanInterval = sim::msec(50);
    /// Max segment flushes in flight at once (parallel LTS streams).
    int maxConcurrentFlushes = 16;
    /// Chunk compaction: merge a run of >= 2 adjacent flushed chunks each
    /// smaller than this into one chunk (timeout-driven flushes of a slow
    /// segment otherwise litter LTS with tiny objects). 0 disables
    /// compaction (the default).
    uint64_t compactMinChunkBytes = 0;
    /// How often the compactor scans chunk metadata for merge candidates.
    sim::Duration compactInterval = sim::sec(2);
};

/// Chunk metadata record stored in the container's system table.
struct ChunkRecord {
    std::string name;
    int64_t startOffset = 0;
    int64_t length = 0;

    Bytes serialize() const;
    static Result<ChunkRecord> deserialize(BytesView data);
};

class StorageWriter {
public:
    StorageWriter(sim::Core& exec, SegmentContainer& container, lts::ChunkStorage& storage,
                  StorageWriterConfig cfg);
    ~StorageWriter() { *alive_ = false; }

    void start();
    void stop();

    /// Called by the container for every applied append (and during WAL
    /// replay). Appends already durable in LTS are dropped here.
    void queueAppend(SegmentId segment, int64_t offset, SharedBuf data, int64_t walSequence);

    void notifyDeleted(SegmentId segment);

    /// Reconciles a recovered segment against LTS: chunk metadata is
    /// authoritative, except that a chunk longer than its record means a
    /// flush completed whose metadata update was lost — adopt the actual
    /// chunk length (the bytes are identical, appends replay verbatim).
    Result<int64_t> reconcileSegment(SegmentId segment);

    /// Locates the chunk covering `offset` for LTS reads.
    Result<ChunkRecord> findChunk(SegmentId segment, int64_t offset) const;

    /// All chunks overlapping [offset, offset+length), in offset order.
    /// Lets the read pipeline fetch a multi-chunk range in parallel instead
    /// of discovering chunks one fetch-retry round at a time (§5.7).
    std::vector<ChunkRecord> findChunks(SegmentId segment, int64_t offset,
                                        int64_t length) const;

    /// Highest WAL sequence S such that every append with sequence <= S is
    /// durable in LTS (drives WAL truncation).
    int64_t flushedWalSequence() const;

    uint64_t pendingBytes() const { return pendingBytes_; }
    uint64_t flushedBytes() const { return flushedBytes_; }
    /// Completed chunk-compaction merges (see compactMinChunkBytes).
    uint64_t compactions() const;

    /// Largest single-segment unflushed backlog. Flushes are serialized per
    /// segment, so this measures how far LTS drain lags ingest for the
    /// hottest segment — the ingest-throttling signal (§4.3).
    uint64_t maxSegmentPendingBytes() const;

private:
    struct PendingAppend {
        int64_t offset;
        SharedBuf data;
        int64_t walSequence;
    };
    struct SegmentState {
        std::deque<PendingAppend> pending;
        uint64_t pendingBytes = 0;
        sim::TimePoint oldestPending = 0;
        int64_t nextChunkIndex = 0;
        bool flushing = false;
        bool deleted = false;
    };

    void scan();
    void flushSegment(SegmentId segment, SegmentState& state);
    void armCompactTimer();
    void compactScan();
    void compactSegment(SegmentId segment, SegmentState& state);
    std::string chunkKey(SegmentId segment, int64_t index) const;
    std::string chunkName(SegmentId segment, int64_t startOffset) const;
    /// Parses the chunk index back out of a metadata key. After compaction
    /// deletes records, `chunks.size() - 1` is NOT the last index — the key
    /// itself is the only truth (new chunks must keep sorting after old).
    static int64_t chunkIndexFromKey(const std::string& key);

    sim::Core& exec_;
    SegmentContainer& container_;
    lts::ChunkStorage& storage_;
    StorageWriterConfig cfg_;

    /// Liveness token captured by the scan/compaction timers: scheduleWeak
    /// callbacks hold a raw `this` and can outlive the writer (the machine
    /// owns them), so a timer firing after destruction must bail before
    /// touching members.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    std::map<SegmentId, SegmentState> segments_;
    uint64_t pendingBytes_ = 0;
    uint64_t flushedBytes_ = 0;
    int activeFlushes_ = 0;
    bool running_ = false;
    uint64_t timerEpoch_ = 0;
    int64_t compactGen_ = 0;  // uniquifies merged-chunk names
    bool compactArmed_ = false;
    uint64_t compactEpoch_ = 0;

    /// Best-effort chunk removal with one retry; failures land on the
    /// `lts.orphan_chunks` gauge instead of being silently dropped.
    void removeChunk(const std::string& name, bool isRetry);

    // World-aggregate storage-writer metrics.
    obs::Counter& mFlushes_;
    obs::Counter& mFlushBytes_;
    obs::Counter& mFlushFailures_;
    obs::Counter& mCompactions_;
    obs::Counter& mCompactedBytes_;
    obs::Gauge& mOrphanChunks_;
    obs::LatencyHistogram& mFlushNs_;
    obs::LatencyHistogram& mFlushBatchBytes_;
};

}  // namespace pravega::segmentstore
