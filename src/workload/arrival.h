// Aggregate arrival processes for fleet-scale workload modeling.
//
// Per-writer client objects cost ~1 DES event per event written, which caps
// a simulation at tens of writers. To model a fleet (~10k streams, ~1M
// producers) the workload layer collapses each stream's producer population
// into ONE arrival process sampled per tick: the number of events the
// population would have produced in the tick window. A Poisson process is
// the exact aggregate of many independent producers; MMPP (Markov-modulated
// Poisson) adds burstiness by switching the rate between states with
// exponentially-distributed dwell times; a diurnal profile modulates the
// rate on a slow periodic ramp. Everything is driven by an owned Rng, so a
// stream's arrival sequence depends only on (seed, virtual time) — never on
// core count or on other streams.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace pravega::workload {

/// Samples a Poisson(mean) count. Knuth inversion for small means, a
/// clamped normal approximation (Box–Muller) for large ones — one regime
/// switch at mean 32, both branches deterministic.
uint64_t poissonCount(double mean, sim::Rng& rng);

/// Slow periodic rate modulation (the daily ramp in §3.1's motivating
/// workloads). Raised-cosine between `minFactor` (trough) and 1.0 (peak);
/// phase 0 starts at the trough so ramp-up is observable from t=0.
struct DiurnalProfile {
    sim::Duration period = 0;  ///< 0 disables the profile (factor 1.0).
    double minFactor = 1.0;
    double phase01 = 0.0;  ///< fraction of a period to shift the ramp

    double factorAt(sim::TimePoint t) const;
};

/// One stream's aggregate producer population.
class ArrivalProcess {
public:
    enum class Kind { Poisson, Mmpp };

    struct Config {
        Kind kind = Kind::Poisson;
        /// Long-run mean arrival rate of the whole population.
        double eventsPerSec = 0.0;
        /// MMPP rate multipliers per state; dwell in each state is
        /// exponential with mean `meanDwell`. Factors are normalized so the
        /// long-run mean rate stays `eventsPerSec`.
        std::vector<double> stateFactors = {0.25, 1.75};
        sim::Duration meanDwell = sim::sec(1);
        DiurnalProfile diurnal;
    };

    ArrivalProcess(Config cfg, uint64_t seed);

    /// Arrivals in [from, from+dt); advances MMPP state through the window.
    uint64_t arrivalsIn(sim::TimePoint from, sim::Duration dt);

    /// Instantaneous rate (state factor × diurnal factor × mean).
    double currentRate(sim::TimePoint at) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    sim::Rng rng_;
    double factorNorm_ = 1.0;  // normalizes stateFactors to mean 1
    size_t state_ = 0;
    sim::TimePoint stateUntil_ = -1;  // -1: dwell not yet drawn
};

}  // namespace pravega::workload
