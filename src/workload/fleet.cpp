#include "workload/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace pravega::workload {

namespace {
constexpr const char* kLog = "fleet";

uint64_t streamSeed(uint64_t fleetSeed, size_t streamIdx, uint64_t salt) {
    return pravega::mix64(fleetSeed ^ pravega::mix64((streamIdx + 1) * 2 + salt));
}
}  // namespace

FleetWorkload::FleetWorkload(cluster::PravegaCluster& cluster, FleetConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
    offeredPerTenant_.assign(cfg_.tenants.size(), 0);
    ackedPerTenant_.assign(cfg_.tenants.size(), 0);

    size_t globalIdx = 0;
    for (size_t t = 0; t < cfg_.tenants.size(); ++t) {
        const TenantSpec& spec = cfg_.tenants[t];
        keyZipf_.push_back(std::make_unique<ZipfSampler>(
            std::max<uint64_t>(spec.keysPerStream, 1), spec.keySkewTheta));
        // Key rank → unit-interval routing hash, computed once per tenant:
        // the per-event hot path then never builds key strings.
        std::vector<double> hashes;
        hashes.reserve(static_cast<size_t>(keyZipf_.back()->size()));
        for (uint64_t k = 0; k < keyZipf_.back()->size(); ++k) {
            hashes.push_back(pravega::keyHash01("k" + std::to_string(k)));
        }
        keyHash_.push_back(std::move(hashes));

        // Zipf-weighted per-stream shares of the tenant's aggregate rate.
        ZipfSampler streamWeights(std::max(spec.streams, 1), spec.streamSkewTheta);
        double tenantRate = static_cast<double>(spec.streams) * spec.producersPerStream *
                            spec.producerEventsPerSec;
        for (int j = 0; j < spec.streams; ++j, ++globalIdx) {
            ArrivalProcess::Config ac;
            ac.kind = spec.arrivals;
            ac.eventsPerSec = tenantRate * streamWeights.weight(static_cast<uint64_t>(j));
            ac.stateFactors = spec.mmppFactors;
            ac.meanDwell = spec.mmppMeanDwell;
            ac.diurnal = spec.diurnal;
            StreamState s(ArrivalProcess(ac, streamSeed(cfg_.seed, globalIdx, 0)),
                          streamSeed(cfg_.seed, globalIdx, 1));
            s.tenant = t;
            s.scopedName = spec.scope + "/s" + std::to_string(j);
            streams_.push_back(std::move(s));
        }
    }
}

FleetWorkload::~FleetWorkload() {
    stop();
    *alive_ = false;
}

Status FleetWorkload::setup() {
    auto& ctrl = cluster_.ctrl();
    for (const auto& spec : cfg_.tenants) {
        Status s = ctrl.createScope(spec.scope);
        if (!s && s.code() != Err::AlreadyExists) return s;
    }

    std::vector<sim::Future<sim::Unit>> batch;
    auto drain = [&]() -> Status {
        cluster_.runUntilIdle();
        for (const auto& f : batch) {
            if (!f.isReady()) return Status(Err::Timeout, "stream create stuck");
            if (!f.result().isOk()) return f.result().status();
        }
        batch.clear();
        return Status::ok();
    };
    for (const auto& s : streams_) {
        const TenantSpec& spec = cfg_.tenants[s.tenant];
        auto slash = s.scopedName.find('/');
        batch.push_back(ctrl.createStream(s.scopedName.substr(0, slash),
                                          s.scopedName.substr(slash + 1),
                                          spec.streamConfig));
        if (static_cast<int>(batch.size()) >= cfg_.setupBatch) {
            Status st = drain();
            if (!st) return st;
        }
    }
    Status st = drain();
    if (!st) return st;

    for (auto& s : streams_) {
        auto rec = ctrl.getStream(s.scopedName);
        if (!rec) return rec.status();
        s.rec = rec.value();
    }
    PLOG_INFO(kLog, "fleet ready: %zu streams, %llu modeled producers", streams_.size(),
              static_cast<unsigned long long>(modeledProducers()));
    return Status::ok();
}

void FleetWorkload::start() {
    if (running_) return;
    running_ = true;
    lastTick_ = cluster_.machine().now();
    armTimer();
}

void FleetWorkload::stop() {
    running_ = false;
    ++epoch_;
}

void FleetWorkload::armTimer() {
    uint64_t epoch = ++epoch_;
    cluster_.machine().core(0).scheduleWeak(
        cfg_.tick, [this, alive = alive_, epoch]() {
            if (!*alive || !running_ || epoch != epoch_) return;
            tick();
            armTimer();
        });
}

uint64_t FleetWorkload::modeledProducers() const {
    uint64_t total = 0;
    for (const auto& spec : cfg_.tenants) {
        total += static_cast<uint64_t>(spec.streams) * spec.producersPerStream;
    }
    return total;
}

double FleetWorkload::nominalEventsPerSec() const {
    double total = 0;
    for (const auto& spec : cfg_.tenants) {
        total += static_cast<double>(spec.streams) * spec.producersPerStream *
                 spec.producerEventsPerSec;
    }
    return total;
}

uint64_t FleetWorkload::offeredFor(const std::string& scope) const {
    for (size_t t = 0; t < cfg_.tenants.size(); ++t) {
        if (cfg_.tenants[t].scope == scope) return offeredPerTenant_[t];
    }
    return 0;
}

uint64_t FleetWorkload::ackedFor(const std::string& scope) const {
    for (size_t t = 0; t < cfg_.tenants.size(); ++t) {
        if (cfg_.tenants[t].scope == scope) return ackedPerTenant_[t];
    }
    return 0;
}

void FleetWorkload::tick() {
    sim::TimePoint now = cluster_.machine().now();
    sim::Duration dt = now - lastTick_;
    lastTick_ = now;
    if (dt <= 0) return;

    auto& reg = cluster_.machine().core(0).metrics();
    auto& offeredCounter = reg.counter("wl.offered_events");
    auto& throttledCounter = reg.counter("wl.throttled_events");

    for (size_t i = 0; i < streams_.size(); ++i) {
        auto& s = streams_[i];
        uint64_t n = s.proc.arrivalsIn(now - dt, dt);
        if (n == 0) continue;
        offered_ += n;
        offeredPerTenant_[s.tenant] += n;
        offeredCounter.inc(n);

        uint64_t send = n;
        if (quotas_ != nullptr) {
            double allow = quotas_->allowance(cfg_.tenants[s.tenant].scope);
            if (allow < 1.0) {
                double want = static_cast<double>(n) * allow + s.quotaCarry;
                send = static_cast<uint64_t>(want);
                s.quotaCarry = want - static_cast<double>(send);
                uint64_t dropped = n - send;
                throttled_ += dropped;
                throttledCounter.inc(dropped);
            }
        }
        if (send > 0) routeAndSend(i, send);
    }
}

void FleetWorkload::routeAndSend(size_t streamIdx, uint64_t count) {
    auto& s = streams_[streamIdx];
    if (s.rec == nullptr) return;
    size_t epochs = s.rec->epochs().size();
    if (s.dirty || epochs != s.cachedEpochs) {
        s.segments = s.rec->currentEpoch().segments;
        s.cachedEpochs = epochs;
        s.dirty = false;
    }
    if (s.segments.empty()) return;

    const auto& sampler = *keyZipf_[s.tenant];
    const auto& hashes = keyHash_[s.tenant];
    std::vector<uint32_t> perSegment(s.segments.size(), 0);
    for (uint64_t e = 0; e < count; ++e) {
        uint64_t rank = sampler.sample(s.keyRng);
        double h = hashes[static_cast<size_t>(rank)];
        // Order-independent checksum over (stream, key) samples — the
        // cross-core determinism property test compares this fold.
        keyChecksum_ += pravega::mix64((static_cast<uint64_t>(streamIdx) << 32) ^ rank);
        // Segments are sorted by keyStart; find the covering range.
        size_t idx = s.segments.size() - 1;
        for (size_t j = 0; j + 1 < s.segments.size(); ++j) {
            if (h < s.segments[j].keyEnd) {
                idx = j;
                break;
            }
        }
        ++perSegment[idx];
    }
    for (size_t j = 0; j < s.segments.size(); ++j) {
        if (perSegment[j] > 0) sendBatch(streamIdx, s.segments[j].id, perSegment[j]);
    }
}

SharedBuf FleetWorkload::payloadFor(uint64_t bytes) {
    // Payloads are opaque filler; share one buffer per size so the driver
    // does not allocate per append. Unbounded sizes (hot-stream bursts)
    // fall through to a fresh buffer.
    constexpr uint64_t kCacheCeiling = 256 * 1024;
    if (bytes > kCacheCeiling) return SharedBuf(Bytes(bytes, 0xAB));
    auto it = payloadCache_.find(bytes);
    if (it != payloadCache_.end()) return it->second;
    SharedBuf buf{Bytes(bytes, 0xAB)};
    payloadCache_.emplace(bytes, buf);
    return buf;
}

void FleetWorkload::sendBatch(size_t streamIdx, segmentstore::SegmentId segment,
                              uint32_t count) {
    auto& s = streams_[streamIdx];
    auto& registry = cluster_.registry();
    uint32_t cid = pravega::containerFor(segment, registry.containerCount());
    auto* store = registry.ownerOf(cid);
    if (store == nullptr) {
        errored_ += count;
        s.dirty = true;
        return;
    }
    uint64_t bytes = static_cast<uint64_t>(count) * cfg_.tenants[s.tenant].eventBytes;
    SharedBuf payload = payloadFor(bytes);
    sent_ += count;
    ++inflight_;
    store->chargeRequest(cid, bytes)
        .thenAsync([this, alive = alive_, cid, segment, payload,
                    count](const sim::Unit&) -> sim::Future<int64_t> {
            if (!*alive) {
                return sim::Future<int64_t>::failed(Status(Err::Cancelled, "fleet gone"));
            }
            // Re-resolve ownership: the rebalancer may have moved the
            // container while the charge was in flight.
            auto* owner = cluster_.registry().ownerOf(cid);
            auto* container = owner ? owner->container(cid) : nullptr;
            if (container == nullptr) {
                return sim::Future<int64_t>::failed(
                    Status(Err::ContainerOffline, "container moving"));
            }
            return container->append(segment, payload, /*writer=*/0,
                                     /*eventNumber=*/-1, count);
        })
        .onComplete([this, alive = alive_, streamIdx, count](const Result<int64_t>& r) {
            if (!*alive) return;
            --inflight_;
            auto& stream = streams_[streamIdx];
            if (r.isOk()) {
                acked_ += count;
                ackedPerTenant_[stream.tenant] += count;
            } else {
                errored_ += count;
                stream.dirty = true;  // chase scale events / container moves
            }
        });
}

}  // namespace pravega::workload
