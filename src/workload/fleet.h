// Fleet-scale aggregate-client workload driver (ROADMAP item 1).
//
// Models a multi-tenant fleet — thousands of streams, hundreds of
// thousands of producers — without a client object per producer. Each
// stream carries one ArrivalProcess (the aggregate of its producer
// population); a periodic driver tick samples every stream's arrival count
// for the window, draws Zipf-skewed routing keys, folds same-segment
// events into ONE aggregated append (eventCount carries the multiplicity,
// exactly the rate the auto-scaler and rebalancer consume), and issues it
// through the segment store's real request path: chargeRequest (CPU +
// cross-core mailbox hop) then container append (WAL, cache, storage
// writer). The cost per tick is O(active streams), not O(events).
//
// Determinism: every stream owns Rngs seeded from (fleet seed, stream
// index) only, so the generated sequence — counts, keys, checksum — is
// byte-identical across runs AND across machine core counts; the sharding
// property test pins this down. Routing uses the controller's epoch
// records, cached per stream and invalidated on epoch change or append
// error, mirroring how real clients chase scale events.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/pravega_cluster.h"
#include "controller/quota.h"
#include "workload/arrival.h"
#include "workload/zipf.h"

namespace pravega::workload {

/// One tenant: a scope holding `streams` look-alike streams whose rates
/// follow a Zipf profile (rank 0 is the tenant's hottest stream).
struct TenantSpec {
    std::string scope = "tenant";
    int streams = 1;
    /// Modeled producers per stream (population size; the aggregate rate
    /// is producersPerStream × producerEventsPerSec, Zipf-weighted across
    /// the tenant's streams).
    int producersPerStream = 1;
    double producerEventsPerSec = 1.0;
    uint32_t eventBytes = 256;
    /// Zipf θ over the tenant's streams (0 = uniform rates).
    double streamSkewTheta = 1.0;
    /// Zipf θ over routing keys within every stream (0 = uniform).
    double keySkewTheta = 1.0;
    uint64_t keysPerStream = 100;
    ArrivalProcess::Kind arrivals = ArrivalProcess::Kind::Poisson;
    std::vector<double> mmppFactors = {0.25, 1.75};
    sim::Duration mmppMeanDwell = sim::sec(1);
    DiurnalProfile diurnal;
    controller::StreamConfig streamConfig;
};

struct FleetConfig {
    std::vector<TenantSpec> tenants;
    sim::Duration tick = sim::msec(250);
    uint64_t seed = 42;
    /// Streams created per setup batch (each batch is drained with
    /// runUntilIdle before the next).
    int setupBatch = 512;
};

class FleetWorkload {
public:
    FleetWorkload(cluster::PravegaCluster& cluster, FleetConfig cfg);
    ~FleetWorkload();

    /// Creates every scope and stream, driving the simulation to drain
    /// each batch. Call once, from harness context, before start().
    Status setup();

    void start();
    void stop();

    /// Routes tenant throttle allowances through `quotas` (may be null).
    void attachQuotas(controller::TenantQuotaManager* quotas) { quotas_ = quotas; }

    // ---- scale facts ---------------------------------------------------
    uint64_t streamCount() const { return streams_.size(); }
    uint64_t modeledProducers() const;
    /// Long-run mean offered rate across the fleet (events/s).
    double nominalEventsPerSec() const;

    // ---- generation-side stats (independent of core count) -------------
    uint64_t offeredEvents() const { return offered_; }
    uint64_t throttledEvents() const { return throttled_; }
    /// Order-independent fold of every sampled routing key.
    uint64_t keyChecksum() const { return keyChecksum_; }
    uint64_t offeredFor(const std::string& scope) const;

    // ---- delivery-side stats (equal after a full drain) -----------------
    uint64_t sentEvents() const { return sent_; }
    uint64_t ackedEvents() const { return acked_; }
    uint64_t erroredEvents() const { return errored_; }
    uint64_t ackedFor(const std::string& scope) const;
    uint64_t inflightAppends() const { return inflight_; }

private:
    struct StreamState {
        std::string scopedName;
        size_t tenant = 0;
        ArrivalProcess proc;
        sim::Rng keyRng;
        const controller::StreamRecord* rec = nullptr;
        /// Routing cache: current-epoch segments, refreshed when the
        /// stream's epoch count changes or an append fails.
        std::vector<controller::SegmentRecord> segments;
        size_t cachedEpochs = 0;
        bool dirty = true;
        double quotaCarry = 0.0;

        StreamState(ArrivalProcess p, uint64_t keySeed)
            : proc(std::move(p)), keyRng(keySeed) {}
    };

    void armTimer();
    void tick();
    void routeAndSend(size_t streamIdx, uint64_t count);
    void sendBatch(size_t streamIdx, segmentstore::SegmentId segment, uint32_t count);
    SharedBuf payloadFor(uint64_t bytes);

    cluster::PravegaCluster& cluster_;
    FleetConfig cfg_;
    controller::TenantQuotaManager* quotas_ = nullptr;

    std::vector<StreamState> streams_;
    /// Per tenant: shared key sampler + precomputed key-rank → [0,1) hash.
    std::vector<std::unique_ptr<ZipfSampler>> keyZipf_;
    std::vector<std::vector<double>> keyHash_;
    std::vector<uint64_t> offeredPerTenant_;
    std::vector<uint64_t> ackedPerTenant_;
    std::map<uint64_t, SharedBuf> payloadCache_;

    sim::TimePoint lastTick_ = 0;
    uint64_t offered_ = 0;
    uint64_t sent_ = 0;
    uint64_t acked_ = 0;
    uint64_t errored_ = 0;
    uint64_t throttled_ = 0;
    uint64_t inflight_ = 0;
    uint64_t keyChecksum_ = 0;
    uint64_t epoch_ = 0;
    bool running_ = false;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pravega::workload
