// Deterministic Zipf(θ) rank sampler.
//
// The fleet workload model needs heavy-tailed skew in two places: which
// stream the next event belongs to (a few streams carry most of the fleet's
// traffic) and which routing key inside a stream it carries (a few keys
// dominate a stream, concentrating load on one segment — the fig13 hot-split
// trigger). Both are classic Zipf; the sampler here is a precomputed CDF
// with binary-search inversion, so sampling is pure (Rng in, rank out),
// byte-deterministic across runs, platforms, and core counts, and cheap
// enough to draw hundreds of thousands of samples per simulated second.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace pravega::workload {

class ZipfSampler {
public:
    /// Ranks 0..n-1 with P(rank=k) ∝ 1/(k+1)^theta. theta == 0 is uniform.
    ZipfSampler(uint64_t n, double theta) : theta_(theta) {
        cdf_.reserve(static_cast<size_t>(n));
        double sum = 0.0;
        for (uint64_t k = 0; k < n; ++k) {
            sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
            cdf_.push_back(sum);
        }
        total_ = sum;
    }

    uint64_t size() const { return cdf_.size(); }
    double theta() const { return theta_; }

    /// Draws a rank in [0, size()). Consumes exactly one Rng value.
    uint64_t sample(sim::Rng& rng) const {
        double u = rng.nextDouble() * total_;
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end()) return cdf_.size() - 1;
        return static_cast<uint64_t>(it - cdf_.begin());
    }

    /// Probability mass of `rank` (the share of traffic it owns).
    double weight(uint64_t rank) const {
        if (rank >= cdf_.size()) return 0.0;
        double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
        return (cdf_[rank] - lo) / total_;
    }

private:
    double theta_;
    double total_ = 0.0;
    std::vector<double> cdf_;
};

}  // namespace pravega::workload
