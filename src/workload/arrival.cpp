#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace pravega::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
// Below this mean Knuth inversion is cheap and exact; above it the normal
// approximation is within the tolerances any consumer of a count cares
// about (relative error < 1% at mean 32).
constexpr double kInversionCeiling = 32.0;
// Floor for MMPP dwell draws so a pathological exponential draw cannot
// degenerate arrivalsIn() into an unbounded segment walk.
constexpr sim::Duration kMinDwell = sim::msec(1);
}  // namespace

uint64_t poissonCount(double mean, sim::Rng& rng) {
    if (mean <= 0.0) return 0;
    if (mean < kInversionCeiling) {
        const double limit = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= rng.nextDouble();
        } while (p > limit);
        return k - 1;
    }
    // Box–Muller normal approximation, clamped at zero.
    double u1 = rng.nextDouble();
    double u2 = rng.nextDouble();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
    double value = mean + std::sqrt(mean) * z;
    if (value <= 0.0) return 0;
    return static_cast<uint64_t>(std::llround(value));
}

double DiurnalProfile::factorAt(sim::TimePoint t) const {
    if (period <= 0) return 1.0;
    double x = static_cast<double>(t) / static_cast<double>(period) + phase01;
    return minFactor + (1.0 - minFactor) * 0.5 * (1.0 - std::cos(2.0 * kPi * x));
}

ArrivalProcess::ArrivalProcess(Config cfg, uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
    if (cfg_.stateFactors.empty()) cfg_.stateFactors = {1.0};
    double sum = 0.0;
    for (double f : cfg_.stateFactors) sum += std::max(f, 0.0);
    // Cyclic chain with equal mean dwell per state → equal long-run
    // occupancy, so normalizing by the plain average keeps the long-run
    // mean rate at eventsPerSec.
    factorNorm_ = sum > 0 ? static_cast<double>(cfg_.stateFactors.size()) / sum : 1.0;
}

uint64_t ArrivalProcess::arrivalsIn(sim::TimePoint from, sim::Duration dt) {
    if (dt <= 0 || cfg_.eventsPerSec <= 0) return 0;
    const sim::TimePoint end = from + dt;

    if (cfg_.kind == Kind::Poisson) {
        double factor = cfg_.diurnal.factorAt(from + dt / 2);
        return poissonCount(cfg_.eventsPerSec * factor * sim::toSeconds(dt), rng_);
    }

    // MMPP: integrate rate over the state segments covering the window.
    uint64_t total = 0;
    sim::TimePoint t = from;
    if (stateUntil_ < 0) {
        stateUntil_ = t + std::max<sim::Duration>(
                              kMinDwell, sim::sec(rng_.nextExp(
                                             sim::toSeconds(cfg_.meanDwell))));
    }
    while (t < end) {
        sim::TimePoint segEnd = std::min(end, stateUntil_);
        if (segEnd > t) {
            double factor = factorNorm_ * cfg_.stateFactors[state_] *
                            cfg_.diurnal.factorAt(t + (segEnd - t) / 2);
            total += poissonCount(
                cfg_.eventsPerSec * factor * sim::toSeconds(segEnd - t), rng_);
            t = segEnd;
        }
        if (t >= stateUntil_) {
            state_ = (state_ + 1) % cfg_.stateFactors.size();
            stateUntil_ = t + std::max<sim::Duration>(
                                  kMinDwell, sim::sec(rng_.nextExp(
                                                 sim::toSeconds(cfg_.meanDwell))));
        }
    }
    return total;
}

double ArrivalProcess::currentRate(sim::TimePoint at) const {
    double factor = cfg_.diurnal.factorAt(at);
    if (cfg_.kind == Kind::Mmpp) factor *= factorNorm_ * cfg_.stateFactors[state_];
    return cfg_.eventsPerSec * factor;
}

}  // namespace pravega::workload
