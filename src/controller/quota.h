// Per-tenant ingest quotas (the noisy-neighbor guard of §3.1's
// multi-tenant fleets). A tenant is a scope; the manager windows the data
// plane's monotonic per-segment ingest counters, folds them to per-tenant
// rates via the controller's segment → stream map, and maintains a
// multiplicative-decrease / gradual-recovery throttle allowance per tenant:
// the fraction of its offered load a tenant may currently send. Enforcement
// is cooperative, as in real Pravega deployments where the control plane
// feeds backpressure hints to clients — the workload driver (or a client)
// consults `allowance()` before sending. Tenants without a quota are never
// throttled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "segmentstore/segment_store.h"
#include "sim/machine.h"

namespace pravega::obs {
class Counter;
}

namespace pravega::controller {

class TenantQuotaManager {
public:
    struct Config {
        sim::Duration pollInterval = sim::msec(500);
        /// Allowance regrowth per poll while under quota (multiplicative,
        /// clamped at 1.0) — fast enough to reclaim headroom, slow enough
        /// not to oscillate against the decrease path.
        double recoverFactor = 1.25;
        /// Throttle floor: a tenant is never squeezed below this fraction
        /// (quotas bound, they don't starve).
        double minAllowance = 0.05;
    };

    TenantQuotaManager(sim::Core& exec, Controller& controller,
                       std::vector<segmentstore::SegmentStore*> stores)
        : TenantQuotaManager(exec, controller, std::move(stores), Config{}) {}
    TenantQuotaManager(sim::Core& exec, Controller& controller,
                       std::vector<segmentstore::SegmentStore*> stores, Config cfg);
    ~TenantQuotaManager();

    /// Sets (or replaces) a tenant's ingest quota in bytes/sec.
    void setQuota(const std::string& tenant, double bytesPerSec);

    void start();
    void stop();

    /// Runs one evaluation immediately (test hook).
    void tickNow() { tick(); }

    /// Fraction of offered load `tenant` may send right now, in
    /// (minAllowance, 1]. 1.0 for unknown or unlimited tenants.
    double allowance(const std::string& tenant) const;

    /// Ingest rate (B/s) measured for `tenant` over the last poll window.
    double measuredRate(const std::string& tenant) const;

    /// Polls in which at least one tenant was over quota.
    uint64_t throttleTicks() const { return throttleTicks_; }

private:
    struct TenantState {
        double quotaBytesPerSec = 0.0;  // 0 = unlimited
        double allowance = 1.0;
        double rate = 0.0;
    };

    void armTimer();
    void tick();
    /// Tenant (scope) owning `segment`, cached; empty for internal segments.
    const std::string& tenantOf(SegmentId segment);

    sim::Core& exec_;
    Controller& controller_;
    std::vector<segmentstore::SegmentStore*> stores_;
    Config cfg_;

    std::map<std::string, TenantState> tenants_;
    std::map<SegmentId, std::string> segmentTenant_;
    std::map<SegmentId, uint64_t> prevBytes_;
    sim::TimePoint lastTick_ = 0;
    uint64_t throttleTicks_ = 0;
    uint64_t epoch_ = 0;
    bool running_ = false;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    obs::Counter& throttleCounter_;
};

}  // namespace pravega::controller
