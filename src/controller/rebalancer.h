// Load-aware container rebalancing (§3.1 / ROADMAP item 1).
//
// The static `cid % N` placement the cluster boots with is oblivious to
// load: under Zipf-skewed fleets a handful of hot streams land their
// containers on the same store and its CPU saturates while neighbors idle.
// This policy engine closes the loop: it windows each container's monotonic
// ingest counters (not the auto-scaler's destructive drainRates() feed),
// and when the max/min per-store load ratio exceeds a trigger it greedily
// moves the largest container that strictly narrows the gap from the
// hottest store to the coldest — bounded by a per-poll move budget, since
// every move is a graceful shutdown + recovery + WAL fencing cycle that
// fails in-flight appends. Hysteresis (trigger above target, idle floor,
// strict-improvement rule) keeps a balanced fleet at zero moves.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/coordination.h"
#include "segmentstore/segment_store.h"
#include "sim/machine.h"

namespace pravega::obs {
class Counter;
class Gauge;
}  // namespace pravega::obs

namespace pravega::controller {

class Rebalancer {
public:
    struct Config {
        sim::Duration pollInterval = sim::msec(500);
        /// Max container moves per poll (each move is a recovery cycle).
        int moveBudgetPerPoll = 2;
        /// Act only when max/min store load exceeds this (hysteresis gap
        /// above targetRatio prevents oscillation).
        double triggerRatio = 1.5;
        /// Stop moving once max/min is at or below this.
        double targetRatio = 1.2;
        /// Idle floor: never rebalance when the hottest store is below
        /// this ingest rate (B/s) — ratios on noise are meaningless.
        double minStoreBytesPerSec = 64.0 * 1024;
    };

    Rebalancer(sim::Core& exec, cluster::ContainerRegistry& registry,
               std::vector<segmentstore::SegmentStore*> stores)
        : Rebalancer(exec, registry, std::move(stores), Config{}) {}
    Rebalancer(sim::Core& exec, cluster::ContainerRegistry& registry,
               std::vector<segmentstore::SegmentStore*> stores, Config cfg);
    ~Rebalancer();

    void start();
    void stop();

    /// Runs one evaluation immediately (test hook; the poll timer calls
    /// the same path).
    void tickNow() { tick(); }

    uint64_t movesIssued() const { return moves_; }
    uint64_t ticksRun() const { return ticks_; }
    /// Max/min store load ratio observed by the most recent tick (0 until
    /// a tick has seen traffic above the idle floor).
    double lastRatio() const { return lastRatio_; }

    /// Per-store ingest (B/s) from the most recent tick, indexed like the
    /// constructor's store list.
    const std::vector<double>& lastStoreLoads() const { return lastLoads_; }

private:
    void armTimer();
    void tick();

    sim::Core& exec_;
    cluster::ContainerRegistry& registry_;
    std::vector<segmentstore::SegmentStore*> stores_;
    Config cfg_;

    std::map<uint32_t, uint64_t> prevBytes_;  // container → last cum total
    std::vector<double> lastLoads_;
    sim::TimePoint lastTick_ = 0;
    double lastRatio_ = 0.0;
    uint64_t ticks_ = 0;
    uint64_t moves_ = 0;
    uint64_t epoch_ = 0;
    bool running_ = false;
    /// Cleared on destruction; the poll timer checks it first (the timer
    /// may already be queued when the rebalancer is destroyed).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    obs::Counter& movesCounter_;
    obs::Counter& ticksCounter_;
    obs::Gauge& ratioGauge_;
};

}  // namespace pravega::controller
