// Stream metadata: epochs, key-space ranges, and the successor graph that
// orders segments across scaling events (§3.1–§3.2).
//
// A stream's history is a sequence of epochs; each scale event seals some
// segments of the current epoch and replaces them with successors covering
// exactly the same key-space range. The metadata built here is what lets
// writers and readers preserve per-key order across scaling (Fig 2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "segmentstore/types.h"

namespace pravega::controller {

using segmentstore::SegmentId;

enum class ScaleType : uint8_t {
    Fixed = 0,         // never auto-scales
    ByRateEvents = 1,  // target events/second per segment
    ByRateBytes = 2,   // target bytes/second per segment
};

struct ScalingPolicy {
    ScaleType type = ScaleType::Fixed;
    double targetRate = 0;  // events/s or bytes/s depending on type
    int scaleFactor = 2;    // segments a hot segment splits into
    int minSegments = 1;
};

enum class RetentionType : uint8_t { None = 0, Size = 1, Time = 2 };

struct RetentionPolicy {
    RetentionType type = RetentionType::None;
    uint64_t limitBytes = 0;       // for Size
    sim::Duration limitTime = 0;   // for Time
};

struct StreamConfig {
    int initialSegments = 1;
    ScalingPolicy scaling;
    RetentionPolicy retention;
};

/// One segment's entry in an epoch: the key-space range it owns.
struct SegmentRecord {
    SegmentId id = 0;
    double keyStart = 0.0;
    double keyEnd = 1.0;  // exclusive

    bool covers(double h) const { return keyStart <= h && h < keyEnd; }
    friend bool operator==(const SegmentRecord&, const SegmentRecord&) = default;
};

struct EpochRecord {
    uint32_t epoch = 0;
    std::vector<SegmentRecord> segments;  // sorted by keyStart
};

/// A successor segment together with the sealed predecessors it replaces —
/// the reader needs the predecessor list to know when it may start (§3.3).
struct SuccessorRecord {
    SegmentRecord segment;
    std::vector<SegmentId> predecessors;
};

class StreamRecord {
public:
    StreamRecord() = default;
    StreamRecord(std::string scopedName, StreamConfig config, uint32_t firstSegmentNumber);

    const std::string& name() const { return name_; }
    const StreamConfig& config() const { return config_; }
    void updateConfig(const StreamConfig& cfg) { config_ = cfg; }

    const EpochRecord& currentEpoch() const { return epochs_.back(); }
    const std::vector<EpochRecord>& epochs() const { return epochs_; }
    bool sealedForAppend() const { return sealed_; }
    void markSealed() { sealed_ = true; }

    /// Segment of the current epoch owning hash `h` ∈ [0,1).
    Result<SegmentRecord> segmentForKey(double h) const;

    Result<SegmentRecord> findSegment(SegmentId id) const;

    /// Validates a scale request: `toSeal` must be current-epoch segments
    /// and `newRanges` must exactly cover their combined key space.
    Status validateScale(const std::vector<SegmentId>& toSeal,
                         const std::vector<std::pair<double, double>>& newRanges) const;

    /// Phase 1 of a scale event: validates and allocates the successor
    /// records WITHOUT committing the epoch. The controller creates the
    /// new segments and seals the old ones between plan and commit, so no
    /// writer can see successors before predecessors are sealed (Fig 2b).
    Result<std::vector<SegmentRecord>> planScale(
        const std::vector<SegmentId>& toSeal,
        const std::vector<std::pair<double, double>>& newRanges, uint32_t& nextSegmentNumber);

    /// Phase 2: commits the next epoch and the successor graph.
    Status commitScale(const std::vector<SegmentId>& toSeal,
                       const std::vector<SegmentRecord>& created);

    /// plan + commit in one step (tests and single-actor callers).
    Result<std::vector<SegmentRecord>> applyScale(
        const std::vector<SegmentId>& toSeal,
        const std::vector<std::pair<double, double>>& newRanges, uint32_t& nextSegmentNumber);

    /// Successors of a sealed segment with their predecessor lists; empty
    /// when the segment is still active in the current epoch.
    std::vector<SuccessorRecord> successorsOf(SegmentId id) const;

    /// All segments ever created (for deletes / historical reads).
    std::vector<SegmentRecord> allSegments() const;

    uint32_t scaleEvents() const { return static_cast<uint32_t>(epochs_.size()) - 1; }

    void serialize(BinaryWriter& w) const;
    static Result<StreamRecord> deserialize(BinaryReader& r);

private:
    std::string name_;
    StreamConfig config_;
    std::vector<EpochRecord> epochs_;
    std::map<SegmentId, std::vector<SuccessorRecord>> successors_;
    bool sealed_ = false;
};

}  // namespace pravega::controller
