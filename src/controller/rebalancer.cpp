#include "controller/rebalancer.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace pravega::controller {

namespace {
constexpr const char* kLog = "rebalancer";
}

Rebalancer::Rebalancer(sim::Core& exec, cluster::ContainerRegistry& registry,
                       std::vector<segmentstore::SegmentStore*> stores, Config cfg)
    : exec_(exec),
      registry_(registry),
      stores_(std::move(stores)),
      cfg_(cfg),
      movesCounter_(exec.metrics().counter("ctrl.rebalance.moves")),
      ticksCounter_(exec.metrics().counter("ctrl.rebalance.ticks")),
      ratioGauge_(exec.metrics().gauge("ctrl.rebalance.load_ratio")) {}

Rebalancer::~Rebalancer() {
    stop();
    *alive_ = false;
}

void Rebalancer::start() {
    if (running_) return;
    running_ = true;
    lastTick_ = exec_.now();
    armTimer();
}

void Rebalancer::stop() {
    running_ = false;
    ++epoch_;
}

void Rebalancer::armTimer() {
    uint64_t epoch = ++epoch_;
    exec_.scheduleWeak(cfg_.pollInterval, [this, alive = alive_, epoch]() {
        if (!*alive || !running_ || epoch != epoch_) return;
        tick();
        armTimer();
    });
}

void Rebalancer::tick() {
    double windowSec = sim::toSeconds(exec_.now() - lastTick_);
    lastTick_ = exec_.now();
    if (windowSec <= 0 || stores_.size() < 2) return;
    ++ticks_;
    ticksCounter_.inc();

    // Window each container's monotonic ingest counter and attribute the
    // delta to its current owner. A cum total below the previous snapshot
    // means the container was recreated (moved) — count the fresh total.
    std::map<segmentstore::SegmentStore*, size_t> storeIndex;
    for (size_t i = 0; i < stores_.size(); ++i) storeIndex[stores_[i]] = i;
    std::vector<uint64_t> load(stores_.size(), 0);
    std::map<uint32_t, uint64_t> delta;
    std::map<uint32_t, size_t> ownerIdx;
    for (uint32_t c = 0; c < registry_.containerCount(); ++c) {
        auto* owner = registry_.ownerOf(c);
        if (owner == nullptr) continue;
        auto* container = owner->container(c);
        if (container == nullptr) continue;
        uint64_t cum = container->totalBytesIn();
        uint64_t prev = prevBytes_[c];
        uint64_t d = cum >= prev ? cum - prev : cum;
        prevBytes_[c] = cum;
        auto it = storeIndex.find(owner);
        if (it == storeIndex.end()) continue;  // not a managed store
        delta[c] = d;
        ownerIdx[c] = it->second;
        load[it->second] += d;
    }

    lastLoads_.assign(stores_.size(), 0.0);
    for (size_t i = 0; i < stores_.size(); ++i) {
        lastLoads_[i] = static_cast<double>(load[i]) / windowSec;
    }

    auto hottest = [&]() {
        return static_cast<size_t>(
            std::max_element(load.begin(), load.end()) - load.begin());
    };
    auto coldest = [&]() {
        return static_cast<size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
    };

    size_t h = hottest();
    if (lastLoads_[h] < cfg_.minStoreBytesPerSec) {
        lastRatio_ = 0.0;
        ratioGauge_.set(0.0);
        return;  // fleet is idle; ratios would be noise
    }
    size_t c = coldest();
    double ratio =
        static_cast<double>(load[h]) / static_cast<double>(std::max<uint64_t>(load[c], 1));
    lastRatio_ = ratio;
    ratioGauge_.set(ratio);
    if (ratio <= cfg_.triggerRatio) return;

    int moved = 0;
    while (moved < cfg_.moveBudgetPerPoll) {
        h = hottest();
        c = coldest();
        if (static_cast<double>(load[h]) <=
            cfg_.targetRatio * static_cast<double>(std::max<uint64_t>(load[c], 1))) {
            break;
        }
        // Largest container, on ANY store still above target relative to
        // the coldest, whose load strictly narrows that donor's gap (moving
        // anything bigger just swaps which store is hot). Donating from
        // beyond the hottest store matters when the hottest holds a single
        // indivisible hot container: the rest of the fleet can still be
        // flattened around it.
        int best = -1;
        uint64_t bestDelta = 0;
        size_t bestDonor = 0;
        for (const auto& [cid, d] : delta) {
            size_t o = ownerIdx[cid];
            if (o == c || d == 0) continue;
            if (static_cast<double>(load[o]) <=
                cfg_.targetRatio * static_cast<double>(std::max<uint64_t>(load[c], 1))) {
                continue;  // donor already balanced against the coldest
            }
            if (d >= load[o] - load[c]) continue;
            if (d > bestDelta) {
                best = static_cast<int>(cid);
                bestDelta = d;
                bestDonor = o;
            }
        }
        if (best < 0) break;  // only indivisible hot containers — nothing helps
        uint32_t cid = static_cast<uint32_t>(best);
        Status s = registry_.moveContainer(cid, stores_[c]);
        if (!s) {
            PLOG_INFO(kLog, "move of container %u failed: %s", cid, s.message().c_str());
            break;
        }
        PLOG_INFO(kLog, "moved container %u store[%zu] -> store[%zu] (%.0f KB in window)",
                  cid, bestDonor, c, static_cast<double>(bestDelta) / 1024.0);
        load[bestDonor] -= bestDelta;
        load[c] += bestDelta;
        ownerIdx[cid] = c;
        ++moves_;
        movesCounter_.inc();
        ++moved;
    }
}

}  // namespace pravega::controller
