#include "controller/controller.h"

#include <algorithm>

#include "common/logging.h"

namespace pravega::controller {

namespace {
constexpr const char* kLog = "controller";
constexpr const char* kStreamKeyPrefix = "streams/";
}  // namespace

Controller::Controller(sim::Core& exec, cluster::ContainerRegistry& registry, Config cfg)
    : exec_(exec), registry_(registry), cfg_(cfg) {
    retentionTick();
}

Controller::~Controller() {
    stopped_ = true;
    *alive_ = false;
}

segmentstore::SegmentContainer* Controller::containerOf(SegmentId segment) const {
    uint32_t cid = pravega::containerFor(segment, registry_.containerCount());
    return registry_.containerFor(cid);
}

Status Controller::createScope(const std::string& scope) {
    if (scopes_.contains(scope)) return Status(Err::AlreadyExists, scope);
    scopes_[scope] = true;
    return Status::ok();
}

sim::Future<sim::Unit> Controller::createStream(const std::string& scope,
                                                const std::string& stream, StreamConfig config) {
    using FutUnit = sim::Future<sim::Unit>;
    if (!scopes_.contains(scope)) return FutUnit::failed(Status(Err::NotFound, "no such scope"));
    std::string scopedName = scope + "/" + stream;
    if (streams_.contains(scopedName)) {
        return FutUnit::failed(Status(Err::AlreadyExists, scopedName));
    }
    StreamRecord rec(scopedName, config, nextSegmentNumber_);
    nextSegmentNumber_ += static_cast<uint32_t>(rec.currentEpoch().segments.size());
    auto records = rec.currentEpoch().segments;
    for (const auto& seg : records) segmentToStream_[seg.id] = scopedName;
    streams_.emplace(scopedName, std::move(rec));
    persist(scopedName);
    return createSegmentObjects(scopedName, records);
}

sim::Future<sim::Unit> Controller::createSegmentObjects(
    const std::string& scopedName, const std::vector<SegmentRecord>& records) {
    std::vector<sim::Future<sim::Unit>> futures;
    for (const auto& seg : records) {
        auto* container = containerOf(seg.id);
        if (!container) {
            return sim::Future<sim::Unit>::failed(
                Status(Err::ContainerOffline, "no owner for container"));
        }
        char name[128];
        std::snprintf(name, sizeof(name), "%s/segment-%u.%u", scopedName.c_str(),
                      segmentstore::epochOf(seg.id), segmentstore::numberOf(seg.id));
        futures.push_back(container->createSegment(seg.id, name));
    }
    auto all = futures;
    return sim::whenAll(futures).then([all](const sim::Unit&) { return sim::Unit{}; });
}

sim::Future<sim::Unit> Controller::sealStream(const std::string& scopedName) {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) {
        return sim::Future<sim::Unit>::failed(Status(Err::NotFound, scopedName));
    }
    it->second.markSealed();
    std::vector<sim::Future<sim::Unit>> futures;
    for (const auto& seg : it->second.currentEpoch().segments) {
        if (auto* c = containerOf(seg.id)) futures.push_back(c->seal(seg.id));
    }
    persist(scopedName);
    return sim::whenAll(futures).then([](const sim::Unit&) { return sim::Unit{}; });
}

sim::Future<sim::Unit> Controller::deleteStream(const std::string& scopedName) {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) {
        return sim::Future<sim::Unit>::failed(Status(Err::NotFound, scopedName));
    }
    if (!it->second.sealedForAppend()) {
        return sim::Future<sim::Unit>::failed(
            Status(Err::InvalidArgument, "stream must be sealed before delete"));
    }
    std::vector<sim::Future<sim::Unit>> futures;
    for (const auto& seg : it->second.allSegments()) {
        segmentToStream_.erase(seg.id);
        if (auto* c = containerOf(seg.id)) futures.push_back(c->deleteSegment(seg.id));
    }
    streams_.erase(it);
    if (cfg_.persistMetadata) {
        if (auto* meta = registry_.containerFor(cfg_.metadataContainer)) {
            std::vector<segmentstore::TableUpdate> batch(1);
            batch[0].key = kStreamKeyPrefix + scopedName;
            batch[0].value = std::nullopt;  // removal
            meta->tableUpdate(meta->systemTableSegment(), std::move(batch));
        }
    }
    return sim::whenAll(futures).then([](const sim::Unit&) { return sim::Unit{}; });
}

sim::Future<sim::Unit> Controller::scaleStream(
    const std::string& scopedName, const std::vector<SegmentId>& toSeal,
    const std::vector<std::pair<double, double>>& newRanges) {
    using FutUnit = sim::Future<sim::Unit>;
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return FutUnit::failed(Status(Err::NotFound, scopedName));
    if (it->second.sealedForAppend()) return FutUnit::failed(Status(Err::Sealed, scopedName));
    if (scaling_.contains(scopedName)) {
        return FutUnit::failed(Status(Err::Throttled, "scale already in progress"));
    }

    auto planned = it->second.planScale(toSeal, newRanges, nextSegmentNumber_);
    if (!planned) return FutUnit::failed(planned.status());
    auto created = planned.value();
    scaling_[scopedName] = true;

    // Fig 2b protocol: create successor segment objects first, then seal
    // the predecessors, and only then make the new epoch visible.
    sim::Promise<sim::Unit> done;
    auto fut = done.future();
    createSegmentObjects(scopedName, created)
        .onComplete([this, alive = alive_, scopedName, toSeal, created,
                     done](const Result<sim::Unit>& r) mutable {
            if (!*alive) return;
            if (!r.isOk()) {
                scaling_.erase(scopedName);
                done.setError(r.status());
                return;
            }
            std::vector<sim::Future<sim::Unit>> seals;
            for (SegmentId id : toSeal) {
                if (auto* c = containerOf(id)) seals.push_back(c->seal(id));
            }
            sim::whenAll(seals).onComplete([this, alive, scopedName, toSeal, created,
                                            done](const Result<sim::Unit>&) mutable {
                if (!*alive) return;
                auto sit = streams_.find(scopedName);
                if (sit == streams_.end()) {
                    scaling_.erase(scopedName);
                    done.setError(Err::NotFound, "stream deleted during scale");
                    return;
                }
                Status committed = sit->second.commitScale(toSeal, created);
                scaling_.erase(scopedName);
                if (!committed) {
                    done.setError(committed);
                    return;
                }
                for (const auto& seg : created) segmentToStream_[seg.id] = scopedName;
                persist(scopedName);
                PLOG_INFO(kLog, "scaled %s: sealed %zu, created %zu (epoch %u)",
                          scopedName.c_str(), toSeal.size(), created.size(),
                          sit->second.currentEpoch().epoch);
                done.setValue(sim::Unit{});
            });
        });
    return fut;
}

sim::Future<sim::Unit> Controller::truncateStream(const std::string& scopedName,
                                                  const std::map<SegmentId, int64_t>& cut) {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) {
        return sim::Future<sim::Unit>::failed(Status(Err::NotFound, scopedName));
    }
    std::vector<sim::Future<sim::Unit>> futures;
    for (const auto& [segment, offset] : cut) {
        if (auto* c = containerOf(segment)) futures.push_back(c->truncate(segment, offset));
    }
    return sim::whenAll(futures).then([](const sim::Unit&) { return sim::Unit{}; });
}

Result<std::vector<SegmentUri>> Controller::getCurrentSegments(
    const std::string& scopedName) const {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return Status(Err::NotFound, scopedName);
    std::vector<SegmentUri> out;
    for (const auto& seg : it->second.currentEpoch().segments) {
        auto uri = uriOf(seg.id);
        if (!uri) return uri.status();
        out.push_back(uri.value());
    }
    return out;
}

Result<std::vector<SegmentUri>> Controller::getHeadSegments(const std::string& scopedName) const {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return Status(Err::NotFound, scopedName);
    std::vector<SegmentUri> out;
    for (const auto& seg : it->second.epochs().front().segments) {
        auto uri = uriOf(seg.id);
        if (!uri) return uri.status();
        out.push_back(uri.value());
    }
    return out;
}

Result<SegmentUri> Controller::getSegmentForKey(const std::string& scopedName,
                                                double keyHash) const {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return Status(Err::NotFound, scopedName);
    auto seg = it->second.segmentForKey(keyHash);
    if (!seg) return seg.status();
    return uriOf(seg.value().id);
}

Result<std::vector<SuccessorRecord>> Controller::getSuccessors(SegmentId segment) const {
    auto sit = segmentToStream_.find(segment);
    if (sit == segmentToStream_.end()) return Status(Err::NotFound, "unknown segment");
    auto it = streams_.find(sit->second);
    if (it == streams_.end()) return Status(Err::NotFound, "stream deleted");
    return it->second.successorsOf(segment);
}

Result<SegmentUri> Controller::createInternalSegment(const std::string& name, bool isTable) {
    SegmentId id = segmentstore::makeSegmentId(0, nextSegmentNumber_++);
    SegmentRecord rec{id, 0.0, 1.0};
    internalSegments_[id] = rec;
    SegmentUri uri;
    uri.record = rec;
    uri.containerId = pravega::containerFor(id, registry_.containerCount());
    uri.store = registry_.ownerOf(uri.containerId);
    if (!uri.store) return Status(Err::ContainerOffline, "container unassigned");
    auto* container = uri.store->container(uri.containerId);
    if (!container) return Status(Err::ContainerOffline, "container offline");
    container->createSegment(id, name, isTable);
    return uri;
}

Result<SegmentUri> Controller::uriOf(SegmentId segment) const {
    auto iit = internalSegments_.find(segment);
    if (iit != internalSegments_.end()) {
        SegmentUri uri;
        uri.record = iit->second;
        uri.containerId = pravega::containerFor(segment, registry_.containerCount());
        uri.store = registry_.ownerOf(uri.containerId);
        if (!uri.store) return Status(Err::ContainerOffline, "container unassigned");
        return uri;
    }
    auto sit = segmentToStream_.find(segment);
    if (sit == segmentToStream_.end()) return Status(Err::NotFound, "unknown segment");
    auto it = streams_.find(sit->second);
    if (it == streams_.end()) return Status(Err::NotFound, "stream deleted");
    auto rec = it->second.findSegment(segment);
    if (!rec) return rec.status();
    SegmentUri uri;
    uri.record = rec.value();
    uri.containerId = pravega::containerFor(segment, registry_.containerCount());
    uri.store = registry_.ownerOf(uri.containerId);
    if (!uri.store) return Status(Err::ContainerOffline, "container unassigned");
    return uri;
}

Result<std::string> Controller::streamOf(SegmentId segment) const {
    auto it = segmentToStream_.find(segment);
    if (it == segmentToStream_.end()) return Status(Err::NotFound, "unknown segment");
    return it->second;
}

Result<const StreamRecord*> Controller::getStream(const std::string& scopedName) const {
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return Status(Err::NotFound, scopedName);
    return &it->second;
}

uint32_t Controller::scaleEventCount(const std::string& scopedName) const {
    auto it = streams_.find(scopedName);
    return it == streams_.end() ? 0 : it->second.scaleEvents();
}

void Controller::persist(const std::string& scopedName) {
    if (!cfg_.persistMetadata) return;
    auto it = streams_.find(scopedName);
    if (it == streams_.end()) return;
    auto* meta = registry_.containerFor(cfg_.metadataContainer);
    if (!meta) return;
    Bytes value;
    BinaryWriter w(value);
    it->second.serialize(w);
    std::vector<segmentstore::TableUpdate> batch(1);
    batch[0].key = kStreamKeyPrefix + scopedName;
    batch[0].value = std::move(value);
    meta->tableUpdate(meta->systemTableSegment(), std::move(batch));
}

// ---- retention ---------------------------------------------------------

void Controller::retentionTick() {
    uint64_t epoch = ++retentionEpoch_;
    exec_.scheduleWeak(cfg_.retentionInterval, [this, alive = alive_, epoch]() {
        if (!*alive || stopped_ || epoch != retentionEpoch_) return;
        for (auto& [name, rec] : streams_) {
            if (rec.config().retention.type == RetentionType::Size) {
                enforceRetention(name, rec);
            }
        }
        retentionTick();
    });
}

void Controller::enforceRetention(const std::string& scopedName, StreamRecord& rec) {
    // Size-based retention (§2.1): truncate from the head until within the
    // byte budget. Oldest data lives in the earliest epochs' segments.
    uint64_t limit = rec.config().retention.limitBytes;
    struct SegSize {
        SegmentId id;
        int64_t startOffset;
        int64_t length;  // readable length
    };
    std::vector<SegSize> sizes;
    uint64_t total = 0;
    for (const auto& seg : rec.allSegments()) {
        auto* c = containerOf(seg.id);
        if (!c) continue;
        auto info = c->getInfo(seg.id);
        if (!info) continue;
        int64_t retained = info.value().length - info.value().startOffset;
        total += static_cast<uint64_t>(std::max<int64_t>(retained, 0));
        sizes.push_back({seg.id, info.value().startOffset, info.value().length});
    }
    if (total <= limit) return;
    uint64_t excess = total - limit;
    std::map<SegmentId, int64_t> cut;
    // Segments are enumerated oldest-epoch first by allSegments(); trim in
    // that order so the oldest data goes first.
    for (const auto& s : sizes) {
        if (excess == 0) break;
        uint64_t available = static_cast<uint64_t>(std::max<int64_t>(s.length - s.startOffset, 0));
        uint64_t take = std::min(available, excess);
        if (take > 0) {
            cut[s.id] = s.startOffset + static_cast<int64_t>(take);
            excess -= take;
        }
    }
    if (!cut.empty()) {
        PLOG_INFO(kLog, "retention truncating %s by %zu segments", scopedName.c_str(),
                  cut.size());
        truncateStream(scopedName, cut);
    }
}

}  // namespace pravega::controller
