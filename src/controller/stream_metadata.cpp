#include "controller/stream_metadata.h"

#include <algorithm>
#include <cmath>

namespace pravega::controller {

namespace {
constexpr double kEps = 1e-9;

bool sameBoundary(double a, double b) { return std::abs(a - b) < kEps; }
}  // namespace

StreamRecord::StreamRecord(std::string scopedName, StreamConfig config,
                           uint32_t firstSegmentNumber)
    : name_(std::move(scopedName)), config_(config) {
    EpochRecord epoch0;
    epoch0.epoch = 0;
    int n = std::max(1, config_.initialSegments);
    for (int i = 0; i < n; ++i) {
        SegmentRecord rec;
        rec.id = segmentstore::makeSegmentId(0, firstSegmentNumber + static_cast<uint32_t>(i));
        rec.keyStart = static_cast<double>(i) / n;
        rec.keyEnd = static_cast<double>(i + 1) / n;
        epoch0.segments.push_back(rec);
    }
    epochs_.push_back(std::move(epoch0));
}

Result<SegmentRecord> StreamRecord::segmentForKey(double h) const {
    for (const auto& seg : currentEpoch().segments) {
        if (seg.covers(h)) return seg;
    }
    return Status(Err::NotFound, "no segment covers key hash");
}

Result<SegmentRecord> StreamRecord::findSegment(SegmentId id) const {
    for (const auto& epoch : epochs_) {
        for (const auto& seg : epoch.segments) {
            if (seg.id == id) return seg;
        }
    }
    return Status(Err::NotFound, "unknown segment");
}

Status StreamRecord::validateScale(
    const std::vector<SegmentId>& toSeal,
    const std::vector<std::pair<double, double>>& newRanges) const {
    if (toSeal.empty() || newRanges.empty()) {
        return Status(Err::InvalidArgument, "empty scale request");
    }
    // Collect the sealed segments' ranges from the CURRENT epoch only.
    std::vector<std::pair<double, double>> sealedRanges;
    for (SegmentId id : toSeal) {
        auto it = std::find_if(currentEpoch().segments.begin(), currentEpoch().segments.end(),
                               [&](const SegmentRecord& s) { return s.id == id; });
        if (it == currentEpoch().segments.end()) {
            return Status(Err::InvalidArgument, "segment not in current epoch");
        }
        sealedRanges.emplace_back(it->keyStart, it->keyEnd);
    }
    std::sort(sealedRanges.begin(), sealedRanges.end());
    // Sealed ranges must be contiguous (a single covered interval per the
    // merge/split semantics of Fig 2a) — actually Pravega allows sealing
    // disjoint sets; we require each new range to fall inside the sealed
    // union and the totals to match.
    double sealedTotal = 0;
    for (auto& [a, b] : sealedRanges) sealedTotal += b - a;

    auto ranges = newRanges;
    std::sort(ranges.begin(), ranges.end());
    double newTotal = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
        auto [a, b] = ranges[i];
        if (b <= a + kEps) return Status(Err::InvalidArgument, "empty key range");
        if (i > 0 && ranges[i - 1].second > a + kEps) {
            return Status(Err::InvalidArgument, "overlapping new ranges");
        }
        newTotal += b - a;
        bool inside = std::any_of(sealedRanges.begin(), sealedRanges.end(), [&](auto& sr) {
            return sr.first <= a + kEps && b <= sr.second + kEps;
        });
        // Merges span multiple sealed ranges; accept if covered by the
        // union instead of a single range.
        if (!inside) {
            double covered = 0;
            for (auto& [sa, sb] : sealedRanges) {
                double lo = std::max(sa, a), hi = std::min(sb, b);
                if (hi > lo) covered += hi - lo;
            }
            if (!sameBoundary(covered, b - a)) {
                return Status(Err::InvalidArgument, "new range outside sealed key space");
            }
        }
    }
    if (!sameBoundary(sealedTotal, newTotal)) {
        return Status(Err::InvalidArgument, "new ranges do not cover sealed key space");
    }
    return Status::ok();
}

Result<std::vector<SegmentRecord>> StreamRecord::planScale(
    const std::vector<SegmentId>& toSeal,
    const std::vector<std::pair<double, double>>& newRanges, uint32_t& nextSegmentNumber) {
    Status valid = validateScale(toSeal, newRanges);
    if (!valid) return valid;

    uint32_t newEpochNum = currentEpoch().epoch + 1;
    std::vector<SegmentRecord> created;
    for (const auto& [a, b] : newRanges) {
        SegmentRecord rec;
        rec.id = segmentstore::makeSegmentId(newEpochNum, nextSegmentNumber++);
        rec.keyStart = a;
        rec.keyEnd = b;
        created.push_back(rec);
    }
    return created;
}

Status StreamRecord::commitScale(const std::vector<SegmentId>& toSeal,
                                 const std::vector<SegmentRecord>& created) {
    EpochRecord next;
    next.epoch = currentEpoch().epoch + 1;
    for (const auto& seg : currentEpoch().segments) {
        if (std::find(toSeal.begin(), toSeal.end(), seg.id) == toSeal.end()) {
            next.segments.push_back(seg);
        }
    }
    for (const auto& rec : created) next.segments.push_back(rec);
    std::sort(next.segments.begin(), next.segments.end(),
              [](const SegmentRecord& x, const SegmentRecord& y) {
                  return x.keyStart < y.keyStart;
              });

    // Successor graph: a new segment succeeds every sealed segment whose
    // range overlaps it; its predecessor list is exactly those segments.
    for (SegmentId sealedId : toSeal) {
        auto sealedRec = findSegment(sealedId);
        std::vector<SuccessorRecord> succ;
        for (const auto& rec : created) {
            double lo = std::max(sealedRec.value().keyStart, rec.keyStart);
            double hi = std::min(sealedRec.value().keyEnd, rec.keyEnd);
            if (hi > lo + kEps) {
                SuccessorRecord s;
                s.segment = rec;
                for (SegmentId other : toSeal) {
                    auto otherRec = findSegment(other);
                    double l2 = std::max(otherRec.value().keyStart, rec.keyStart);
                    double h2 = std::min(otherRec.value().keyEnd, rec.keyEnd);
                    if (h2 > l2 + kEps) s.predecessors.push_back(other);
                }
                succ.push_back(std::move(s));
            }
        }
        successors_[sealedId] = std::move(succ);
    }

    epochs_.push_back(std::move(next));
    return Status::ok();
}

Result<std::vector<SegmentRecord>> StreamRecord::applyScale(
    const std::vector<SegmentId>& toSeal,
    const std::vector<std::pair<double, double>>& newRanges, uint32_t& nextSegmentNumber) {
    auto created = planScale(toSeal, newRanges, nextSegmentNumber);
    if (!created) return created;
    Status committed = commitScale(toSeal, created.value());
    if (!committed) return committed;
    return created;
}

std::vector<SuccessorRecord> StreamRecord::successorsOf(SegmentId id) const {
    auto it = successors_.find(id);
    return it == successors_.end() ? std::vector<SuccessorRecord>{} : it->second;
}

std::vector<SegmentRecord> StreamRecord::allSegments() const {
    std::vector<SegmentRecord> out;
    for (const auto& epoch : epochs_) {
        for (const auto& seg : epoch.segments) {
            if (std::find_if(out.begin(), out.end(), [&](const SegmentRecord& s) {
                    return s.id == seg.id;
                }) == out.end()) {
                out.push_back(seg);
            }
        }
    }
    return out;
}

void StreamRecord::serialize(BinaryWriter& w) const {
    w.str(name_);
    w.u8(static_cast<uint8_t>(config_.scaling.type));
    w.f64(config_.scaling.targetRate);
    w.u32(static_cast<uint32_t>(config_.scaling.scaleFactor));
    w.u32(static_cast<uint32_t>(config_.scaling.minSegments));
    w.u8(static_cast<uint8_t>(config_.retention.type));
    w.u64(config_.retention.limitBytes);
    w.i64(config_.retention.limitTime);
    w.u32(static_cast<uint32_t>(config_.initialSegments));
    w.u8(sealed_ ? 1 : 0);
    w.varint(epochs_.size());
    for (const auto& epoch : epochs_) {
        w.u32(epoch.epoch);
        w.varint(epoch.segments.size());
        for (const auto& seg : epoch.segments) {
            w.u64(seg.id);
            w.f64(seg.keyStart);
            w.f64(seg.keyEnd);
        }
    }
    w.varint(successors_.size());
    for (const auto& [id, succ] : successors_) {
        w.u64(id);
        w.varint(succ.size());
        for (const auto& s : succ) {
            w.u64(s.segment.id);
            w.f64(s.segment.keyStart);
            w.f64(s.segment.keyEnd);
            w.varint(s.predecessors.size());
            for (SegmentId p : s.predecessors) w.u64(p);
        }
    }
}

Result<StreamRecord> StreamRecord::deserialize(BinaryReader& r) {
    StreamRecord rec;
    auto name = r.str();
    if (!name) return name.status();
    rec.name_ = std::move(name.value());

    auto scaleType = r.u8();
    auto targetRate = r.f64();
    auto scaleFactor = r.u32();
    auto minSegments = r.u32();
    auto retType = r.u8();
    auto limitBytes = r.u64();
    auto limitTime = r.i64();
    auto initialSegments = r.u32();
    auto sealed = r.u8();
    auto epochCount = r.varint();
    if (!scaleType || !targetRate || !scaleFactor || !minSegments || !retType || !limitBytes ||
        !limitTime || !initialSegments || !sealed || !epochCount) {
        return Status(Err::IoError, "corrupt stream record");
    }
    rec.config_.scaling.type = static_cast<ScaleType>(scaleType.value());
    rec.config_.scaling.targetRate = targetRate.value();
    rec.config_.scaling.scaleFactor = static_cast<int>(scaleFactor.value());
    rec.config_.scaling.minSegments = static_cast<int>(minSegments.value());
    rec.config_.retention.type = static_cast<RetentionType>(retType.value());
    rec.config_.retention.limitBytes = limitBytes.value();
    rec.config_.retention.limitTime = limitTime.value();
    rec.config_.initialSegments = static_cast<int>(initialSegments.value());
    rec.sealed_ = sealed.value() != 0;

    for (uint64_t i = 0; i < epochCount.value(); ++i) {
        EpochRecord epoch;
        auto num = r.u32();
        auto segCount = r.varint();
        if (!num || !segCount) return Status(Err::IoError, "corrupt epoch record");
        epoch.epoch = num.value();
        for (uint64_t j = 0; j < segCount.value(); ++j) {
            auto id = r.u64();
            auto ks = r.f64();
            auto ke = r.f64();
            if (!id || !ks || !ke) return Status(Err::IoError, "corrupt segment record");
            epoch.segments.push_back(SegmentRecord{id.value(), ks.value(), ke.value()});
        }
        rec.epochs_.push_back(std::move(epoch));
    }
    auto succCount = r.varint();
    if (!succCount) return succCount.status();
    for (uint64_t i = 0; i < succCount.value(); ++i) {
        auto id = r.u64();
        auto n = r.varint();
        if (!id || !n) return Status(Err::IoError, "corrupt successor record");
        std::vector<SuccessorRecord> succ;
        for (uint64_t j = 0; j < n.value(); ++j) {
            SuccessorRecord s;
            auto sid = r.u64();
            auto ks = r.f64();
            auto ke = r.f64();
            auto pc = r.varint();
            if (!sid || !ks || !ke || !pc) return Status(Err::IoError, "corrupt successor");
            s.segment = SegmentRecord{sid.value(), ks.value(), ke.value()};
            for (uint64_t k = 0; k < pc.value(); ++k) {
                auto p = r.u64();
                if (!p) return p.status();
                s.predecessors.push_back(p.value());
            }
            succ.push_back(std::move(s));
        }
        rec.successors_[id.value()] = std::move(succ);
    }
    return rec;
}

}  // namespace pravega::controller
