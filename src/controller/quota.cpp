#include "controller/quota.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace pravega::controller {

namespace {
constexpr const char* kLog = "quota";
const std::string kNoTenant;
}  // namespace

TenantQuotaManager::TenantQuotaManager(sim::Core& exec, Controller& controller,
                                       std::vector<segmentstore::SegmentStore*> stores,
                                       Config cfg)
    : exec_(exec),
      controller_(controller),
      stores_(std::move(stores)),
      cfg_(cfg),
      throttleCounter_(exec.metrics().counter("ctrl.quota.throttles")) {}

TenantQuotaManager::~TenantQuotaManager() {
    stop();
    *alive_ = false;
}

void TenantQuotaManager::setQuota(const std::string& tenant, double bytesPerSec) {
    tenants_[tenant].quotaBytesPerSec = bytesPerSec;
}

void TenantQuotaManager::start() {
    if (running_) return;
    running_ = true;
    lastTick_ = exec_.now();
    armTimer();
}

void TenantQuotaManager::stop() {
    running_ = false;
    ++epoch_;
}

void TenantQuotaManager::armTimer() {
    uint64_t epoch = ++epoch_;
    exec_.scheduleWeak(cfg_.pollInterval, [this, alive = alive_, epoch]() {
        if (!*alive || !running_ || epoch != epoch_) return;
        tick();
        armTimer();
    });
}

double TenantQuotaManager::allowance(const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end() || it->second.quotaBytesPerSec <= 0) return 1.0;
    return it->second.allowance;
}

double TenantQuotaManager::measuredRate(const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0.0 : it->second.rate;
}

const std::string& TenantQuotaManager::tenantOf(SegmentId segment) {
    auto it = segmentTenant_.find(segment);
    if (it != segmentTenant_.end()) return it->second;
    std::string tenant;
    auto name = controller_.streamOf(segment);
    if (name) {
        const std::string& scoped = name.value();
        tenant = scoped.substr(0, scoped.find('/'));
    }
    // Internal segments (tables, coordination) cache as "" → unattributed.
    return segmentTenant_.emplace(segment, std::move(tenant)).first->second;
}

void TenantQuotaManager::tick() {
    double windowSec = sim::toSeconds(exec_.now() - lastTick_);
    lastTick_ = exec_.now();
    if (windowSec <= 0) return;

    // Fold the window's per-segment ingest into per-tenant byte counts.
    std::map<std::string, uint64_t> tenantBytes;
    for (auto* store : stores_) {
        for (uint32_t cid : store->containerIds()) {
            auto* container = store->container(cid);
            if (container == nullptr) continue;
            for (const auto& [seg, cum] : container->cumulativeRates()) {
                uint64_t prev = prevBytes_[seg];
                uint64_t d = cum.bytes >= prev ? cum.bytes - prev : cum.bytes;
                prevBytes_[seg] = cum.bytes;
                if (d == 0) continue;
                const std::string& tenant = tenantOf(seg);
                if (!tenant.empty()) tenantBytes[tenant] += d;
            }
        }
    }

    bool throttledAny = false;
    for (auto& [tenant, state] : tenants_) {
        auto bit = tenantBytes.find(tenant);
        state.rate = bit == tenantBytes.end()
                         ? 0.0
                         : static_cast<double>(bit->second) / windowSec;
        exec_.metrics().gauge("ctrl.quota." + tenant + ".rate_bps").set(state.rate);
        if (state.quotaBytesPerSec <= 0) continue;
        if (state.rate > state.quotaBytesPerSec) {
            // Multiplicative decrease toward the quota: measured rate is
            // offered × allowance, so scaling by quota/rate converges.
            state.allowance = std::max(
                cfg_.minAllowance,
                state.allowance * state.quotaBytesPerSec / state.rate);
            throttledAny = true;
            throttleCounter_.inc();
            PLOG_INFO(kLog, "tenant %s over quota (%.0f > %.0f B/s), allowance -> %.3f",
                      tenant.c_str(), state.rate, state.quotaBytesPerSec,
                      state.allowance);
        } else if (state.allowance < 1.0) {
            state.allowance = std::min(1.0, state.allowance * cfg_.recoverFactor);
        }
        exec_.metrics().gauge("ctrl.quota." + tenant + ".allowance").set(state.allowance);
    }
    if (throttledAny) ++throttleTicks_;
}

}  // namespace pravega::controller
