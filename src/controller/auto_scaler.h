// Stream auto-scaling (§3.1): the feedback loop between data plane and
// control plane. Segment stores accumulate per-segment ingest rates; this
// policy engine polls them, tracks sustained load against each stream's
// scaling policy, and issues scale-up (split) and scale-down (merge)
// operations through the controller.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "segmentstore/segment_store.h"
#include "sim/machine.h"

namespace pravega::controller {

class AutoScaler {
public:
    struct Config {
        sim::Duration pollInterval = sim::sec(1);
        /// Consecutive windows a segment must stay hot/cold before acting.
        int sustainWindows = 2;
        /// Hot when rate > hotFactor * targetRate.
        double hotFactor = 1.0;
        /// Cold when rate < coldFactor * targetRate (both merge partners).
        double coldFactor = 0.5;
        /// Minimum time between scale events on one stream.
        sim::Duration cooldown = sim::sec(4);
    };

    AutoScaler(sim::Core& exec, Controller& controller,
               std::vector<segmentstore::SegmentStore*> stores)
        : AutoScaler(exec, controller, std::move(stores), Config{}) {}
    AutoScaler(sim::Core& exec, Controller& controller,
               std::vector<segmentstore::SegmentStore*> stores, Config cfg);
    ~AutoScaler();

    void start();
    void stop();

    /// Evaluates every auto-scaling stream against an explicit per-segment
    /// rate sample accumulated over `windowSec`. The poll timer feeds this
    /// from the stores' drained rates; tests feed it synthetic samples to
    /// pin down boundary/hysteresis behavior without driving traffic.
    void evaluateAll(const std::map<SegmentId, segmentstore::SegmentRate>& rates,
                     double windowSec);

    /// Most recent per-segment byte rates (B/s), for Fig 13-style plots.
    const std::map<SegmentId, double>& lastRates() const { return lastRates_; }

    uint64_t splitsIssued() const { return splits_; }
    uint64_t mergesIssued() const { return merges_; }

private:
    void armTimer();
    void tick();
    void evaluateStream(const std::string& name, const StreamRecord& rec,
                        const std::map<SegmentId, segmentstore::SegmentRate>& rates,
                        double windowSec);

    sim::Core& exec_;
    Controller& controller_;
    std::vector<segmentstore::SegmentStore*> stores_;
    Config cfg_;

    std::map<SegmentId, int> hotWindows_;
    std::map<SegmentId, int> coldWindows_;
    std::map<std::string, sim::TimePoint> lastScale_;
    std::map<SegmentId, double> lastRates_;
    sim::TimePoint lastTick_ = 0;
    uint64_t epoch_ = 0;
    bool running_ = false;
    uint64_t splits_ = 0;
    uint64_t merges_ = 0;
    /// Cleared on destruction; the poll timer checks it before touching
    /// `this` (a weak timer can outlive the scaler — same pattern as the
    /// PR-9 storage-writer/cache-policy fixes).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pravega::controller
