// The Pravega control plane (§2.2): orchestrates stream life-cycle
// operations (create, scale, truncate, seal, delete), enforces stream
// policies, maps segments to containers with the stateless uniform hash,
// and stores its own metadata in Pravega itself via the key-value table
// API — ZooKeeper is only used for container assignment.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordination.h"
#include "common/hash.h"
#include "controller/stream_metadata.h"
#include "segmentstore/segment_store.h"
#include "sim/machine.h"
#include "sim/future.h"

namespace pravega::controller {

/// Where a client should direct traffic for a segment.
struct SegmentUri {
    SegmentRecord record;
    uint32_t containerId = 0;
    segmentstore::SegmentStore* store = nullptr;
};

class Controller {
public:
    struct Config {
        /// Container hosting the controller's own metadata tables.
        uint32_t metadataContainer = 0;
        /// Retention policy enforcement cadence.
        sim::Duration retentionInterval = sim::sec(5);
        bool persistMetadata = true;
    };

    Controller(sim::Core& exec, cluster::ContainerRegistry& registry)
        : Controller(exec, registry, Config{}) {}
    Controller(sim::Core& exec, cluster::ContainerRegistry& registry, Config cfg);
    ~Controller();

    // ---- stream life-cycle --------------------------------------------
    Status createScope(const std::string& scope);
    sim::Future<sim::Unit> createStream(const std::string& scope, const std::string& stream,
                                        StreamConfig config);
    sim::Future<sim::Unit> sealStream(const std::string& scopedName);
    sim::Future<sim::Unit> deleteStream(const std::string& scopedName);

    /// Explicit (manual) scale; the auto-scaler uses the same entry point.
    sim::Future<sim::Unit> scaleStream(const std::string& scopedName,
                                       const std::vector<SegmentId>& toSeal,
                                       const std::vector<std::pair<double, double>>& newRanges);

    /// Truncates the stream at a stream cut (segment → offset).
    sim::Future<sim::Unit> truncateStream(const std::string& scopedName,
                                          const std::map<SegmentId, int64_t>& cut);

    /// Allocates a standalone segment outside any stream (reader-group
    /// coordination segments, state synchronizers, KV tables).
    Result<SegmentUri> createInternalSegment(const std::string& name, bool isTable = false);

    // ---- client metadata queries --------------------------------------
    Result<std::vector<SegmentUri>> getCurrentSegments(const std::string& scopedName) const;
    /// Segments at the head of the stream (the earliest epoch): where a
    /// reader group starts; later segments are discovered via successors.
    Result<std::vector<SegmentUri>> getHeadSegments(const std::string& scopedName) const;
    Result<SegmentUri> getSegmentForKey(const std::string& scopedName, double keyHash) const;
    Result<std::vector<SuccessorRecord>> getSuccessors(SegmentId segment) const;
    Result<SegmentUri> uriOf(SegmentId segment) const;
    /// Scoped stream name owning `segment` (NotFound for internal segments).
    Result<std::string> streamOf(SegmentId segment) const;
    Result<const StreamRecord*> getStream(const std::string& scopedName) const;

    bool streamExists(const std::string& scopedName) const {
        return streams_.contains(scopedName);
    }

    /// True while a scale operation is in flight for the stream (used by
    /// the auto-scaler to avoid overlapping scale events).
    bool isScaling(const std::string& scopedName) const { return scaling_.contains(scopedName); }

    // ---- stats ---------------------------------------------------------
    uint32_t scaleEventCount(const std::string& scopedName) const;

private:
    friend class AutoScaler;

    segmentstore::SegmentContainer* containerOf(SegmentId segment) const;
    sim::Future<sim::Unit> createSegmentObjects(const std::string& scopedName,
                                                const std::vector<SegmentRecord>& records);
    void persist(const std::string& scopedName);
    void retentionTick();
    void enforceRetention(const std::string& scopedName, StreamRecord& rec);

    sim::Core& exec_;
    cluster::ContainerRegistry& registry_;
    Config cfg_;

    std::map<std::string, StreamRecord> streams_;
    std::map<std::string, bool> scopes_;
    std::map<SegmentId, std::string> segmentToStream_;
    std::map<SegmentId, SegmentRecord> internalSegments_;
    std::map<std::string, bool> scaling_;
    uint32_t nextSegmentNumber_ = 1;
    uint64_t retentionEpoch_ = 0;
    bool stopped_ = false;
    /// Cleared on destruction; async continuations check it first (container
    /// shutdown cascades can fire completions during teardown).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pravega::controller
