#include "controller/auto_scaler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pravega::controller {

namespace {
constexpr const char* kLog = "auto-scaler";
}

AutoScaler::AutoScaler(sim::Core& exec, Controller& controller,
                       std::vector<segmentstore::SegmentStore*> stores, Config cfg)
    : exec_(exec), controller_(controller), stores_(std::move(stores)), cfg_(cfg) {}

AutoScaler::~AutoScaler() {
    stop();
    *alive_ = false;
}

void AutoScaler::start() {
    if (running_) return;
    running_ = true;
    lastTick_ = exec_.now();
    armTimer();
}

void AutoScaler::armTimer() {
    uint64_t epoch = ++epoch_;
    exec_.scheduleWeak(cfg_.pollInterval, [this, alive = alive_, epoch]() {
        if (!*alive || !running_ || epoch != epoch_) return;
        tick();
        armTimer();
    });
}

void AutoScaler::stop() {
    running_ = false;
    ++epoch_;
}

void AutoScaler::tick() {
    double windowSec = sim::toSeconds(exec_.now() - lastTick_);
    lastTick_ = exec_.now();
    if (windowSec <= 0) return;

    // Gather the feedback from the data plane (§3.1: "the control plane
    // can react to the load monitored by the data plane").
    std::map<SegmentId, segmentstore::SegmentRate> rates;
    for (auto* store : stores_) {
        for (auto& [seg, rate] : store->drainRates()) {
            auto& agg = rates[seg];
            agg.bytes += rate.bytes;
            agg.events += rate.events;
        }
    }
    evaluateAll(rates, windowSec);
}

void AutoScaler::evaluateAll(const std::map<SegmentId, segmentstore::SegmentRate>& rates,
                             double windowSec) {
    if (windowSec <= 0) return;
    lastRates_.clear();
    for (auto& [seg, rate] : rates) {
        lastRates_[seg] = static_cast<double>(rate.bytes) / windowSec;
    }

    // Evaluate each auto-scaling stream against its policy.
    std::vector<std::pair<std::string, const StreamRecord*>> candidates;
    for (const auto& [seg, rate] : rates) {
        auto uri = controller_.uriOf(seg);
        (void)uri;
    }
    // Collect stream names from the controller's registry of segments.
    std::map<std::string, const StreamRecord*> streams;
    for (const auto& [seg, rate] : rates) {
        auto it = controller_.segmentToStream_.find(seg);
        if (it == controller_.segmentToStream_.end()) continue;
        auto rec = controller_.getStream(it->second);
        if (rec) streams[it->second] = rec.value();
    }
    // Also re-evaluate streams with zero traffic this window (cold merges).
    for (const auto& [name, rec] : controller_.streams_) {
        if (rec.config().scaling.type != ScaleType::Fixed) streams.emplace(name, &rec);
    }

    for (const auto& [name, rec] : streams) {
        if (rec->config().scaling.type == ScaleType::Fixed) continue;
        evaluateStream(name, *rec, rates, windowSec);
    }
}

void AutoScaler::evaluateStream(const std::string& name, const StreamRecord& rec,
                                const std::map<SegmentId, segmentstore::SegmentRate>& rates,
                                double windowSec) {
    if (controller_.isScaling(name) || rec.sealedForAppend()) return;
    auto cooldownIt = lastScale_.find(name);
    if (cooldownIt != lastScale_.end() && exec_.now() - cooldownIt->second < cfg_.cooldown) {
        return;
    }
    const ScalingPolicy& policy = rec.config().scaling;
    const auto& segments = rec.currentEpoch().segments;

    // Classify each current segment as hot/cold and update sustain counts.
    std::vector<double> segRates(segments.size(), 0.0);
    for (size_t i = 0; i < segments.size(); ++i) {
        auto rit = rates.find(segments[i].id);
        if (rit != rates.end()) {
            double value = policy.type == ScaleType::ByRateBytes
                               ? static_cast<double>(rit->second.bytes)
                               : static_cast<double>(rit->second.events);
            segRates[i] = value / windowSec;
        }
        SegmentId id = segments[i].id;
        if (segRates[i] > cfg_.hotFactor * policy.targetRate) {
            ++hotWindows_[id];
            coldWindows_[id] = 0;
        } else if (segRates[i] < cfg_.coldFactor * policy.targetRate) {
            ++coldWindows_[id];
            hotWindows_[id] = 0;
        } else {
            hotWindows_[id] = 0;
            coldWindows_[id] = 0;
        }
    }

    // Scale-up: split the hottest sustained-hot segment (Fig 2a, t1/t2).
    int best = -1;
    double bestRate = 0;
    for (size_t i = 0; i < segments.size(); ++i) {
        if (hotWindows_[segments[i].id] >= cfg_.sustainWindows && segRates[i] > bestRate) {
            best = static_cast<int>(i);
            bestRate = segRates[i];
        }
    }
    if (best >= 0) {
        const auto& seg = segments[static_cast<size_t>(best)];
        int splits = static_cast<int>(std::ceil(bestRate / std::max(policy.targetRate, 1.0)));
        splits = std::clamp(splits, 2, std::max(2, policy.scaleFactor));
        std::vector<std::pair<double, double>> ranges;
        double width = (seg.keyEnd - seg.keyStart) / splits;
        for (int i = 0; i < splits; ++i) {
            double a = seg.keyStart + i * width;
            double b = (i == splits - 1) ? seg.keyEnd : seg.keyStart + (i + 1) * width;
            ranges.emplace_back(a, b);
        }
        hotWindows_.erase(seg.id);
        lastScale_[name] = exec_.now();
        ++splits_;
        PLOG_INFO(kLog, "splitting %s segment %u.%u (%.0f > %.0f) into %d", name.c_str(),
                  segmentstore::epochOf(seg.id), segmentstore::numberOf(seg.id), bestRate,
                  policy.targetRate, splits);
        controller_.scaleStream(name, {seg.id}, ranges);
        return;
    }

    // Scale-down: merge the first adjacent pair of sustained-cold segments
    // covering a contiguous key range (Fig 2a, t3).
    if (static_cast<int>(segments.size()) <= policy.minSegments) return;
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
        const auto& a = segments[i];
        const auto& b = segments[i + 1];
        if (std::abs(a.keyEnd - b.keyStart) > 1e-9) continue;  // not contiguous
        if (coldWindows_[a.id] >= cfg_.sustainWindows &&
            coldWindows_[b.id] >= cfg_.sustainWindows) {
            coldWindows_.erase(a.id);
            coldWindows_.erase(b.id);
            lastScale_[name] = exec_.now();
            ++merges_;
            PLOG_INFO(kLog, "merging %s segments %u.%u + %u.%u", name.c_str(),
                      segmentstore::epochOf(a.id), segmentstore::numberOf(a.id),
                      segmentstore::epochOf(b.id), segmentstore::numberOf(b.id));
            controller_.scaleStream(name, {a.id, b.id}, {{a.keyStart, b.keyEnd}});
            return;
        }
    }
}

}  // namespace pravega::controller
