#include "common/logging.h"

#include <cstdarg>
#include <vector>

namespace pravega {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel l) {
    switch (l) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void logMessage(LogLevel level, const char* component, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s: %s\n", levelName(level), component, msg.c_str());
}

namespace detail {
std::string formatLog(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(args);
    return out;
}
}  // namespace detail

}  // namespace pravega
