// BufChain: an iobuf-style chained, reference-counted, sliceable byte
// buffer (after the idiom of Redpanda's iobuf / folly's IOBuf).
//
// A chain is an ordered list of SharedBuf fragments viewed as one logical
// byte sequence. Appending a fragment, sharing a sub-range, and trimming
// either end never copy payload bytes — they only adjust fragment
// bookkeeping — so a payload framed once by the client can ride through
// block build, WAL entry, cache insertion and LTS flush aggregation by
// reference. Copying happens only at explicit boundaries (`copyOf`,
// `appendCopy`, `linearize` of a multi-fragment chain, `toBytes`,
// `copyOut`), and each such copy is recorded in pravega::bufstats.
//
// Chains are value types: copying a BufChain copies the fragment vector
// (cheap shared_ptr bumps), never the payload. Fragments are immutable, so
// two chains sharing storage can never observe each other's appends.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/buf_stats.h"
#include "common/bytes.h"

namespace pravega {

class BufChain {
public:
    BufChain() = default;

    /// Implicit on purpose: a SharedBuf *is* a one-fragment chain, which
    /// lets `f(BufChain)` accept every existing SharedBuf call site
    /// without copies or churn.
    /*implicit*/ BufChain(SharedBuf buf) { append(std::move(buf)); }

    /// Takes ownership of `data` (one move, no copy).
    explicit BufChain(Bytes data) : BufChain(SharedBuf(std::move(data))) {}

    /// Copying constructor boundary — recorded in bufstats (via
    /// SharedBuf::copyOf).
    static BufChain copyOf(BytesView view) { return BufChain(SharedBuf::copyOf(view)); }

    // ---- building --------------------------------------------------------
    void append(SharedBuf buf);
    void append(BufChain other);
    void append(Bytes data) { append(SharedBuf(std::move(data))); }
    /// Copies `view` into a fresh fragment — recorded in bufstats.
    void appendCopy(BytesView view) { append(SharedBuf::copyOf(view)); }

    // ---- observers -------------------------------------------------------
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t fragmentCount() const { return frags_.size(); }
    const std::vector<SharedBuf>& fragments() const { return frags_; }

    /// Calls `f(const SharedBuf&)` for each fragment in order.
    template <typename F>
    void forEachFragment(F&& f) const {
        for (const auto& frag : frags_) f(frag);
    }

    // ---- zero-copy slicing -----------------------------------------------
    /// Chain over [offset, offset+len) sharing the same storage. Clamps to
    /// bounds. O(fragments), no payload copies.
    BufChain share(size_t offset, size_t len) const;

    /// Drops the first `n` logical bytes (fragment bookkeeping only).
    void trimFront(size_t n);
    /// Drops the last `n` logical bytes.
    void trimBack(size_t n);
    void clear();

    // ---- copying boundaries (recorded in bufstats) -------------------------
    /// One contiguous SharedBuf of the whole chain. A single-fragment chain
    /// returns its fragment unchanged (no copy); otherwise the fragments
    /// are flattened into fresh storage.
    SharedBuf linearize() const;
    /// Flattens the whole chain into an owned vector.
    Bytes toBytes() const;
    /// Copies [pos, pos+len) into `dst` (caller guarantees capacity and
    /// that the range is in bounds).
    void copyOut(size_t pos, size_t len, uint8_t* dst) const;

    // ---- stream helpers (uncounted header peeks) ---------------------------
    /// Reads a native-order u32 at `pos`, possibly spanning fragments.
    /// False when fewer than 4 bytes remain.
    bool peekU32(size_t pos, uint32_t& out) const;

private:
    /// Uncounted gather of [pos, pos+len) into dst; range must be in bounds.
    void gather(size_t pos, size_t len, uint8_t* dst) const;

    std::vector<SharedBuf> frags_;
    size_t size_ = 0;
};

}  // namespace pravega
