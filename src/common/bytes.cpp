#include "common/bytes.h"

#include <algorithm>

namespace pravega {

SharedBuf SharedBuf::slice(size_t offset, size_t len) const {
    SharedBuf out;
    if (!storage_ || offset >= size_) return out;
    out.storage_ = storage_;
    out.offset_ = offset_ + offset;
    out.size_ = std::min(len, size_ - offset);
    return out;
}

}  // namespace pravega
