// Hashing: FNV-1a 64-bit and the routing-key hash h(k) ∈ [0, 1).
//
// Pravega maps routing keys onto the unit interval; stream segments own
// disjoint sub-ranges of [0,1) (§2.1). The same family is used for the
// stateless segment → segment-container assignment (§2.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pravega {

/// FNV-1a 64-bit over an arbitrary byte string.
uint64_t fnv1a64(std::string_view data);

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range. Used for
/// the LTS chunk-codec block checksums; `seed` chains partial updates
/// (pass a previous result to continue a running CRC).
uint32_t crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

/// Mixes a 64-bit value (splitmix64 finalizer); good avalanche for ids.
uint64_t mix64(uint64_t x);

/// Routing-key hash onto the unit interval [0, 1).
double keyHash01(std::string_view routingKey);

/// Stateless segment-id → container assignment over `containerCount`
/// containers (uniform hash known by the control plane, §2.2).
uint32_t containerFor(uint64_t segmentId, uint32_t containerCount);

}  // namespace pravega
