// Byte buffer utilities used throughout the system.
//
// `Bytes` is an owning byte vector; `BytesView` a non-owning span.
// `SharedBuf` provides cheap zero-copy slicing of an immutable buffer, used
// on read paths where the same appended data is handed to the WAL, the
// cache and client responses without copies.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buf_stats.h"

namespace pravega {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

inline Bytes toBytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

inline std::string toString(BytesView b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Immutable, reference-counted buffer with O(1) sub-slicing.
class SharedBuf {
public:
    SharedBuf() = default;

    explicit SharedBuf(Bytes data)
        : storage_(std::make_shared<const Bytes>(std::move(data))),
          offset_(0),
          size_(storage_->size()) {}

    static SharedBuf copyOf(BytesView view) {
        bufstats::recordCopy(view.size());
        return SharedBuf(Bytes(view.begin(), view.end()));
    }

    /// O(1) sub-slice sharing the same storage. Clamps to bounds.
    SharedBuf slice(size_t offset, size_t len) const;

    BytesView view() const {
        if (!storage_) return {};
        return BytesView(storage_->data() + offset_, size_);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const uint8_t* data() const { return storage_ ? storage_->data() + offset_ : nullptr; }

private:
    std::shared_ptr<const Bytes> storage_;
    size_t offset_ = 0;
    size_t size_ = 0;
};

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace pravega
