// Copy accounting for the buffer abstraction.
//
// Every operation that duplicates payload bytes *through the buffer layer*
// (client event framing, SharedBuf::copyOf, BufChain copy ops) records the
// byte count here. Terminal media writes — memcpy into a cache block, the
// byte store behind simulated LTS — are deliberately NOT counted: the copy
// budget tracked here is "how many times does a payload cross the buffer
// abstraction by value", which DESIGN.md §11 pins to exactly one (the
// client framing copy) on the append path.
//
// Counters are always on (RelWithDebInfo defines NDEBUG, so assert-only
// instrumentation would vanish from the default build) and are plain
// non-atomic globals: the simulation substrate is single-threaded, and
// benches/tests only read them between runs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pravega::bufstats {

inline uint64_t bytesCopied = 0;
inline uint64_t copyOps = 0;

inline void recordCopy(size_t n) {
    bytesCopied += static_cast<uint64_t>(n);
    ++copyOps;
}

inline void reset() {
    bytesCopied = 0;
    copyOps = 0;
}

}  // namespace pravega::bufstats
