// Result<T>: error handling without exceptions on the data path.
//
// The Core Guidelines recommend exceptions for exceptional conditions only;
// in a storage engine, conditions like "segment sealed" or "conditional
// append rejected" are normal control flow, so they travel as values.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pravega {

enum class Err {
    Ok = 0,
    NotFound,             // segment/stream/key does not exist
    AlreadyExists,        // create on an existing object
    Sealed,               // append to a sealed segment
    BadOffset,            // conditional append offset mismatch
    BadVersion,           // KV conditional-update version mismatch
    Fenced,               // WAL writer fenced by a newer owner
    Truncated,            // read before the truncation point
    ContainerOffline,     // segment container shut down / recovering
    Throttled,            // rejected due to backpressure
    CacheFull,            // no free cache blocks; caller must evict
    Unavailable,          // server crashed / unreachable
    InvalidArgument,
    IoError,
    Timeout,
    Cancelled,
    ChecksumMismatch,     // stored chunk block failed CRC verification
};

const char* errName(Err e);

class Status {
public:
    Status() : code_(Err::Ok) {}
    Status(Err code, std::string msg = {}) : code_(code), msg_(std::move(msg)) {}

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == Err::Ok; }
    explicit operator bool() const { return isOk(); }
    Err code() const { return code_; }
    const std::string& message() const { return msg_; }
    std::string toString() const {
        std::string s = errName(code_);
        if (!msg_.empty()) {
            s += ": ";
            s += msg_;
        }
        return s;
    }

    friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

private:
    Err code_;
    std::string msg_;
};

template <typename T>
class Result {
public:
    // Intentionally implicit: lets functions `return value;` / `return status;`.
    Result(T value) : v_(std::move(value)) {}
    Result(Status status) : v_(std::move(status)) {
        assert(!std::get<Status>(v_).isOk() && "Ok status requires a value");
    }
    Result(Err code, std::string msg = {}) : Result(Status(code, std::move(msg))) {}

    bool isOk() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return isOk(); }

    const T& value() const& {
        assert(isOk());
        return std::get<T>(v_);
    }
    T& value() & {
        assert(isOk());
        return std::get<T>(v_);
    }
    T&& value() && {
        assert(isOk());
        return std::move(std::get<T>(v_));
    }

    Status status() const { return isOk() ? Status::ok() : std::get<Status>(v_); }
    Err code() const { return isOk() ? Err::Ok : std::get<Status>(v_).code(); }

    const T& valueOr(const T& fallback) const {
        return isOk() ? std::get<T>(v_) : fallback;
    }

private:
    std::variant<T, Status> v_;
};

inline const char* errName(Err e) {
    switch (e) {
        case Err::Ok: return "Ok";
        case Err::NotFound: return "NotFound";
        case Err::AlreadyExists: return "AlreadyExists";
        case Err::Sealed: return "Sealed";
        case Err::BadOffset: return "BadOffset";
        case Err::BadVersion: return "BadVersion";
        case Err::Fenced: return "Fenced";
        case Err::Truncated: return "Truncated";
        case Err::ContainerOffline: return "ContainerOffline";
        case Err::Throttled: return "Throttled";
        case Err::CacheFull: return "CacheFull";
        case Err::Unavailable: return "Unavailable";
        case Err::InvalidArgument: return "InvalidArgument";
        case Err::IoError: return "IoError";
        case Err::Timeout: return "Timeout";
        case Err::Cancelled: return "Cancelled";
        case Err::ChecksumMismatch: return "ChecksumMismatch";
    }
    return "Unknown";
}

}  // namespace pravega
