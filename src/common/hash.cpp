#include "common/hash.h"

#include <array>

namespace pravega {

uint64_t fnv1a64(std::string_view data) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint32_t crc32(const uint8_t* data, size_t len, uint32_t seed) {
    // Byte-wise table-driven CRC-32/IEEE; table built once, thread-safe
    // under C++11 static-init rules.
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint64_t mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double keyHash01(std::string_view routingKey) {
    // Top 53 bits → exactly representable double in [0, 1).
    uint64_t h = fnv1a64(routingKey);
    return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
}

uint32_t containerFor(uint64_t segmentId, uint32_t containerCount) {
    if (containerCount == 0) return 0;
    return static_cast<uint32_t>(mix64(segmentId) % containerCount);
}

}  // namespace pravega
