#include "common/hash.h"

namespace pravega {

uint64_t fnv1a64(std::string_view data) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double keyHash01(std::string_view routingKey) {
    // Top 53 bits → exactly representable double in [0, 1).
    uint64_t h = fnv1a64(routingKey);
    return static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
}

uint32_t containerFor(uint64_t segmentId, uint32_t containerCount) {
    if (containerCount == 0) return 0;
    return static_cast<uint32_t>(mix64(segmentId) % containerCount);
}

}  // namespace pravega
