// Minimal leveled logger. Silent by default so tests and the DES benches
// stay fast; raise the level for debugging.
#pragma once

#include <cstdio>
#include <string>

namespace pravega {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

void logMessage(LogLevel level, const char* component, const std::string& msg);

namespace detail {
std::string formatLog(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define PLOG(level, component, ...)                                             \
    do {                                                                         \
        if (static_cast<int>(level) >= static_cast<int>(::pravega::logLevel()))  \
            ::pravega::logMessage(level, component,                              \
                                  ::pravega::detail::formatLog(__VA_ARGS__));    \
    } while (0)

#define PLOG_DEBUG(component, ...) PLOG(::pravega::LogLevel::Debug, component, __VA_ARGS__)
#define PLOG_INFO(component, ...) PLOG(::pravega::LogLevel::Info, component, __VA_ARGS__)
#define PLOG_WARN(component, ...) PLOG(::pravega::LogLevel::Warn, component, __VA_ARGS__)
#define PLOG_ERROR(component, ...) PLOG(::pravega::LogLevel::Error, component, __VA_ARGS__)

}  // namespace pravega
