#include "common/serde.h"

#include <bit>
#include <cstring>

namespace pravega {

void BinaryWriter::u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
}

void BinaryWriter::u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
}

void BinaryWriter::f64(double v) {
    u64(std::bit_cast<uint64_t>(v));
}

void BinaryWriter::varint(uint64_t v) {
    while (v >= 0x80) {
        u8(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    u8(static_cast<uint8_t>(v));
}

void BinaryWriter::bytes(BytesView v) {
    varint(v.size());
    raw(v);
}

void BinaryWriter::str(std::string_view v) {
    varint(v.size());
    out_.insert(out_.end(), v.begin(), v.end());
}

void BinaryWriter::raw(BytesView v) {
    out_.insert(out_.end(), v.begin(), v.end());
}

Result<uint8_t> BinaryReader::u8() {
    if (!need(1)) return Err::IoError;
    return in_[pos_++];
}

Result<uint16_t> BinaryReader::u16() {
    if (!need(2)) return Err::IoError;
    uint16_t v = static_cast<uint16_t>(in_[pos_]) | (static_cast<uint16_t>(in_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
}

Result<uint32_t> BinaryReader::u32() {
    if (!need(4)) return Err::IoError;
    uint32_t v = 0;
    std::memcpy(&v, in_.data() + pos_, 4);
    pos_ += 4;
    return v;
}

Result<uint64_t> BinaryReader::u64() {
    if (!need(8)) return Err::IoError;
    uint64_t v = 0;
    std::memcpy(&v, in_.data() + pos_, 8);
    pos_ += 8;
    return v;
}

Result<int64_t> BinaryReader::i64() {
    auto v = u64();
    if (!v) return v.status();
    return static_cast<int64_t>(v.value());
}

Result<double> BinaryReader::f64() {
    auto v = u64();
    if (!v) return v.status();
    return std::bit_cast<double>(v.value());
}

Result<uint64_t> BinaryReader::varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (!need(1) || shift > 63) return Err::IoError;
        uint8_t b = in_[pos_++];
        v |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80)) return v;
        shift += 7;
    }
}

Result<Bytes> BinaryReader::bytes() {
    auto n = varint();
    if (!n) return n.status();
    return raw(n.value());
}

Result<std::string> BinaryReader::str() {
    auto b = bytes();
    if (!b) return b.status();
    return std::string(b.value().begin(), b.value().end());
}

Result<Bytes> BinaryReader::raw(size_t n) {
    if (!need(n)) return Err::IoError;
    Bytes out(in_.begin() + pos_, in_.begin() + pos_ + n);
    pos_ += n;
    return out;
}

}  // namespace pravega
