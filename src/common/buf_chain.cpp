#include "common/buf_chain.h"

#include <cassert>
#include <cstring>

namespace pravega {

void BufChain::append(SharedBuf buf) {
    if (buf.empty()) return;
    size_ += buf.size();
    frags_.push_back(std::move(buf));
}

void BufChain::append(BufChain other) {
    if (other.empty()) return;
    size_ += other.size_;
    if (frags_.empty()) {
        frags_ = std::move(other.frags_);
        return;
    }
    frags_.reserve(frags_.size() + other.frags_.size());
    for (auto& f : other.frags_) frags_.push_back(std::move(f));
}

BufChain BufChain::share(size_t offset, size_t len) const {
    BufChain out;
    if (offset >= size_) return out;
    len = std::min(len, size_ - offset);
    if (len == 0) return out;
    size_t skip = offset;
    for (const auto& frag : frags_) {
        if (skip >= frag.size()) {
            skip -= frag.size();
            continue;
        }
        size_t take = std::min(len, frag.size() - skip);
        out.append(frag.slice(skip, take));
        skip = 0;
        len -= take;
        if (len == 0) break;
    }
    return out;
}

void BufChain::trimFront(size_t n) {
    if (n >= size_) {
        clear();
        return;
    }
    size_ -= n;
    size_t drop = 0;
    while (n > 0 && n >= frags_[drop].size()) {
        n -= frags_[drop].size();
        ++drop;
    }
    if (drop > 0) frags_.erase(frags_.begin(), frags_.begin() + static_cast<ptrdiff_t>(drop));
    if (n > 0) frags_.front() = frags_.front().slice(n, frags_.front().size() - n);
}

void BufChain::trimBack(size_t n) {
    if (n >= size_) {
        clear();
        return;
    }
    size_ -= n;
    while (n > 0 && n >= frags_.back().size()) {
        n -= frags_.back().size();
        frags_.pop_back();
    }
    if (n > 0) frags_.back() = frags_.back().slice(0, frags_.back().size() - n);
}

void BufChain::clear() {
    frags_.clear();
    size_ = 0;
}

SharedBuf BufChain::linearize() const {
    if (frags_.empty()) return SharedBuf();
    if (frags_.size() == 1) return frags_[0];
    return SharedBuf(toBytes());
}

Bytes BufChain::toBytes() const {
    Bytes out;
    out.reserve(size_);
    for (const auto& frag : frags_) {
        out.insert(out.end(), frag.view().begin(), frag.view().end());
    }
    bufstats::recordCopy(size_);
    return out;
}

void BufChain::copyOut(size_t pos, size_t len, uint8_t* dst) const {
    gather(pos, len, dst);
    bufstats::recordCopy(len);
}

bool BufChain::peekU32(size_t pos, uint32_t& out) const {
    if (pos + 4 > size_ || pos > size_) return false;
    uint8_t raw[4];
    gather(pos, 4, raw);
    std::memcpy(&out, raw, 4);
    return true;
}

void BufChain::gather(size_t pos, size_t len, uint8_t* dst) const {
    assert(pos + len <= size_ && pos <= size_);
    if (len == 0) return;
    size_t skip = pos;
    for (const auto& frag : frags_) {
        if (skip >= frag.size()) {
            skip -= frag.size();
            continue;
        }
        size_t take = std::min(len, frag.size() - skip);
        std::memcpy(dst, frag.data() + skip, take);
        dst += take;
        skip = 0;
        len -= take;
        if (len == 0) return;
    }
    assert(len == 0 && "gather ran past the chain");
}

}  // namespace pravega
