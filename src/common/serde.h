// Binary serialization helpers (little-endian fixed-width + varint).
//
// Used for WAL data frames, metadata checkpoints, table-segment entries and
// the client event wire format. Deliberately simple and self-describing
// enough for recovery-time validation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace pravega {

class BinaryWriter {
public:
    explicit BinaryWriter(Bytes& out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void f64(double v);
    void varint(uint64_t v);
    void bytes(BytesView v);           // varint length + payload
    void str(std::string_view v);      // varint length + payload
    void raw(BytesView v);             // payload only

    size_t size() const { return out_.size(); }

private:
    Bytes& out_;
};

class BinaryReader {
public:
    explicit BinaryReader(BytesView in) : in_(in) {}

    Result<uint8_t> u8();
    Result<uint16_t> u16();
    Result<uint32_t> u32();
    Result<uint64_t> u64();
    Result<int64_t> i64();
    Result<double> f64();
    Result<uint64_t> varint();
    Result<Bytes> bytes();
    Result<std::string> str();
    Result<Bytes> raw(size_t n);

    size_t remaining() const { return in_.size() - pos_; }
    size_t position() const { return pos_; }
    bool atEnd() const { return pos_ >= in_.size(); }

private:
    bool need(size_t n) const { return pos_ + n <= in_.size(); }
    BytesView in_;
    size_t pos_ = 0;
};

}  // namespace pravega
