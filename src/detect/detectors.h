// Streaming failure detectors over scalar metric samples.
//
// Each detector consumes one sample per sampling tick (the detect::Monitor
// extracts samples from the obs:: registry on a virtual-time cadence) and
// fires at most once per excursion: a detector that has fired stays "active"
// until the signal returns to baseline, so a 100-tick fault produces one
// alarm with an onset time — not 100 alarms. Baselines are frozen while a
// detector is active so a long fault cannot be absorbed into the mean.
//
// Three detector shapes, following "Online detection of failures generated
// by storage simulator" (arXiv:2101.07100):
//  - EwmaDetector:  EWMA mean/variance residual test (|z| > k sigmas).
//  - CusumDetector: two-sided standardized CUSUM change-point test.
//  - RateCollapseDetector: an active counter going flat (e.g. wal appends
//    during a partition) for N consecutive samples.
//
// All state is plain arithmetic over deterministic samples, so same-seed
// runs fire byte-identical alarm sequences.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "sim/time.h"

namespace pravega::detect {

enum class AlarmKind { Spike, Drop, Collapse, Slo };

const char* alarmKindName(AlarmKind kind);

/// One detection event: onset time, source, and the evidence that fired it.
/// `clearedAt` is -1 while the excursion is still in progress.
struct Alarm {
    sim::TimePoint at = 0;
    std::string detector;  // "ewma" | "cusum" | "rate-collapse" | "slo"
    std::string metric;    // probe metric (or guardrail rule text)
    AlarmKind kind = AlarmKind::Spike;
    double value = 0;  // the sample that fired
    double score = 0;  // z / CUSUM statistic / zero-streak / bound excess
    sim::TimePoint clearedAt = -1;
};

/// Returned by a detector when a NEW alarm fires at this sample.
struct Fire {
    AlarmKind kind;
    double score;
};

/// Shared EWMA mean/variance baseline with a sigma floor. The floor is the
/// max of an absolute term and a term relative to |mean|, so metrics that
/// are deterministic in steady state (zero variance) do not alarm on the
/// first ulp of jitter, and zero-baseline metrics (drop rates) need a real
/// burst to reach k sigmas.
struct EwmaBaseline {
    double alpha = 0.1;
    double minSigma = 1e-9;
    double relMinSigma = 0.05;
    // Winsorization: deviations are clamped to winsorK sigmas before they
    // feed the mean/variance, so a single fault spike cannot inflate sigma
    // enough to mask the next excursion. 0 disables clamping. With
    // winsorUpOnly, only upward deviations are clamped (for one-sided
    // upward detectors a low sample is benign and should correct the
    // baseline at full weight).
    double winsorK = 0;
    bool winsorUpOnly = false;

    double mean = 0;
    double var = 0;
    int samples = 0;

    void update(double x) {
        if (samples == 0) {
            mean = x;
        } else {
            double d = x - mean;
            if (winsorK > 0) {
                double cap = winsorK * sigma();
                d = winsorUpOnly ? std::min(d, cap) : std::clamp(d, -cap, cap);
            }
            mean += alpha * d;
            var = (1.0 - alpha) * (var + alpha * d * d);
        }
        ++samples;
    }
    double sigma() const {
        return std::max({std::sqrt(std::max(var, 0.0)), minSigma,
                         relMinSigma * std::fabs(mean)});
    }
    double z(double x) const { return (x - mean) / sigma(); }
};

/// Residual test: fires when the standardized residual |z| exceeds `k`
/// sigmas (upward only unless `twoSided`). Hysteresis: re-arms when |z|
/// falls back under `rearmK`.
class EwmaDetector {
public:
    struct Config {
        double alpha = 0.1;
        double k = 6.0;
        double rearmK = 3.0;
        int minSamples = 40;  // baseline warmup before arming
        double minSigma = 1e-9;
        double relMinSigma = 0.05;
        double winsorK = 0;  // clamp baseline updates to +-winsorK sigmas
        bool twoSided = true;
    };

    EwmaDetector() : EwmaDetector(Config()) {}
    explicit EwmaDetector(Config cfg) : cfg_(cfg) {
        base_.alpha = cfg.alpha;
        base_.minSigma = cfg.minSigma;
        base_.relMinSigma = cfg.relMinSigma;
        base_.winsorK = cfg.winsorK;
        base_.winsorUpOnly = !cfg.twoSided;
    }

    std::optional<Fire> update(double x);
    bool active() const { return active_; }
    double mean() const { return base_.mean; }
    double sigma() const { return base_.sigma(); }

private:
    Config cfg_;
    EwmaBaseline base_;
    bool active_ = false;
};

/// Two-sided standardized CUSUM: g+ = max(0, g+ + z - k), g- symmetric;
/// fires when either side exceeds `h`. Catches slow drifts that never
/// individually exceed an EWMA residual threshold. On fire both statistics
/// reset; the detector re-arms once the signal is back near baseline.
class CusumDetector {
public:
    struct Config {
        double alpha = 0.05;  // baseline smoothing (slower than EWMA's)
        double k = 0.5;       // per-sample drift allowance, in sigmas
        double h = 10.0;      // decision threshold, in sigmas
        int minSamples = 40;
        double minSigma = 1e-9;
        double relMinSigma = 0.05;
        double winsorK = 0;  // clamp baseline updates to +-winsorK sigmas
        bool twoSided = true;
    };

    CusumDetector() : CusumDetector(Config()) {}
    explicit CusumDetector(Config cfg) : cfg_(cfg) {
        base_.alpha = cfg.alpha;
        base_.minSigma = cfg.minSigma;
        base_.relMinSigma = cfg.relMinSigma;
        base_.winsorK = cfg.winsorK;
        base_.winsorUpOnly = !cfg.twoSided;
    }

    std::optional<Fire> update(double x);
    bool active() const { return active_; }
    double statPos() const { return gPos_; }
    double statNeg() const { return gNeg_; }

private:
    Config cfg_;
    EwmaBaseline base_;
    double gPos_ = 0;
    double gNeg_ = 0;
    bool active_ = false;
};

/// A counter going flat: once a baseline rate of at least `minBaseline` is
/// established, `consecutive` successive samples below `collapseFraction`
/// of that baseline fire a Collapse alarm. The baseline only absorbs
/// healthy samples, so the collapse itself cannot drag it to zero.
class RateCollapseDetector {
public:
    struct Config {
        double alpha = 0.1;
        double minBaseline = 10.0;     // arm only above this rate
        double collapseFraction = 0.1;
        int consecutive = 8;
        int minSamples = 20;
    };

    RateCollapseDetector() : RateCollapseDetector(Config()) {}
    explicit RateCollapseDetector(Config cfg) : cfg_(cfg) {
        base_.alpha = cfg.alpha;
    }

    std::optional<Fire> update(double x);
    bool active() const { return active_; }
    double baseline() const { return base_.mean; }

private:
    Config cfg_;
    EwmaBaseline base_;
    int streak_ = 0;
    bool active_ = false;
};

}  // namespace pravega::detect
