#include "detect/slo.h"

#include <cctype>
#include <cstdlib>

namespace pravega::detect {

namespace {

void skipSpaces(const std::string& s, size_t& i) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string trim(const std::string& s) {
    size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
    return s.substr(a, b - a);
}

bool parseNumber(const std::string& s, size_t& i, double* out) {
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return false;
    i += static_cast<size_t>(end - begin);
    *out = v;
    return true;
}

/// Reads a time unit at `i`; returns the multiplier to milliseconds, or 0
/// when no unit is present.
double readMsUnit(const std::string& s, size_t& i) {
    if (s.compare(i, 2, "ns") == 0) { i += 2; return 1e-6; }
    if (s.compare(i, 2, "us") == 0) { i += 2; return 1e-3; }
    if (s.compare(i, 2, "ms") == 0) { i += 2; return 1.0; }
    if (i < s.size() && s[i] == 's') { i += 1; return 1e3; }
    return 0;
}

bool isLatencyAgg(SloRule::Agg agg) {
    return agg != SloRule::Agg::Rate && agg != SloRule::Agg::Value;
}

}  // namespace

const char* SloRule::aggName(Agg agg) {
    switch (agg) {
        case Agg::P50: return "p50";
        case Agg::P95: return "p95";
        case Agg::P99: return "p99";
        case Agg::Mean: return "mean";
        case Agg::Max: return "max";
        case Agg::Rate: return "rate";
        case Agg::Value: return "value";
    }
    return "unknown";
}

const char* SloRule::cmpName(Cmp cmp) {
    switch (cmp) {
        case Cmp::LT: return "<";
        case Cmp::LE: return "<=";
        case Cmp::GT: return ">";
        case Cmp::GE: return ">=";
    }
    return "?";
}

Result<SloRule> SloRule::parse(const std::string& text) {
    SloRule rule;
    rule.text = trim(text);
    const std::string& s = rule.text;

    size_t open = s.find('(');
    if (open == std::string::npos) {
        return Status(Err::InvalidArgument, "slo: expected '<agg>(<metric>)' in: " + s);
    }
    std::string agg = trim(s.substr(0, open));
    if (agg == "p50") rule.agg = Agg::P50;
    else if (agg == "p95") rule.agg = Agg::P95;
    else if (agg == "p99") rule.agg = Agg::P99;
    else if (agg == "mean") rule.agg = Agg::Mean;
    else if (agg == "max") rule.agg = Agg::Max;
    else if (agg == "rate") rule.agg = Agg::Rate;
    else if (agg == "value") rule.agg = Agg::Value;
    else return Status(Err::InvalidArgument, "slo: unknown aggregate '" + agg + "'");

    size_t close = s.find(')', open);
    if (close == std::string::npos) {
        return Status(Err::InvalidArgument, "slo: missing ')' in: " + s);
    }
    rule.metric = trim(s.substr(open + 1, close - open - 1));
    if (rule.metric.empty()) {
        return Status(Err::InvalidArgument, "slo: empty metric in: " + s);
    }

    size_t i = close + 1;
    skipSpaces(s, i);
    if (s.compare(i, 2, "<=") == 0) { rule.cmp = Cmp::LE; i += 2; }
    else if (s.compare(i, 2, ">=") == 0) { rule.cmp = Cmp::GE; i += 2; }
    else if (i < s.size() && s[i] == '<') { rule.cmp = Cmp::LT; i += 1; }
    else if (i < s.size() && s[i] == '>') { rule.cmp = Cmp::GT; i += 1; }
    else return Status(Err::InvalidArgument, "slo: expected comparator in: " + s);

    skipSpaces(s, i);
    if (!parseNumber(s, i, &rule.bound)) {
        return Status(Err::InvalidArgument, "slo: expected bound number in: " + s);
    }
    if (isLatencyAgg(rule.agg)) {
        double toMs = readMsUnit(s, i);
        if (toMs > 0) rule.bound *= toMs;  // unitless bound: already ms
    } else if (s.compare(i, 2, "/s") == 0) {
        i += 2;  // rate annotation, no scaling
    }

    skipSpaces(s, i);
    if (s.compare(i, 3, "for") == 0) {
        i += 3;
        skipSpaces(s, i);
        double w = 0;
        if (!parseNumber(s, i, &w)) {
            return Status(Err::InvalidArgument, "slo: expected window after 'for' in: " + s);
        }
        double toMs = readMsUnit(s, i);
        if (toMs <= 0) {
            return Status(Err::InvalidArgument,
                          "slo: window needs a time unit (ns/us/ms/s) in: " + s);
        }
        rule.window = static_cast<sim::Duration>(w * toMs * sim::kMillisecond);
    }
    skipSpaces(s, i);
    if (i != s.size()) {
        return Status(Err::InvalidArgument,
                      "slo: trailing input '" + s.substr(i) + "' in: " + s);
    }
    return rule;
}

SloGuardrail::SloGuardrail(SloRule rule, sim::Duration minWindow)
    : rule_(std::move(rule)), window_(std::max(rule_.window, minWindow)) {
    verdict_.rule = rule_.text;
}

bool SloGuardrail::holds(double value) const {
    switch (rule_.cmp) {
        case SloRule::Cmp::LT: return value < rule_.bound;
        case SloRule::Cmp::LE: return value <= rule_.bound;
        case SloRule::Cmp::GT: return value > rule_.bound;
        case SloRule::Cmp::GE: return value >= rule_.bound;
    }
    return true;
}

bool SloGuardrail::aggregate(const obs::MetricsRegistry& reg, sim::TimePoint now,
                             double* out) {
    const sim::TimePoint horizon = now - window_;
    if (rule_.agg == SloRule::Agg::Value) {
        const obs::Gauge* g = reg.findGauge(rule_.metric);
        if (g == nullptr || !std::isfinite(g->value())) return false;
        *out = g->value();
        return true;
    }
    if (rule_.agg == SloRule::Agg::Rate) {
        // Missing counter means zero events so far — still a valid rate.
        counterSnaps_.emplace_back(now, static_cast<double>(reg.counterValue(rule_.metric)));
        while (counterSnaps_.size() >= 2 && counterSnaps_[1].first <= horizon) {
            counterSnaps_.pop_front();
        }
        const auto& [t0, v0] = counterSnaps_.front();
        if (t0 > horizon || now <= t0) return false;  // window not filled yet
        *out = (counterSnaps_.back().second - v0) / sim::toSeconds(now - t0);
        return true;
    }
    const obs::LatencyHistogram* h = reg.findHistogram(rule_.metric);
    if (h == nullptr) return false;
    histSnaps_.emplace_back(now, *h);
    while (histSnaps_.size() >= 2 && histSnaps_[1].first <= horizon) {
        histSnaps_.pop_front();
    }
    const auto& [t0, snap0] = histSnaps_.front();
    if (t0 > horizon) return false;  // cold start: less than one window of data
    obs::LatencyHistogram delta = h->deltaSince(snap0);
    if (delta.count() == 0) return false;  // empty window: vacuous pass
    switch (rule_.agg) {
        case SloRule::Agg::P50: *out = delta.percentileMs(50); break;
        case SloRule::Agg::P95: *out = delta.percentileMs(95); break;
        case SloRule::Agg::P99: *out = delta.percentileMs(99); break;
        case SloRule::Agg::Mean: *out = delta.meanMs(); break;
        case SloRule::Agg::Max: *out = delta.maxMs(); break;
        default: return false;
    }
    return true;
}

std::optional<Fire> SloGuardrail::evaluate(const obs::MetricsRegistry& reg,
                                           sim::TimePoint now) {
    double value = 0;
    if (!aggregate(reg, now, &value)) return std::nullopt;
    lastValue_ = value;

    bool upperBound = rule_.cmp == SloRule::Cmp::LT || rule_.cmp == SloRule::Cmp::LE;
    if (verdict_.evaluations == 0) {
        verdict_.worst = value;
    } else {
        verdict_.worst = upperBound ? std::max(verdict_.worst, value)
                                    : std::min(verdict_.worst, value);
    }
    ++verdict_.evaluations;

    if (holds(value)) {
        breached_ = false;
        return std::nullopt;
    }
    ++verdict_.violations;
    verdict_.passed = false;
    if (verdict_.firstViolation < 0) verdict_.firstViolation = now;
    if (breached_) return std::nullopt;  // same episode, one alarm already out
    breached_ = true;
    ++verdict_.episodes;
    double excess = upperBound ? value - rule_.bound : rule_.bound - value;
    return Fire{AlarmKind::Slo, excess};
}

}  // namespace pravega::detect
