// SLO guardrails: declarative predicates over obs:: instruments, evaluated
// on the Monitor's sampling cadence over a trailing virtual-time window.
//
// Grammar (parsed by SloRule::parse):
//
//   <agg>(<metric>) <cmp> <bound>[unit] [for <window>]
//
//   agg    := p50 | p95 | p99 | mean | max   (histogram, windowed, ms)
//           | rate                           (counter delta / window, per-sec)
//           | value                          (gauge, instantaneous)
//   cmp    := < | <= | > | >=
//   unit   := ns | us | ms | s   (latency bounds; converted to ms)
//           | /s                 (rate bounds; annotation only)
//   window := <number><ns|us|ms|s>  (trailing window W; floors at one
//                                    sampling period when smaller)
//
// Examples:
//   p99(trace.write.2_wal_commit_ns) < 50ms for 200ms
//   rate(wal.log.appends) >= 1000/s for 300ms
//   value(store.op_queue.depth) < 10000 for 0ms
//
// Histogram aggregates are computed over the samples recorded inside the
// trailing window (via LatencyHistogram::deltaSince on ring-buffered
// snapshots), so a guardrail sees current behavior, not the run's
// cumulative history. Cold starts and empty windows are vacuous passes: a
// rule never fires before one full window of data exists, and a window
// with no recorded samples is skipped rather than treated as zero.
//
// A guardrail is both a soft alert (each breach episode emits an Alarm of
// kind Slo through the Monitor) and a hard assertion (the end-of-run
// SloVerdict says whether the rule ever fired; tests EXPECT on it).
#pragma once

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "detect/detectors.h"
#include "obs/metrics.h"

namespace pravega::detect {

struct SloRule {
    enum class Agg { P50, P95, P99, Mean, Max, Rate, Value };
    enum class Cmp { LT, LE, GT, GE };

    std::string text;    // the original rule string (alarm/verdict label)
    std::string metric;  // instrument name
    Agg agg = Agg::P99;
    Cmp cmp = Cmp::LT;
    double bound = 0;              // ms for latency aggs, /s for Rate, raw for Value
    sim::Duration window = 0;      // trailing window ("for W")

    static Result<SloRule> parse(const std::string& text);
    static const char* aggName(Agg agg);
    static const char* cmpName(Cmp cmp);
};

/// End-of-run verdict for one rule. `worst` is the most-violating value
/// observed (max for upper-bound rules, min for lower-bound rules); it is
/// only meaningful when `evaluations > 0`.
struct SloVerdict {
    std::string rule;
    bool passed = true;
    uint64_t evaluations = 0;
    uint64_t violations = 0;      // ticks in violation
    uint64_t episodes = 0;        // distinct breach episodes (== Slo alarms)
    sim::TimePoint firstViolation = -1;
    double worst = 0;
};

/// One rule's windowed evaluation state. The Monitor ticks it; it can also
/// be driven directly in tests.
class SloGuardrail {
public:
    SloGuardrail(SloRule rule, sim::Duration minWindow);

    /// Evaluates the rule against `reg` at virtual time `now`. Returns a
    /// Fire when a NEW breach episode starts (the Monitor turns it into an
    /// Alarm); episode end is visible via `breached()` going false.
    std::optional<Fire> evaluate(const obs::MetricsRegistry& reg, sim::TimePoint now);

    bool breached() const { return breached_; }
    const SloRule& rule() const { return rule_; }
    SloVerdict verdict() const { return verdict_; }
    /// The aggregate computed by the most recent successful evaluation.
    double lastValue() const { return lastValue_; }

private:
    bool aggregate(const obs::MetricsRegistry& reg, sim::TimePoint now, double* out);
    bool holds(double value) const;

    SloRule rule_;
    sim::Duration window_;  // rule window floored at the sampling period
    // Snapshot rings for windowed aggregates; front is oldest. One entry
    // per tick, trimmed to the window (plus one pre-window anchor).
    std::deque<std::pair<sim::TimePoint, obs::LatencyHistogram>> histSnaps_;
    std::deque<std::pair<sim::TimePoint, double>> counterSnaps_;
    bool breached_ = false;
    double lastValue_ = 0;
    SloVerdict verdict_;
};

}  // namespace pravega::detect
