#include "detect/detectors.h"

namespace pravega::detect {

const char* alarmKindName(AlarmKind kind) {
    switch (kind) {
        case AlarmKind::Spike: return "spike";
        case AlarmKind::Drop: return "drop";
        case AlarmKind::Collapse: return "collapse";
        case AlarmKind::Slo: return "slo";
    }
    return "unknown";
}

std::optional<Fire> EwmaDetector::update(double x) {
    if (!std::isfinite(x)) return std::nullopt;
    if (base_.samples == 0) {
        base_.update(x);
        return std::nullopt;
    }
    double z = base_.z(x);
    std::optional<Fire> fired;
    if (base_.samples >= cfg_.minSamples) {
        if (!active_ && (z > cfg_.k || (cfg_.twoSided && z < -cfg_.k))) {
            active_ = true;
            fired = Fire{z > 0 ? AlarmKind::Spike : AlarmKind::Drop, z};
        } else if (active_ && std::fabs(z) < cfg_.rearmK) {
            active_ = false;
        }
    }
    // Freeze the baseline while in alarm so a long fault is not absorbed.
    if (!active_) base_.update(x);
    return fired;
}

std::optional<Fire> CusumDetector::update(double x) {
    if (!std::isfinite(x)) return std::nullopt;
    if (base_.samples == 0) {
        base_.update(x);
        return std::nullopt;
    }
    double z = base_.z(x);
    std::optional<Fire> fired;
    if (base_.samples >= cfg_.minSamples) {
        gPos_ = std::max(0.0, gPos_ + z - cfg_.k);
        gNeg_ = cfg_.twoSided ? std::max(0.0, gNeg_ - z - cfg_.k) : 0.0;
        if (!active_ && (gPos_ > cfg_.h || gNeg_ > cfg_.h)) {
            active_ = true;
            fired = Fire{gPos_ >= gNeg_ ? AlarmKind::Spike : AlarmKind::Drop,
                         std::max(gPos_, gNeg_)};
            gPos_ = gNeg_ = 0;  // restart accumulation after the decision
        } else if (active_ && std::fabs(z) < 1.0) {
            active_ = false;
            gPos_ = gNeg_ = 0;
        }
    }
    if (!active_) base_.update(x);
    return fired;
}

std::optional<Fire> RateCollapseDetector::update(double x) {
    if (!std::isfinite(x)) return std::nullopt;
    bool armed = base_.samples >= cfg_.minSamples && base_.mean >= cfg_.minBaseline;
    bool collapsed = armed && x < cfg_.collapseFraction * base_.mean;
    std::optional<Fire> fired;
    if (collapsed) {
        ++streak_;
        if (!active_ && streak_ >= cfg_.consecutive) {
            active_ = true;
            fired = Fire{AlarmKind::Collapse, static_cast<double>(streak_)};
        }
    } else {
        streak_ = 0;
        active_ = false;
        // Only healthy samples feed the baseline: the collapse itself must
        // not drag the expected rate toward zero.
        base_.update(x);
    }
    return fired;
}

}  // namespace pravega::detect
