// Detection scoring: align a Monitor's alarm log against the ground-truth
// fault timeline of a ChaosSchedule and compute, per fault class and
// overall, detection latency, precision, and recall.
//
//   - A fault window is DETECTED when at least one alarm fires inside
//     [start, end + grace]; detection latency is first such alarm − start.
//   - An alarm is MATCHED when it falls inside any fault window (+grace);
//     unmatched alarms are false positives.
//   - recall    = detected faults / faults       (per class and overall)
//   - precision = matched alarms / total alarms  (overall; 1.0 when the
//                 run produced no alarms at all)
//
// The grace period covers faults whose observable signature outlives the
// injected window (e.g. a healed partition whose queued timeouts are still
// draining) — without it, a perfectly correct late-clearing alarm would be
// scored as a false positive.
#pragma once

#include <string>
#include <vector>

#include "detect/detectors.h"
#include "sim/time.h"

namespace pravega::detect {

class Monitor;

/// One ground-truth fault interval. `a`/`b` are fault-kind-specific targets
/// (bookie index, partition side) and -1 when not applicable.
struct FaultWindow {
    std::string klass;  // "bookie-crash", "partition", "link-degrade", ...
    int a = -1;
    int b = -1;
    sim::TimePoint start = 0;
    sim::TimePoint end = 0;
};

struct ScoreConfig {
    /// Alarms up to this long after a fault window ends still match it.
    sim::Duration grace = sim::msec(200);
};

/// Per-fault-class roll-up.
struct ClassScore {
    std::string klass;
    int faults = 0;
    int detected = 0;
    double recall = 0;       // detected / faults
    double meanDetectMs = 0; // mean detection latency over detected faults
    double maxDetectMs = 0;
};

struct ScoreReport {
    std::vector<ClassScore> perClass;  // insertion order of first appearance
    int faults = 0;
    int detected = 0;
    int totalAlarms = 0;
    int matchedAlarms = 0;
    int falsePositives = 0;
    double recall = 0;     // overall: detected / faults (1.0 when faults == 0)
    double precision = 0;  // matched / total alarms (1.0 when no alarms)
    double meanDetectMs = 0;
    double maxDetectMs = 0;

    /// Recall for one class; 1.0 when the class has no faults (vacuous).
    double classRecall(const std::string& klass) const;

    /// Deterministic JSON object mirroring the fields above.
    std::string toJson() const;
};

/// Scores `alarms` (detector fires AND guardrail breaches) against the
/// ground-truth `faults`. Both inputs are virtual-time ordered as produced
/// by ChaosSchedule::faultWindows() and Monitor::alarms().
ScoreReport score(const std::vector<FaultWindow>& faults, const std::vector<Alarm>& alarms,
                  ScoreConfig cfg = {});

/// Assembles one run object for the bench "detection" section:
/// {"series":..,"ground_truth":..,"alarms":..,"guardrails":..,"scores":..,
///  "ticks":..}. `groundTruthJson` comes from ChaosSchedule::groundTruthJson()
/// (pass "null" for fault-free control runs).
std::string detectionRunJson(const std::string& series, const Monitor& monitor,
                             const std::string& groundTruthJson, const ScoreReport& scores);

}  // namespace pravega::detect
