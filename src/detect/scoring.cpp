#include "detect/scoring.h"

#include <algorithm>
#include <cstdio>

#include "detect/monitor.h"

namespace pravega::detect {

namespace {

std::string fmtDouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

double ScoreReport::classRecall(const std::string& klass) const {
    for (const ClassScore& c : perClass) {
        if (c.klass == klass) return c.recall;
    }
    return 1.0;  // no faults of this class: vacuously detected
}

ScoreReport score(const std::vector<FaultWindow>& faults, const std::vector<Alarm>& alarms,
                  ScoreConfig cfg) {
    ScoreReport rep;
    rep.faults = static_cast<int>(faults.size());
    rep.totalAlarms = static_cast<int>(alarms.size());

    std::vector<bool> alarmMatched(alarms.size(), false);
    double latencySumMs = 0;
    int latencyCount = 0;

    for (const FaultWindow& fw : faults) {
        // First alarm inside [start, end + grace] detects this fault.
        sim::TimePoint firstHit = -1;
        for (size_t i = 0; i < alarms.size(); ++i) {
            const Alarm& a = alarms[i];
            if (a.at < fw.start || a.at > fw.end + cfg.grace) continue;
            alarmMatched[i] = true;
            if (firstHit < 0) firstHit = a.at;
        }

        ClassScore* cs = nullptr;
        for (ClassScore& c : rep.perClass) {
            if (c.klass == fw.klass) { cs = &c; break; }
        }
        if (cs == nullptr) {
            rep.perClass.push_back(ClassScore{fw.klass});
            cs = &rep.perClass.back();
        }
        ++cs->faults;
        if (firstHit >= 0) {
            ++cs->detected;
            ++rep.detected;
            double latMs = sim::toMillis(firstHit - fw.start);
            latencySumMs += latMs;
            ++latencyCount;
            // Reuse meanDetectMs as a running sum until the final pass.
            cs->meanDetectMs += latMs;
            cs->maxDetectMs = std::max(cs->maxDetectMs, latMs);
            rep.maxDetectMs = std::max(rep.maxDetectMs, latMs);
        }
    }

    for (ClassScore& c : rep.perClass) {
        c.recall = c.faults > 0 ? static_cast<double>(c.detected) / c.faults : 1.0;
        c.meanDetectMs = c.detected > 0 ? c.meanDetectMs / c.detected : 0;
    }
    for (bool m : alarmMatched) {
        if (m) ++rep.matchedAlarms;
    }
    rep.falsePositives = rep.totalAlarms - rep.matchedAlarms;
    rep.recall = rep.faults > 0 ? static_cast<double>(rep.detected) / rep.faults : 1.0;
    rep.precision =
        rep.totalAlarms > 0 ? static_cast<double>(rep.matchedAlarms) / rep.totalAlarms : 1.0;
    rep.meanDetectMs = latencyCount > 0 ? latencySumMs / latencyCount : 0;
    return rep;
}

std::string ScoreReport::toJson() const {
    std::string out = "{\"faults\":";
    out += std::to_string(faults);
    out += ",\"detected\":";
    out += std::to_string(detected);
    out += ",\"total_alarms\":";
    out += std::to_string(totalAlarms);
    out += ",\"matched_alarms\":";
    out += std::to_string(matchedAlarms);
    out += ",\"false_positives\":";
    out += std::to_string(falsePositives);
    out += ",\"recall\":";
    out += fmtDouble(recall);
    out += ",\"precision\":";
    out += fmtDouble(precision);
    out += ",\"mean_detect_ms\":";
    out += fmtDouble(meanDetectMs);
    out += ",\"max_detect_ms\":";
    out += fmtDouble(maxDetectMs);
    out += ",\"per_class\":[";
    for (size_t i = 0; i < perClass.size(); ++i) {
        const ClassScore& c = perClass[i];
        if (i > 0) out += ",";
        out += "{\"class\":\"";
        out += c.klass;
        out += "\",\"faults\":";
        out += std::to_string(c.faults);
        out += ",\"detected\":";
        out += std::to_string(c.detected);
        out += ",\"recall\":";
        out += fmtDouble(c.recall);
        out += ",\"mean_detect_ms\":";
        out += fmtDouble(c.meanDetectMs);
        out += ",\"max_detect_ms\":";
        out += fmtDouble(c.maxDetectMs);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string detectionRunJson(const std::string& series, const Monitor& monitor,
                             const std::string& groundTruthJson, const ScoreReport& scores) {
    std::string out = "{\"series\":\"";
    out += series;
    out += "\",\"ticks\":";
    out += std::to_string(monitor.ticks());
    out += ",\"ground_truth\":";
    out += groundTruthJson.empty() ? std::string("null") : groundTruthJson;
    out += ",\"alarms\":";
    out += monitor.alarmsJson();
    out += ",\"guardrails\":";
    out += monitor.guardrailsJson();
    out += ",\"scores\":";
    out += scores.toJson();
    out += "}";
    return out;
}

}  // namespace pravega::detect
