// detect::Monitor — the virtual-time sampler that turns the obs:: registry
// into detector input. A weak self-rearming timer polls configured probes
// every `period` of virtual time, extracts one scalar sample per probe
// (counter rate, gauge value, meter rate, or a windowed histogram
// percentile via LatencyHistogram::deltaSince), and feeds the probe's
// attached detectors. Detector fires become Alarms with onset/clear times;
// SLO guardrails are evaluated on the same cadence.
//
// Determinism: probes and guardrails are stored and iterated in insertion
// order, samples derive from virtual time only, and the timer is WEAK so a
// monitor never keeps `runUntilIdle` busy — same-seed runs produce
// byte-identical alarm logs (asserted in tests/detect_test.cpp).
//
// Sampling edge cases are skips, not zeros: the first tick of a
// counter-rate probe (no previous value), an empty histogram window, a
// missing instrument, or a non-finite gauge produce NO sample for that
// tick (counted in `detect.samples.skipped`), so cold starts and idle
// phases cannot poison a baseline or fake a rate collapse.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/detectors.h"
#include "detect/slo.h"
#include "obs/metrics.h"
#include "sim/machine.h"

namespace pravega::detect {

struct ProbeConfig {
    enum class Source {
        CounterRate,  // (counter delta) / (tick dt), per second
        Gauge,        // instantaneous gauge value
        MeterRate,    // RateMeter::perSecond()
        HistP50Ms,    // p50 of samples recorded since the previous tick, ms
        HistP99Ms,    // p99 of samples recorded since the previous tick, ms
    };

    std::string metric;
    Source source = Source::CounterRate;

    // Attached detectors (any subset).
    std::optional<EwmaDetector::Config> ewma;
    std::optional<CusumDetector::Config> cusum;
    std::optional<RateCollapseDetector::Config> rateCollapse;
};

class Monitor {
public:
    struct Config {
        sim::Duration period = sim::msec(10);
        /// Scales detector warmup: probes added by `addDefaultWritePathProbes`
        /// arm after `warmupSamples` baseline samples.
        int warmupSamples = 40;
    };

    explicit Monitor(sim::Core& exec) : Monitor(exec, Config()) {}
    Monitor(sim::Core& exec, Config cfg);
    ~Monitor();
    Monitor(const Monitor&) = delete;
    Monitor& operator=(const Monitor&) = delete;

    void addProbe(ProbeConfig probe);
    /// Parses and installs a guardrail rule; aborts on grammar errors (a
    /// bad rule is a programming bug, not a runtime condition).
    void addGuardrail(const std::string& ruleText);
    void addGuardrail(SloRule rule);

    /// The standard write-path fault battery: WAL commit-latency spike
    /// (EWMA + CUSUM on windowed p99), bookie unavailability-rejection and
    /// network partition-drop rate spikes, append-rate collapse, and LTS
    /// flush-failure / backlog probes. This is the "default detector
    /// settings" profile scored by bench_fig14_detection.
    void addDefaultWritePathProbes();

    /// Starts sampling; idempotent. Samples begin one period from now.
    void start();
    /// Stops sampling and closes still-active alarms at the current time;
    /// idempotent. Call before draining a bench world so the end-of-run
    /// traffic ramp-down is not scored as a rate collapse.
    void stop();
    bool running() const { return running_; }

    const std::vector<Alarm>& alarms() const { return alarms_; }
    /// Alarms excluding guardrail (Slo) fires — the detector-only view.
    size_t detectorAlarmCount() const;
    std::vector<SloVerdict> guardrailVerdicts() const;
    /// True when every guardrail held over the whole run (hard-assert form).
    bool guardrailsPassed() const;
    uint64_t ticks() const { return ticks_; }

    /// Deterministic JSON array of the alarm log:
    /// [{"t_ms":..,"detector":"..","metric":"..","kind":"..","value":..,
    ///   "score":..,"cleared_ms":..}, ...]  (cleared_ms -1 = still active).
    std::string alarmsJson() const;
    /// Deterministic JSON array of guardrail verdicts.
    std::string guardrailsJson() const;

private:
    struct ProbeState {
        ProbeConfig cfg;
        std::optional<EwmaDetector> ewma;
        std::optional<CusumDetector> cusum;
        std::optional<RateCollapseDetector> collapse;
        // Previous-tick state for delta sources.
        bool hasPrev = false;
        double prevCounter = 0;
        obs::LatencyHistogram prevHist;
        // Open-alarm index per detector (-1 = none), for clear stamping.
        int openEwma = -1;
        int openCusum = -1;
        int openCollapse = -1;
    };
    struct RailState {
        SloGuardrail rail;
        int open = -1;
    };

    void tick();
    std::optional<double> sample(ProbeState& ps);
    void feed(ProbeState& ps, double x);
    void record(const std::string& detector, const std::string& metric, Fire fire,
                double value, int* openIdx);
    void stamp(int* openIdx, bool stillActive);

    sim::Core& exec_;
    Config cfg_;
    std::vector<std::unique_ptr<ProbeState>> probes_;
    std::vector<std::unique_ptr<RailState>> rails_;
    std::vector<Alarm> alarms_;
    bool running_ = false;
    bool armed_ = false;  // a timer chain is in flight
    sim::TimePoint lastTick_ = 0;
    uint64_t ticks_ = 0;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    obs::Counter& mTicks_;
    obs::Counter& mAlarms_;
    obs::Counter& mSkipped_;
};

}  // namespace pravega::detect
