#include "detect/monitor.h"

#include <cstdio>
#include <cstdlib>

namespace pravega::detect {

namespace {

std::string fmtDouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

Monitor::Monitor(sim::Core& exec, Config cfg)
    : exec_(exec),
      cfg_(cfg),
      mTicks_(exec.metrics().counter("detect.ticks")),
      mAlarms_(exec.metrics().counter("detect.alarms")),
      mSkipped_(exec.metrics().counter("detect.samples.skipped")) {}

Monitor::~Monitor() { *alive_ = false; }

void Monitor::addProbe(ProbeConfig probe) {
    auto ps = std::make_unique<ProbeState>();
    ps->cfg = std::move(probe);
    if (ps->cfg.ewma) ps->ewma.emplace(*ps->cfg.ewma);
    if (ps->cfg.cusum) ps->cusum.emplace(*ps->cfg.cusum);
    if (ps->cfg.rateCollapse) ps->collapse.emplace(*ps->cfg.rateCollapse);
    probes_.push_back(std::move(ps));
}

void Monitor::addGuardrail(const std::string& ruleText) {
    Result<SloRule> rule = SloRule::parse(ruleText);
    if (!rule.isOk()) {
        std::fprintf(stderr, "detect: bad guardrail: %s\n",
                     rule.status().toString().c_str());
        std::abort();
    }
    addGuardrail(std::move(rule).value());
}

void Monitor::addGuardrail(SloRule rule) {
    rails_.push_back(std::make_unique<RailState>(
        RailState{SloGuardrail(std::move(rule), cfg_.period), -1}));
}

void Monitor::addDefaultWritePathProbes() {
    const int warmup = cfg_.warmupSamples;

    // WAL commit-latency spike: per-tick windowed p99 of the commit stage.
    // EWMA catches step changes (partition stall release, crashed-bookie
    // timeout), CUSUM the slow drifts (link degradation). Upward only: a
    // latency drop is not a failure.
    {
        ProbeConfig p;
        p.metric = "trace.write.2_wal_commit_ns";
        p.source = ProbeConfig::Source::HistP99Ms;
        EwmaDetector::Config e;
        e.k = 6, e.rearmK = 3, e.minSamples = warmup, e.twoSided = false;
        e.relMinSigma = 0.25, e.minSigma = 0.05;  // ms
        p.ewma = e;
        CusumDetector::Config c;
        c.h = 12, c.k = 0.5, c.minSamples = warmup, c.twoSided = false;
        c.relMinSigma = 0.25, c.minSigma = 0.05;
        p.cusum = c;
        addProbe(std::move(p));
    }
    // Zero-baseline burst metrics: in a healthy run these rates are exactly
    // 0, so the absolute sigma floor IS the sensitivity — one event per
    // 10ms tick reads 100/s and clears k*minSigma = 90/s.
    for (const char* metric : {"wal.bookie.reject.unavailable", "net.drop.partition",
                               "store.writer.flush_failures"}) {
        ProbeConfig p;
        p.metric = metric;
        p.source = ProbeConfig::Source::CounterRate;
        EwmaDetector::Config e;
        e.k = 6, e.rearmK = 3, e.minSamples = warmup, e.twoSided = false;
        e.relMinSigma = 0, e.minSigma = 15.0;  // per-sec
        p.ewma = e;
        addProbe(std::move(p));
    }
    // Append-rate collapse: the WAL going flat while traffic is offered.
    {
        ProbeConfig p;
        p.metric = "wal.log.appends";
        p.source = ProbeConfig::Source::CounterRate;
        RateCollapseDetector::Config r;
        r.minBaseline = 200.0, r.collapseFraction = 0.1, r.consecutive = 8;
        r.minSamples = warmup;
        p.rateCollapse = r;
        addProbe(std::move(p));
    }
    // LTS backlog growth (slowdowns queue work behind the object store).
    {
        ProbeConfig p;
        p.metric = "sim.lts.backlog_sec";
        p.source = ProbeConfig::Source::Gauge;
        EwmaDetector::Config e;
        e.k = 6, e.rearmK = 3, e.minSamples = warmup, e.twoSided = false;
        e.relMinSigma = 1.0, e.minSigma = 0.02;  // seconds of backlog
        p.ewma = e;
        addProbe(std::move(p));
    }
    // LTS slowdown: windowed p99 of flush duration. The fault decorator's
    // extra per-op latency lands here (it wraps the storage the writer
    // calls), while sim.lts.op_ns — inside the model — would miss it.
    // Flushes run on the tiering cadence (tens of ms apart), so most ticks
    // see an empty window: samples are SPARSE and this probe cannot reuse
    // the tick-based warmup — it would never arm. Healthy flush latency is
    // dominated by the object store's fixed op latency (near-deterministic),
    // so a short warmup with a fast-adapting, winsorized baseline is safe:
    // the clamp keeps one fault spike from inflating sigma and masking the
    // next window.
    {
        ProbeConfig p;
        p.metric = "store.writer.flush_ns";
        p.source = ProbeConfig::Source::HistP99Ms;
        EwmaDetector::Config e;
        e.alpha = 0.25, e.k = 3.5, e.rearmK = 2, e.minSamples = 6;
        e.twoSided = false, e.winsorK = 3;
        e.relMinSigma = 0.05, e.minSigma = 0.5;  // ms
        p.ewma = e;
        CusumDetector::Config c;
        c.alpha = 0.25, c.h = 8, c.k = 0.5, c.minSamples = 6;
        c.twoSided = false, c.winsorK = 3;
        c.relMinSigma = 0.05, c.minSigma = 0.5;
        p.cusum = c;
        addProbe(std::move(p));
    }
}

void Monitor::start() {
    if (running_) return;
    running_ = true;
    lastTick_ = exec_.now();
    if (armed_) return;
    armed_ = true;
    auto alive = alive_;
    exec_.scheduleWeak(cfg_.period, [this, alive]() {
        if (*alive) tick();
    });
}

void Monitor::stop() {
    if (!running_) return;
    running_ = false;
    // Close the books: still-active excursions get the stop time as their
    // clear time so the alarm log has no dangling intervals.
    sim::TimePoint now = exec_.now();
    for (Alarm& a : alarms_) {
        if (a.clearedAt < 0) a.clearedAt = now;
    }
    for (auto& ps : probes_) ps->openEwma = ps->openCusum = ps->openCollapse = -1;
    for (auto& rs : rails_) rs->open = -1;
}

void Monitor::tick() {
    if (!running_) {
        armed_ = false;
        return;
    }
    sim::TimePoint now = exec_.now();
    for (auto& ps : probes_) {
        std::optional<double> x = sample(*ps);
        if (!x) {
            mSkipped_.inc();
            continue;
        }
        feed(*ps, *x);
    }
    for (auto& rs : rails_) {
        std::optional<Fire> fired = rs->rail.evaluate(exec_.machine().mergedMetrics(), now);
        if (fired) {
            record("slo", rs->rail.rule().text, *fired, rs->rail.lastValue(), &rs->open);
        } else {
            stamp(&rs->open, rs->rail.breached());
        }
    }
    ++ticks_;
    mTicks_.inc();
    lastTick_ = now;
    auto alive = alive_;
    exec_.scheduleWeak(cfg_.period, [this, alive]() {
        if (*alive) tick();
    });
}

std::optional<double> Monitor::sample(ProbeState& ps) {
    const obs::MetricsRegistry& reg = exec_.machine().mergedMetrics();
    double dtSec = sim::toSeconds(exec_.now() - lastTick_);
    switch (ps.cfg.source) {
        case ProbeConfig::Source::CounterRate: {
            double cur = static_cast<double>(reg.counterValue(ps.cfg.metric));
            if (!ps.hasPrev) {
                ps.hasPrev = true;
                ps.prevCounter = cur;
                return std::nullopt;  // cold start: no rate yet
            }
            double delta = cur - ps.prevCounter;
            ps.prevCounter = cur;
            if (dtSec <= 0) return std::nullopt;
            return delta / dtSec;
        }
        case ProbeConfig::Source::Gauge: {
            const obs::Gauge* g = reg.findGauge(ps.cfg.metric);
            if (g == nullptr || !std::isfinite(g->value())) return std::nullopt;
            return g->value();
        }
        case ProbeConfig::Source::MeterRate: {
            const obs::RateMeter* m = reg.findMeter(ps.cfg.metric);
            if (m == nullptr) return std::nullopt;
            return m->perSecond();
        }
        case ProbeConfig::Source::HistP50Ms:
        case ProbeConfig::Source::HistP99Ms: {
            const obs::LatencyHistogram* h = reg.findHistogram(ps.cfg.metric);
            if (h == nullptr) return std::nullopt;
            if (!ps.hasPrev) {
                ps.hasPrev = true;
                ps.prevHist = *h;
                return std::nullopt;
            }
            obs::LatencyHistogram delta = h->deltaSince(ps.prevHist);
            ps.prevHist = *h;
            if (delta.count() == 0) return std::nullopt;  // empty window
            return ps.cfg.source == ProbeConfig::Source::HistP50Ms
                       ? delta.percentileMs(50)
                       : delta.percentileMs(99);
        }
    }
    return std::nullopt;
}

void Monitor::feed(ProbeState& ps, double x) {
    if (ps.ewma) {
        std::optional<Fire> fired = ps.ewma->update(x);
        if (fired) record("ewma", ps.cfg.metric, *fired, x, &ps.openEwma);
        else stamp(&ps.openEwma, ps.ewma->active());
    }
    if (ps.cusum) {
        std::optional<Fire> fired = ps.cusum->update(x);
        if (fired) record("cusum", ps.cfg.metric, *fired, x, &ps.openCusum);
        else stamp(&ps.openCusum, ps.cusum->active());
    }
    if (ps.collapse) {
        std::optional<Fire> fired = ps.collapse->update(x);
        if (fired) record("rate-collapse", ps.cfg.metric, *fired, x, &ps.openCollapse);
        else stamp(&ps.openCollapse, ps.collapse->active());
    }
}

void Monitor::record(const std::string& detector, const std::string& metric, Fire fire,
                     double value, int* openIdx) {
    Alarm a;
    a.at = exec_.now();
    a.detector = detector;
    a.metric = metric;
    a.kind = fire.kind;
    a.value = value;
    a.score = fire.score;
    alarms_.push_back(std::move(a));
    *openIdx = static_cast<int>(alarms_.size()) - 1;
    mAlarms_.inc();
}

void Monitor::stamp(int* openIdx, bool stillActive) {
    if (*openIdx < 0 || stillActive) return;
    alarms_[static_cast<size_t>(*openIdx)].clearedAt = exec_.now();
    *openIdx = -1;
}

size_t Monitor::detectorAlarmCount() const {
    size_t n = 0;
    for (const Alarm& a : alarms_) {
        if (a.kind != AlarmKind::Slo) ++n;
    }
    return n;
}

std::vector<SloVerdict> Monitor::guardrailVerdicts() const {
    std::vector<SloVerdict> out;
    out.reserve(rails_.size());
    for (const auto& rs : rails_) out.push_back(rs->rail.verdict());
    return out;
}

bool Monitor::guardrailsPassed() const {
    for (const auto& rs : rails_) {
        if (!rs->rail.verdict().passed) return false;
    }
    return true;
}

std::string Monitor::alarmsJson() const {
    std::string out = "[";
    for (size_t i = 0; i < alarms_.size(); ++i) {
        const Alarm& a = alarms_[i];
        if (i > 0) out += ",";
        out += "{\"t_ms\":";
        out += fmtDouble(sim::toMillis(a.at));
        out += ",\"detector\":\"";
        out += jsonEscape(a.detector);
        out += "\",\"metric\":\"";
        out += jsonEscape(a.metric);
        out += "\",\"kind\":\"";
        out += alarmKindName(a.kind);
        out += "\",\"value\":";
        out += fmtDouble(a.value);
        out += ",\"score\":";
        out += fmtDouble(a.score);
        out += ",\"cleared_ms\":";
        out += a.clearedAt < 0 ? std::string("-1") : fmtDouble(sim::toMillis(a.clearedAt));
        out += "}";
    }
    out += "]";
    return out;
}

std::string Monitor::guardrailsJson() const {
    std::string out = "[";
    bool first = true;
    for (const auto& rs : rails_) {
        SloVerdict v = rs->rail.verdict();
        if (!first) out += ",";
        first = false;
        out += "{\"rule\":\"";
        out += jsonEscape(v.rule);
        out += "\",\"passed\":";
        out += v.passed ? "true" : "false";
        out += ",\"evaluations\":";
        out += std::to_string(v.evaluations);
        out += ",\"violations\":";
        out += std::to_string(v.violations);
        out += ",\"episodes\":";
        out += std::to_string(v.episodes);
        out += ",\"first_violation_ms\":";
        out += v.firstViolation < 0 ? std::string("-1")
                                    : fmtDouble(sim::toMillis(v.firstViolation));
        out += ",\"worst\":";
        out += fmtDouble(v.worst);
        out += "}";
    }
    out += "]";
    return out;
}

}  // namespace pravega::detect
