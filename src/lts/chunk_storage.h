// Long-Term Storage: chunk storage interface and backends (§4.3).
//
// Pravega stores segment data in LTS as *chunks* — contiguous ranges of
// segment bytes with no extra metadata inside. The interface below is what
// the storage writer programs against; backends model the paper's EFS/S3
// (SimulatedObjectStorage), local testing (InMemory, FileSystem) and the
// paper's metadata-only test feature used in Fig 7a (NoOp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/buf_chain.h"
#include "common/bytes.h"
#include "common/result.h"
#include "sim/future.h"
#include "sim/models.h"

namespace pravega::lts {

struct ChunkInfo {
    std::string name;
    uint64_t length = 0;
};

/// Abstract chunk store. Chunks are created once, appended while open, and
/// immutable after that (mirrors object-store semantics: Pravega never
/// rewrites LTS data).
class ChunkStorage {
public:
    virtual ~ChunkStorage() = default;

    virtual sim::Future<sim::Unit> create(const std::string& name) = 0;
    /// Appends a fragment chain; backends consume per-fragment (the
    /// terminal media write), never flattening the chain first.
    virtual sim::Future<sim::Unit> append(const std::string& name, BufChain data) = 0;
    /// Reads up to `length` bytes from `offset`. The out-of-range contract
    /// is uniform across every backend: `offset > size` fails with
    /// Err::BadOffset, `offset == size` returns an empty buffer, and a
    /// length past EOF is clamped to the available bytes (a short read).
    virtual sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                        uint64_t length) = 0;
    virtual sim::Future<sim::Unit> remove(const std::string& name) = 0;
    virtual Result<ChunkInfo> stat(const std::string& name) const = 0;

    virtual uint64_t totalBytes() const = 0;
    /// Seconds of queued work; drives ingest throttling (§4.3). Zero for
    /// backends without a timing model.
    virtual double backlogSeconds() const { return 0.0; }
    /// Number of read() calls issued against this backend. Lets tests
    /// assert fetch coalescing (N readers, one object-store read).
    virtual uint64_t readOps() const { return 0; }
};

/// In-memory backend: exact data semantics, no timing model. The reference
/// backend for unit tests.
class InMemoryChunkStorage : public ChunkStorage {
public:
    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;
    uint64_t totalBytes() const override { return totalBytes_; }
    uint64_t readOps() const override { return readOps_; }

private:
    std::map<std::string, Bytes> chunks_;
    uint64_t totalBytes_ = 0;
    uint64_t readOps_ = 0;
};

/// Object-store backend: in-memory data plus an ObjectStoreModel timing
/// model (per-op latency, per-stream and aggregate throughput caps). This
/// is the stand-in for AWS EFS / S3 in every benchmark.
class SimulatedObjectStorage : public ChunkStorage {
public:
    SimulatedObjectStorage(sim::Core& exec, sim::ObjectStoreModel::Config cfg)
        : model_(exec, cfg) {}

    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;
    uint64_t totalBytes() const override { return mem_.totalBytes(); }
    double backlogSeconds() const override { return model_.backlogSeconds(); }
    uint64_t readOps() const override { return mem_.readOps(); }

    const sim::ObjectStoreModel& model() const { return model_; }

private:
    InMemoryChunkStorage mem_;
    sim::ObjectStoreModel model_;
};

/// Filesystem backend: real files under a root directory (synchronous I/O
/// wrapped in ready futures). Used by the examples for actual persistence.
class FileSystemChunkStorage : public ChunkStorage {
public:
    explicit FileSystemChunkStorage(std::string rootDir);

    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;
    uint64_t totalBytes() const override { return totalBytes_; }
    uint64_t readOps() const override { return readOps_; }

private:
    std::string pathFor(const std::string& name) const;
    std::string root_;
    std::map<std::string, uint64_t> sizes_;
    uint64_t totalBytes_ = 0;
    uint64_t readOps_ = 0;
};

/// Metadata-only backend: accepts and immediately discards data. This is
/// the paper's "NoOp LTS" test feature (§5.4) used to show the LTS
/// bandwidth bottleneck.
class NoOpChunkStorage : public ChunkStorage {
public:
    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;
    uint64_t totalBytes() const override { return 0; }
    uint64_t readOps() const override { return readOps_; }

private:
    std::map<std::string, uint64_t> sizes_;
    uint64_t readOps_ = 0;
};

}  // namespace pravega::lts
