#include "lts/archive_tier.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/hash.h"

namespace pravega::lts {

using sim::Future;
using sim::Unit;

ArchiveTierChunkStorage::ArchiveTierChunkStorage(sim::Core& exec, ChunkStorage& primary,
                                                 Config cfg)
    : exec_(exec),
      primary_(primary),
      cfg_(cfg),
      tape_(exec, cfg.tape),
      mMigrations_(exec.metrics().counter("lts.archive.migrations")),
      mMigratedBytes_(exec.metrics().counter("lts.archive.migrated_bytes")),
      mReads_(exec.metrics().counter("lts.archive.reads")),
      mReadBytes_(exec.metrics().counter("lts.archive.read_bytes")),
      mArchivedBytes_(exec.metrics().gauge("lts.archive.bytes")),
      mPrimaryBytes_(exec.metrics().gauge("lts.archive.primary_bytes")) {
    scheduleScan();
}

uint64_t ArchiveTierChunkStorage::cartridgeFor(const std::string& name) const {
    // Hash the segment prefix (chunk names are "seg-<id>-<offset>"), so one
    // segment's chunks land on one cartridge: catch-up reads pay one mount.
    size_t dash = name.find_last_of('-');
    return fnv1a64(std::string_view(name).substr(0, dash == std::string::npos
                                                        ? name.size()
                                                        : dash));
}

void ArchiveTierChunkStorage::scheduleScan() {
    if (cfg_.scanInterval <= 0) return;
    // Weak timer: the scan must not keep runUntilIdle() from terminating.
    // The liveness token guards against the tier being destroyed while the
    // timer (owned by the machine) is still in flight.
    exec_.scheduleWeak(cfg_.scanInterval, [this, alive = alive_] {
        if (!*alive) return;
        scanNow();
        scheduleScan();
    });
}

Future<Unit> ArchiveTierChunkStorage::create(const std::string& name) {
    return primary_.create(name).then([this, name](const Unit& u) {
        Meta& m = meta_[name];
        m.lastAppend = exec_.now();
        return u;
    });
}

Future<Unit> ArchiveTierChunkStorage::append(const std::string& name, BufChain data) {
    auto it = meta_.find(name);
    if (it == meta_.end()) {
        // Chunk predates this layer (mixed stack): pass through untouched.
        return primary_.append(name, std::move(data));
    }
    const uint64_t nbytes = data.size();
    it->second.lastAppend = exec_.now();
    if (it->second.archived) {
        // Rare append-after-migrate: the data lands on tape directly.
        auto stored = archMem_.append(name, std::move(data));
        // archMem_ is the always-ready InMemoryChunkStorage; the synchronous
        // bookkeeping below depends on that.
        assert(stored.isReady());
        if (!stored.result().isOk()) return stored;
        it->second.bytes += nbytes;
        archivedBytes_ += nbytes;
        mArchivedBytes_.set(static_cast<double>(archivedBytes_));
        return tape_.access(cartridgeFor(name), nbytes);
    }
    return primary_.append(name, std::move(data)).then([this, name, nbytes](const Unit& u) {
        auto mit = meta_.find(name);
        if (mit != meta_.end()) {
            mit->second.bytes += nbytes;
            primaryBytes_ += nbytes;
            mPrimaryBytes_.set(static_cast<double>(primaryBytes_));
        }
        return u;
    });
}

Future<SharedBuf> ArchiveTierChunkStorage::read(const std::string& name, uint64_t offset,
                                                uint64_t length) {
    auto it = meta_.find(name);
    if (it == meta_.end() || !it->second.archived) {
        return primary_.read(name, offset, length);
    }
    ++archReadOps_;
    mReads_.inc();
    auto data = archMem_.read(name, offset, length);
    // archMem_ is the always-ready InMemoryChunkStorage: resolving result()
    // here is only safe because the inner future can never be pending.
    assert(data.isReady());
    if (!data.result().isOk()) return data;
    // Charge the tape for the bytes actually returned (clamped, like every
    // other timed backend), then hand the caller the identical payload it
    // would have read from the primary tier — only the latency differs.
    uint64_t actual = data.result().value().size();
    mReadBytes_.inc(actual);
    return tape_.access(cartridgeFor(name), actual)
        .then([data](const Unit&) { return data.result().value(); });
}

Future<Unit> ArchiveTierChunkStorage::remove(const std::string& name) {
    auto it = meta_.find(name);
    if (it == meta_.end()) return primary_.remove(name);
    const bool archived = it->second.archived;
    const uint64_t nbytes = it->second.bytes;
    // Erase first: an in-flight migration re-checks meta_ at each step and
    // aborts (cleaning up its archive copy) when the chunk is gone.
    meta_.erase(it);
    if (archived) {
        archivedBytes_ -= std::min(archivedBytes_, nbytes);
        --archivedChunks_;
        mArchivedBytes_.set(static_cast<double>(archivedBytes_));
        return archMem_.remove(name);
    }
    primaryBytes_ -= std::min(primaryBytes_, nbytes);
    mPrimaryBytes_.set(static_cast<double>(primaryBytes_));
    return primary_.remove(name);
}

Result<ChunkInfo> ArchiveTierChunkStorage::stat(const std::string& name) const {
    auto it = meta_.find(name);
    if (it == meta_.end()) return primary_.stat(name);
    if (it->second.archived) return archMem_.stat(name);
    return primary_.stat(name);
}

void ArchiveTierChunkStorage::scanNow() {
    const sim::TimePoint now = exec_.now();
    // Projected primary footprint: shrinks as migrations are issued so the
    // size policy stops once the batch would bring us under the cap.
    uint64_t projected = primaryBytes_;
    std::vector<std::string> picks;
    // Age policy first (name order: deterministic; every idle chunk is
    // eligible). Not-yet-idle chunks become size-pressure candidates unless
    // they were appended within pressureMinIdle — an actively-written tail
    // chunk must never be a migration victim.
    std::vector<std::pair<sim::TimePoint, std::string>> candidates;
    for (auto& [name, m] : meta_) {
        if (m.archived || m.migrating || m.bytes == 0) continue;
        const sim::Duration idleFor = now - m.lastAppend;
        if (idleFor >= cfg_.minIdle) {
            if (static_cast<int>(picks.size()) < cfg_.maxMigrationsPerScan) {
                picks.push_back(name);
                projected -= std::min(projected, m.bytes);
            }
        } else if (idleFor >= cfg_.pressureMinIdle) {
            candidates.emplace_back(m.lastAppend, name);
        }
    }
    // Size policy: still over the cap after the age picks, so migrate the
    // least-recently-appended candidates (oldest lastAppend first, name as
    // the deterministic tiebreak) until projected back under.
    if (projected > cfg_.primaryCapacityBytes) {
        std::sort(candidates.begin(), candidates.end());
        for (const auto& [when, name] : candidates) {
            if (static_cast<int>(picks.size()) >= cfg_.maxMigrationsPerScan) break;
            if (projected <= cfg_.primaryCapacityBytes) break;
            picks.push_back(name);
            projected -= std::min(projected, meta_[name].bytes);
        }
    }
    for (const auto& name : picks) migrate(name);
}

void ArchiveTierChunkStorage::migrate(const std::string& name) {
    auto it = meta_.find(name);
    if (it == meta_.end() || it->second.archived || it->second.migrating) return;
    const sim::TimePoint startedAt = exec_.now();
    // A chunk appended this very tick is not quiescent; the snapshot below
    // could race the append's completion. Skip — a later scan retries.
    if (it->second.lastAppend >= startedAt) return;
    it->second.migrating = true;
    const uint64_t nbytes = it->second.bytes;
    primary_.read(name, 0, nbytes).onComplete([this, name, nbytes, startedAt](
                                                  const Result<SharedBuf>& r) {
        auto mit = meta_.find(name);
        if (mit == meta_.end()) return;  // removed mid-migration
        if (!r.isOk() || r.value().size() != nbytes || mit->second.bytes != nbytes ||
            mit->second.lastAppend >= startedAt) {
            // Read failed, or an append landed after the snapshot was taken
            // (appends keep routing to the primary tier while migrating):
            // abort and retry on a later scan.
            mit->second.migrating = false;
            return;
        }
        archMem_.create(name);
        archMem_.append(name, BufChain(r.value()));
        // The archive copy is durable once the tape write finishes; only
        // then does routing flip and the primary copy get dropped.
        tape_.access(cartridgeFor(name), nbytes).onComplete([this, name, nbytes,
                                                             startedAt](
                                                                const Result<Unit>&) {
            auto mit2 = meta_.find(name);
            if (mit2 == meta_.end()) {
                archMem_.remove(name);  // chunk removed while we copied
                return;
            }
            if (mit2->second.bytes != nbytes || mit2->second.lastAppend >= startedAt) {
                // An append raced the tape write; the archive copy holds a
                // stale snapshot. Abort: drop the copy, keep primary routing
                // (and the primary bytes), retry once the chunk is idle.
                // Without this check the remove() below would destroy the
                // newly appended bytes.
                archMem_.remove(name);
                mit2->second.migrating = false;
                return;
            }
            mit2->second.archived = true;
            mit2->second.migrating = false;
            primaryBytes_ -= std::min(primaryBytes_, nbytes);
            archivedBytes_ += nbytes;
            ++archivedChunks_;
            mMigrations_.inc();
            mMigratedBytes_.inc(nbytes);
            mArchivedBytes_.set(static_cast<double>(archivedBytes_));
            mPrimaryBytes_.set(static_cast<double>(primaryBytes_));
            primary_.remove(name);  // best-effort; data already re-homed
        });
    });
}

}  // namespace pravega::lts
