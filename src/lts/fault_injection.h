// Fault-injecting chunk-storage decorator.
//
// Wraps any ChunkStorage backend and injects failures (probabilistic or
// scheduled) and extra latency on a per-operation basis. The paper's §4.3
// requires Pravega to tolerate an LTS that is "not available or temporarily
// slow"; this decorator is how the test suite and failure-injection benches
// exercise those paths (storage-writer retries, throttling, idempotent
// flush resumption). A per-op-kind mask lets tests fail only reads, only
// appends, etc.; the chaos layer drives outages and slowdowns through the
// same knobs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "lts/chunk_storage.h"
#include "sim/machine.h"
#include "sim/random.h"

namespace pravega::lts {

class FaultInjectionChunkStorage : public ChunkStorage {
public:
    /// Operation kinds, usable as a bitmask in Config::failOps.
    enum OpKind : unsigned {
        kCreate = 1u << 0,
        kAppend = 1u << 1,
        kRead = 1u << 2,
        kRemove = 1u << 3,
        kStat = 1u << 4,
        kAllOps = kCreate | kAppend | kRead | kRemove | kStat,
    };

    struct Config {
        /// Probability that any single operation fails with IoError.
        double failureProbability = 0.0;
        /// Hard outage window [outageStart, outageEnd) in virtual time:
        /// every operation fails during it (LTS "not available", §4.3).
        sim::TimePoint outageStart = -1;
        sim::TimePoint outageEnd = -1;
        /// Extra latency added to every operation ("temporarily slow").
        sim::Duration extraLatency = 0;
        /// Which operation kinds are eligible for injected failures; ops
        /// outside the mask pass through (latency still applies to async
        /// ops). Default: all.
        unsigned failOps = kAllOps;
        uint64_t seed = 1;
    };

    FaultInjectionChunkStorage(sim::Core& exec, ChunkStorage& inner, Config cfg)
        : exec_(exec), inner_(inner), cfg_(cfg), rng_(cfg.seed) {}

    /// Re-arms a hard outage window starting now.
    void startOutage(sim::Duration duration) {
        cfg_.outageStart = exec_.now();
        cfg_.outageEnd = exec_.now() + duration;
    }
    void endOutage() { cfg_.outageEnd = exec_.now(); }

    /// Adjusts the "temporarily slow" latency at runtime (chaos slowdowns).
    void setExtraLatency(sim::Duration d) { cfg_.extraLatency = d; }

    /// Restricts injected failures to the given OpKind mask.
    void setFailOps(unsigned mask) { cfg_.failOps = mask; }

    /// Silent-corruption injection: flips one bit (at `bitOffset` within the
    /// returned buffer, modulo its size) in each of the next `reads` read
    /// results. The read SUCCEEDS with wrong bytes — exactly the failure
    /// mode checksums exist to catch; a codec layer above must turn it into
    /// Err::ChecksumMismatch, never data.
    void corruptNextReads(int reads, uint64_t bitOffset = 0) {
        corruptReads_ = reads;
        corruptBitOffset_ = bitOffset;
    }

    uint64_t injectedFailures() const { return injectedFailures_; }
    uint64_t corruptedReads() const { return corruptedReads_; }

    sim::Future<sim::Unit> create(const std::string& name) override {
        if (shouldFail(kCreate)) return failUnit();
        return delayed(inner_.create(name));
    }
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override {
        if (shouldFail(kAppend)) return failUnit();
        return delayed(inner_.append(name, std::move(data)));
    }
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override {
        if (shouldFail(kRead)) {
            return sim::Future<SharedBuf>::failed(Status(Err::IoError, "injected LTS failure"));
        }
        if (corruptReads_ > 0) {
            --corruptReads_;
            uint64_t bit = corruptBitOffset_;
            return delayed(inner_.read(name, offset, length)
                               .then([this, bit](const SharedBuf& buf) {
                                   if (buf.size() == 0) return buf;
                                   Bytes copy(buf.view().begin(), buf.view().end());
                                   copy[(bit / 8) % copy.size()] ^=
                                       static_cast<uint8_t>(1u << (bit % 8));
                                   ++corruptedReads_;
                                   return SharedBuf(std::move(copy));
                               }));
        }
        return delayed(inner_.read(name, offset, length));
    }
    sim::Future<sim::Unit> remove(const std::string& name) override {
        if (shouldFail(kRemove)) return failUnit();
        return delayed(inner_.remove(name));
    }
    Result<ChunkInfo> stat(const std::string& name) const override {
        // stat() is synchronous, but an unavailable LTS cannot answer
        // metadata probes either: it honors outage windows and the
        // probabilistic failure rate like every other op.
        if (const_cast<FaultInjectionChunkStorage*>(this)->shouldFail(kStat)) {
            return Status(Err::IoError, "injected LTS failure");
        }
        return inner_.stat(name);
    }
    uint64_t totalBytes() const override { return inner_.totalBytes(); }
    double backlogSeconds() const override { return inner_.backlogSeconds(); }
    uint64_t readOps() const override { return inner_.readOps(); }

private:
    bool shouldFail(OpKind kind) {
        if ((cfg_.failOps & kind) == 0) return false;
        sim::TimePoint now = exec_.now();
        if (cfg_.outageStart >= 0 && now >= cfg_.outageStart && now < cfg_.outageEnd) {
            ++injectedFailures_;
            return true;
        }
        if (cfg_.failureProbability > 0 && rng_.nextDouble() < cfg_.failureProbability) {
            ++injectedFailures_;
            return true;
        }
        return false;
    }
    sim::Future<sim::Unit> failUnit() {
        return sim::Future<sim::Unit>::failed(Status(Err::IoError, "injected LTS failure"));
    }
    template <typename T>
    sim::Future<T> delayed(sim::Future<T> inner) {
        if (cfg_.extraLatency <= 0) return inner;
        sim::Promise<T> p;
        auto fut = p.future();
        inner.onComplete([this, p](const Result<T>& r) mutable {
            exec_.schedule(cfg_.extraLatency, [p, r]() mutable { p.complete(r); });
        });
        return fut;
    }

    sim::Core& exec_;
    ChunkStorage& inner_;
    Config cfg_;
    sim::Rng rng_;
    uint64_t injectedFailures_ = 0;
    int corruptReads_ = 0;
    uint64_t corruptBitOffset_ = 0;
    uint64_t corruptedReads_ = 0;
};

}  // namespace pravega::lts
