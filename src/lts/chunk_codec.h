// LTS data reduction: per-block compression + checksums on the flush path.
//
// Every append that flows through CodecChunkStorage is encoded as one
// self-describing *block*: a fixed 20-byte header (magic, codec method, raw
// and encoded lengths, CRC-32 over the raw payload) followed by the encoded
// body. The stored chunk is the concatenation of its blocks, so the bytes
// that land in the backing store are physically smaller than the segment
// bytes they carry — the backend's timing model (object-store bandwidth,
// archive-tier streaming) naturally charges the reduced size.
//
// Readers address chunks in RAW (segment-byte) coordinates exactly as
// before; the codec keeps a per-chunk block index mapping raw ranges to
// stored ranges, fetches the covering blocks, verifies each CRC, and
// decodes. A failed CRC surfaces as Err::ChecksumMismatch (counted on
// `lts.checksum_failures`) and never as data. Compression and decompression
// charge virtual CPU time on a dedicated sim::CpuModel, so the codec's cost
// shows up in read/flush latency the way a real zstd stage would.
//
// The body codec is a deliberately simple PackBits-style RLE: deterministic,
// dependency-free, and effective on the repetitive payloads the benches and
// real telemetry streams carry; incompressible blocks fall back to method
// kRaw so a block never expands beyond header overhead (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lts/chunk_storage.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/models.h"

namespace pravega::lts {

/// Pure block-format helpers (stateless; unit-testable without a sim).
struct ChunkCodec {
    static constexpr uint32_t kMagic = 0x50434B31;  // "PCK1"
    static constexpr uint8_t kVersion = 1;
    static constexpr size_t kHeaderBytes = 20;

    enum Method : uint8_t { kRaw = 0, kRle = 1 };

    struct BlockHeader {
        uint8_t method = kRaw;
        uint32_t rawLen = 0;
        uint32_t encLen = 0;
        uint32_t crc = 0;  // CRC-32 over the raw payload
    };

    /// PackBits-style RLE: control byte c < 0x80 → (c+1) literal bytes
    /// follow; c >= 0x80 → the next byte repeats ((c & 0x7F) + 3) times.
    static Bytes rleEncode(BytesView raw);
    /// Decodes exactly `rawLen` bytes or fails (malformed stream).
    static Result<Bytes> rleDecode(BytesView enc, size_t rawLen);

    /// Encodes one append into header + body (RLE, or raw fallback when RLE
    /// would not shrink the payload).
    static Bytes encodeBlock(BytesView raw);
    /// Parses a header at the front of `stored`. Fails on bad magic/version
    /// or lengths inconsistent with the available bytes.
    static Result<BlockHeader> parseHeader(BytesView stored);
    /// Decodes and CRC-verifies one block (header + body). A CRC or format
    /// failure is Err::ChecksumMismatch — corruption must never decode.
    static Result<Bytes> decodeBlock(BytesView stored);
};

/// Decorator that compresses/checksums every block written to `inner` and
/// transparently decodes on read. Callers keep raw-byte addressing;
/// `stat()` reports raw length (what ChunkRecord offset math expects) while
/// `totalBytes()` reports the backend's stored (reduced) footprint.
class CodecChunkStorage : public ChunkStorage {
public:
    struct Config {
        /// Virtual CPU cost of the codec stage (zstd-class throughputs).
        double compressBytesPerSec = 1.5 * 1024 * 1024 * 1024;
        double decompressBytesPerSec = 4.0 * 1024 * 1024 * 1024;
        int cpuLanes = 4;
    };

    CodecChunkStorage(sim::Core& exec, ChunkStorage& inner, Config cfg);
    CodecChunkStorage(sim::Core& exec, ChunkStorage& inner)
        : CodecChunkStorage(exec, inner, Config{}) {}

    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;

    uint64_t totalBytes() const override { return inner_.totalBytes(); }
    double backlogSeconds() const override { return inner_.backlogSeconds(); }
    uint64_t readOps() const override { return inner_.readOps(); }

    uint64_t rawBytes() const { return rawBytes_; }
    uint64_t storedBytes() const { return storedBytes_; }
    uint64_t checksumFailures() const { return mChecksumFailures_.value(); }

private:
    struct Block {
        uint64_t rawOff = 0;
        uint64_t rawLen = 0;
        uint64_t storedOff = 0;
        uint64_t storedLen = 0;
    };
    struct ChunkIndex {
        uint64_t rawSize = 0;
        uint64_t storedSize = 0;
        std::vector<Block> blocks;  // sorted by rawOff, contiguous
    };

    sim::Core& exec_;
    ChunkStorage& inner_;
    Config cfg_;
    sim::CpuModel cpu_;
    std::map<std::string, ChunkIndex> chunks_;
    uint64_t rawBytes_ = 0;
    uint64_t storedBytes_ = 0;

    obs::Counter& mRawBytes_;
    obs::Counter& mStoredBytes_;
    obs::Counter& mBlocks_;
    obs::Counter& mChecksumFailures_;
    obs::Gauge& mRatio_;
    obs::LatencyHistogram& mDecodeNs_;
};

}  // namespace pravega::lts
