#include "lts/chunk_storage.h"

#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace pravega::lts {

namespace {
using sim::Future;
using sim::Unit;

Future<Unit> okUnit() { return Future<Unit>::ready(Unit{}); }
Future<Unit> fail(Err code, const char* msg) {
    return Future<Unit>::failed(Status(code, msg));
}
}  // namespace

// ---------------------------------------------------------------- InMemory

Future<Unit> InMemoryChunkStorage::create(const std::string& name) {
    if (chunks_.contains(name)) return fail(Err::AlreadyExists, "chunk exists");
    chunks_[name] = {};
    return okUnit();
}

Future<Unit> InMemoryChunkStorage::append(const std::string& name, BufChain data) {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return fail(Err::NotFound, "no such chunk");
    it->second.reserve(it->second.size() + data.size());
    data.forEachFragment(
        [&](const SharedBuf& frag) { pravega::append(it->second, frag.view()); });
    totalBytes_ += data.size();
    return okUnit();
}

Future<SharedBuf> InMemoryChunkStorage::read(const std::string& name, uint64_t offset,
                                             uint64_t length) {
    ++readOps_;
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return Future<SharedBuf>::failed(Status(Err::NotFound, name));
    const Bytes& b = it->second;
    if (offset > b.size()) return Future<SharedBuf>::failed(Status(Err::BadOffset, name));
    uint64_t n = std::min<uint64_t>(length, b.size() - offset);
    return Future<SharedBuf>::ready(
        SharedBuf::copyOf(BytesView(b.data() + offset, static_cast<size_t>(n))));
}

Future<Unit> InMemoryChunkStorage::remove(const std::string& name) {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return fail(Err::NotFound, "no such chunk");
    totalBytes_ -= it->second.size();
    chunks_.erase(it);
    return okUnit();
}

Result<ChunkInfo> InMemoryChunkStorage::stat(const std::string& name) const {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return Status(Err::NotFound, name);
    return ChunkInfo{name, it->second.size()};
}

// ------------------------------------------------------- SimulatedObject

Future<Unit> SimulatedObjectStorage::create(const std::string& name) {
    // Creation is a metadata op; charge one zero-byte round trip.
    auto data = mem_.create(name);
    if (data.isReady() && !data.result().isOk()) return data;
    return model_.put(0);
}

Future<Unit> SimulatedObjectStorage::append(const std::string& name, BufChain data) {
    uint64_t n = data.size();
    auto stored = mem_.append(name, std::move(data));
    if (stored.isReady() && !stored.result().isOk()) return stored;
    return model_.put(n);
}

Future<SharedBuf> SimulatedObjectStorage::read(const std::string& name, uint64_t offset,
                                               uint64_t length) {
    auto data = mem_.read(name, offset, length);
    // mem_ is the always-ready InMemoryChunkStorage: resolving result()
    // before the model charge is only safe because it can never be pending.
    assert(data.isReady());
    if (!data.result().isOk()) return data;
    // Charge the model for the bytes actually transferred, not the requested
    // length: a tail read near EOF returns fewer bytes and must not pay
    // latency/throughput for bytes that never move.
    uint64_t actual = data.result().value().size();
    return model_.get(actual).then(
        [data](const Unit&) { return data.result().value(); });
}

Future<Unit> SimulatedObjectStorage::remove(const std::string& name) {
    auto r = mem_.remove(name);
    if (r.isReady() && !r.result().isOk()) return r;
    return model_.put(0);
}

Result<ChunkInfo> SimulatedObjectStorage::stat(const std::string& name) const {
    return mem_.stat(name);
}

// ------------------------------------------------------------ FileSystem

FileSystemChunkStorage::FileSystemChunkStorage(std::string rootDir) : root_(std::move(rootDir)) {
    std::filesystem::create_directories(root_);
}

std::string FileSystemChunkStorage::pathFor(const std::string& name) const {
    // Escape rather than substitute: mapping '/' to '_' would make chunks
    // named "a/b" and "a_b" collide on the same file. '%' escapes itself so
    // the mapping is injective.
    std::string safe;
    safe.reserve(name.size());
    for (char c : name) {
        if (c == '/') {
            safe += "%2F";
        } else if (c == '%') {
            safe += "%25";
        } else {
            safe += c;
        }
    }
    return root_ + "/" + safe;
}

Future<Unit> FileSystemChunkStorage::create(const std::string& name) {
    if (sizes_.contains(name)) return fail(Err::AlreadyExists, "chunk exists");
    std::ofstream f(pathFor(name), std::ios::binary | std::ios::trunc);
    if (!f) return fail(Err::IoError, "cannot create chunk file");
    sizes_[name] = 0;
    return okUnit();
}

Future<Unit> FileSystemChunkStorage::append(const std::string& name, BufChain data) {
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return fail(Err::NotFound, "no such chunk");
    std::ofstream f(pathFor(name), std::ios::binary | std::ios::app);
    if (!f) return fail(Err::IoError, "cannot open chunk file");
    data.forEachFragment([&](const SharedBuf& frag) {
        f.write(reinterpret_cast<const char*>(frag.data()),
                static_cast<std::streamsize>(frag.size()));
    });
    if (!f) return fail(Err::IoError, "short write");
    it->second += data.size();
    totalBytes_ += data.size();
    return okUnit();
}

Future<SharedBuf> FileSystemChunkStorage::read(const std::string& name, uint64_t offset,
                                               uint64_t length) {
    ++readOps_;
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return Future<SharedBuf>::failed(Status(Err::NotFound, name));
    if (offset > it->second) return Future<SharedBuf>::failed(Status(Err::BadOffset, name));
    std::ifstream f(pathFor(name), std::ios::binary);
    if (!f) return Future<SharedBuf>::failed(Status(Err::IoError, name));
    f.seekg(static_cast<std::streamoff>(offset));
    Bytes out(static_cast<size_t>(std::min<uint64_t>(length, it->second - offset)));
    f.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
    out.resize(static_cast<size_t>(f.gcount()));
    return Future<SharedBuf>::ready(SharedBuf(std::move(out)));
}

Future<Unit> FileSystemChunkStorage::remove(const std::string& name) {
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return fail(Err::NotFound, "no such chunk");
    totalBytes_ -= it->second;
    std::filesystem::remove(pathFor(name));
    sizes_.erase(it);
    return okUnit();
}

Result<ChunkInfo> FileSystemChunkStorage::stat(const std::string& name) const {
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return Status(Err::NotFound, name);
    return ChunkInfo{name, it->second};
}

// ------------------------------------------------------------------ NoOp

Future<Unit> NoOpChunkStorage::create(const std::string& name) {
    if (sizes_.contains(name)) return fail(Err::AlreadyExists, "chunk exists");
    sizes_[name] = 0;
    return okUnit();
}

Future<Unit> NoOpChunkStorage::append(const std::string& name, BufChain data) {
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return fail(Err::NotFound, "no such chunk");
    it->second += data.size();
    return okUnit();
}

Future<SharedBuf> NoOpChunkStorage::read(const std::string& name, uint64_t offset,
                                         uint64_t length) {
    ++readOps_;
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return Future<SharedBuf>::failed(Status(Err::NotFound, name));
    if (offset > it->second) return Future<SharedBuf>::failed(Status(Err::BadOffset, name));
    // Data was discarded; return zero-filled bytes of the right size so
    // read paths can still be exercised for timing.
    uint64_t n = std::min(length, it->second - offset);
    return Future<SharedBuf>::ready(SharedBuf(Bytes(static_cast<size_t>(n), 0)));
}

Future<Unit> NoOpChunkStorage::remove(const std::string& name) {
    if (sizes_.erase(name) == 0) return fail(Err::NotFound, "no such chunk");
    return okUnit();
}

Result<ChunkInfo> NoOpChunkStorage::stat(const std::string& name) const {
    auto it = sizes_.find(name);
    if (it == sizes_.end()) return Status(Err::NotFound, name);
    return ChunkInfo{name, it->second};
}

}  // namespace pravega::lts
