#include "lts/chunk_codec.h"

#include <algorithm>

#include "common/hash.h"
#include "common/serde.h"

namespace pravega::lts {

using sim::Future;
using sim::Unit;

// ------------------------------------------------------------- block codec

Bytes ChunkCodec::rleEncode(BytesView raw) {
    Bytes out;
    out.reserve(raw.size() / 4 + 16);
    size_t i = 0;
    const size_t n = raw.size();
    while (i < n) {
        size_t run = 1;
        while (i + run < n && raw[i + run] == raw[i] && run < 130) ++run;
        if (run >= 3) {
            out.push_back(static_cast<uint8_t>(0x80u | (run - 3)));
            out.push_back(raw[i]);
            i += run;
            continue;
        }
        // Literal run: up to 128 bytes, stopping where a >=3 repeat starts.
        size_t start = i;
        while (i < n && i - start < 128) {
            if (i + 2 < n && raw[i] == raw[i + 1] && raw[i] == raw[i + 2]) break;
            ++i;
        }
        out.push_back(static_cast<uint8_t>(i - start - 1));
        out.insert(out.end(), raw.begin() + start, raw.begin() + i);
    }
    return out;
}

Result<Bytes> ChunkCodec::rleDecode(BytesView enc, size_t rawLen) {
    Bytes out;
    out.reserve(rawLen);
    size_t i = 0;
    while (i < enc.size()) {
        uint8_t c = enc[i++];
        if (c & 0x80u) {
            if (i >= enc.size()) return Status(Err::IoError, "rle: truncated run");
            out.insert(out.end(), (c & 0x7Fu) + 3, enc[i++]);
        } else {
            size_t lit = static_cast<size_t>(c) + 1;
            if (i + lit > enc.size()) return Status(Err::IoError, "rle: truncated literals");
            out.insert(out.end(), enc.begin() + i, enc.begin() + i + lit);
            i += lit;
        }
        if (out.size() > rawLen) return Status(Err::IoError, "rle: output overflow");
    }
    if (out.size() != rawLen) return Status(Err::IoError, "rle: output size mismatch");
    return out;
}

Bytes ChunkCodec::encodeBlock(BytesView raw) {
    Bytes body = rleEncode(raw);
    uint8_t method = kRle;
    if (body.size() >= raw.size()) {
        // Incompressible: store verbatim so a block never expands past the
        // fixed header overhead.
        body.assign(raw.begin(), raw.end());
        method = kRaw;
    }
    Bytes out;
    out.reserve(kHeaderBytes + body.size());
    BinaryWriter w(out);
    w.u32(kMagic);
    w.u8(kVersion);
    w.u8(method);
    w.u16(0);  // reserved
    w.u32(static_cast<uint32_t>(raw.size()));
    w.u32(static_cast<uint32_t>(body.size()));
    w.u32(crc32(raw.data(), raw.size()));
    w.raw(BytesView(body));
    return out;
}

Result<ChunkCodec::BlockHeader> ChunkCodec::parseHeader(BytesView stored) {
    BinaryReader r(stored);
    auto magic = r.u32();
    auto version = r.u8();
    auto method = r.u8();
    auto reserved = r.u16();
    auto rawLen = r.u32();
    auto encLen = r.u32();
    auto crc = r.u32();
    if (!magic || !version || !method || !reserved || !rawLen || !encLen || !crc) {
        return Status(Err::ChecksumMismatch, "block header truncated");
    }
    if (magic.value() != kMagic || version.value() != kVersion) {
        return Status(Err::ChecksumMismatch, "bad block magic/version");
    }
    if (kHeaderBytes + static_cast<size_t>(encLen.value()) > stored.size()) {
        return Status(Err::ChecksumMismatch, "block body truncated");
    }
    BlockHeader h;
    h.method = method.value();
    h.rawLen = rawLen.value();
    h.encLen = encLen.value();
    h.crc = crc.value();
    return h;
}

Result<Bytes> ChunkCodec::decodeBlock(BytesView stored) {
    auto hr = parseHeader(stored);
    if (!hr) return hr.status();
    const BlockHeader& h = hr.value();
    BytesView body = stored.subspan(kHeaderBytes, h.encLen);
    Bytes raw;
    if (h.method == kRaw) {
        if (h.encLen != h.rawLen) {
            return Status(Err::ChecksumMismatch, "raw block length mismatch");
        }
        raw.assign(body.begin(), body.end());
    } else if (h.method == kRle) {
        auto dec = rleDecode(body, h.rawLen);
        if (!dec) return Status(Err::ChecksumMismatch, "corrupt rle body");
        raw = std::move(dec.value());
    } else {
        return Status(Err::ChecksumMismatch, "unknown codec method");
    }
    if (crc32(raw.data(), raw.size()) != h.crc) {
        return Status(Err::ChecksumMismatch, "payload crc mismatch");
    }
    return raw;
}

// -------------------------------------------------------- CodecChunkStorage

CodecChunkStorage::CodecChunkStorage(sim::Core& exec, ChunkStorage& inner, Config cfg)
    : exec_(exec),
      inner_(inner),
      cfg_(cfg),
      cpu_(exec, sim::CpuModel::Config{cfg.cpuLanes, sim::usec(2), cfg.compressBytesPerSec}),
      mRawBytes_(exec.metrics().counter("lts.codec.raw_bytes")),
      mStoredBytes_(exec.metrics().counter("lts.codec.stored_bytes")),
      mBlocks_(exec.metrics().counter("lts.codec.blocks")),
      mChecksumFailures_(exec.metrics().counter("lts.checksum_failures")),
      mRatio_(exec.metrics().gauge("lts.compression_ratio")),
      mDecodeNs_(exec.metrics().histogram("lts.codec.decode_ns")) {}

Future<Unit> CodecChunkStorage::create(const std::string& name) {
    return inner_.create(name).then([this, name](const Unit& u) {
        chunks_[name];  // start an empty block index
        return u;
    });
}

Future<Unit> CodecChunkStorage::append(const std::string& name, BufChain data) {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) {
        // Chunk predates the codec (mixed stack): pass through untouched.
        return inner_.append(name, std::move(data));
    }
    Bytes raw = data.toBytes();
    const uint64_t rawLen = raw.size();
    Bytes block = ChunkCodec::encodeBlock(BytesView(raw));
    const uint64_t storedLen = block.size();

    sim::Promise<Unit> p;
    auto fut = p.future();
    sim::Duration compressTime = sim::transferTime(rawLen, cfg_.compressBytesPerSec);
    cpu_.executeFor(compressTime)
        .onComplete([this, name, rawLen, storedLen, block = std::move(block),
                     p](const Result<Unit>&) mutable {
            inner_.append(name, BufChain(std::move(block)))
                .onComplete([this, name, rawLen, storedLen, p](const Result<Unit>& r) mutable {
                    if (r.isOk()) {
                        auto& ix = chunks_[name];
                        ix.blocks.push_back(
                            Block{ix.rawSize, rawLen, ix.storedSize, storedLen});
                        ix.rawSize += rawLen;
                        ix.storedSize += storedLen;
                        rawBytes_ += rawLen;
                        storedBytes_ += storedLen;
                        mRawBytes_.inc(rawLen);
                        mStoredBytes_.inc(storedLen);
                        mBlocks_.inc();
                        if (storedBytes_ > 0) {
                            mRatio_.set(static_cast<double>(rawBytes_) /
                                        static_cast<double>(storedBytes_));
                        }
                    }
                    p.complete(r);
                });
        });
    return fut;
}

Future<SharedBuf> CodecChunkStorage::read(const std::string& name, uint64_t offset,
                                          uint64_t length) {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return inner_.read(name, offset, length);
    const ChunkIndex& ix = it->second;
    if (offset > ix.rawSize) {
        return Future<SharedBuf>::failed(Status(Err::BadOffset, name));
    }
    uint64_t n = std::min(length, ix.rawSize - offset);
    if (n == 0) return Future<SharedBuf>::ready(SharedBuf(Bytes{}));

    // Blocks covering [offset, offset+n): contiguous in both address spaces,
    // so the stored fetch is one range read against the backend.
    auto first = std::upper_bound(
        ix.blocks.begin(), ix.blocks.end(), offset,
        [](uint64_t off, const Block& b) { return off < b.rawOff + b.rawLen; });
    std::vector<Block> cover;
    for (auto bit = first; bit != ix.blocks.end() && bit->rawOff < offset + n; ++bit) {
        cover.push_back(*bit);
    }
    if (cover.empty()) {
        return Future<SharedBuf>::failed(Status(Err::IoError, "block index gap"));
    }
    const uint64_t storedStart = cover.front().storedOff;
    const uint64_t storedEnd = cover.back().storedOff + cover.back().storedLen;

    sim::Promise<SharedBuf> p;
    auto fut = p.future();
    sim::TimePoint startedAt = exec_.now();
    inner_.read(name, storedStart, storedEnd - storedStart)
        .onComplete([this, name, offset, n, storedStart, cover = std::move(cover),
                     startedAt, p](const Result<SharedBuf>& r) mutable {
            if (!r.isOk()) {
                p.setError(r.status());
                return;
            }
            BytesView stored = r.value().view();
            Bytes out;
            out.reserve(static_cast<size_t>(n));
            uint64_t decodedRaw = 0;
            for (const Block& b : cover) {
                uint64_t at = b.storedOff - storedStart;
                if (at + b.storedLen > stored.size()) {
                    mChecksumFailures_.inc();
                    p.setError(Err::ChecksumMismatch, "stored block truncated: " + name);
                    return;
                }
                auto dec = ChunkCodec::decodeBlock(
                    stored.subspan(static_cast<size_t>(at), static_cast<size_t>(b.storedLen)));
                if (!dec || dec.value().size() != b.rawLen) {
                    mChecksumFailures_.inc();
                    p.setError(Err::ChecksumMismatch,
                               "chunk " + name + ": " + dec.status().message());
                    return;
                }
                decodedRaw += b.rawLen;
                uint64_t from = offset > b.rawOff ? offset - b.rawOff : 0;
                uint64_t to = std::min<uint64_t>(b.rawLen, offset + n - b.rawOff);
                pravega::append(out, BytesView(dec.value().data() + from,
                                               static_cast<size_t>(to - from)));
            }
            mDecodeNs_.record(exec_.now() - startedAt);
            // Decompression charges CPU for every decoded block byte — the
            // read amplification cost of block-granular compression.
            SharedBuf result{std::move(out)};
            cpu_.executeFor(sim::transferTime(decodedRaw, cfg_.decompressBytesPerSec))
                .onComplete([p, result](const Result<Unit>&) mutable { p.setValue(result); });
        });
    return fut;
}

Future<Unit> CodecChunkStorage::remove(const std::string& name) {
    return inner_.remove(name).then([this, name](const Unit& u) {
        chunks_.erase(name);
        return u;
    });
}

Result<ChunkInfo> CodecChunkStorage::stat(const std::string& name) const {
    auto it = chunks_.find(name);
    if (it == chunks_.end()) return inner_.stat(name);
    // Raw length: ChunkRecord offset math and reconciliation live in the
    // segment-byte address space, not the stored one.
    auto inner = inner_.stat(name);
    if (!inner) return inner.status();
    return ChunkInfo{name, it->second.rawSize};
}

}  // namespace pravega::lts
