// Cold archive tier behind ChunkStorage (TALICS³-style tape library).
//
// ArchiveTierChunkStorage decorates a primary chunk store (the object-store
// tier) with a second, much slower store whose access profile is a tape
// library: a mount penalty when the chunk's cartridge is not already on a
// drive, a per-access seek, then streaming at tape bandwidth. Chunks start
// life in the primary tier; a periodic scan migrates chunks that have been
// idle past `minIdle` — or, while the primary footprint exceeds
// `primaryCapacityBytes`, the least-recently-appended chunks (oldest
// `lastAppend` first, and never one written within `pressureMinIdle`) — by
// copying them to the archive and then removing
// the primary copy. Reads stay address-transparent: a caller never learns a
// chunk moved except through latency (deep-read first byte) — payload bytes
// are identical either way, which is exactly what the fig12 archive
// ablation asserts.
//
// Cartridge placement hashes the chunk's segment prefix, so the chunks of
// one segment share a cartridge: a historical catch-up read of one segment
// pays one mount and then streams, while scans across segments pay a mount
// per cartridge switch (bounded by the drive pool).
//
// Migration ordering is crash-consistent by construction: copy to archive
// (charging a tape write), flip routing to the archive, and only then
// remove the primary copy. A chunk removed mid-migration aborts the
// migration and cleans up its archive copy. Appends stay routed to the
// primary tier while a migration is in flight; before flipping routing the
// migration re-checks that the chunk did not grow past its snapshot
// (`bytes`/`lastAppend` vs migration start) and aborts — dropping the
// archive copy, keeping the primary one — if it did, so a racing append is
// never destroyed. A later scan retries once the chunk is quiet again.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "lts/chunk_storage.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/models.h"

namespace pravega::lts {

class ArchiveTierChunkStorage : public ChunkStorage {
public:
    struct Config {
        sim::TapeLibraryModel::Config tape;
        /// A chunk with no appends for this long becomes migratable (age
        /// policy).
        sim::Duration minIdle = sim::sec(5);
        /// Primary-tier footprint above which the scan also migrates
        /// not-yet-idle chunks, least-recently-appended first, until the
        /// projected footprint is back under the cap (size policy).
        uint64_t primaryCapacityBytes = UINT64_MAX;
        /// Floor on victim idleness under size pressure: a chunk appended
        /// within this window is never migrated, so an actively-written
        /// tail chunk cannot race its own appends (migrate() additionally
        /// aborts if an append lands mid-flight).
        sim::Duration pressureMinIdle = sim::msec(100);
        /// Cadence of the migration scan. <= 0 disables the automatic scan
        /// (tests drive `scanNow()` directly).
        sim::Duration scanInterval = sim::sec(1);
        /// Migration fan-out cap per scan tick, so a backlog of cold chunks
        /// drains gradually instead of monopolizing the tape drives.
        int maxMigrationsPerScan = 8;
    };

    ArchiveTierChunkStorage(sim::Core& exec, ChunkStorage& primary, Config cfg);
    ArchiveTierChunkStorage(sim::Core& exec, ChunkStorage& primary)
        : ArchiveTierChunkStorage(exec, primary, Config{}) {}
    ~ArchiveTierChunkStorage() override { *alive_ = false; }

    sim::Future<sim::Unit> create(const std::string& name) override;
    sim::Future<sim::Unit> append(const std::string& name, BufChain data) override;
    sim::Future<SharedBuf> read(const std::string& name, uint64_t offset,
                                uint64_t length) override;
    sim::Future<sim::Unit> remove(const std::string& name) override;
    Result<ChunkInfo> stat(const std::string& name) const override;

    uint64_t totalBytes() const override {
        return primary_.totalBytes() + archMem_.totalBytes();
    }
    double backlogSeconds() const override { return primary_.backlogSeconds(); }
    uint64_t readOps() const override { return primary_.readOps() + archReadOps_; }

    /// Runs one migration scan immediately (deterministic test hook; the
    /// periodic scan calls this too).
    void scanNow();

    uint64_t archivedChunks() const { return archivedChunks_; }
    uint64_t archivedBytes() const { return archivedBytes_; }
    uint64_t primaryBytes() const { return primaryBytes_; }
    uint64_t archiveReads() const { return archReadOps_; }
    const sim::TapeLibraryModel& tape() const { return tape_; }
    const Config& config() const { return cfg_; }

private:
    struct Meta {
        uint64_t bytes = 0;          // stored length as seen by this layer
        sim::TimePoint lastAppend = 0;
        bool archived = false;
        bool migrating = false;
    };

    uint64_t cartridgeFor(const std::string& name) const;
    void migrate(const std::string& name);
    void scheduleScan();

    sim::Core& exec_;
    ChunkStorage& primary_;
    Config cfg_;
    /// Liveness token for the periodic scan timer (scheduleWeak holds a raw
    /// `this` inside the machine, which can outlive this object).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    InMemoryChunkStorage archMem_;  // archive data plane (timing via tape_)
    sim::TapeLibraryModel tape_;
    std::map<std::string, Meta> meta_;
    uint64_t primaryBytes_ = 0;
    uint64_t archivedBytes_ = 0;
    uint64_t archivedChunks_ = 0;
    uint64_t archReadOps_ = 0;

    obs::Counter& mMigrations_;
    obs::Counter& mMigratedBytes_;
    obs::Counter& mReads_;
    obs::Counter& mReadBytes_;
    obs::Gauge& mArchivedBytes_;
    obs::Gauge& mPrimaryBytes_;
};

}  // namespace pravega::lts
