#include "sim/models.h"

#include <algorithm>
#include <cassert>

namespace pravega::sim {

QueuedResource::QueuedResource(Executor& exec, int lanes) : exec_(exec) {
    assert(lanes > 0);
    laneFree_.assign(static_cast<size_t>(lanes), 0);
}

TimePoint QueuedResource::earliestStart() const {
    TimePoint earliest = laneFree_[0];
    for (TimePoint t : laneFree_) earliest = std::min(earliest, t);
    return std::max(earliest, exec_.now());
}

Duration QueuedResource::backlog() const {
    Duration total = 0;
    for (TimePoint t : laneFree_) total += std::max<Duration>(0, t - exec_.now());
    return total;
}

Future<Unit> QueuedResource::acquire(Duration work) {
    size_t best = 0;
    for (size_t i = 1; i < laneFree_.size(); ++i) {
        if (laneFree_[i] < laneFree_[best]) best = i;
    }
    TimePoint start = std::max(laneFree_[best], exec_.now());
    TimePoint done = start + work;
    laneFree_[best] = done;

    Promise<Unit> p;
    exec_.schedule(done - exec_.now(), [p]() mutable { p.setValue(Unit{}); });
    return p.future();
}

DiskModel::DiskModel(Executor& exec, Config cfg) : exec_(exec), cfg_(cfg) {}

Future<Unit> DiskModel::write(uint64_t fileId, uint64_t bytes, bool fsync) {
    Duration work = cfg_.writeLatency + transferTime(bytes, cfg_.bytesPerSec);
    if (fileId != lastFile_) work += cfg_.fileSwitchPenalty;
    if (fsync) work += cfg_.fsyncLatency;
    lastFile_ = fileId;
    bytesWritten_ += bytes;

    TimePoint start = std::max(nextFree_, exec_.now());
    nextFree_ = start + work;

    Promise<Unit> p;
    exec_.schedule(nextFree_ - exec_.now(), [p]() mutable { p.setValue(Unit{}); });
    return p.future();
}

void Link::deliver(uint64_t bytes, Executor::Task fn) {
    if (partitioned_) {
        ++droppedMessages_;
        return;
    }
    if (dropNext_ > 0) {
        --dropNext_;
        ++droppedMessages_;
        return;
    }
    if (lossProbability_ > 0 && faultRng_.nextDouble() < lossProbability_) {
        ++droppedMessages_;
        return;
    }
    double bps = cfg_.bytesPerSec;
    Duration latency = cfg_.latency;
    if (exec_.now() < degradeUntil_) {
        bps *= degradeBandwidthFactor_;
        latency += degradeExtraLatency_;
    }
    TimePoint start = std::max(nextFree_, exec_.now());
    nextFree_ = start + transferTime(bytes, bps);
    bytesSent_ += bytes;
    TimePoint arrive = nextFree_ + latency;
    exec_.schedule(arrive - exec_.now(), std::move(fn));
}

void Link::degrade(Duration extraLatency, double bandwidthFactor, Duration duration) {
    degradeExtraLatency_ = extraLatency;
    degradeBandwidthFactor_ = bandwidthFactor > 0 ? bandwidthFactor : 1.0;
    degradeUntil_ = exec_.now() + duration;
}

void Link::clearFaults() {
    partitioned_ = false;
    lossProbability_ = 0.0;
    dropNext_ = 0;
    degradeExtraLatency_ = 0;
    degradeBandwidthFactor_ = 1.0;
    degradeUntil_ = 0;
}

ObjectStoreModel::ObjectStoreModel(Executor& exec, Config cfg)
    : exec_(exec), cfg_(cfg), lanes_(exec, cfg.maxConcurrent) {}

Future<Unit> ObjectStoreModel::transfer(uint64_t bytes) {
    bytesTransferred_ += bytes;
    // Per-stream time for this transfer...
    Duration streamTime = cfg_.opLatency + transferTime(bytes, cfg_.perStreamBytesPerSec);
    // ...but the shared pipe also advances; when many transfers run in
    // parallel the aggregate cap dominates and transfers queue behind it.
    TimePoint aggStart = std::max(aggCursor_, exec_.now());
    aggCursor_ = aggStart + transferTime(bytes, cfg_.aggregateBytesPerSec);

    Duration laneWork = std::max(streamTime, aggCursor_ - exec_.now());
    return lanes_.acquire(laneWork);
}

double ObjectStoreModel::backlogSeconds() const {
    Duration aggLag = std::max<Duration>(0, aggCursor_ - exec_.now());
    return toSeconds(std::max(aggLag, lanes_.backlog() / std::max(1, cfg_.maxConcurrent)));
}

}  // namespace pravega::sim
