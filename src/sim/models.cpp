#include "sim/models.h"

#include <algorithm>
#include <cassert>

namespace pravega::sim {

QueuedResource::QueuedResource(Core& exec, int lanes) : exec_(exec) {
    assert(lanes > 0);
    laneFree_.assign(static_cast<size_t>(lanes), 0);
}

TimePoint QueuedResource::earliestStart() const {
    TimePoint earliest = laneFree_[0];
    for (TimePoint t : laneFree_) earliest = std::min(earliest, t);
    return std::max(earliest, exec_.now());
}

Duration QueuedResource::backlog() const {
    Duration total = 0;
    for (TimePoint t : laneFree_) total += std::max<Duration>(0, t - exec_.now());
    return total;
}

Future<Unit> QueuedResource::acquire(Duration work) {
    size_t best = 0;
    for (size_t i = 1; i < laneFree_.size(); ++i) {
        if (laneFree_[i] < laneFree_[best]) best = i;
    }
    TimePoint start = std::max(laneFree_[best], exec_.now());
    TimePoint done = start + work;
    laneFree_[best] = done;

    Promise<Unit> p;
    exec_.schedule(done - exec_.now(), [p]() mutable { p.setValue(Unit{}); });
    return p.future();
}

DiskModel::DiskModel(Core& exec, Config cfg)
    : exec_(exec),
      cfg_(cfg),
      mWrites_(exec.metrics().counter("sim.disk.writes")),
      mBytes_(exec.metrics().counter("sim.disk.bytes")),
      mFsyncs_(exec.metrics().counter("sim.disk.fsyncs")),
      mBusyNs_(exec.metrics().counter("sim.disk.busy_ns")),
      mWriteNs_(exec.metrics().histogram("sim.disk.write_ns")),
      mQueueNs_(exec.metrics().histogram("sim.disk.queue_ns")) {}

Future<Unit> DiskModel::write(uint64_t fileId, uint64_t bytes, bool fsync) {
    Duration work = cfg_.writeLatency + transferTime(bytes, cfg_.bytesPerSec);
    if (fileId != lastFile_) work += cfg_.fileSwitchPenalty;
    if (fsync) work += cfg_.fsyncLatency;
    lastFile_ = fileId;
    bytesWritten_ += bytes;

    TimePoint start = std::max(nextFree_, exec_.now());
    nextFree_ = start + work;

    mWrites_.inc();
    mBytes_.inc(bytes);
    if (fsync) mFsyncs_.inc();
    mBusyNs_.inc(static_cast<uint64_t>(work));  // busy_ns / elapsed = utilization
    mQueueNs_.record(start - exec_.now());
    mWriteNs_.record(nextFree_ - exec_.now());

    Promise<Unit> p;
    exec_.schedule(nextFree_ - exec_.now(), [p]() mutable { p.setValue(Unit{}); });
    return p.future();
}

Link::Link(Core& exec, Config cfg, uint64_t faultSeed)
    : exec_(exec),
      cfg_(cfg),
      faultRng_(faultSeed),
      mMessages_(exec.metrics().counter("sim.net.messages")),
      mBytes_(exec.metrics().counter("sim.net.bytes")),
      mQueueNs_(exec.metrics().histogram("sim.net.queue_ns")) {}

void Link::recordDrop(uint64_t DropCounts::*kind, const char* kindName) {
    ++(drops_.*kind);
    auto& m = exec_.metrics();
    m.counter(std::string("net.drop.") + kindName).inc();
    if (!label_.empty()) {
        m.counter("net.link." + label_ + ".drop." + kindName).inc();
    }
}

void Link::deliver(uint64_t bytes, Core::Task fn) {
    if (partitioned_) {
        recordDrop(&DropCounts::partition, "partition");
        return;
    }
    if (dropNext_ > 0) {
        --dropNext_;
        recordDrop(&DropCounts::forced, "forced");
        return;
    }
    if (lossProbability_ > 0 && faultRng_.nextDouble() < lossProbability_) {
        recordDrop(&DropCounts::loss, "loss");
        return;
    }
    double bps = cfg_.bytesPerSec;
    Duration latency = cfg_.latency;
    if (exec_.now() < degradeUntil_) {
        bps *= degradeBandwidthFactor_;
        latency += degradeExtraLatency_;
    }
    TimePoint start = std::max(nextFree_, exec_.now());
    nextFree_ = start + transferTime(bytes, bps);
    bytesSent_ += bytes;
    mMessages_.inc();
    mBytes_.inc(bytes);
    mQueueNs_.record(start - exec_.now());
    TimePoint arrive = nextFree_ + latency;
    exec_.schedule(arrive - exec_.now(), std::move(fn));
}

void Link::degrade(Duration extraLatency, double bandwidthFactor, Duration duration) {
    degradeExtraLatency_ = extraLatency;
    degradeBandwidthFactor_ = bandwidthFactor > 0 ? bandwidthFactor : 1.0;
    degradeUntil_ = exec_.now() + duration;
}

void Link::clearFaults() {
    partitioned_ = false;
    lossProbability_ = 0.0;
    dropNext_ = 0;
    degradeExtraLatency_ = 0;
    degradeBandwidthFactor_ = 1.0;
    degradeUntil_ = 0;
}

ObjectStoreModel::ObjectStoreModel(Core& exec, Config cfg)
    : exec_(exec),
      cfg_(cfg),
      lanes_(exec, cfg.maxConcurrent),
      mOps_(exec.metrics().counter("sim.lts.ops")),
      mBytes_(exec.metrics().counter("sim.lts.bytes")),
      mOpNs_(exec.metrics().histogram("sim.lts.op_ns")),
      mBacklogSec_(exec.metrics().gauge("sim.lts.backlog_sec")) {}

Future<Unit> ObjectStoreModel::transfer(uint64_t bytes) {
    bytesTransferred_ += bytes;
    // Per-stream time for this transfer...
    Duration streamTime = cfg_.opLatency + transferTime(bytes, cfg_.perStreamBytesPerSec);
    // ...but the shared pipe also advances; when many transfers run in
    // parallel the aggregate cap dominates and transfers queue behind it.
    TimePoint aggStart = std::max(aggCursor_, exec_.now());
    aggCursor_ = aggStart + transferTime(bytes, cfg_.aggregateBytesPerSec);

    Duration laneWork = std::max(streamTime, aggCursor_ - exec_.now());
    mOps_.inc();
    mBytes_.inc(bytes);
    mOpNs_.record(laneWork);
    mBacklogSec_.set(backlogSeconds());
    return lanes_.acquire(laneWork);
}

TapeLibraryModel::TapeLibraryModel(Core& exec, Config cfg)
    : exec_(exec),
      cfg_(cfg),
      mOps_(exec.metrics().counter("sim.tape.ops")),
      mMounts_(exec.metrics().counter("sim.tape.mounts")),
      mBytes_(exec.metrics().counter("sim.tape.bytes")),
      mAccessNs_(exec.metrics().histogram("sim.tape.access_ns")),
      mFirstByteNs_(exec.metrics().histogram("sim.tape.first_byte_ns")) {
    assert(cfg_.drives > 0);
    drives_.assign(static_cast<size_t>(cfg_.drives), Drive{});
}

Future<Unit> TapeLibraryModel::access(uint64_t cartridge, uint64_t bytes) {
    int64_t cart = static_cast<int64_t>(cartridge % static_cast<uint64_t>(
                                                        std::max(1, cfg_.cartridges)));
    // Prefer the drive that already has this cartridge mounted; otherwise
    // the earliest-free drive (deterministic: lowest index wins ties).
    size_t best = 0;
    bool affinity = false;
    for (size_t i = 0; i < drives_.size(); ++i) {
        if (drives_[i].mounted == cart) {
            best = i;
            affinity = true;
            break;
        }
        if (drives_[i].freeAt < drives_[best].freeAt) best = i;
    }
    Drive& d = drives_[best];
    TimePoint start = std::max(d.freeAt, exec_.now());
    Duration firstByte = cfg_.seekLatency;
    if (!affinity) {
        firstByte += cfg_.mountLatency;
        d.mounted = cart;
        ++mounts_;
        mMounts_.inc();
    }
    TimePoint done = start + firstByte + transferTime(bytes, cfg_.bytesPerSec);
    d.freeAt = done;
    bytesTransferred_ += bytes;
    mOps_.inc();
    mBytes_.inc(bytes);
    mFirstByteNs_.record(start + firstByte - exec_.now());
    mAccessNs_.record(done - exec_.now());

    Promise<Unit> p;
    exec_.schedule(done - exec_.now(), [p]() mutable { p.setValue(Unit{}); });
    return p.future();
}

double ObjectStoreModel::backlogSeconds() const {
    Duration aggLag = std::max<Duration>(0, aggCursor_ - exec_.now());
    return toSeconds(std::max(aggLag, lanes_.backlog() / std::max(1, cfg_.maxConcurrent)));
}

}  // namespace pravega::sim
