// Virtual time. The whole system runs on a discrete-event executor over
// nanosecond virtual time; these helpers keep units explicit.
#pragma once

#include <cstdint>

namespace pravega::sim {

/// Nanoseconds since simulation start.
using TimePoint = int64_t;
/// Nanoseconds.
using Duration = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr Duration usec(double n) { return static_cast<Duration>(n * kMicrosecond); }
constexpr Duration msec(double n) { return static_cast<Duration>(n * kMillisecond); }
constexpr Duration sec(double n) { return static_cast<Duration>(n * kSecond); }

constexpr double toSeconds(Duration d) { return static_cast<double>(d) / kSecond; }
constexpr double toMillis(Duration d) { return static_cast<double>(d) / kMillisecond; }

/// Duration to transfer `bytes` at `bytesPerSec` throughput.
constexpr Duration transferTime(uint64_t bytes, double bytesPerSec) {
    if (bytesPerSec <= 0) return 0;
    return static_cast<Duration>(static_cast<double>(bytes) / bytesPerSec * kSecond);
}

}  // namespace pravega::sim
