#include "sim/machine.h"

#include <cassert>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"

namespace pravega::sim {

Core::Core(Machine& machine, int id, uint64_t rngSeed)
    : machine_(&machine),
      id_(id),
      slots_(kWheelSlots),
      rng_(rngSeed),
      metrics_(std::make_unique<obs::MetricsRegistry>(
          [m = &machine] { return m->now(); })) {}

Core::~Core() = default;

void Core::push(Duration delay, Task fn, bool weak) {
    assert(delay >= 0 && "cannot schedule into the past");
    if (!weak) {
        ++regularPending_;
        ++machine_->regularPending_;
    }
    const TimePoint at = machine_->now() + delay;
    const uint64_t seq = seq_++;

    Tier tier;
    size_t slot = 0;
    size_t idx = 0;
    if (delay == 0) {
        // Zero-delay post: `at == now`, and now is monotone, so the deque
        // is already (time, seq)-ordered.
        tier = Tier::Due;
        idx = dueNow_.size();
        dueNow_.push_back(Entry{at, seq, weak, std::move(fn)});
    } else {
        const uint64_t absSlot = static_cast<uint64_t>(at) >> kWheelShift;
        const uint64_t nowSlot = static_cast<uint64_t>(machine_->now()) >> kWheelShift;
        if (absSlot - nowSlot < kWheelSlots) {
            tier = Tier::Wheel;
            slot = static_cast<size_t>(absSlot & (kWheelSlots - 1));
            idx = slots_[slot].size();
            slots_[slot].push_back(Entry{at, seq, weak, std::move(fn)});
            ++wheelCount_;
            if (absSlot < wheelCursor_) wheelCursor_ = absSlot;
        } else {
            tier = Tier::Far;
            far_.push(Entry{at, seq, weak, std::move(fn)});
        }
    }

    // Incremental cached-min maintenance: a push can only improve the min.
    if (minTier_ == Tier::None || at < minAt_ || (at == minAt_ && seq < minSeq_)) {
        minTier_ = tier;
        minAt_ = at;
        minSeq_ = seq;
        minSlot_ = slot;
        minIdx_ = idx;
    }
}

Core::Entry Core::pop() {
    assert(minTier_ != Tier::None && "pop on empty core queue");
    Entry e;
    switch (minTier_) {
        case Tier::Due:
            e = std::move(dueNow_.front());
            dueNow_.pop_front();
            break;
        case Tier::Wheel: {
            auto& v = slots_[minSlot_];
            e = std::move(v[minIdx_]);
            // Swap-remove: slot order is irrelevant (the min scan compares
            // (time, seq) keys, never positions).
            if (minIdx_ + 1 != v.size()) v[minIdx_] = std::move(v.back());
            v.pop_back();
            --wheelCount_;
            break;
        }
        case Tier::Far:
            // priority_queue::top() is const; move out via const_cast,
            // standard idiom for pop-and-consume queues of move-only
            // payloads.
            e = std::move(const_cast<Entry&>(far_.top()));
            far_.pop();
            break;
        case Tier::None:
            break;  // unreachable (asserted above)
    }
    if (!e.weak) {
        --regularPending_;
        --machine_->regularPending_;
    }
    recomputeMin();
    return e;
}

void Core::consider(TimePoint at, uint64_t seq, Tier tier, size_t slot, size_t idx) {
    if (minTier_ == Tier::None || at < minAt_ || (at == minAt_ && seq < minSeq_)) {
        minTier_ = tier;
        minAt_ = at;
        minSeq_ = seq;
        minSlot_ = slot;
        minIdx_ = idx;
    }
}

void Core::recomputeMin() {
    minTier_ = Tier::None;
    if (!dueNow_.empty()) {
        const Entry& e = dueNow_.front();
        consider(e.at, e.seq, Tier::Due, 0, 0);
    }
    if (wheelCount_ > 0) {
        // All pending wheel entries lie within one horizon window above the
        // current virtual time (at >= now, and admission requires
        // at < pushNow + horizon <= now + horizon), so starting the scan at
        // the current time's slot can't skip anything and no physical slot
        // mixes laps.
        const uint64_t nowSlot = static_cast<uint64_t>(machine_->now()) >> kWheelShift;
        if (wheelCursor_ < nowSlot) wheelCursor_ = nowSlot;
        while (slots_[static_cast<size_t>(wheelCursor_ & (kWheelSlots - 1))].empty()) {
            ++wheelCursor_;
        }
        const size_t slot = static_cast<size_t>(wheelCursor_ & (kWheelSlots - 1));
        const auto& v = slots_[slot];
        size_t bestIdx = 0;
        for (size_t i = 1; i < v.size(); ++i) {
            if (v[i].at < v[bestIdx].at ||
                (v[i].at == v[bestIdx].at && v[i].seq < v[bestIdx].seq)) {
                bestIdx = i;
            }
        }
        consider(v[bestIdx].at, v[bestIdx].seq, Tier::Wheel, slot, bestIdx);
    }
    if (!far_.empty()) {
        const Entry& e = far_.top();
        consider(e.at, e.seq, Tier::Far, 0, 0);
    }
}

Machine::Machine(MachineConfig cfg) : cfg_(cfg) {
    assert(cfg_.cores > 0);
    cores_.reserve(static_cast<size_t>(cfg_.cores));
    for (int c = 0; c < cfg_.cores; ++c) {
        cores_.emplace_back(new Core(*this, c,
                                     pravega::mix64(cfg_.rngSeed ^
                                                    static_cast<uint64_t>(c + 1))));
    }
}

Machine::~Machine() = default;

void Machine::submitTo(int core, Core::Task task) {
    assert(core >= 0 && core < coreCount());
    if (core == runningCore_) {
        // Same shard: a direct call, exactly like the pre-shard substrate's
        // synchronous dispatch (and like sharded runtimes' same-shard
        // submits). Keeps 1-core runs byte-identical to the seed traces.
        task();
        return;
    }
    ++xcoreMessages_;
    // Hand-off latency models the mailbox: queue transfer + remote wake-up.
    // Harness submits (runningCore_ == -1) are world setup, not modeled
    // shard-to-shard traffic, and pay nothing.
    Duration cost = runningCore_ >= 0 ? cfg_.handoffLatency : 0;
    if (runningCore_ >= 0) {
        cores_[static_cast<size_t>(runningCore_)]
            ->metrics()
            .counter("sim.xcore.sent")
            .inc();
    }
    cores_[static_cast<size_t>(core)]->schedule(cost, std::move(task));
}

int Machine::pickNext() {
    ++schedulerSelections_;
    int best = -1;
    for (int c = 0; c < coreCount(); ++c) {
        const Core& core = *cores_[static_cast<size_t>(c)];
        if (!core.hasPending()) continue;
        if (best < 0) {
            best = c;
            continue;
        }
        // Global merge order: (time, core id, per-core seq). Core id breaks
        // same-time ties across shards (strict < keeps the lowest id);
        // per-core seq orders within a shard and is folded into the cached
        // minimum. Only cached integers are compared here — no queue peeks.
        if (core.minAt() < cores_[static_cast<size_t>(best)]->minAt()) best = c;
    }
    return best;
}

void Machine::dispatch(int c) {
    Core& core = *cores_[static_cast<size_t>(c)];
    Core::Entry e = core.pop();
    assert(e.at >= now_ && "merge order regressed the clock");
    now_ = e.at;
    runningCore_ = c;
    e.fn();
    runningCore_ = -1;
    ++executedEvents_;
}

bool Machine::runOne() {
    int c = pickNext();
    if (c < 0) return false;
    dispatch(c);
    return true;
}

uint64_t Machine::runUntilIdle() {
    uint64_t n = 0;
    while (regularPending_ > 0 && runOne()) ++n;
    return n;
}

uint64_t Machine::runUntil(TimePoint deadline) {
    uint64_t n = 0;
    for (;;) {
        // Single scan per dispatched event: the selection that found the
        // core is the one we dispatch (the old code scanned once to check
        // the deadline and a second time inside runOne).
        int c = pickNext();
        if (c < 0 || cores_[static_cast<size_t>(c)]->minAt() > deadline) break;
        dispatch(c);
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

size_t Machine::pendingTasks() const {
    size_t n = 0;
    for (const auto& c : cores_) n += c->pendingTasks();
    return n;
}

const obs::MetricsRegistry& Machine::mergedMetrics() {
    if (cores_.size() == 1) return cores_[0]->metrics();
    // Rebuild the snapshot from scratch: per-core partitions stay the
    // source of truth, and same-name instruments across cores fold into a
    // single merged instrument (find-or-create + accumulate — the fix for
    // the counter double-registration two cores would otherwise cause).
    merged_ = std::make_unique<obs::MetricsRegistry>([this] { return now_; });
    for (const auto& c : cores_) merged_->mergeFrom(c->metrics());
    return *merged_;
}

}  // namespace pravega::sim
