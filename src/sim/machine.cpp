#include "sim/machine.h"

#include <cassert>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"

namespace pravega::sim {

Core::Core(Machine& machine, int id, uint64_t rngSeed)
    : machine_(&machine),
      id_(id),
      rng_(rngSeed),
      metrics_(std::make_unique<obs::MetricsRegistry>(
          [m = &machine] { return m->now(); })) {}

Core::~Core() = default;

void Core::push(Duration delay, Task fn, bool weak) {
    assert(delay >= 0 && "cannot schedule into the past");
    if (!weak) ++regularPending_;
    queue_.push(Entry{machine_->now() + delay, seq_++, weak, std::move(fn)});
}

Core::Entry Core::pop() {
    // priority_queue::top() is const; move out via const_cast, standard idiom
    // for pop-and-consume queues of move-only payloads.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (!e.weak) --regularPending_;
    return e;
}

Machine::Machine(MachineConfig cfg) : cfg_(cfg) {
    assert(cfg_.cores > 0);
    cores_.reserve(static_cast<size_t>(cfg_.cores));
    for (int c = 0; c < cfg_.cores; ++c) {
        cores_.emplace_back(new Core(*this, c,
                                     pravega::mix64(cfg_.rngSeed ^
                                                    static_cast<uint64_t>(c + 1))));
    }
}

Machine::~Machine() = default;

void Machine::submitTo(int core, Core::Task task) {
    assert(core >= 0 && core < coreCount());
    if (core == runningCore_) {
        // Same shard: a direct call, exactly like the pre-shard substrate's
        // synchronous dispatch (and like sharded runtimes' same-shard
        // submits). Keeps 1-core runs byte-identical to the seed traces.
        task();
        return;
    }
    ++xcoreMessages_;
    // Hand-off latency models the mailbox: queue transfer + remote wake-up.
    // Harness submits (runningCore_ == -1) are world setup, not modeled
    // shard-to-shard traffic, and pay nothing.
    Duration cost = runningCore_ >= 0 ? cfg_.handoffLatency : 0;
    if (runningCore_ >= 0) {
        cores_[static_cast<size_t>(runningCore_)]
            ->metrics()
            .counter("sim.xcore.sent")
            .inc();
    }
    cores_[static_cast<size_t>(core)]->schedule(cost, std::move(task));
}

int Machine::pickNext() const {
    int best = -1;
    for (int c = 0; c < coreCount(); ++c) {
        const auto& q = cores_[static_cast<size_t>(c)]->queue_;
        if (q.empty()) continue;
        if (best < 0) {
            best = c;
            continue;
        }
        const Core::Entry& a = q.top();
        const Core::Entry& b = cores_[static_cast<size_t>(best)]->queue_.top();
        // Global merge order: (time, core id, per-core seq). Core id breaks
        // same-time ties across shards; per-core seq orders within a shard.
        if (a.at < b.at) best = c;
    }
    return best;
}

bool Machine::runOne() {
    int c = pickNext();
    if (c < 0) return false;
    Core& core = *cores_[static_cast<size_t>(c)];
    Core::Entry e = core.pop();
    assert(e.at >= now_ && "merge order regressed the clock");
    now_ = e.at;
    runningCore_ = c;
    e.fn();
    runningCore_ = -1;
    return true;
}

uint64_t Machine::runUntilIdle() {
    uint64_t n = 0;
    while (pendingRegularTasks() > 0 && runOne()) ++n;
    return n;
}

uint64_t Machine::runUntil(TimePoint deadline) {
    uint64_t n = 0;
    for (;;) {
        int c = pickNext();
        if (c < 0 || cores_[static_cast<size_t>(c)]->queue_.top().at > deadline) break;
        runOne();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

size_t Machine::pendingTasks() const {
    size_t n = 0;
    for (const auto& c : cores_) n += c->pendingTasks();
    return n;
}

size_t Machine::pendingRegularTasks() const {
    size_t n = 0;
    for (const auto& c : cores_) n += c->pendingRegularTasks();
    return n;
}

const obs::MetricsRegistry& Machine::mergedMetrics() {
    if (cores_.size() == 1) return cores_[0]->metrics();
    // Rebuild the snapshot from scratch: per-core partitions stay the
    // source of truth, and same-name instruments across cores fold into a
    // single merged instrument (find-or-create + accumulate — the fix for
    // the counter double-registration two cores would otherwise cause).
    merged_ = std::make_unique<obs::MetricsRegistry>([this] { return now_; });
    for (const auto& c : cores_) merged_->mergeFrom(c->metrics());
    return *merged_;
}

}  // namespace pravega::sim
