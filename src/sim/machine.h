// Shard-per-core simulation substrate: a Machine owns N Core shards, each
// with its own event queue, RNG stream, and metrics-registry partition —
// following the sharded-service architecture of systems like Redpanda
// ("each core manages a distinct set of logs"): state is partitioned across
// cores and cross-core communication goes through mailboxes with a modeled
// hand-off cost instead of direct calls.
//
// Determinism contract: the machine scheduler executes events in a single
// global merge order — (time, core id, per-core sequence number) — so every
// multi-core run is byte-replayable from its seed. A 1-core machine is
// exactly the old single-threaded executor: same queue discipline, same
// FIFO tie-break, same clock semantics, byte-identical traces.
//
// Clocks are kept in lockstep by the machine scheduler: every core's
// `now()` reads the machine's merged virtual time, which only advances when
// the globally-earliest event executes. Per-core clocks therefore never
// skew — a core that has been idle for a second still observes the same
// "now" as the core that just ran — which keeps cross-core reads of
// hardware models (disk backlogs, link cursors) exact.
//
// Tasks come in two strengths. Regular tasks represent pending work; WEAK
// tasks are self-rearming background timers (cache policy, storage-writer
// scans, monitor ticks). `runUntilIdle()` runs until no regular task
// remains on ANY core — weak timers never keep the system "busy" — while
// `runUntil`/`runFor` advance virtual time and run everything scheduled
// within it.
//
// Shard affinity: components hold the Core& they are pinned to and schedule
// ONLY through that handle. Work that must run on another shard goes
// through `Machine::submitTo(core, task)` — the cross-core mailbox — which
// charges the configured hand-off latency. A submit to the shard that is
// currently executing is a direct call (no queueing, no cost), mirroring
// what sharded runtimes do for same-shard submits.
//
// Event-queue fast path: each core keeps its pending events in three tiers
// instead of one binary heap —
//   1. a due-now FIFO for zero-delay posts (at == now when pushed, so the
//      deque is already in (time, seq) order: O(1) push and pop, no heap
//      sifting of std::function payloads),
//   2. a timer wheel for the near future (slot width 2^kWheelShift ns,
//      kWheelSlots slots ≈ 16.8 ms horizon): O(1) push into an unsorted
//      slot, pops scan only the cursor slot,
//   3. a far heap for everything beyond the wheel horizon (rare:
//      long-fuse timeouts, background rearm timers).
// Each core maintains a cached (time, seq) key of its earliest pending
// event, updated incrementally on push/pop, so the machine's dispatch loop
// compares plain integers across cores instead of peeking N priority
// queues. The merge order is unchanged: within a core (time, seq); across
// cores ties in time go to the lowest core id.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace pravega::obs {
class MetricsRegistry;
}

namespace pravega::sim {

class Machine;

struct MachineConfig {
    /// Number of Core shards.
    int cores = 1;
    /// Cross-core mailbox hand-off latency: queue transfer + remote-shard
    /// wake-up (the cost that makes "keep it on one shard" designs win
    /// until a core saturates).
    Duration handoffLatency = Duration(700);
    /// Base seed for the per-core RNG streams (stream c is derived as
    /// mix64(rngSeed ^ (c+1)), so streams are decorrelated but replayable).
    uint64_t rngSeed = 0xC0DE5EEDF00DULL;
};

/// One shard: an event queue plus the per-core state (RNG stream, metrics
/// partition) of everything pinned to it. Cores never run themselves — the
/// owning Machine's scheduler picks the globally-earliest event.
class Core {
public:
    using Task = std::function<void()>;

    Core(const Core&) = delete;
    Core& operator=(const Core&) = delete;
    ~Core();

    /// Shard index within the machine, 0-based.
    int id() const { return id_; }
    Machine& machine() const { return *machine_; }

    /// The machine's merged virtual clock (all cores observe it in
    /// lockstep; see file comment).
    TimePoint now() const;

    /// Runs `fn` on this shard after `delay` (>= 0) of virtual time.
    void schedule(Duration delay, Task fn) { push(delay, std::move(fn), /*weak=*/false); }

    /// Weak variant for self-rearming background timers: does not count
    /// toward `runUntilIdle`'s idleness.
    void scheduleWeak(Duration delay, Task fn) { push(delay, std::move(fn), /*weak=*/true); }

    /// Runs `fn` on this shard at the current time, after already-queued
    /// same-time tasks of this shard.
    void post(Task fn) { schedule(0, std::move(fn)); }

    /// This shard's metrics-registry partition. Components pinned to the
    /// core record here; `Machine::mergedMetrics()` aggregates partitions
    /// into the single-registry view.
    obs::MetricsRegistry& metrics() { return *metrics_; }
    const obs::MetricsRegistry& metrics() const { return *metrics_; }

    /// This shard's deterministic RNG stream.
    Rng& rng() { return rng_; }

    size_t pendingTasks() const { return dueNow_.size() + wheelCount_ + far_.size(); }
    size_t pendingRegularTasks() const { return regularPending_; }

private:
    friend class Machine;

    // Timer-wheel geometry: 2^13 ns (≈8.2 µs) slots × 2048 slots ≈ 16.8 ms
    // horizon. Everything the hot path schedules (I/O completions, batch
    // timers, mailbox hand-offs) lands inside it.
    static constexpr uint32_t kWheelShift = 13;
    static constexpr size_t kWheelSlots = 2048;

    struct Entry {
        TimePoint at;
        uint64_t seq;  // per-core FIFO tie-break for same-time events
        bool weak;
        Task fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };
    enum class Tier : uint8_t { None, Due, Wheel, Far };

    Core(Machine& machine, int id, uint64_t rngSeed);
    void push(Duration delay, Task fn, bool weak);
    /// Pops the earliest entry (queue must be non-empty) and refreshes the
    /// cached minimum.
    Entry pop();
    /// Recomputes the cached (time, seq) minimum across the three tiers.
    void recomputeMin();
    /// Offers a candidate to the cached minimum during recomputation.
    void consider(TimePoint at, uint64_t seq, Tier tier, size_t slot, size_t idx);

    bool hasPending() const { return minTier_ != Tier::None; }
    TimePoint minAt() const { return minAt_; }

    Machine* machine_;
    int id_;
    uint64_t seq_ = 0;
    size_t regularPending_ = 0;

    // Tier 1: zero-delay posts, already in (time, seq) order.
    std::deque<Entry> dueNow_;
    // Tier 2: near-future timer wheel. Slots hold unsorted entries; the
    // cursor (an ABSOLUTE slot index, at >> kWheelShift) only moves forward
    // except when a push lands behind it. All pending wheel entries fit in
    // one horizon window relative to the current virtual time, so a
    // physical slot never mixes laps.
    std::vector<std::vector<Entry>> slots_;
    size_t wheelCount_ = 0;
    uint64_t wheelCursor_ = 0;  // absolute slot index of the scan position
    // Tier 3: beyond the wheel horizon.
    std::priority_queue<Entry, std::vector<Entry>, Later> far_;

    // Cached earliest pending event (valid when minTier_ != None). minSlot_/
    // minIdx_ locate it inside the wheel when minTier_ == Wheel.
    Tier minTier_ = Tier::None;
    TimePoint minAt_ = 0;
    uint64_t minSeq_ = 0;
    size_t minSlot_ = 0;
    size_t minIdx_ = 0;

    Rng rng_;
    // unique_ptr + out-of-line ctor/dtor keep obs/metrics.h out of this
    // header (obs depends on sim/time.h only; no include cycle).
    std::unique_ptr<obs::MetricsRegistry> metrics_;
};

/// The sharded runtime: N cores driven by one deterministic merge-order
/// scheduler. For harness/test convenience a Machine converts to its home
/// core (core 0) and forwards the scheduling surface there — components,
/// by contrast, must hold the specific Core& they are pinned to.
class Machine {
public:
    Machine() : Machine(MachineConfig{}) {}
    explicit Machine(int cores) : Machine(makeConfig(cores)) {}
    explicit Machine(MachineConfig cfg);
    ~Machine();
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    int coreCount() const { return static_cast<int>(cores_.size()); }
    Core& core(int i) { return *cores_[static_cast<size_t>(i)]; }
    const Core& core(int i) const { return *cores_[static_cast<size_t>(i)]; }

    /// Home-core handle: a 1-core machine IS the classic single-threaded
    /// executor, so harness code can pass the machine wherever a Core& is
    /// expected.
    operator Core&() { return *cores_[0]; }

    TimePoint now() const { return now_; }

    /// Id of the core whose event is currently executing, or -1 when
    /// control is in harness code between events.
    int runningCore() const { return runningCore_; }

    /// Cross-core mailbox: runs `task` on shard `core`. When `core` is the
    /// shard currently executing this IS a direct call (runs inline);
    /// otherwise the task is enqueued on the target shard after the
    /// configured hand-off latency (charged only when the submit originates
    /// from another shard — harness submits pay no hand-off).
    void submitTo(int core, Core::Task task);

    /// Cross-core messages sent so far (mailbox traffic, direct same-shard
    /// calls excluded).
    uint64_t crossCoreMessages() const { return xcoreMessages_; }

    // ---- home-core (core 0) conveniences for harness/test code ----------
    void schedule(Duration delay, Core::Task fn) { core(0).schedule(delay, std::move(fn)); }
    void scheduleWeak(Duration delay, Core::Task fn) {
        core(0).scheduleWeak(delay, std::move(fn));
    }
    void post(Core::Task fn) { core(0).post(std::move(fn)); }
    /// The home core's metrics partition (THE registry of 1-core worlds).
    obs::MetricsRegistry& metrics() { return core(0).metrics(); }
    const obs::MetricsRegistry& metrics() const { return core(0).metrics(); }

    /// Single-registry view across all core partitions: counters/gauges
    /// sum, histograms and meters merge. With 1 core this is the home
    /// registry itself (no copy); with N cores it is a snapshot valid until
    /// the next call. Same-name instruments on different cores fold into
    /// ONE instrument — never a duplicate registration.
    const obs::MetricsRegistry& mergedMetrics();

    /// Runs events until no REGULAR task remains on any core (weak timers
    /// may still be queued). Returns the number of events executed.
    uint64_t runUntilIdle();

    /// Runs events with timestamp <= deadline (regular and weak); advances
    /// the clock to `deadline` even if the queues drain earlier.
    uint64_t runUntil(TimePoint deadline);

    /// Runs for `d` of virtual time from now.
    uint64_t runFor(Duration d) { return runUntil(now_ + d); }

    /// Runs the globally-earliest event if one exists; false when idle.
    bool runOne();

    size_t pendingTasks() const;
    size_t pendingRegularTasks() const { return regularPending_; }

    /// Number of scheduler selections (pickNext tournaments) performed.
    /// The dispatch loops do exactly ONE selection per dispatched event
    /// (plus the final selection that observes the stop condition) — the
    /// regression tests pin this down.
    uint64_t schedulerSelections() const { return schedulerSelections_; }

    /// Total events dispatched by this machine over its lifetime.
    uint64_t executedEvents() const { return executedEvents_; }

    const MachineConfig& config() const { return cfg_; }

private:
    friend class Core;

    static MachineConfig makeConfig(int cores) {
        MachineConfig cfg;
        cfg.cores = cores;
        return cfg;
    }

    /// Core holding the globally-earliest event under the (time, core, seq)
    /// merge order, or -1 when every queue is empty. Compares the per-core
    /// cached minima — plain integer compares, no queue peeks.
    int pickNext();

    /// Pops and runs the earliest event of core `c` (which pickNext just
    /// selected). Separated from pickNext so the dispatch loops scan the
    /// queues exactly once per event.
    void dispatch(int c);

    MachineConfig cfg_;
    TimePoint now_ = 0;
    int runningCore_ = -1;
    uint64_t xcoreMessages_ = 0;
    uint64_t schedulerSelections_ = 0;
    uint64_t executedEvents_ = 0;
    size_t regularPending_ = 0;  // incrementally maintained sum across cores
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<obs::MetricsRegistry> merged_;  // multi-core snapshot
};

inline TimePoint Core::now() const { return machine_->now(); }

}  // namespace pravega::sim
