// Discrete-event executor: a priority queue of timed callbacks over virtual
// time. Single-threaded by design — all "concurrency" in the system is
// interleaving of events, which keeps every run deterministic.
//
// Tasks come in two strengths. Regular tasks represent pending work; WEAK
// tasks are self-rearming background timers (cache policy, storage-writer
// scans, dispatch ticks). `runUntilIdle()` runs until no regular task
// remains — weak timers never keep the system "busy" — while `runUntil`/
// `runFor` advance virtual time and run everything scheduled within it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace pravega::obs {
class MetricsRegistry;
}

namespace pravega::sim {

class Executor {
public:
    using Task = std::function<void()>;

    Executor();
    ~Executor();
    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    TimePoint now() const { return now_; }

    /// The world's metrics registry. One registry per executor: every
    /// component of a simulated world records here, and its instruments are
    /// driven by this executor's virtual clock (deterministic dumps).
    obs::MetricsRegistry& metrics() { return *metrics_; }
    const obs::MetricsRegistry& metrics() const { return *metrics_; }

    /// Runs `fn` after `delay` (>= 0) of virtual time.
    void schedule(Duration delay, Task fn) { push(delay, std::move(fn), /*weak=*/false); }

    /// Weak variant for self-rearming background timers: does not count
    /// toward `runUntilIdle`'s idleness.
    void scheduleWeak(Duration delay, Task fn) { push(delay, std::move(fn), /*weak=*/true); }

    /// Runs `fn` at the current time, after already-queued same-time tasks.
    void post(Task fn) { schedule(0, std::move(fn)); }

    /// Runs events until no REGULAR task remains (weak timers may still be
    /// queued). Returns the number of events executed.
    uint64_t runUntilIdle();

    /// Runs events with timestamp <= deadline (regular and weak); advances
    /// the clock to `deadline` even if the queue drains earlier.
    uint64_t runUntil(TimePoint deadline);

    /// Runs for `d` of virtual time from now.
    uint64_t runFor(Duration d) { return runUntil(now_ + d); }

    /// Runs a single event if one exists; returns false when idle.
    bool runOne();

    size_t pendingTasks() const { return queue_.size(); }
    size_t pendingRegularTasks() const { return regularPending_; }

private:
    struct Entry {
        TimePoint at;
        uint64_t seq;  // FIFO tie-break for same-time events
        bool weak;
        Task fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void push(Duration delay, Task fn, bool weak);

    TimePoint now_ = 0;
    uint64_t seq_ = 0;
    size_t regularPending_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    // unique_ptr + out-of-line ctor/dtor keep obs/metrics.h out of this
    // header (obs depends on sim/time.h only; no include cycle).
    std::unique_ptr<obs::MetricsRegistry> metrics_;
};

}  // namespace pravega::sim
