// Deterministic PRNG (xoshiro256**). Every run of a test or benchmark is
// reproducible bit-for-bit from the seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "common/hash.h"

namespace pravega::sim {

class Rng {
public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
        for (auto& w : s_) {
            seed = pravega::mix64(seed);
            w = seed;
        }
    }

    uint64_t next() {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform in [0, bound).
    uint64_t nextBounded(uint64_t bound) { return bound ? next() % bound : 0; }

    /// Uniform double in [0, 1).
    double nextDouble() { return static_cast<double>(next() >> 11) / static_cast<double>(1ULL << 53); }

    /// Exponentially distributed with the given mean (Poisson inter-arrivals).
    double nextExp(double mean) {
        double u = nextDouble();
        if (u >= 1.0) u = 0.9999999999;
        return -mean * std::log(1.0 - u);
    }

    /// Random printable routing key drawn from `space` distinct keys.
    std::string nextKey(uint64_t space) {
        return "key-" + std::to_string(nextBounded(space));
    }

private:
    static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    uint64_t s_[4];
};

}  // namespace pravega::sim
