// Hardware models for the discrete-event substrate.
//
// These stand in for the paper's AWS testbed (§5.1): NVMe journal drives
// (DiskModel), the 10GbE network between clients and servers (Link), server
// CPUs (CpuModel), and EFS/S3 long-term storage (ObjectStoreModel). Each
// model turns a request into a virtual-time completion; all algorithmic
// behaviour (batching, multiplexing, tiering) lives above this layer.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/future.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pravega::sim {

/// A resource with `lanes` parallel servers and FIFO queueing: requests of
/// a given duration occupy the earliest-free lane. Lanes model, e.g.,
/// parallel connections to an object store.
class QueuedResource {
public:
    QueuedResource(Core& exec, int lanes);

    /// Occupies a lane for `work` time; the future completes when done.
    Future<Unit> acquire(Duration work);

    /// Earliest time a new request could start (for monitoring/backpressure).
    TimePoint earliestStart() const;

    /// Total queued-but-unfinished work (for backpressure decisions).
    Duration backlog() const;

private:
    Core& exec_;
    std::vector<TimePoint> laneFree_;
};

/// An NVMe-like drive with a serialized write head, per-write base cost,
/// fsync cost, and a penalty for switching between log files. The switch
/// penalty is what makes "one log file per partition" designs (Kafka-like)
/// degrade at high partition counts (§5.6) while multiplexed designs
/// (Pravega segment containers, BookKeeper journals) stay efficient.
class DiskModel {
public:
    struct Config {
        double bytesPerSec = 800.0 * 1024 * 1024;  // measured via dd in the paper
        Duration writeLatency = usec(15);          // per-IO submission overhead
        Duration fsyncLatency = usec(50);          // durable-flush cost
        Duration fileSwitchPenalty = usec(150);    // cost of targeting a different file
    };

    DiskModel(Core& exec, Config cfg);

    /// Appends `bytes` to file `fileId`; `fsync` makes the write durable
    /// before completion. Writes are serialized at the device.
    Future<Unit> write(uint64_t fileId, uint64_t bytes, bool fsync);

    /// Device utilization probe: time the head is booked into the future.
    Duration backlog() const { return std::max<Duration>(0, nextFree_ - exec_.now()); }

    uint64_t bytesWritten() const { return bytesWritten_; }
    const Config& config() const { return cfg_; }

private:
    Core& exec_;
    Config cfg_;
    TimePoint nextFree_ = 0;
    uint64_t lastFile_ = UINT64_MAX;
    uint64_t bytesWritten_ = 0;
    // World-aggregate device metrics (all disks of one executor share them).
    obs::Counter& mWrites_;
    obs::Counter& mBytes_;
    obs::Counter& mFsyncs_;
    obs::Counter& mBusyNs_;
    obs::LatencyHistogram& mWriteNs_;
    obs::LatencyHistogram& mQueueNs_;
};

/// One direction of a network link: propagation latency plus serialization
/// at the link bandwidth. Each Link is point-to-point (client NIC → server
/// NIC); messages on the same link queue behind each other.
///
/// Links carry per-direction fault state for the chaos layer: a partition
/// drops every message, probabilistic loss drops a seeded random subset,
/// `dropNext(n)` drops exactly the next n messages (deterministic tests),
/// and a degradation window adds latency and scales down bandwidth until a
/// virtual-time deadline. Dropped messages simply never deliver — the
/// sender learns nothing, exactly like a real packet blackhole.
class Link {
public:
    struct Config {
        Duration latency = usec(250);                 // one-way propagation (intra-AZ)
        double bytesPerSec = 1.25 * 1024 * 1024 * 1024;  // 10 Gbps
    };

    /// Why a message was dropped, per fault kind. Chaos tests assert on
    /// these to know WHICH fault ate the traffic (not just that one did).
    struct DropCounts {
        uint64_t partition = 0;  // hard partition
        uint64_t forced = 0;     // dropNext() deterministic injection
        uint64_t loss = 0;       // probabilistic loss
        uint64_t total() const { return partition + forced + loss; }
    };

    Link(Core& exec, Config cfg, uint64_t faultSeed = 0x11C4C11ULL);

    /// Endpoint label ("<from>-><to>") for per-link registry counters;
    /// set by Network when it creates the link.
    void setLabel(std::string label) { label_ = std::move(label); }
    const std::string& label() const { return label_; }

    /// Delivers `fn` on the far side after transfer of `bytes`.
    void deliver(uint64_t bytes, Core::Task fn);

    // ---- fault controls (chaos layer) ----------------------------------
    void setPartitioned(bool on) { partitioned_ = on; }
    bool partitioned() const { return partitioned_; }
    /// Probability in [0,1] that any single message is dropped.
    void setLossProbability(double p) { lossProbability_ = p; }
    /// Drops exactly the next `n` messages (deterministic fault injection).
    void dropNext(int n) { dropNext_ += n; }
    /// Until `duration` from now, adds `extraLatency` to propagation and
    /// multiplies bandwidth by `bandwidthFactor` (in (0, 1]).
    void degrade(Duration extraLatency, double bandwidthFactor, Duration duration);
    void clearFaults();

    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t droppedMessages() const { return drops_.total(); }
    const DropCounts& drops() const { return drops_; }

private:
    void recordDrop(uint64_t DropCounts::*kind, const char* kindName);

    Core& exec_;
    Config cfg_;
    TimePoint nextFree_ = 0;
    uint64_t bytesSent_ = 0;
    std::string label_;

    // Fault state.
    bool partitioned_ = false;
    double lossProbability_ = 0.0;
    int dropNext_ = 0;
    Duration degradeExtraLatency_ = 0;
    double degradeBandwidthFactor_ = 1.0;
    TimePoint degradeUntil_ = 0;
    Rng faultRng_;
    DropCounts drops_;

    // World-aggregate link metrics.
    obs::Counter& mMessages_;
    obs::Counter& mBytes_;
    obs::LatencyHistogram& mQueueNs_;
};

/// A server CPU with `cores` parallel execution lanes. Request handling
/// costs (per request + per byte) queue here; saturation produces the
/// latency blow-ups seen at each system's maximum throughput.
class CpuModel {
public:
    struct Config {
        int cores = 16;
        Duration perRequest = usec(12);    // protocol handling / syscalls
        double bytesPerSec = 4.0 * 1024 * 1024 * 1024;  // memcpy/checksum rate
    };

    CpuModel(Core& exec, Config cfg) : res_(exec, cfg.cores), cfg_(cfg) {}

    /// Charges the cost of handling one request carrying `bytes`.
    Future<Unit> execute(uint64_t bytes) {
        return res_.acquire(cfg_.perRequest + transferTime(bytes, cfg_.bytesPerSec));
    }

    /// Charges an explicit amount of CPU work.
    Future<Unit> executeFor(Duration d) { return res_.acquire(d); }

    Duration backlog() const { return res_.backlog(); }

private:
    QueuedResource res_;
    Config cfg_;
};

/// Cloud object/file store (EFS, S3): high per-op latency, a per-stream
/// throughput cap, and a higher aggregate cap reachable only with parallel
/// transfers — exactly the property Pravega's parallel chunk reads exploit
/// in §5.7 and that bottlenecks single-segment writes in §5.4.
class ObjectStoreModel {
public:
    struct Config {
        Duration opLatency = msec(8);
        double perStreamBytesPerSec = 160.0 * 1024 * 1024;  // paper: ~160 MB/s/transfer
        double aggregateBytesPerSec = 800.0 * 1024 * 1024;
        int maxConcurrent = 64;
    };

    ObjectStoreModel(Core& exec, Config cfg);

    Future<Unit> put(uint64_t bytes) { return transfer(bytes); }
    Future<Unit> get(uint64_t bytes) { return transfer(bytes); }

    uint64_t bytesTransferred() const { return bytesTransferred_; }

    /// Estimated seconds of queued work (drives ingest throttling, §4.3).
    double backlogSeconds() const;

private:
    Future<Unit> transfer(uint64_t bytes);

    Core& exec_;
    Config cfg_;
    QueuedResource lanes_;
    TimePoint aggCursor_ = 0;  // virtual finish line of the shared pipe
    uint64_t bytesTransferred_ = 0;
    obs::Counter& mOps_;
    obs::Counter& mBytes_;
    obs::LatencyHistogram& mOpNs_;
    obs::Gauge& mBacklogSec_;
};

/// Cold archive store (TALICS³-style tape library): a small pool of drives
/// serves a large set of cartridges. An access whose cartridge is not
/// already mounted on a drive pays a mount penalty (robot exchange + load +
/// thread), then a seek to position, then streams at tape bandwidth — the
/// deep-read first-byte latency profile that distinguishes an archive tier
/// from object storage. Drives are modeled like QueuedResource lanes but
/// keep per-drive mounted-cartridge state so cartridge affinity is real:
/// back-to-back reads of the same cartridge pay one mount.
class TapeLibraryModel {
public:
    struct Config {
        int drives = 2;
        int cartridges = 16;
        /// Robot exchange + load + thread time on a cartridge switch.
        Duration mountLatency = msec(400);
        /// Position seek charged on every access (tape wind).
        Duration seekLatency = msec(60);
        double bytesPerSec = 120.0 * 1024 * 1024;  // LTO-class streaming rate
    };

    TapeLibraryModel(Core& exec, Config cfg);

    /// Charges one access of `bytes` against cartridge `cartridge`
    /// (hashed into the library's cartridge set). Completes when the
    /// transfer finishes; first-byte latency = queue + mount? + seek.
    Future<Unit> access(uint64_t cartridge, uint64_t bytes);

    uint64_t mounts() const { return mounts_; }
    uint64_t bytesTransferred() const { return bytesTransferred_; }
    const Config& config() const { return cfg_; }

private:
    struct Drive {
        int64_t mounted = -1;  // cartridge id, -1 = empty
        TimePoint freeAt = 0;
    };

    Core& exec_;
    Config cfg_;
    std::vector<Drive> drives_;
    uint64_t mounts_ = 0;
    uint64_t bytesTransferred_ = 0;
    obs::Counter& mOps_;
    obs::Counter& mMounts_;
    obs::Counter& mBytes_;
    obs::LatencyHistogram& mAccessNs_;
    obs::LatencyHistogram& mFirstByteNs_;
};

}  // namespace pravega::sim
