#include "sim/executor.h"

#include <cassert>
#include <utility>

#include "obs/metrics.h"

namespace pravega::sim {

Executor::Executor()
    : metrics_(std::make_unique<obs::MetricsRegistry>([this] { return now_; })) {}

Executor::~Executor() = default;

void Executor::push(Duration delay, Task fn, bool weak) {
    assert(delay >= 0 && "cannot schedule into the past");
    if (!weak) ++regularPending_;
    queue_.push(Entry{now_ + delay, seq_++, weak, std::move(fn)});
}

bool Executor::runOne() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast, standard idiom
    // for pop-and-consume queues of move-only payloads.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (!e.weak) --regularPending_;
    now_ = e.at;
    e.fn();
    return true;
}

uint64_t Executor::runUntilIdle() {
    uint64_t n = 0;
    while (regularPending_ > 0 && runOne()) ++n;
    return n;
}

uint64_t Executor::runUntil(TimePoint deadline) {
    uint64_t n = 0;
    while (!queue_.empty() && queue_.top().at <= deadline) {
        runOne();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace pravega::sim
