// Lazily-created point-to-point links between simulated hosts.
//
// Besides routing, the network is the chaos layer's entry point for
// connectivity faults: `partition(a, b)` blackholes both directions of a
// host pair, `heal` restores them, and loss/degradation knobs forward to
// the per-direction Link fault state. Each link gets its own fault PRNG
// seeded deterministically from the network seed and the (from, to) pair,
// so probabilistic loss replays bit-for-bit from the same seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/hash.h"
#include "sim/models.h"

namespace pravega::sim {

/// Host ids are plain integers assigned by the harness (clients, segment
/// stores, bookies, brokers each get one).
using HostId = int;

class Network {
public:
    Network(Core& exec, Link::Config cfg, uint64_t faultSeed = 0x5EED0FFAULL)
        : exec_(exec), cfg_(cfg), faultSeed_(faultSeed) {}

    /// Pins `host` to a Core shard: links INTO the host deliver on that
    /// core, so a message lands on the shard that owns the receiver's
    /// state. Unpinned hosts deliver on the network's default core. Pin
    /// before the first message to/from the host — links bind their core
    /// at creation.
    void pinHost(HostId host, Core& core) { pins_[host] = &core; }

    /// The Core shard a host is pinned to (default core when unpinned).
    Core& coreOf(HostId host) {
        auto it = pins_.find(host);
        return it == pins_.end() ? exec_ : *it->second;
    }

    /// The unidirectional link from `from` to `to` (created on first use).
    Link& link(HostId from, HostId to) {
        auto key = std::make_pair(from, to);
        auto it = links_.find(key);
        if (it == links_.end()) {
            uint64_t seed = pravega::mix64(
                faultSeed_ ^ (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32 |
                              static_cast<uint32_t>(to)));
            it = links_.emplace(key, std::make_unique<Link>(coreOf(to), cfg_, seed)).first;
            it->second->setLabel(std::to_string(from) + "->" + std::to_string(to));
        }
        return *it->second;
    }

    /// Convenience: deliver `fn` at `to` after sending `bytes` from `from`.
    void send(HostId from, HostId to, uint64_t bytes, Core::Task fn) {
        link(from, to).deliver(bytes, std::move(fn));
    }

    // ---- fault controls (chaos layer), all bidirectional ----------------

    /// Drops every message between `a` and `b` until healed.
    void partition(HostId a, HostId b) {
        link(a, b).setPartitioned(true);
        link(b, a).setPartitioned(true);
        partitioned_.insert(orderPair(a, b));
    }

    void heal(HostId a, HostId b) {
        link(a, b).setPartitioned(false);
        link(b, a).setPartitioned(false);
        partitioned_.erase(orderPair(a, b));
    }

    /// Heals every partition (loss/degradation windows are untouched).
    void healAll() {
        for (auto [a, b] : std::set<std::pair<HostId, HostId>>(partitioned_)) heal(a, b);
    }

    bool isPartitioned(HostId a, HostId b) const {
        return partitioned_.contains(orderPair(a, b));
    }
    size_t partitionCount() const { return partitioned_.size(); }

    /// Probabilistic message loss on both directions of a host pair.
    void setLoss(HostId a, HostId b, double probability) {
        link(a, b).setLossProbability(probability);
        link(b, a).setLossProbability(probability);
    }

    /// Temporary latency/bandwidth degradation on both directions.
    void degrade(HostId a, HostId b, Duration extraLatency, double bandwidthFactor,
                 Duration duration) {
        link(a, b).degrade(extraLatency, bandwidthFactor, duration);
        link(b, a).degrade(extraLatency, bandwidthFactor, duration);
    }

    /// Messages dropped by faults across all links (every kind summed).
    uint64_t droppedMessages() const {
        uint64_t total = 0;
        for (const auto& [key, l] : links_) total += l->droppedMessages();
        return total;
    }

    /// Network-wide drops broken down by fault kind.
    Link::DropCounts droppedByKind() const {
        Link::DropCounts sum;
        for (const auto& [key, l] : links_) {
            const Link::DropCounts& d = l->drops();
            sum.partition += d.partition;
            sum.forced += d.forced;
            sum.loss += d.loss;
        }
        return sum;
    }

    /// Drops on both directions of the (a, b) host pair, by fault kind —
    /// lets a chaos test assert WHICH partition ate the traffic.
    Link::DropCounts droppedBetween(HostId a, HostId b) const {
        Link::DropCounts sum;
        for (auto key : {std::make_pair(a, b), std::make_pair(b, a)}) {
            auto it = links_.find(key);
            if (it == links_.end()) continue;
            const Link::DropCounts& d = it->second->drops();
            sum.partition += d.partition;
            sum.forced += d.forced;
            sum.loss += d.loss;
        }
        return sum;
    }

    /// Per-directed-link breakdown for every link that dropped anything.
    std::map<std::pair<HostId, HostId>, Link::DropCounts> droppedByLink() const {
        std::map<std::pair<HostId, HostId>, Link::DropCounts> out;
        for (const auto& [key, l] : links_) {
            if (l->droppedMessages() > 0) out.emplace(key, l->drops());
        }
        return out;
    }

    const Link::Config& config() const { return cfg_; }

private:
    static std::pair<HostId, HostId> orderPair(HostId a, HostId b) {
        return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    }

    Core& exec_;
    Link::Config cfg_;
    uint64_t faultSeed_;
    std::map<HostId, Core*> pins_;
    std::map<std::pair<HostId, HostId>, std::unique_ptr<Link>> links_;
    std::set<std::pair<HostId, HostId>> partitioned_;
};

}  // namespace pravega::sim
