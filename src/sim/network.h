// Lazily-created point-to-point links between simulated hosts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "sim/models.h"

namespace pravega::sim {

/// Host ids are plain integers assigned by the harness (clients, segment
/// stores, bookies, brokers each get one).
using HostId = int;

class Network {
public:
    Network(Executor& exec, Link::Config cfg) : exec_(exec), cfg_(cfg) {}

    /// The unidirectional link from `from` to `to` (created on first use).
    Link& link(HostId from, HostId to) {
        auto key = std::make_pair(from, to);
        auto it = links_.find(key);
        if (it == links_.end()) {
            it = links_.emplace(key, std::make_unique<Link>(exec_, cfg_)).first;
        }
        return *it->second;
    }

    /// Convenience: deliver `fn` at `to` after sending `bytes` from `from`.
    void send(HostId from, HostId to, uint64_t bytes, Executor::Task fn) {
        link(from, to).deliver(bytes, std::move(fn));
    }

    const Link::Config& config() const { return cfg_; }

private:
    Executor& exec_;
    Link::Config cfg_;
    std::map<std::pair<HostId, HostId>, std::unique_ptr<Link>> links_;
};

}  // namespace pravega::sim
