// Single-threaded Future/Promise for the discrete-event substrate.
//
// Continuations run synchronously when the promise completes (all code runs
// on the one executor thread, so no synchronization is needed). `Unit`
// stands in for `void` to avoid a template specialization.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pravega::sim {

struct Unit {};

template <typename T>
class Promise;

template <typename T>
class Future {
public:
    using Callback = std::function<void(const pravega::Result<T>&)>;

    Future() = default;

    bool valid() const { return state_ != nullptr; }
    bool isReady() const { return state_ && state_->result.has_value(); }

    const pravega::Result<T>& result() const {
        assert(isReady());
        return *state_->result;
    }

    /// Registers `cb`; runs immediately if already completed.
    void onComplete(Callback cb) const {
        assert(state_);
        if (state_->result) {
            cb(*state_->result);
        } else {
            state_->callbacks.push_back(std::move(cb));
        }
    }

    /// Chains a transformation `fn(const T&) -> U`; errors short-circuit.
    template <typename F>
    auto then(F fn) const -> Future<std::invoke_result_t<F, const T&>> {
        using U = std::invoke_result_t<F, const T&>;
        Promise<U> p;
        auto fut = p.future();
        onComplete([p, fn = std::move(fn)](const pravega::Result<T>& r) mutable {
            if (r.isOk()) {
                p.setValue(fn(r.value()));
            } else {
                p.setError(r.status());
            }
        });
        return fut;
    }

    /// Chains an async continuation `fn(const T&) -> Future<U>`.
    template <typename F>
    auto thenAsync(F fn) const -> std::invoke_result_t<F, const T&> {
        using FutU = std::invoke_result_t<F, const T&>;
        using U = typename FutU::ValueType;
        Promise<U> p;
        auto fut = p.future();
        onComplete([p, fn = std::move(fn)](const pravega::Result<T>& r) mutable {
            if (!r.isOk()) {
                p.setError(r.status());
                return;
            }
            fn(r.value()).onComplete(
                [p](const pravega::Result<U>& inner) mutable { p.complete(inner); });
        });
        return fut;
    }

    using ValueType = T;

    static Future<T> ready(T value) {
        Promise<T> p;
        p.setValue(std::move(value));
        return p.future();
    }

    static Future<T> failed(pravega::Status s) {
        Promise<T> p;
        p.setError(std::move(s));
        return p.future();
    }

private:
    friend class Promise<T>;
    struct State {
        std::optional<pravega::Result<T>> result;
        std::vector<Callback> callbacks;
    };
    explicit Future(std::shared_ptr<State> s) : state_(std::move(s)) {}
    std::shared_ptr<State> state_;
};

template <typename T>
class Promise {
public:
    Promise() : state_(std::make_shared<typename Future<T>::State>()) {}

    Future<T> future() const { return Future<T>(state_); }

    void setValue(T value) { complete(pravega::Result<T>(std::move(value))); }
    void setError(pravega::Status s) { complete(pravega::Result<T>(std::move(s))); }
    void setError(pravega::Err code, std::string msg = {}) {
        setError(pravega::Status(code, std::move(msg)));
    }

    void complete(pravega::Result<T> r) {
        assert(!state_->result && "promise completed twice");
        state_->result.emplace(std::move(r));
        auto cbs = std::move(state_->callbacks);
        state_->callbacks.clear();
        for (auto& cb : cbs) cb(*state_->result);
    }

    bool isCompleted() const { return state_->result.has_value(); }

private:
    std::shared_ptr<typename Future<T>::State> state_;
};

/// Completes (with Unit) once all `futures` have completed, regardless of
/// their individual outcomes; callers keep copies to inspect results.
template <typename T>
Future<Unit> whenAll(const std::vector<Future<T>>& futures) {
    if (futures.empty()) return Future<Unit>::ready(Unit{});
    auto remaining = std::make_shared<size_t>(futures.size());
    Promise<Unit> p;
    auto fut = p.future();
    for (const auto& f : futures) {
        f.onComplete([remaining, p](const pravega::Result<T>&) mutable {
            if (--*remaining == 0) p.setValue(Unit{});
        });
    }
    return fut;
}

}  // namespace pravega::sim
