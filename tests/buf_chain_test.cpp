// BufChain unit tests: fragment-boundary slicing, zero-copy aliasing,
// linearize/copy-out correctness, trim bookkeeping, copy-counter accounting,
// and the eviction-vs-in-flight-flush lifetime contract (run under ASan via
// scripts/check.sh, where a refcount bug becomes a hard use-after-free).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>

#include "common/buf_chain.h"
#include "common/buf_stats.h"
#include "segmentstore/cache.h"

namespace pravega {
namespace {

Bytes bytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str(const Bytes& b) { return std::string(b.begin(), b.end()); }

/// A chain of one fragment per input string.
BufChain chainOf(std::initializer_list<std::string> parts) {
    BufChain c;
    for (const auto& p : parts) c.append(SharedBuf(bytesOf(p)));
    return c;
}

TEST(BufChainTest, AppendAndToBytes) {
    BufChain c = chainOf({"hello", " ", "world"});
    EXPECT_EQ(c.size(), 11u);
    EXPECT_EQ(c.fragmentCount(), 3u);
    EXPECT_EQ(str(c.toBytes()), "hello world");
}

TEST(BufChainTest, EmptyFragmentsAreSkipped) {
    BufChain c;
    c.append(SharedBuf(Bytes{}));
    c.append(SharedBuf(bytesOf("x")));
    c.append(SharedBuf(Bytes{}));
    EXPECT_EQ(c.fragmentCount(), 1u);
    EXPECT_EQ(c.size(), 1u);
}

TEST(BufChainTest, ShareAcrossFragmentBoundaries) {
    BufChain c = chainOf({"abcde", "fghij", "klmno"});
    // Slice straddling all three fragments.
    BufChain mid = c.share(3, 9);
    EXPECT_EQ(str(mid.toBytes()), "defghijkl");
    // Slice exactly on a fragment boundary.
    BufChain second = c.share(5, 5);
    EXPECT_EQ(second.fragmentCount(), 1u);
    EXPECT_EQ(str(second.toBytes()), "fghij");
    // Slice ending exactly at the chain end, and a clamped overrun.
    EXPECT_EQ(str(c.share(10, 5).toBytes()), "klmno");
    EXPECT_EQ(str(c.share(10, 500).toBytes()), "klmno");
    EXPECT_EQ(c.share(15, 5).size(), 0u);
}

TEST(BufChainTest, ShareIsZeroCopyAliasOfSourceBytes) {
    BufChain c = chainOf({"abcde", "fghij"});
    BufChain slice = c.share(2, 6);  // "cdefgh"
    // Same underlying storage: fragment data pointers alias the source.
    ASSERT_EQ(slice.fragmentCount(), 2u);
    EXPECT_EQ(slice.fragments()[0].view().data(), c.fragments()[0].view().data() + 2);
    EXPECT_EQ(slice.fragments()[1].view().data(), c.fragments()[1].view().data());
}

TEST(BufChainTest, ShareThenAppendDoesNotDisturbExistingSlices) {
    BufChain c = chainOf({"abcde"});
    BufChain slice = c.share(1, 3);  // "bcd"
    c.append(SharedBuf(bytesOf("fghij")));
    c.append(SharedBuf(bytesOf("klmno")));
    EXPECT_EQ(str(slice.toBytes()), "bcd");
    EXPECT_EQ(c.size(), 15u);
    // And a slice taken before the append still sees only the old extent.
    EXPECT_EQ(slice.size(), 3u);
}

TEST(BufChainTest, TrimFrontAcrossFragments) {
    BufChain c = chainOf({"abcde", "fghij", "klmno"});
    c.trimFront(0);
    EXPECT_EQ(c.size(), 15u);
    c.trimFront(7);  // drops "abcde" and "fg"
    EXPECT_EQ(c.size(), 8u);
    EXPECT_EQ(str(c.toBytes()), "hijklmno");
    c.trimFront(8);
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.fragmentCount(), 0u);
}

TEST(BufChainTest, TrimBackAcrossFragments) {
    BufChain c = chainOf({"abcde", "fghij"});
    c.trimBack(7);  // drops "fghij" and "de"
    EXPECT_EQ(str(c.toBytes()), "abc");
    c.trimBack(3);
    EXPECT_TRUE(c.empty());
}

TEST(BufChainTest, LinearizeMultiFragment) {
    BufChain c = chainOf({"abc", "def", "g"});
    SharedBuf flat = c.linearize();
    EXPECT_EQ(flat.size(), 7u);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(flat.view().data()), 7), "abcdefg");
}

TEST(BufChainTest, LinearizeSingleFragmentIsIdentity) {
    SharedBuf buf(bytesOf("payload"));
    BufChain c(buf);
    uint64_t before = bufstats::copyOps;
    SharedBuf flat = c.linearize();
    // Same storage, no copy recorded.
    EXPECT_EQ(flat.view().data(), buf.view().data());
    EXPECT_EQ(bufstats::copyOps, before);
}

TEST(BufChainTest, PeekU32AndCopyOut) {
    Bytes framed;
    uint32_t len = 0xAABBCCDD;
    framed.resize(4);
    std::memcpy(framed.data(), &len, 4);
    BufChain c;
    // Header split across two fragments — peek must gather.
    c.append(SharedBuf(Bytes(framed.begin(), framed.begin() + 2)));
    c.append(SharedBuf(Bytes(framed.begin() + 2, framed.end())));
    c.append(SharedBuf(bytesOf("body")));
    uint32_t got = 0;
    ASSERT_TRUE(c.peekU32(0, got));
    EXPECT_EQ(got, len);
    uint32_t partial = 0;
    EXPECT_FALSE(c.peekU32(5, partial));  // only 3 bytes left past pos 5

    uint8_t out[4] = {};
    c.copyOut(4, 4, out);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(out), 4), "body");
}

TEST(BufChainTest, CopyCountersTrackOnlyCopyBoundaries) {
    bufstats::reset();
    SharedBuf src(bytesOf("0123456789"));

    BufChain c(src);              // ref share: no copy
    c.append(src.slice(0, 5));    // ref share: no copy
    BufChain s = c.share(2, 8);   // ref share: no copy
    s.trimFront(1);               // bookkeeping only
    EXPECT_EQ(bufstats::bytesCopied, 0u);
    EXPECT_EQ(bufstats::copyOps, 0u);

    c.appendCopy(BytesView(src.view().data(), 3));  // 3 bytes copied
    EXPECT_EQ(bufstats::bytesCopied, 3u);
    (void)c.toBytes();  // 18 bytes copied (10 + 5 + 3)
    EXPECT_EQ(bufstats::bytesCopied, 21u);
    EXPECT_EQ(bufstats::copyOps, 2u);
    bufstats::reset();
}

// The flush-vs-eviction lifetime contract: a StorageWriter flush holds
// BufChain shares of read-index entry payloads. If the cache entry (or the
// original chain) is dropped while the flush is in flight, the shared
// fragments must keep the bytes alive. Under ASan a refcount bug here is a
// use-after-free, not a flaky value check.
TEST(BufChainTest, InFlightFlushSurvivesSourceRelease) {
    BufChain flushAgg;
    {
        // Entry payloads scoped so their owning handles die before the read.
        BufChain entry1(SharedBuf(bytesOf(std::string(5000, 'a'))));
        BufChain entry2(SharedBuf(bytesOf(std::string(3000, 'b'))));
        flushAgg.append(entry1.share(4000, 1000));  // tail of entry1
        flushAgg.append(entry2.share(0, 3000));
        entry1.clear();
        entry2.clear();
    }
    // Also push the source bytes out of a real BlockCache to mimic eviction
    // pressure racing the flush (the cache owns its own copies, so this
    // must not matter — the chain's refcounts are what keep bytes alive).
    segmentstore::BlockCache cache({.blockSize = 1024, .blocksPerBuffer = 8, .maxBuffers = 2});
    auto addr = cache.insert(flushAgg);
    ASSERT_TRUE(addr.isOk());
    ASSERT_TRUE(cache.remove(addr.value()).isOk());

    Bytes flat = flushAgg.toBytes();
    ASSERT_EQ(flat.size(), 4000u);
    EXPECT_TRUE(std::all_of(flat.begin(), flat.begin() + 1000, [](uint8_t b) { return b == 'a'; }));
    EXPECT_TRUE(std::all_of(flat.begin() + 1000, flat.end(), [](uint8_t b) { return b == 'b'; }));
}

TEST(BufChainTest, CacheChainInsertAndRangedGet) {
    segmentstore::BlockCache cache({.blockSize = 64, .blocksPerBuffer = 8, .maxBuffers = 4});
    BufChain c = chainOf({std::string(100, 'x'), std::string(37, 'y'), std::string(200, 'z')});
    auto addr = cache.insert(c);
    ASSERT_TRUE(addr.isOk());
    auto len = cache.entryLength(addr.value());
    ASSERT_TRUE(len.isOk());
    EXPECT_EQ(len.value(), 337u);

    // Ranged get straddling the fragment and block boundaries.
    auto mid = cache.get(addr.value(), 95, 10);
    ASSERT_TRUE(mid.isOk());
    EXPECT_EQ(str(mid.value()), "xxxxxyyyyy");
    // Clamped past-the-end read.
    auto tail = cache.get(addr.value(), 330, 100);
    ASSERT_TRUE(tail.isOk());
    EXPECT_EQ(tail.value().size(), 7u);
    // Full get equals the chain bytes.
    auto all = cache.get(addr.value());
    ASSERT_TRUE(all.isOk());
    EXPECT_EQ(all.value(), c.toBytes());
}

}  // namespace
}  // namespace pravega
