// Unit tests for common utilities: buffers, serialization, hashing, Result.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/serde.h"
#include "sim/random.h"

namespace pravega {
namespace {

TEST(SharedBufTest, EmptyByDefault) {
    SharedBuf buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.view().size(), 0u);
}

TEST(SharedBufTest, WrapsBytes) {
    SharedBuf buf(toBytes("hello"));
    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(toString(buf.view()), "hello");
}

TEST(SharedBufTest, SliceSharesStorage) {
    SharedBuf buf(toBytes("hello world"));
    SharedBuf slice = buf.slice(6, 5);
    EXPECT_EQ(toString(slice.view()), "world");
    EXPECT_EQ(slice.data(), buf.data() + 6);  // zero copy
}

TEST(SharedBufTest, SliceClampsToBounds) {
    SharedBuf buf(toBytes("abc"));
    EXPECT_EQ(buf.slice(1, 100).size(), 2u);
    EXPECT_EQ(buf.slice(3, 1).size(), 0u);
    EXPECT_EQ(buf.slice(100, 1).size(), 0u);
}

TEST(SharedBufTest, NestedSlices) {
    SharedBuf buf(toBytes("0123456789"));
    SharedBuf mid = buf.slice(2, 6);   // "234567"
    SharedBuf inner = mid.slice(1, 3);  // "345"
    EXPECT_EQ(toString(inner.view()), "345");
}

TEST(SharedBufTest, CopyOfDetachesFromSource) {
    Bytes src = toBytes("data");
    SharedBuf buf = SharedBuf::copyOf(BytesView(src));
    src[0] = 'X';
    EXPECT_EQ(toString(buf.view()), "data");
}

TEST(SerdeTest, FixedWidthRoundTrip) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    w.i64(-42);
    w.f64(3.14159);

    BinaryReader r{BytesView(out)};
    EXPECT_EQ(r.u8().value(), 0xAB);
    EXPECT_EQ(r.u16().value(), 0xBEEF);
    EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.i64().value(), -42);
    EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
    EXPECT_TRUE(r.atEnd());
}

TEST(SerdeTest, VarintBoundaries) {
    for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 16383, 16384, UINT64_MAX}) {
        Bytes out;
        BinaryWriter w(out);
        w.varint(v);
        BinaryReader r{BytesView(out)};
        EXPECT_EQ(r.varint().value(), v) << v;
    }
}

TEST(SerdeTest, StringsAndBytes) {
    Bytes out;
    BinaryWriter w(out);
    w.str("routing-key");
    w.bytes(toBytes("payload"));
    w.str("");

    BinaryReader r{BytesView(out)};
    EXPECT_EQ(r.str().value(), "routing-key");
    EXPECT_EQ(toString(r.bytes().value()), "payload");
    EXPECT_EQ(r.str().value(), "");
}

TEST(SerdeTest, ReadPastEndFails) {
    Bytes out;
    BinaryWriter w(out);
    w.u8(1);
    BinaryReader r{BytesView(out)};
    EXPECT_TRUE(r.u8().isOk());
    EXPECT_EQ(r.u64().code(), Err::IoError);
    EXPECT_EQ(r.str().code(), Err::IoError);
}

TEST(SerdeTest, TruncatedVarintFails) {
    Bytes out{0x80, 0x80};  // continuation bits with no terminator
    BinaryReader r{BytesView(out)};
    EXPECT_FALSE(r.varint().isOk());
}

class SerdeRandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeRandomRoundTrip, MixedRecords) {
    sim::Rng rng(GetParam());
    Bytes out;
    BinaryWriter w(out);
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    for (int i = 0; i < 50; ++i) {
        uint64_t v = rng.next() >> static_cast<int>(rng.nextBounded(60));
        varints.push_back(v);
        w.varint(v);
        std::string s = rng.nextKey(1000000);
        strings.push_back(s);
        w.str(s);
    }
    BinaryReader r{BytesView(out)};
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(r.varint().value(), varints[static_cast<size_t>(i)]);
        EXPECT_EQ(r.str().value(), strings[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeRandomRoundTrip, ::testing::Values(1, 2, 3, 42, 1234));

TEST(HashTest, KeyHashInUnitInterval) {
    sim::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double h = keyHash01(rng.nextKey(1u << 30));
        EXPECT_GE(h, 0.0);
        EXPECT_LT(h, 1.0);
    }
}

TEST(HashTest, KeyHashDeterministic) {
    EXPECT_EQ(keyHash01("sensor-1"), keyHash01("sensor-1"));
    EXPECT_NE(keyHash01("sensor-1"), keyHash01("sensor-2"));
}

TEST(HashTest, KeyHashRoughlyUniform) {
    // 10k random keys over 10 buckets: each bucket should get 600..1400.
    sim::Rng rng(11);
    int buckets[10] = {};
    for (int i = 0; i < 10000; ++i) {
        ++buckets[static_cast<int>(keyHash01(rng.nextKey(1u << 31)) * 10)];
    }
    for (int b : buckets) {
        EXPECT_GT(b, 600);
        EXPECT_LT(b, 1400);
    }
}

TEST(HashTest, ContainerAssignmentCoversAllContainers) {
    // 1000 segment ids over 8 containers: every container gets some.
    int counts[8] = {};
    for (uint64_t id = 0; id < 1000; ++id) ++counts[containerFor(id, 8)];
    for (int c : counts) EXPECT_GT(c, 0);
}

TEST(HashTest, ContainerAssignmentStateless) {
    EXPECT_EQ(containerFor(12345, 16), containerFor(12345, 16));
    EXPECT_EQ(containerFor(7, 0), 0u);  // degenerate case
}

TEST(ResultTest, OkValue) {
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.code(), Err::Ok);
}

TEST(ResultTest, ErrorPropagates) {
    Result<int> r(Err::Sealed, "segment sealed");
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), Err::Sealed);
    EXPECT_EQ(r.status().message(), "segment sealed");
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(ResultTest, StatusToString) {
    EXPECT_EQ(Status(Err::BadVersion, "key k").toString(), "BadVersion: key k");
    EXPECT_EQ(Status::ok().toString(), "Ok");
}

TEST(RngTest, Deterministic) {
    sim::Rng a(99), b(99);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ExponentialMean) {
    sim::Rng rng(5);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.nextExp(10.0);
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

}  // namespace
}  // namespace pravega
