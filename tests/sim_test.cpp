// Unit tests for the discrete-event substrate: machine/cores, futures, and
// the hardware models (disk, link, CPU, object store).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "golden/scenario.h"
#include "sim/machine.h"
#include "sim/future.h"
#include "sim/models.h"
#include "sim/network.h"

namespace pravega::sim {
namespace {

TEST(MachineTest, RunsInTimeOrder) {
    Machine exec;
    std::vector<int> order;
    exec.schedule(msec(3), [&]() { order.push_back(3); });
    exec.schedule(msec(1), [&]() { order.push_back(1); });
    exec.schedule(msec(2), [&]() { order.push_back(2); });
    exec.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(exec.now(), msec(3));
}

TEST(MachineTest, SameTimeIsFifo) {
    Machine exec;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        exec.schedule(msec(1), [&, i]() { order.push_back(i); });
    }
    exec.runUntilIdle();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(MachineTest, NestedScheduling) {
    Machine exec;
    int fired = 0;
    exec.schedule(msec(1), [&]() {
        ++fired;
        exec.schedule(msec(1), [&]() { ++fired; });
    });
    exec.runUntilIdle();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(exec.now(), msec(2));
}

TEST(MachineTest, RunUntilStopsAtDeadline) {
    Machine exec;
    int fired = 0;
    exec.schedule(msec(5), [&]() { ++fired; });
    exec.schedule(msec(15), [&]() { ++fired; });
    exec.runUntil(msec(10));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(exec.now(), msec(10));
    exec.runUntilIdle();
    EXPECT_EQ(fired, 2);
}

TEST(MachineTest, RunForAdvancesClockWhenIdle) {
    Machine exec;
    exec.runFor(sec(1));
    EXPECT_EQ(exec.now(), sec(1));
}

TEST(FutureTest, ReadyValue) {
    auto fut = Future<int>::ready(7);
    ASSERT_TRUE(fut.isReady());
    EXPECT_EQ(fut.result().value(), 7);
}

TEST(FutureTest, CallbackOnCompletion) {
    Promise<int> p;
    auto fut = p.future();
    int got = 0;
    fut.onComplete([&](const Result<int>& r) { got = r.value(); });
    EXPECT_EQ(got, 0);
    p.setValue(42);
    EXPECT_EQ(got, 42);
}

TEST(FutureTest, CallbackAfterCompletionRunsImmediately) {
    Promise<int> p;
    p.setValue(5);
    int got = 0;
    p.future().onComplete([&](const Result<int>& r) { got = r.value(); });
    EXPECT_EQ(got, 5);
}

TEST(FutureTest, ThenTransforms) {
    Promise<int> p;
    auto fut = p.future().then([](const int& v) { return v * 2; });
    p.setValue(21);
    ASSERT_TRUE(fut.isReady());
    EXPECT_EQ(fut.result().value(), 42);
}

TEST(FutureTest, ThenShortCircuitsErrors) {
    Promise<int> p;
    bool called = false;
    auto fut = p.future().then([&](const int& v) {
        called = true;
        return v;
    });
    p.setError(Err::IoError);
    EXPECT_FALSE(called);
    ASSERT_TRUE(fut.isReady());
    EXPECT_EQ(fut.result().code(), Err::IoError);
}

TEST(FutureTest, ThenAsyncChains) {
    Promise<int> p;
    Promise<std::string> inner;
    auto fut = p.future().thenAsync([&](const int&) { return inner.future(); });
    p.setValue(1);
    EXPECT_FALSE(fut.isReady());
    inner.setValue("done");
    ASSERT_TRUE(fut.isReady());
    EXPECT_EQ(fut.result().value(), "done");
}

TEST(FutureTest, WhenAllWaitsForEveryFuture) {
    std::vector<Promise<int>> promises(3);
    std::vector<Future<int>> futures;
    for (auto& p : promises) futures.push_back(p.future());
    auto all = whenAll(futures);
    promises[0].setValue(1);
    promises[2].setError(Err::IoError);
    EXPECT_FALSE(all.isReady());
    promises[1].setValue(2);
    EXPECT_TRUE(all.isReady());  // completes despite individual errors
}

TEST(FutureTest, WhenAllEmptyIsReady) {
    EXPECT_TRUE(whenAll(std::vector<Future<int>>{}).isReady());
}

TEST(QueuedResourceTest, SerializesSingleLane) {
    Machine exec;
    QueuedResource res(exec, 1);
    TimePoint first = 0, second = 0;
    res.acquire(msec(10)).onComplete([&](const Result<Unit>&) { first = exec.now(); });
    res.acquire(msec(10)).onComplete([&](const Result<Unit>&) { second = exec.now(); });
    exec.runUntilIdle();
    EXPECT_EQ(first, msec(10));
    EXPECT_EQ(second, msec(20));
}

TEST(QueuedResourceTest, ParallelLanes) {
    Machine exec;
    QueuedResource res(exec, 2);
    std::vector<TimePoint> done;
    for (int i = 0; i < 4; ++i) {
        res.acquire(msec(10)).onComplete([&](const Result<Unit>&) { done.push_back(exec.now()); });
    }
    exec.runUntilIdle();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0], msec(10));
    EXPECT_EQ(done[1], msec(10));
    EXPECT_EQ(done[2], msec(20));
    EXPECT_EQ(done[3], msec(20));
}

TEST(DiskModelTest, SequentialWritesToSameFileAvoidSwitchPenalty) {
    Machine exec;
    DiskModel::Config cfg;
    cfg.bytesPerSec = 1e9;
    cfg.writeLatency = usec(10);
    cfg.fileSwitchPenalty = usec(100);
    cfg.fsyncLatency = 0;
    DiskModel disk(exec, cfg);

    TimePoint sameFile = 0, twoFiles = 0;
    disk.write(1, 0, false);
    disk.write(1, 0, false).onComplete([&](const Result<Unit>&) { sameFile = exec.now(); });
    exec.runUntilIdle();

    Machine exec2;
    DiskModel disk2(exec2, cfg);
    disk2.write(1, 0, false);
    disk2.write(2, 0, false).onComplete([&](const Result<Unit>&) { twoFiles = exec2.now(); });
    exec2.runUntilIdle();

    // First write pays a switch (cold); the second only pays again when
    // targeting a different file.
    EXPECT_EQ(sameFile, usec(100) + 2 * usec(10));
    EXPECT_EQ(twoFiles, 2 * usec(100) + 2 * usec(10));
}

TEST(DiskModelTest, FsyncAddsLatency) {
    Machine exec;
    DiskModel::Config cfg;
    cfg.writeLatency = usec(10);
    cfg.fileSwitchPenalty = 0;
    cfg.fsyncLatency = usec(50);
    DiskModel disk(exec, cfg);
    TimePoint t = 0;
    disk.write(1, 0, true).onComplete([&](const Result<Unit>&) { t = exec.now(); });
    exec.runUntilIdle();
    EXPECT_EQ(t, usec(60));
}

TEST(DiskModelTest, BandwidthDominatesLargeWrites) {
    Machine exec;
    DiskModel::Config cfg;
    cfg.bytesPerSec = 100.0 * 1024 * 1024;
    cfg.writeLatency = 0;
    cfg.fileSwitchPenalty = 0;
    cfg.fsyncLatency = 0;
    DiskModel disk(exec, cfg);
    TimePoint t = 0;
    disk.write(1, 100 * 1024 * 1024, false).onComplete([&](const Result<Unit>&) { t = exec.now(); });
    exec.runUntilIdle();
    EXPECT_NEAR(static_cast<double>(t), static_cast<double>(sec(1)), static_cast<double>(msec(1)));
}

TEST(LinkTest, LatencyPlusSerialization) {
    Machine exec;
    Link::Config cfg;
    cfg.latency = msec(1);
    cfg.bytesPerSec = 1024 * 1024;  // 1 MB/s for easy math
    Link link(exec, cfg);
    TimePoint t = 0;
    link.deliver(1024 * 1024, [&]() { t = exec.now(); });
    exec.runUntilIdle();
    EXPECT_EQ(t, sec(1) + msec(1));
}

TEST(LinkTest, MessagesQueueBehindEachOther) {
    Machine exec;
    Link::Config cfg;
    cfg.latency = 0;
    cfg.bytesPerSec = 1024;
    Link link(exec, cfg);
    std::vector<TimePoint> arrivals;
    link.deliver(1024, [&]() { arrivals.push_back(exec.now()); });
    link.deliver(1024, [&]() { arrivals.push_back(exec.now()); });
    exec.runUntilIdle();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], sec(1));
    EXPECT_EQ(arrivals[1], sec(2));
}

TEST(NetworkTest, LinksAreLazyAndPerPair) {
    Machine exec;
    Network net(exec, Link::Config{});
    Link& ab = net.link(1, 2);
    Link& ba = net.link(2, 1);
    EXPECT_NE(&ab, &ba);
    EXPECT_EQ(&ab, &net.link(1, 2));
}

TEST(NetworkFaultTest, PartitionDropsBothDirectionsUntilHealed) {
    Machine exec;
    Network net(exec, Link::Config{});
    int delivered = 0;
    net.partition(1, 2);
    EXPECT_TRUE(net.isPartitioned(1, 2));
    EXPECT_EQ(net.partitionCount(), 1u);
    net.send(1, 2, 100, [&]() { ++delivered; });
    net.send(2, 1, 100, [&]() { ++delivered; });
    exec.runUntilIdle();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(net.droppedMessages(), 2u);

    net.heal(1, 2);
    EXPECT_FALSE(net.isPartitioned(1, 2));
    net.send(1, 2, 100, [&]() { ++delivered; });
    exec.runUntilIdle();
    EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaultTest, HealAllClearsEveryPartition) {
    Machine exec;
    Network net(exec, Link::Config{});
    net.partition(1, 2);
    net.partition(3, 4);
    EXPECT_EQ(net.partitionCount(), 2u);
    net.healAll();
    EXPECT_EQ(net.partitionCount(), 0u);
    int delivered = 0;
    net.send(3, 4, 10, [&]() { ++delivered; });
    exec.runUntilIdle();
    EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaultTest, DropNextLosesExactlyThatManyMessages) {
    Machine exec;
    Network net(exec, Link::Config{});
    net.link(1, 2).dropNext(2);
    std::vector<int> arrived;
    for (int i = 0; i < 5; ++i) net.send(1, 2, 10, [&arrived, i]() { arrived.push_back(i); });
    exec.runUntilIdle();
    EXPECT_EQ(arrived, (std::vector<int>{2, 3, 4}));
}

TEST(NetworkFaultTest, ProbabilisticLossIsSeedDeterministic) {
    auto run = [](uint64_t seed) {
        Machine exec;
        Network net(exec, Link::Config{}, seed);
        net.setLoss(1, 2, 0.5);
        std::vector<int> arrived;
        for (int i = 0; i < 64; ++i) {
            net.send(1, 2, 10, [&arrived, i]() { arrived.push_back(i); });
        }
        exec.runUntilIdle();
        return arrived;
    };
    auto a = run(123);
    auto b = run(123);
    auto c = run(999);
    EXPECT_EQ(a, b);  // same seed, same losses
    EXPECT_NE(a, c);  // different seed, different losses
    EXPECT_GT(a.size(), 0u);
    EXPECT_LT(a.size(), 64u);
}

TEST(NetworkFaultTest, DegradationWindowAddsLatencyThenExpires) {
    Machine exec;
    Network net(exec, Link::Config{});
    net.degrade(1, 2, msec(5), 1.0, msec(50));
    TimePoint slow = 0;
    net.send(1, 2, 10, [&]() { slow = exec.now(); });
    exec.runUntilIdle();
    EXPECT_GE(slow, msec(5));

    exec.runFor(msec(60));  // past the window
    TimePoint start = exec.now();
    TimePoint fast = 0;
    net.send(1, 2, 10, [&]() { fast = exec.now(); });
    exec.runUntilIdle();
    EXPECT_LT(fast - start, msec(5));
}

TEST(ObjectStoreTest, PerStreamCapGovernsSingleTransfer) {
    Machine exec;
    ObjectStoreModel::Config cfg;
    cfg.opLatency = 0;
    cfg.perStreamBytesPerSec = 100.0 * 1024 * 1024;
    cfg.aggregateBytesPerSec = 1e12;
    ObjectStoreModel store(exec, cfg);
    TimePoint t = 0;
    store.put(100 * 1024 * 1024).onComplete([&](const Result<Unit>&) { t = exec.now(); });
    exec.runUntilIdle();
    EXPECT_NEAR(static_cast<double>(t), static_cast<double>(sec(1)), static_cast<double>(msec(10)));
}

TEST(ObjectStoreTest, ParallelTransfersExceedPerStreamCap) {
    Machine exec;
    ObjectStoreModel::Config cfg;
    cfg.opLatency = 0;
    cfg.perStreamBytesPerSec = 100.0 * 1024 * 1024;
    cfg.aggregateBytesPerSec = 400.0 * 1024 * 1024;
    cfg.maxConcurrent = 8;
    ObjectStoreModel store(exec, cfg);
    // 4 parallel 100MB transfers: per-stream alone → 1s total (parallel);
    // the aggregate cap also allows it; serial at per-stream would be 4s.
    std::vector<TimePoint> done;
    for (int i = 0; i < 4; ++i) {
        store.put(100 * 1024 * 1024).onComplete([&](const Result<Unit>&) {
            done.push_back(exec.now());
        });
    }
    exec.runUntilIdle();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_LT(done.back(), sec(2));  // far better than 4s serial
}

TEST(ObjectStoreTest, AggregateCapLimitsManyStreams) {
    Machine exec;
    ObjectStoreModel::Config cfg;
    cfg.opLatency = 0;
    cfg.perStreamBytesPerSec = 100.0 * 1024 * 1024;
    cfg.aggregateBytesPerSec = 200.0 * 1024 * 1024;
    cfg.maxConcurrent = 64;
    ObjectStoreModel store(exec, cfg);
    // 8 × 100MB = 800MB through a 200MB/s pipe → ≥ 4s.
    TimePoint last = 0;
    for (int i = 0; i < 8; ++i) {
        store.put(100 * 1024 * 1024).onComplete([&](const Result<Unit>&) { last = exec.now(); });
    }
    exec.runUntilIdle();
    EXPECT_GE(last, sec(4) - msec(10));
}

TEST(ObjectStoreTest, BacklogVisibleForThrottling) {
    Machine exec;
    ObjectStoreModel::Config cfg;
    cfg.opLatency = 0;
    cfg.perStreamBytesPerSec = 10.0 * 1024 * 1024;
    cfg.aggregateBytesPerSec = 10.0 * 1024 * 1024;
    cfg.maxConcurrent = 1;
    ObjectStoreModel store(exec, cfg);
    EXPECT_DOUBLE_EQ(store.backlogSeconds(), 0.0);
    store.put(100 * 1024 * 1024);
    EXPECT_GT(store.backlogSeconds(), 5.0);
}

TEST(CpuModelTest, CoresRunInParallel) {
    Machine exec;
    CpuModel::Config cfg;
    cfg.cores = 4;
    cfg.perRequest = msec(1);
    CpuModel cpu(exec, cfg);
    std::vector<TimePoint> done;
    for (int i = 0; i < 8; ++i) {
        cpu.execute(0).onComplete([&](const Result<Unit>&) { done.push_back(exec.now()); });
    }
    exec.runUntilIdle();
    ASSERT_EQ(done.size(), 8u);
    EXPECT_EQ(done[3], msec(1));
    EXPECT_EQ(done[7], msec(2));
}

// ---------------------------------------------------------------- sharding

/// A deterministic multi-core scenario: work on every shard, cross-core
/// mailbox hops, weak timers, RNG draws, and metrics — returns a trace
/// string suitable for byte-equality assertions.
std::string runShardScenario(Machine& m) {
    std::string trace;
    auto log = [&](int core, const char* label) {
        trace += "t=" + std::to_string(m.now()) + " c" + std::to_string(core) +
                 " " + label + "\n";
    };
    for (int c = 0; c < m.coreCount(); ++c) {
        Core& core = m.core(c);
        core.schedule(100 + 10 * c, [&, c] {
            log(c, "work");
            core.metrics().counter("shard.work").inc();
            uint64_t draw = core.rng().nextBounded(1000);
            trace += "  draw=" + std::to_string(draw) + "\n";
            // Hop to the next shard through the mailbox.
            int next = (c + 1) % m.coreCount();
            m.submitTo(next, [&, next] { log(next, "hopped"); });
        });
        core.scheduleWeak(500, [&, c] { log(c, "weak"); });
    }
    m.runUntilIdle();
    m.runFor(1000);
    trace += "xcore=" + std::to_string(m.crossCoreMessages()) + "\n";
    trace += m.mergedMetrics().dump();
    return trace;
}

TEST(ShardingTest, SameSeedSameCoreCountIsByteIdentical) {
    for (int cores : {2, 4, 8}) {
        Machine a(cores), b(cores);
        EXPECT_EQ(runShardScenario(a), runShardScenario(b)) << cores << " cores";
    }
}

TEST(ShardingTest, CrossCoreHopPaysHandoffLatency) {
    Machine m(2);
    TimePoint hopAt = -1;
    m.core(0).schedule(100, [&] { m.submitTo(1, [&] { hopAt = m.now(); }); });
    m.runUntilIdle();
    EXPECT_EQ(hopAt, 100 + m.config().handoffLatency);
    EXPECT_EQ(m.crossCoreMessages(), 1u);
}

TEST(ShardingTest, SameShardSubmitRunsInline) {
    Machine m(2);
    bool ranInline = false;
    m.core(1).schedule(100, [&] {
        m.submitTo(1, [&] { ranInline = true; });
        EXPECT_TRUE(ranInline) << "same-shard submit must be a direct call";
    });
    m.runUntilIdle();
    EXPECT_TRUE(ranInline);
    EXPECT_EQ(m.crossCoreMessages(), 0u);
}

TEST(ShardingTest, ClocksStayInLockstep) {
    Machine m(4);
    m.core(3).schedule(777, [&] {
        for (int c = 0; c < 4; ++c) EXPECT_EQ(m.core(c).now(), 777);
    });
    m.runUntilIdle();
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.core(c).now(), m.now());
}

TEST(ShardingTest, MergedMetricsFoldsSameNameAcrossCores) {
    Machine m(3);
    for (int c = 0; c < 3; ++c) {
        m.core(c).metrics().counter("shared.count").inc(static_cast<uint64_t>(c + 1));
        m.core(c).metrics().histogram("shared.lat").record(1000 * (c + 1));
    }
    const obs::MetricsRegistry& merged = m.mergedMetrics();
    EXPECT_EQ(merged.counterValue("shared.count"), 6u);
    const obs::LatencyHistogram* h = merged.findHistogram("shared.lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 3u);
    EXPECT_EQ(h->maxNs(), 3000.0);
    // Per-core partitions are untouched by the merge.
    EXPECT_EQ(m.core(0).metrics().counterValue("shared.count"), 1u);
}

TEST(ShardingTest, SingleCoreMergedMetricsIsTheHomeRegistry) {
    Machine m;
    m.metrics().counter("x").inc();
    EXPECT_EQ(&m.mergedMetrics(), &m.metrics());
}

// Golden regression: the sharded substrate at N=1 must reproduce the
// pre-refactor single-executor trace byte-for-byte. The golden file was
// captured by running tests/golden/scenario.h against the legacy
// sim::Executor at the commit that introduced the Machine.
TEST(ShardingTest, SingleCoreReproducesPreShardGoldenTrace) {
    std::filesystem::path golden =
        std::filesystem::path(__FILE__).parent_path() / "golden" / "sim_trace_seed.txt";
    std::ifstream in(golden);
    ASSERT_TRUE(in.good()) << "missing golden file: " << golden;
    std::stringstream want;
    want << in.rdbuf();

    Machine exec;
    EXPECT_EQ(pravega::golden::runSimTraceScenario(exec), want.str());
}


// --- event-queue fast path -------------------------------------------------
// The scheduler keeps per-core three-tier queues (due-now FIFO / timer
// wheel / far heap) with an incrementally cached minimum. These tests pin
// down (a) the merge order against a brute-force reference, (b) the
// one-selection-per-dispatch contract of the dispatch loops, and (c) the
// wheel-horizon edge cases.

TEST(SchedulerFastPath, DifferentialOrderMatchesReferenceMergeOrder) {
    Machine m;
    Core& core = m;
    // Reference model: every push records (fire time, push index). Within
    // one core the scheduler contract is exactly (time, seq) order, and seq
    // is assigned in push order, so a stable sort by time of the push log
    // IS the expected execution order.
    std::vector<std::pair<TimePoint, uint64_t>> pushed;
    std::vector<uint64_t> executed;
    uint64_t lcg = 0x5EEDu;
    auto rnd = [&]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    // Delay menu spanning all three tiers: due-now, sub-slot, mid-wheel,
    // wheel edge (the 2^13ns x 2048 horizon is ~16.8ms), and far heap.
    const Duration menu[] = {0, 0, 13, usec(3), usec(300), msec(5),
                             msec(16), msec(17), msec(60)};
    size_t total = 0;
    std::function<void(uint64_t)> fire = [&](uint64_t id) {
        executed.push_back(id);
        int kids = static_cast<int>(rnd() % 4);
        for (int k = 0; k < kids && total < 1200; ++k) {
            Duration d = menu[rnd() % (sizeof(menu) / sizeof(menu[0]))];
            uint64_t child = total++;
            pushed.emplace_back(core.now() + d, child);
            core.schedule(d, [&fire, child] { fire(child); });
        }
    };
    for (int i = 0; i < 40; ++i) {
        Duration d = menu[rnd() % (sizeof(menu) / sizeof(menu[0]))];
        uint64_t id = total++;
        pushed.emplace_back(d, id);
        core.schedule(d, [&fire, id] { fire(id); });
    }
    m.runUntil(sec(10));
    ASSERT_EQ(executed.size(), pushed.size());

    std::vector<std::pair<TimePoint, uint64_t>> want = pushed;
    std::stable_sort(want.begin(), want.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(executed[i], want[i].second) << "divergence at event " << i;
    }
}

TEST(SchedulerFastPath, OneSelectionPerDispatchedEventInRunUntil) {
    Machine m(3);
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 50; ++i) {
            m.core(c).schedule(i * 37 + c + 1, [] {});
        }
    }
    uint64_t sel0 = m.schedulerSelections();
    uint64_t n = m.runUntil(sec(1));
    EXPECT_EQ(n, 150u);
    // Exactly one queue scan per dispatched event, plus the final scan that
    // observes the stop condition (the old loop scanned twice per event:
    // once for the deadline check and again inside runOne).
    EXPECT_EQ(m.schedulerSelections() - sel0, n + 1);
    EXPECT_EQ(m.executedEvents(), n);
}

TEST(SchedulerFastPath, RunOneDoesASingleSelection) {
    Machine m;
    m.schedule(5, [] {});
    uint64_t sel0 = m.schedulerSelections();
    EXPECT_TRUE(m.runOne());
    EXPECT_EQ(m.schedulerSelections() - sel0, 1u);
    EXPECT_FALSE(m.runOne());  // idle: one more selection, no dispatch
    EXPECT_EQ(m.schedulerSelections() - sel0, 2u);
    EXPECT_EQ(m.executedEvents(), 1u);
}

TEST(SchedulerFastPath, FarEventCrossesIntoWheelWindowCorrectly) {
    Machine m;
    std::vector<int> order;
    // A: far beyond the wheel horizon at push time.
    m.schedule(msec(50), [&] { order.push_back(0); });
    m.runUntil(msec(40));
    // B: now inside the wheel, earlier than A. C: due-now post behind the
    // wheel cursor position that scanning may have advanced to.
    m.schedule(msec(1), [&] { order.push_back(1); });
    m.post([&] { order.push_back(2); });
    m.runUntil(msec(100));
    EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(SchedulerFastPath, WheelLapWrapKeepsOrder) {
    Machine m;
    std::vector<int> order;
    // Events more than one full wheel lap apart, scheduled progressively so
    // the cursor wraps several times.
    m.schedule(msec(16), [&] {
        order.push_back(0);
        m.schedule(msec(16), [&] {
            order.push_back(1);
            m.schedule(msec(16), [&] { order.push_back(2); });
        });
    });
    m.schedule(msec(40), [&] { order.push_back(3); });
    m.runUntil(msec(200));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 2}));
}

TEST(SchedulerFastPath, CrossCoreTiesGoToLowestCoreId) {
    Machine m(4);
    std::vector<int> order;
    for (int c = 3; c >= 0; --c) {
        m.core(c).schedule(100, [&order, c] { order.push_back(c); });
    }
    m.runUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerFastPath, PendingRegularTasksIsIncremental) {
    Machine m(2);
    EXPECT_EQ(m.pendingRegularTasks(), 0u);
    m.core(0).schedule(10, [] {});
    m.core(1).schedule(20, [] {});
    m.core(1).scheduleWeak(30, [] {});
    EXPECT_EQ(m.pendingRegularTasks(), 2u);
    EXPECT_EQ(m.pendingTasks(), 3u);
    m.runUntilIdle();
    EXPECT_EQ(m.pendingRegularTasks(), 0u);
    EXPECT_EQ(m.pendingTasks(), 1u);  // the weak timer stays queued
}

}  // namespace
}  // namespace pravega::sim
