// Golden-trace scenario shared between the one-shot capture tool (run
// against the pre-shard `sim::Executor`) and the regression test in
// tests/sim_test.cpp (run against a 1-core `sim::Machine`). The template
// parameter is whatever exposes the classic single-threaded scheduling
// surface: schedule/scheduleWeak/post/now/metrics/runUntilIdle/runFor/
// runOne/pendingTasks. The committed golden file
// tests/golden/sim_trace_seed.txt holds the byte-exact output of the
// pre-refactor substrate; the sharded N=1 machine must reproduce it.
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pravega::golden {

template <class Exec>
std::string runSimTraceScenario(Exec& exec) {
    std::string trace;
    auto log = [&trace, &exec](const char* label) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "t=%lld %s\n",
                      static_cast<long long>(exec.now()), label);
        trace += buf;
    };

    obs::MetricsRegistry& reg = exec.metrics();
    obs::Counter& events = reg.counter("golden.events");
    obs::LatencyHistogram& lat = reg.histogram("golden.lat");
    obs::RateMeter& rate = reg.meter("golden.rate");

    // Deterministic RNG drives payload "sizes" mixed into the trace.
    sim::Rng rng(0x9E3779B97F4A7C15ULL);

    // Same-time FIFO tie-break: three tasks at t=100 must run in submit
    // order, and a post() from inside an event lands after already-queued
    // same-time tasks.
    exec.schedule(100, [&] {
        log("tie.a");
        exec.post([&] { log("tie.a.post"); });
    });
    exec.schedule(100, [&] { log("tie.b"); });
    exec.schedule(100, [&] { log("tie.c"); });

    // Nested chains with RNG-derived delays.
    exec.schedule(50, [&] {
        log("chain.0");
        sim::Duration d = static_cast<sim::Duration>(10 + rng.nextBounded(490));
        exec.schedule(d, [&] {
            log("chain.1");
            events.inc();
            exec.schedule(static_cast<sim::Duration>(10 + rng.nextBounded(490)),
                          [&] {
                              log("chain.2");
                              events.inc(2);
                          });
        });
    });

    // Weak self-rearming timer: must tick while regular work remains, never
    // keep runUntilIdle busy by itself.
    struct Rearm {
        Exec& exec;
        std::string& trace;
        obs::RateMeter& rate;
        int left;
        void operator()() {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "t=%lld weak.tick\n",
                          static_cast<long long>(exec.now()));
            trace += buf;
            rate.mark();
            if (--left > 0) exec.scheduleWeak(250, *this);
        }
    };
    exec.scheduleWeak(250, Rearm{exec, trace, rate, 8});

    // Latency samples over virtual spans.
    for (int i = 0; i < 5; ++i) {
        sim::TimePoint start = exec.now();
        exec.schedule(200 + 37 * i, [&lat, &exec, start] {
            lat.record(exec.now() - start);
        });
    }

    uint64_t ran = exec.runUntilIdle();
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "idle ran=%llu now=%lld pending=%zu\n",
                      static_cast<unsigned long long>(ran),
                      static_cast<long long>(exec.now()), exec.pendingTasks());
        trace += buf;
    }

    // runFor drains the remaining weak ticks and advances the clock even
    // after the queue empties.
    uint64_t ran2 = exec.runFor(5000);
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "after ran=%llu now=%lld pending=%zu\n",
                      static_cast<unsigned long long>(ran2),
                      static_cast<long long>(exec.now()), exec.pendingTasks());
        trace += buf;
    }

    trace += reg.dump();
    return trace;
}

}  // namespace pravega::golden
