// Tests for the Fig 4 block cache: chained entries, O(1) appends, per-
// buffer free lists, buffer exhaustion, and a randomized property check
// against a reference map.
#include <gtest/gtest.h>

#include <map>

#include "segmentstore/cache.h"
#include "sim/random.h"

namespace pravega::segmentstore {
namespace {

BlockCache::Config smallConfig() {
    BlockCache::Config cfg;
    cfg.blockSize = 64;
    cfg.blocksPerBuffer = 8;
    cfg.maxBuffers = 4;
    return cfg;
}

Bytes pattern(size_t n, uint8_t seed = 1) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed + i * 31);
    return out;
}

TEST(BlockCacheTest, InsertAndGetSmallEntry) {
    BlockCache cache(smallConfig());
    Bytes data = pattern(10);
    auto addr = cache.insert(BytesView(data));
    ASSERT_TRUE(addr.isOk());
    EXPECT_EQ(cache.get(addr.value()).value(), data);
    EXPECT_EQ(cache.entryLength(addr.value()).value(), 10u);
    EXPECT_EQ(cache.usedBlocks(), 1u);
}

TEST(BlockCacheTest, EntrySpanningMultipleBlocks) {
    BlockCache cache(smallConfig());
    Bytes data = pattern(200);  // 4 blocks at 64B
    auto addr = cache.insert(BytesView(data));
    ASSERT_TRUE(addr.isOk());
    EXPECT_EQ(cache.get(addr.value()).value(), data);
    EXPECT_EQ(cache.usedBlocks(), 4u);
}

TEST(BlockCacheTest, AppendFillsLastBlockFirst) {
    BlockCache cache(smallConfig());
    auto addr = cache.insert(BytesView(pattern(10))).value();
    auto addr2 = cache.append(addr, BytesView(pattern(20, 99)));
    ASSERT_TRUE(addr2.isOk());
    // 30 bytes fit in one 64B block: address must be unchanged (O(1) append
    // into the last block, the Fig 4 design point).
    EXPECT_EQ(addr2.value(), addr);
    EXPECT_EQ(cache.usedBlocks(), 1u);
    EXPECT_EQ(cache.entryLength(addr).value(), 30u);
}

TEST(BlockCacheTest, AppendChainsNewBlocksAndMovesAddress) {
    BlockCache cache(smallConfig());
    auto addr = cache.insert(BytesView(pattern(60))).value();
    auto addr2 = cache.append(addr, BytesView(pattern(10, 7))).value();
    EXPECT_NE(addr2, addr);  // a second block was chained
    Bytes expected = pattern(60);
    Bytes tail = pattern(10, 7);
    expected.insert(expected.end(), tail.begin(), tail.end());
    EXPECT_EQ(cache.get(addr2).value(), expected);
    // The OLD address no longer identifies the entry's last block; reading
    // it yields only the prefix chain, which is by design (the read index
    // always stores the latest address).
    EXPECT_EQ(cache.get(addr).value().size(), 64u);
}

TEST(BlockCacheTest, ManyAppendsAccumulate) {
    BlockCache cache(smallConfig());
    auto addr = cache.insert(BytesView(pattern(1))).value();
    Bytes expected = pattern(1);
    for (int i = 0; i < 50; ++i) {
        Bytes piece = pattern(7, static_cast<uint8_t>(i));
        expected.insert(expected.end(), piece.begin(), piece.end());
        auto r = cache.append(addr, BytesView(piece));
        ASSERT_TRUE(r.isOk());
        addr = r.value();
    }
    EXPECT_EQ(cache.get(addr).value(), expected);
}

TEST(BlockCacheTest, RemoveFreesAllBlocks) {
    BlockCache cache(smallConfig());
    auto addr = cache.insert(BytesView(pattern(300))).value();
    EXPECT_GT(cache.usedBlocks(), 0u);
    EXPECT_TRUE(cache.remove(addr).isOk());
    EXPECT_EQ(cache.usedBlocks(), 0u);
    EXPECT_EQ(cache.storedBytes(), 0u);
    EXPECT_EQ(cache.get(addr).code(), Err::InvalidArgument);
}

TEST(BlockCacheTest, FreedBlocksAreReused) {
    auto cfg = smallConfig();
    cfg.maxBuffers = 1;  // 8 blocks total
    BlockCache cache(cfg);
    for (int round = 0; round < 10; ++round) {
        auto addr = cache.insert(BytesView(pattern(64 * 8)));  // fills the buffer
        ASSERT_TRUE(addr.isOk()) << "round " << round;
        EXPECT_EQ(cache.usedBlocks(), 8u);
        cache.remove(addr.value());
    }
}

TEST(BlockCacheTest, CacheFullWhenAllBuffersExhausted) {
    auto cfg = smallConfig();  // 4 buffers × 8 blocks × 64B = 2 KB
    BlockCache cache(cfg);
    auto big = cache.insert(BytesView(pattern(64 * 8 * 4)));
    ASSERT_TRUE(big.isOk());
    auto more = cache.insert(BytesView(pattern(1)));
    EXPECT_EQ(more.code(), Err::CacheFull);
    cache.remove(big.value());
    EXPECT_TRUE(cache.insert(BytesView(pattern(1))).isOk());
}

TEST(BlockCacheTest, BuffersAllocatedLazily) {
    BlockCache cache(smallConfig());
    EXPECT_EQ(cache.allocatedBuffers(), 0u);
    cache.insert(BytesView(pattern(1)));
    EXPECT_EQ(cache.allocatedBuffers(), 1u);
    cache.insert(BytesView(pattern(64 * 8)));  // overflows into buffer 2
    EXPECT_EQ(cache.allocatedBuffers(), 2u);
}

TEST(BlockCacheTest, UtilizationTracksUsedBlocks) {
    auto cfg = smallConfig();  // 32 blocks max
    BlockCache cache(cfg);
    EXPECT_DOUBLE_EQ(cache.utilization(), 0.0);
    cache.insert(BytesView(pattern(64 * 16)));
    EXPECT_DOUBLE_EQ(cache.utilization(), 0.5);
}

TEST(BlockCacheTest, EmptyInsertOccupiesOneBlock) {
    BlockCache cache(smallConfig());
    auto addr = cache.insert(BytesView());
    ASSERT_TRUE(addr.isOk());
    EXPECT_EQ(cache.entryLength(addr.value()).value(), 0u);
    EXPECT_EQ(cache.usedBlocks(), 1u);
}

TEST(BlockCacheTest, InvalidAddressRejected) {
    BlockCache cache(smallConfig());
    EXPECT_EQ(cache.get(kInvalidAddress).code(), Err::InvalidArgument);
    EXPECT_EQ(cache.get(12345).code(), Err::InvalidArgument);
    EXPECT_EQ(cache.append(777, BytesView()).code(), Err::InvalidArgument);
    EXPECT_EQ(cache.remove(1).code(), Err::InvalidArgument);
}

// Property test: random insert/append/remove against a reference map.
class BlockCachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockCachePropertyTest, MatchesReferenceModel) {
    BlockCache::Config cfg;
    cfg.blockSize = 32;
    cfg.blocksPerBuffer = 16;
    cfg.maxBuffers = 4096;  // ample: appends must never hit CacheFull here
    BlockCache cache(cfg);
    sim::Rng rng(GetParam());

    std::map<CacheAddress, Bytes> reference;
    for (int op = 0; op < 2000; ++op) {
        uint64_t dice = rng.nextBounded(10);
        if (dice < 4 || reference.empty()) {
            Bytes data(rng.nextBounded(100));
            for (auto& b : data) b = static_cast<uint8_t>(rng.next());
            auto addr = cache.insert(BytesView(data));
            if (addr.isOk()) {
                reference[addr.value()] = std::move(data);
            } else {
                ASSERT_EQ(addr.code(), Err::CacheFull);
            }
        } else if (dice < 7) {
            size_t idx = rng.nextBounded(reference.size());
            auto it = std::next(reference.begin(), static_cast<long>(idx));
            Bytes extra(rng.nextBounded(80));
            for (auto& b : extra) b = static_cast<uint8_t>(rng.next());
            auto newAddr = cache.append(it->first, BytesView(extra));
            if (newAddr.isOk()) {
                Bytes combined = it->second;
                combined.insert(combined.end(), extra.begin(), extra.end());
                reference.erase(it);
                reference[newAddr.value()] = std::move(combined);
            }
        } else {
            size_t idx = rng.nextBounded(reference.size());
            auto it = std::next(reference.begin(), static_cast<long>(idx));
            ASSERT_TRUE(cache.remove(it->first).isOk());
            reference.erase(it);
        }
    }
    // Every surviving entry must read back exactly.
    uint64_t totalBytes = 0;
    for (const auto& [addr, data] : reference) {
        auto got = cache.get(addr);
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(got.value(), data);
        totalBytes += data.size();
    }
    EXPECT_EQ(cache.storedBytes(), totalBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCachePropertyTest,
                         ::testing::Values(1, 7, 13, 99, 12345, 777777));

}  // namespace
}  // namespace pravega::segmentstore
