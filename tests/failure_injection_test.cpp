// Failure-injection tests: LTS outages and flaky operations against the
// storage writer (§4.3: "if LTS is not available or is temporarily slow"),
// reader resilience across repeated failovers, and rapid consecutive scale
// events (successor-of-successor re-routing).
#include <gtest/gtest.h>

#include "client/event_reader.h"
#include "cluster/pravega_cluster.h"
#include "lts/fault_injection.h"
#include "segmentstore/container.h"
#include "sim/network.h"

namespace pravega {
namespace {

using cluster::ClusterConfig;
using cluster::PravegaCluster;
using controller::StreamConfig;
using segmentstore::ContainerConfig;
using segmentstore::SegmentContainer;
using segmentstore::SegmentId;
using segmentstore::makeSegmentId;

// ------------------- decorator unit behavior -----------------------------

TEST(FaultInjectionDecoratorTest, ReadFailureCountsExactlyOnce) {
    sim::Machine exec;
    lts::InMemoryChunkStorage inner;
    lts::FaultInjectionChunkStorage flaky(exec, inner,
                                          lts::FaultInjectionChunkStorage::Config{});
    flaky.startOutage(sim::sec(1));
    auto fut = flaky.read("c", 0, 10);
    ASSERT_TRUE(fut.isReady());
    EXPECT_EQ(fut.result().code(), Err::IoError);
    // Regression: the read path used to bump the counter a second time on
    // top of shouldFail()'s own accounting.
    EXPECT_EQ(flaky.injectedFailures(), 1u);
}

TEST(FaultInjectionDecoratorTest, StatHonorsOutagesAndOpMask) {
    sim::Machine exec;
    lts::InMemoryChunkStorage inner;
    inner.create("c");
    inner.append("c", SharedBuf(toBytes("abc")));
    exec.runUntilIdle();
    lts::FaultInjectionChunkStorage flaky(exec, inner,
                                          lts::FaultInjectionChunkStorage::Config{});
    ASSERT_TRUE(flaky.stat("c").isOk());

    // An unavailable LTS cannot answer metadata probes either.
    flaky.startOutage(sim::sec(1));
    EXPECT_EQ(flaky.stat("c").code(), Err::IoError);

    // Restricting the failure mask to appends exempts stat and read even
    // inside the outage window.
    flaky.setFailOps(lts::FaultInjectionChunkStorage::kAppend);
    EXPECT_TRUE(flaky.stat("c").isOk());
    auto read = flaky.read("c", 0, 3);
    ASSERT_TRUE(read.isReady());
    EXPECT_TRUE(read.result().isOk());
    auto append = flaky.append("c", SharedBuf(toBytes("x")));
    ASSERT_TRUE(append.isReady());
    EXPECT_EQ(append.result().code(), Err::IoError);

    flaky.endOutage();
    flaky.setFailOps(lts::FaultInjectionChunkStorage::kAllOps);
    EXPECT_TRUE(flaky.stat("c").isOk());
}

// ------------------- container + flaky LTS (direct wiring) ---------------

struct FlakyLtsFixture : public ::testing::Test {
    sim::Machine exec;
    sim::Network net{exec, sim::Link::Config{}};
    sim::DiskModel::Config diskCfg;
    std::vector<std::unique_ptr<sim::DiskModel>> disks;
    std::vector<std::unique_ptr<wal::Bookie>> bookies;
    wal::LedgerRegistry registry;
    wal::LogMetadataStore logMeta;
    lts::InMemoryChunkStorage innerLts;
    segmentstore::BlockCache cache{segmentstore::BlockCache::Config{}};
    static constexpr SegmentId kSeg = makeSegmentId(0, 1);

    FlakyLtsFixture() {
        for (int i = 0; i < 3; ++i) {
            disks.push_back(std::make_unique<sim::DiskModel>(exec, diskCfg));
            bookies.push_back(std::make_unique<wal::Bookie>(exec, 100 + i, *disks.back(),
                                                            wal::Bookie::Config{}));
        }
    }
    wal::WalEnv env() {
        std::vector<wal::Bookie*> ptrs;
        for (auto& b : bookies) ptrs.push_back(b.get());
        return wal::WalEnv{exec, net, registry, logMeta, ptrs};
    }
    ContainerConfig fastConfig() {
        ContainerConfig cfg;
        cfg.storage.flushTimeout = sim::msec(50);
        cfg.storage.scanInterval = sim::msec(10);
        cfg.storage.flushSizeBytes = 4096;
        cfg.checkpointEveryOps = 50;
        return cfg;
    }
};

TEST_F(FlakyLtsFixture, FlushesResumeAfterLtsOutage) {
    lts::FaultInjectionChunkStorage flaky(exec, innerLts,
                                          lts::FaultInjectionChunkStorage::Config{});
    SegmentContainer c(exec, 1, env(), 1, flaky, cache, fastConfig());
    ASSERT_TRUE(c.start().isOk());
    c.createSegment(kSeg, "s");
    exec.runUntilIdle();

    // Write during a hard LTS outage: appends must still acknowledge (the
    // WAL is the durability anchor), and nothing lands in LTS.
    flaky.startOutage(sim::sec(5));
    int acked = 0;
    for (int i = 0; i < 20; ++i) {
        c.append(kSeg, SharedBuf(Bytes(1000, 'o')), 0, -1, 1)
            .onComplete([&](const Result<int64_t>& r) { acked += r.isOk(); });
    }
    exec.runFor(sim::sec(2));
    EXPECT_EQ(acked, 20);
    EXPECT_EQ(innerLts.totalBytes(), 0u);
    EXPECT_GT(flaky.injectedFailures(), 0u);
    EXPECT_EQ(c.getInfo(kSeg).value().storageLength, 0);

    // After the outage ends the storage writer retries and drains the
    // entire backlog to LTS (idempotent flush resumption).
    exec.runFor(sim::sec(5));
    EXPECT_EQ(c.getInfo(kSeg).value().storageLength, 20000);
    EXPECT_EQ(innerLts.totalBytes(), 20000u);
}

TEST_F(FlakyLtsFixture, RandomLtsFailuresNeverLoseData) {
    lts::FaultInjectionChunkStorage::Config fcfg;
    fcfg.failureProbability = 0.3;
    fcfg.seed = 99;
    lts::FaultInjectionChunkStorage flaky(exec, innerLts, fcfg);
    SegmentContainer c(exec, 1, env(), 1, flaky, cache, fastConfig());
    ASSERT_TRUE(c.start().isOk());
    c.createSegment(kSeg, "s");
    exec.runUntilIdle();

    Bytes expected;
    for (int i = 0; i < 50; ++i) {
        Bytes piece(997, static_cast<uint8_t>(i));
        expected.insert(expected.end(), piece.begin(), piece.end());
        c.append(kSeg, SharedBuf(std::move(piece)), 0, -1, 1);
        exec.runFor(sim::msec(20));
    }
    exec.runFor(sim::sec(20));  // enough retries to win 30% failure odds

    EXPECT_GT(flaky.injectedFailures(), 0u);
    EXPECT_EQ(c.getInfo(kSeg).value().storageLength,
              static_cast<int64_t>(expected.size()));

    // Every byte matches what was appended (no duplication or holes from
    // retried flushes), verified through the container read path.
    auto fut = c.read(kSeg, 0, static_cast<int64_t>(expected.size()));
    exec.runUntilIdle();
    ASSERT_TRUE(fut.isReady());
    ASSERT_TRUE(fut.result().isOk());
    // The read may return a prefix (iterator semantics); walk to the end.
    Bytes got = fut.result().value().data;
    while (got.size() < expected.size()) {
        auto more = c.read(kSeg, static_cast<int64_t>(got.size()),
                           static_cast<int64_t>(expected.size() - got.size()));
        exec.runUntilIdle();
        ASSERT_TRUE(more.isReady() && more.result().isOk());
        ASSERT_FALSE(more.result().value().data.empty());
        got.insert(got.end(), more.result().value().data.begin(),
                   more.result().value().data.end());
    }
    EXPECT_EQ(got, expected);
}

TEST_F(FlakyLtsFixture, SlowLtsAddsLatencyButKeepsOrder) {
    lts::FaultInjectionChunkStorage::Config fcfg;
    fcfg.extraLatency = sim::msec(50);
    lts::FaultInjectionChunkStorage slow(exec, innerLts, fcfg);
    SegmentContainer c(exec, 1, env(), 1, slow, cache, fastConfig());
    ASSERT_TRUE(c.start().isOk());
    c.createSegment(kSeg, "s");
    exec.runUntilIdle();
    for (int i = 0; i < 10; ++i) {
        c.append(kSeg, SharedBuf(toBytes("e" + std::to_string(i) + ";")), 0, -1, 1);
    }
    exec.runFor(sim::sec(3));
    EXPECT_GT(c.getInfo(kSeg).value().storageLength, 0);
    auto fut = c.read(kSeg, 0, 1024);
    exec.runUntilIdle();
    ASSERT_TRUE(fut.result().isOk());
    EXPECT_EQ(toString(BytesView(fut.result().value().data)).substr(0, 6), "e0;e1;");
}

// ------------------- whole-cluster failure scenarios ---------------------

struct ClusterFailureFixture : public ::testing::Test {
    ClusterConfig cfg() {
        ClusterConfig c;
        c.ltsKind = cluster::LtsKind::InMemory;
        return c;
    }
    PravegaCluster cluster{cfg()};
};

TEST_F(ClusterFailureFixture, TwoSequentialStoreCrashes) {
    ASSERT_TRUE(cluster.createStream("sc", "st", StreamConfig{}).isOk());
    auto writer = cluster.makeWriter("sc/st");
    int acked = 0;
    auto writeBatch = [&](const std::string& tag) {
        for (int i = 0; i < 30; ++i) {
            writer = cluster.makeWriter("sc/st");  // fresh writer per phase
            break;
        }
        for (int i = 0; i < 30; ++i) {
            writer->writeEvent("k", toBytes(tag + std::to_string(i)),
                               [&](Status s) { acked += s.isOk(); });
        }
        writer->flush();
        cluster.runUntilIdle();
    };
    writeBatch("a");
    ASSERT_TRUE(cluster.crashStore(0).isOk());
    cluster.runUntilIdle();
    writeBatch("b");
    ASSERT_TRUE(cluster.crashStore(1).isOk());
    cluster.runUntilIdle();
    writeBatch("c");
    EXPECT_EQ(acked, 90);

    // All 90 events survive two crashes, in order.
    auto group = cluster.makeReaderGroup("g", {"sc/st"});
    auto reader = group.value()->createReader("r", cluster.newClientHost());
    std::vector<std::string> got;
    for (int i = 0; i < 90; ++i) {
        auto fut = reader->readNextEvent();
        ASSERT_TRUE(cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(10))) << i;
        ASSERT_TRUE(fut.result().isOk());
        got.push_back(toString(BytesView(fut.result().value().payload)));
    }
    for (int i = 0; i < 30; ++i) {
        EXPECT_EQ(got[static_cast<size_t>(i)], "a" + std::to_string(i));
        EXPECT_EQ(got[static_cast<size_t>(i + 30)], "b" + std::to_string(i));
        EXPECT_EQ(got[static_cast<size_t>(i + 60)], "c" + std::to_string(i));
    }
}

TEST_F(ClusterFailureFixture, CrashDuringActiveReaders) {
    ASSERT_TRUE(cluster.createStream("sc", "st", StreamConfig{}).isOk());
    auto writer = cluster.makeWriter("sc/st");
    for (int i = 0; i < 60; ++i) {
        writer->writeEvent("k", toBytes("ev" + std::to_string(i)));
    }
    writer->flush();
    cluster.runUntilIdle();

    auto group = cluster.makeReaderGroup("g", {"sc/st"});
    auto reader = group.value()->createReader("r", cluster.newClientHost());
    int total = 0;
    for (; total < 20; ++total) {
        auto fut = reader->readNextEvent();
        ASSERT_TRUE(cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(10)));
        ASSERT_TRUE(fut.result().isOk());
    }
    // Crash mid-read: the reader's in-flight fetches fail over and retry.
    ASSERT_TRUE(cluster.crashStore(2).isOk());
    for (; total < 60; ++total) {
        auto fut = reader->readNextEvent();
        ASSERT_TRUE(cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(10))) << total;
        ASSERT_TRUE(fut.result().isOk()) << fut.result().status().toString();
        EXPECT_EQ(toString(BytesView(fut.result().value().payload)),
                  "ev" + std::to_string(total));
    }
}

TEST_F(ClusterFailureFixture, RapidConsecutiveScales) {
    // Split the same key range twice in quick succession: events queued for
    // re-route may find their successor ALREADY sealed again and must
    // requeue behind the successor's successor.
    StreamConfig scfg;
    scfg.initialSegments = 1;
    ASSERT_TRUE(cluster.createStream("sc", "st", scfg).isOk());
    auto writer = cluster.makeWriter("sc/st");
    std::map<std::string, int> written;
    int acked = 0;
    auto burst = [&](int n) {
        for (int i = 0; i < n; ++i) {
            std::string key = "key-" + std::to_string(i % 4);
            writer->writeEvent(key, toBytes(key + "#" + std::to_string(written[key]++)),
                               [&](Status s) { acked += s.isOk(); });
        }
        writer->flush();
    };
    burst(100);
    // First scale: split [0,1) → [0,0.5) + [0.5,1).
    SegmentId s0 = cluster.ctrl().getCurrentSegments("sc/st").value()[0].record.id;
    auto scale1 = cluster.ctrl().scaleStream("sc/st", {s0}, {{0.0, 0.5}, {0.5, 1.0}});
    burst(100);
    ASSERT_TRUE(cluster.runUntil([&]() { return scale1.isReady(); }, sim::sec(10)));
    // Second scale immediately: split one of the new halves again.
    auto current = cluster.ctrl().getCurrentSegments("sc/st").value();
    auto scale2 = cluster.ctrl().scaleStream(
        "sc/st", {current[0].record.id},
        {{current[0].record.keyStart,
          (current[0].record.keyStart + current[0].record.keyEnd) / 2},
         {(current[0].record.keyStart + current[0].record.keyEnd) / 2,
          current[0].record.keyEnd}});
    burst(100);
    ASSERT_TRUE(cluster.runUntil([&]() { return scale2.isReady(); }, sim::sec(10)));
    burst(100);
    writer->flush();
    cluster.runUntilIdle();
    cluster.runFor(sim::sec(1));
    cluster.runUntilIdle();
    EXPECT_EQ(acked, 400);

    auto group = cluster.makeReaderGroup("g", {"sc/st"});
    auto reader = group.value()->createReader("r", cluster.newClientHost());
    std::map<std::string, int> seen;
    int total = 0;
    while (total < 400) {
        auto fut = reader->readNextEvent();
        if (!cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(5))) break;
        if (!fut.result().isOk()) break;
        std::string s = toString(BytesView(fut.result().value().payload));
        auto hash = s.find('#');
        std::string key = s.substr(0, hash);
        int seq = std::stoi(s.substr(hash + 1));
        EXPECT_EQ(seq, seen[key]) << key;
        seen[key] = seq + 1;
        ++total;
    }
    EXPECT_EQ(total, 400);
}

TEST_F(ClusterFailureFixture, ScaleDownMergeHoldsUntilPredecessorsDone) {
    // Fig 2c: after a merge, the merged segment may not be read until BOTH
    // predecessors are fully consumed.
    StreamConfig scfg;
    scfg.initialSegments = 2;
    ASSERT_TRUE(cluster.createStream("sc", "st", scfg).isOk());
    auto writer = cluster.makeWriter("sc/st");
    std::map<std::string, int> written;
    for (int i = 0; i < 200; ++i) {
        std::string key = "key-" + std::to_string(i % 6);
        writer->writeEvent(key, toBytes(key + "#" + std::to_string(written[key]++)));
    }
    writer->flush();
    cluster.runUntilIdle();

    // Merge the two segments into one.
    auto current = cluster.ctrl().getCurrentSegments("sc/st").value();
    auto merge = cluster.ctrl().scaleStream(
        "sc/st", {current[0].record.id, current[1].record.id}, {{0.0, 1.0}});
    ASSERT_TRUE(cluster.runUntil([&]() { return merge.isReady(); }, sim::sec(10)));
    ASSERT_TRUE(merge.result().isOk());
    for (int i = 0; i < 200; ++i) {
        std::string key = "key-" + std::to_string(i % 6);
        writer->writeEvent(key, toBytes(key + "#" + std::to_string(written[key]++)));
    }
    writer->flush();
    cluster.runUntilIdle();

    auto group = cluster.makeReaderGroup("g", {"sc/st"});
    auto r1 = group.value()->createReader("r1", cluster.newClientHost());
    auto r2 = group.value()->createReader("r2", cluster.newClientHost());
    std::map<std::string, int> seen;
    int total = 0;
    auto consume = [&](client::EventReader& r) {
        auto fut = r.readNextEvent();
        if (!cluster.runUntil([&]() { return fut.isReady(); }, sim::sec(2))) return false;
        if (!fut.result().isOk()) return false;
        std::string s = toString(BytesView(fut.result().value().payload));
        auto hash = s.find('#');
        std::string key = s.substr(0, hash);
        int seq = std::stoi(s.substr(hash + 1));
        // THE merge-hold invariant: post-merge events (seq >= pre-merge
        // count) may never appear before the predecessor's are done.
        EXPECT_EQ(seq, seen[key]) << "merge hold violated for " << key;
        seen[key] = seq + 1;
        ++total;
        return true;
    };
    while (total < 400) {
        if (!consume(*r1) && !consume(*r2)) break;
    }
    EXPECT_EQ(total, 400);
}

}  // namespace
}  // namespace pravega
