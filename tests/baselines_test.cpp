// Tests for the Kafka-like and Pulsar-like baselines: produce/consume
// round trips, batching semantics, durability modes, the Pulsar broker
// OOM mechanism under a lagging bookie, and the tiering offloader.
#include <gtest/gtest.h>

#include "baselines/kafka_like.h"
#include "baselines/pulsar_like.h"
#include "sim/network.h"
#include "wal/log_client.h"

namespace pravega::baselines {
namespace {

struct KafkaFixture : public ::testing::Test {
    sim::Machine exec;
    sim::Network net{exec, sim::Link::Config{}};

    std::unique_ptr<KafkaCluster> makeCluster(KafkaConfig cfg = {}) {
        return std::make_unique<KafkaCluster>(exec, net, /*firstBrokerHost=*/500, cfg);
    }
};

TEST_F(KafkaFixture, ProduceAcksAfterReplication) {
    auto kafka = makeCluster();
    kafka->createTopic("t", 4);
    auto producer = kafka->makeProducer(1, "t");
    int acked = 0;
    for (int i = 0; i < 100; ++i) {
        producer->send("key-" + std::to_string(i), 100, [&](Status s) { acked += s.isOk(); });
    }
    producer->flush();
    exec.runFor(sim::sec(1));
    EXPECT_EQ(acked, 100);
    EXPECT_EQ(kafka->bytesProduced(), 100u * 100u);
}

TEST_F(KafkaFixture, ConsumerReceivesWithLatency) {
    auto kafka = makeCluster();
    kafka->createTopic("t", 1);
    uint32_t got = 0;
    sim::Duration worst = 0;
    auto consumer = kafka->makeConsumer(2, "t", 0,
                                        [&](uint32_t events, uint64_t, sim::Duration e2e) {
                                            got += events;
                                            worst = std::max(worst, e2e);
                                        });
    auto producer = kafka->makeProducer(1, "t");
    for (int i = 0; i < 50; ++i) producer->send("", 100, {});
    producer->flush();
    exec.runFor(sim::sec(1));
    EXPECT_EQ(got, 50u);
    EXPECT_GT(worst, 0);
    EXPECT_LT(worst, sim::msec(50));
}

TEST_F(KafkaFixture, FlushModeIsSlower) {
    // §5.2: enforcing durability (flush.messages=1) costs latency.
    auto measure = [&](bool flushEveryMessage) {
        KafkaConfig cfg;
        cfg.flushEveryMessage = flushEveryMessage;
        cfg.disk.fsyncLatency = sim::usec(500);
        sim::Machine e2;
        sim::Network n2{e2, sim::Link::Config{}};
        KafkaCluster kafka(e2, n2, 500, cfg);
        kafka.createTopic("t", 1);
        auto producer = kafka.makeProducer(1, "t");
        sim::TimePoint done = 0;
        int acked = 0;
        for (int i = 0; i < 20; ++i) {
            producer->send("k", 100, [&](Status) {
                if (++acked == 20) done = e2.now();
            });
            producer->flush();
        }
        e2.runFor(sim::sec(2));
        EXPECT_EQ(acked, 20);
        return done;
    };
    EXPECT_GT(measure(true), measure(false));
}

TEST_F(KafkaFixture, StickyPartitioningConcentratesBatches) {
    auto kafka = makeCluster();
    kafka->createTopic("t", 16);
    auto producer = kafka->makeProducer(1, "t");
    // Without keys, consecutive sends fill ONE partition's batch before
    // rotating (much better batching, §5.3/§5.5).
    int acked = 0;
    for (int i = 0; i < 1000; ++i) producer->send("", 128, [&](Status) { ++acked; });
    producer->flush();
    exec.runFor(sim::sec(1));
    EXPECT_EQ(acked, 1000);
}

TEST_F(KafkaFixture, ProducerBufferLimitRejectsWhenFull) {
    KafkaConfig cfg;
    cfg.maxPendingBytes = 64 * 1024;
    auto kafka = makeCluster(cfg);
    kafka->createTopic("t", 1);
    auto producer = kafka->makeProducer(1, "t");
    int rejected = 0;
    // Saturate without running the sim: the buffer fills up.
    for (int i = 0; i < 5000; ++i) {
        producer->send("k", 1024, [&](Status s) { rejected += s.code() == Err::Throttled; });
    }
    exec.runFor(sim::sec(2));
    EXPECT_GT(rejected, 0);
}

struct PulsarFixture : public ::testing::Test {
    sim::Machine exec;
    sim::Network net{exec, sim::Link::Config{}};
    sim::DiskModel::Config diskCfg;
    std::vector<std::unique_ptr<sim::DiskModel>> disks;
    std::vector<std::unique_ptr<wal::Bookie>> bookies;
    wal::LedgerRegistry registry;
    wal::LogMetadataStore logMeta;

    void makeBookies(int n, double slowFactor = 1.0) {
        for (int i = 0; i < n; ++i) {
            auto cfg = diskCfg;
            if (i == n - 1) cfg.bytesPerSec *= slowFactor;  // one laggard
            disks.push_back(std::make_unique<sim::DiskModel>(exec, cfg));
            bookies.push_back(std::make_unique<wal::Bookie>(exec, 100 + i, *disks.back(),
                                                            wal::Bookie::Config{}));
        }
    }
    wal::WalEnv env() {
        std::vector<wal::Bookie*> ptrs;
        for (auto& b : bookies) ptrs.push_back(b.get());
        return wal::WalEnv{exec, net, registry, logMeta, ptrs};
    }
};

TEST_F(PulsarFixture, ProduceConsumeRoundTrip) {
    makeBookies(3);
    PulsarCluster pulsar(exec, net, 600, env(), nullptr, PulsarConfig{});
    pulsar.createTopic("t", 2);
    uint32_t got = 0;
    std::vector<std::unique_ptr<PulsarConsumer>> consumers;
    for (int p = 0; p < 2; ++p) {
        consumers.push_back(pulsar.makeConsumer(2, "t", p, false,
                                                [&](uint32_t events, uint64_t, sim::Duration) {
                                                    got += events;
                                                }));
    }
    auto producer = pulsar.makeProducer(1, "t");
    int acked = 0;
    for (int i = 0; i < 100; ++i) {
        producer->send("key-" + std::to_string(i % 5), 100,
                       [&](Status s) { acked += s.isOk(); });
    }
    producer->flush();
    exec.runFor(sim::sec(1));
    EXPECT_EQ(acked, 100);
    EXPECT_EQ(got, 100u);
}

TEST_F(PulsarFixture, DispatchIntervalSetsLatencyFloor) {
    makeBookies(3);
    PulsarConfig cfg;
    cfg.dispatchInterval = sim::msec(6);
    PulsarCluster pulsar(exec, net, 600, env(), nullptr, cfg);
    pulsar.createTopic("t", 1);
    sim::Duration best = sim::sec(100);
    auto consumer = pulsar.makeConsumer(2, "t", 0, false,
                                        [&](uint32_t, uint64_t, sim::Duration e2e) {
                                            best = std::min(best, e2e);
                                        });
    auto producer = pulsar.makeProducer(1, "t");
    for (int i = 0; i < 20; ++i) {
        producer->send("", 100, {});
        producer->flush();
        exec.runFor(sim::msec(50));
    }
    // Even at trivial load, e2e latency cannot beat the batching+dispatch
    // pipeline (§5.5: Pulsar's ~12 ms floor).
    EXPECT_GT(best, sim::msec(2));
}

TEST_F(PulsarFixture, NoBatchingLowersLatency) {
    makeBookies(3);
    auto measureAck = [&](bool batching) {
        PulsarConfig cfg;
        cfg.batchingEnabled = batching;
        sim::Machine e2;
        sim::Network n2{e2, sim::Link::Config{}};
        // fresh bookies per run
        sim::DiskModel::Config dcfg;
        std::vector<std::unique_ptr<sim::DiskModel>> ds;
        std::vector<std::unique_ptr<wal::Bookie>> bs;
        for (int i = 0; i < 3; ++i) {
            ds.push_back(std::make_unique<sim::DiskModel>(e2, dcfg));
            bs.push_back(std::make_unique<wal::Bookie>(e2, 100 + i, *ds.back(),
                                                       wal::Bookie::Config{}));
        }
        wal::LedgerRegistry reg;
        wal::LogMetadataStore meta;
        std::vector<wal::Bookie*> ptrs;
        for (auto& b : bs) ptrs.push_back(b.get());
        PulsarCluster pulsar(e2, n2, 600, wal::WalEnv{e2, n2, reg, meta, ptrs}, nullptr, cfg);
        pulsar.createTopic("t", 1);
        auto producer = pulsar.makeProducer(1, "t");
        sim::TimePoint sent = e2.now();
        sim::Duration latency = 0;
        producer->send("", 100, [&](Status) { latency = e2.now() - sent; });
        e2.runFor(sim::sec(1));
        return latency;
    };
    sim::Duration noBatch = measureAck(false);
    sim::Duration withBatch = measureAck(true);
    EXPECT_GT(noBatch, 0);
    EXPECT_LT(noBatch, withBatch);  // batch timer adds latency at low rate
}

TEST_F(PulsarFixture, BrokerOomWithLaggingBookieAndAckQuorumTwo) {
    // §5.6: with ackQ=2 < writeQ=3, a persistently slow bookie makes the
    // broker's re-replication buffer grow without bound → OOM crash.
    makeBookies(3, /*slowFactor=*/0.005);
    PulsarConfig cfg;
    cfg.brokerMemoryLimitBytes = 2 * 1024 * 1024;
    cfg.brokers = 1;
    PulsarCluster pulsar(exec, net, 600, env(), nullptr, cfg);
    pulsar.createTopic("t", 4);
    auto producer = pulsar.makeProducer(1, "t");
    for (int round = 0; round < 400 && !pulsar.crashed(); ++round) {
        for (int i = 0; i < 128; ++i) producer->send("", 4096, {});
        producer->flush();
        exec.runFor(sim::msec(10));
    }
    EXPECT_TRUE(pulsar.crashed());
}

TEST_F(PulsarFixture, AckQuorumThreeAvoidsOom) {
    // The paper's "favorable" configuration: ackQ=3 flow-controls
    // producers at the slowest bookie instead of buffering.
    makeBookies(3, /*slowFactor=*/0.02);
    PulsarConfig cfg;
    cfg.brokerMemoryLimitBytes = 2 * 1024 * 1024;
    cfg.brokers = 1;
    cfg.repl.ackQuorum = 3;
    cfg.maxPendingBytesPerPartition = 256 * 1024;
    PulsarCluster pulsar(exec, net, 600, env(), nullptr, cfg);
    pulsar.createTopic("t", 4);
    auto producer = pulsar.makeProducer(1, "t");
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 64; ++i) producer->send("", 4096, {});
        producer->flush();
        exec.runFor(sim::msec(20));
    }
    EXPECT_FALSE(pulsar.crashed());
}

TEST_F(PulsarFixture, OffloaderMovesDataWithoutThrottling) {
    makeBookies(3);
    sim::ObjectStoreModel::Config ltsCfg;
    ltsCfg.perStreamBytesPerSec = 512 * 1024;  // slow LTS
    ltsCfg.aggregateBytesPerSec = 512 * 1024;
    sim::ObjectStoreModel lts(exec, ltsCfg);
    PulsarConfig cfg;
    cfg.offloadEnabled = true;
    cfg.ledgerRolloverBytes = 256 * 1024;
    PulsarCluster pulsar(exec, net, 600, env(), &lts, cfg);
    pulsar.createTopic("t", 1);
    auto producer = pulsar.makeProducer(1, "t");

    // Produce 4 MB quickly: ingestion is NOT slowed by the 0.5 MB/s LTS
    // (no throttling, §5.7) so a backlog of unoffloaded data builds up.
    int acked = 0;
    sim::TimePoint ackDone = 0;
    for (int i = 0; i < 1024; ++i) {
        producer->send("", 4096, [&](Status s) {
            if (s.isOk() && ++acked == 1024) ackDone = exec.now();
        });
    }
    producer->flush();
    exec.runFor(sim::sec(2));
    EXPECT_EQ(acked, 1024);
    EXPECT_LT(ackDone, sim::sec(2));             // ingest fast
    EXPECT_LT(pulsar.offloadedBytes(), 4ULL << 20);  // offload lags

    exec.runFor(sim::sec(20));
    EXPECT_GT(pulsar.offloadedBytes(), 2ULL << 20);  // but catches up later
}

}  // namespace
}  // namespace pravega::baselines
